//! Composition interface demo: failure-atomic transfers between two
//! unrelated durable maps (paper Fig 6b / Fig 7c).
//!
//! ```text
//! cargo run --example bank_transfer
//! ```
//!
//! Moving money between two account books must never half-happen. Each
//! transfer performs two pure updates and publishes both atomically with
//! `CommitUnrelated`; an adversarial crash mid-transfer leaves the total
//! balance intact.

use mod_core::recovery::{recover, root_handle, RootSpec};
use mod_core::{DurableDs, ModHeap, RootKind};
use mod_funcds::PmMap;
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

const CHECKING_SLOT: usize = 0;
const SAVINGS_SLOT: usize = 1;

fn balance(heap: &mut ModHeap, m: &PmMap, acct: u64) -> u64 {
    m.get(heap.nv_mut(), acct)
        .map(|v| u64::from_le_bytes(v.try_into().expect("8-byte balance")))
        .unwrap_or(0)
}

fn total(heap: &mut ModHeap, a: &PmMap, b: &PmMap) -> u64 {
    let mut sum = 0;
    for acct in 0..4u64 {
        sum += balance(heap, a, acct) + balance(heap, b, acct);
    }
    sum
}

fn main() {
    let pool = Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: true,
        ..PmemConfig::default()
    });
    let mut heap = ModHeap::create(pool);

    // Two unrelated books: checking and savings, 4 accounts each.
    let mut checking = PmMap::empty(heap.nv_mut());
    let mut savings = PmMap::empty(heap.nv_mut());
    for acct in 0..4u64 {
        let c2 = checking.insert(heap.nv_mut(), acct, &1000u64.to_le_bytes());
        checking.release(heap.nv_mut());
        checking = c2;
        let s2 = savings.insert(heap.nv_mut(), acct, &500u64.to_le_bytes());
        savings.release(heap.nv_mut());
        savings = s2;
    }
    heap.publish_root(CHECKING_SLOT, checking);
    heap.publish_root(SAVINGS_SLOT, savings);
    heap.quiesce();
    println!("initial total: {}", total(&mut heap, &checking, &savings));

    // One failure-atomic transfer: checking[2] -> savings[2], 250 units.
    let from = balance(&mut heap, &checking, 2);
    let to = balance(&mut heap, &savings, 2);
    let new_checking = checking.insert(heap.nv_mut(), 2, &(from - 250).to_le_bytes());
    let new_savings = savings.insert(heap.nv_mut(), 2, &(to + 250).to_le_bytes());
    heap.commit_unrelated(&[
        (CHECKING_SLOT, checking.erase(), new_checking.erase()),
        (SAVINGS_SLOT, savings.erase(), new_savings.erase()),
    ]);
    let (checking, savings) = (new_checking, new_savings);
    println!(
        "after transfer: checking[2]={} savings[2]={} total={}",
        balance(&mut heap, &checking, 2),
        balance(&mut heap, &savings, 2),
        total(&mut heap, &checking, &savings),
    );
    heap.quiesce();

    // A transfer interrupted by a crash: both shadows built, commit never
    // runs. Try several adversarial persistence subsets.
    let from = balance(&mut heap, &checking, 0);
    let to = balance(&mut heap, &savings, 0);
    let _shadow_c = checking.insert(heap.nv_mut(), 0, &(from - 999).to_le_bytes());
    let _shadow_s = savings.insert(heap.nv_mut(), 0, &(to + 999).to_le_bytes());
    println!("-- crash mid-transfer (testing 5 adversarial subsets) --");
    for seed in 0..5u64 {
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = recover(
            img,
            &[
                RootSpec::new(CHECKING_SLOT, RootKind::Map),
                RootSpec::new(SAVINGS_SLOT, RootKind::Map),
            ],
        );
        let c: PmMap = root_handle(&mut h2, CHECKING_SLOT);
        let s: PmMap = root_handle(&mut h2, SAVINGS_SLOT);
        let t = total(&mut h2, &c, &s);
        println!("  seed {seed}: total after recovery = {t}");
        assert_eq!(t, 6000, "money neither created nor destroyed");
    }
    println!("all adversarial recoveries preserved the invariant. QED.");
}
