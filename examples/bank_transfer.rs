//! Composition interface demo: failure-atomic transfers between two
//! durable maps (paper Fig 6b / Fig 7c).
//!
//! ```text
//! cargo run --example bank_transfer
//! ```
//!
//! Moving money between two account books must never half-happen. Each
//! transfer is one `heap.fase(..)` staging pure updates to both books:
//! because typed roots are siblings under the root directory, the pair
//! publishes with **one** ordering point (the old raw-slot API needed the
//! three-fence `CommitUnrelated` log for this). An adversarial crash
//! mid-transfer leaves the total balance intact.

use mod_core::{DurableMap, ModHeap};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

type Book = DurableMap<u64, u64>;

fn total(heap: &ModHeap, a: &Book, b: &Book) -> u64 {
    (0..4u64)
        .map(|acct| a.get(heap, &acct).unwrap_or(0) + b.get(heap, &acct).unwrap_or(0))
        .sum()
}

fn main() {
    let pool = Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: true,
        ..PmemConfig::default()
    });
    let mut heap = ModHeap::create(pool);

    // Two account books: checking and savings, 4 accounts each.
    let checking: Book = DurableMap::create(&mut heap);
    let savings: Book = DurableMap::create(&mut heap);
    for acct in 0..4u64 {
        heap.fase(|tx| {
            checking.insert_in(tx, &acct, &1000);
            savings.insert_in(tx, &acct, &500);
        });
    }
    heap.quiesce();
    println!("initial total: {}", total(&heap, &checking, &savings));

    // One failure-atomic transfer: checking[2] -> savings[2], 250 units.
    let fences_before = heap.nv().pm().stats().fences;
    heap.fase(|tx| {
        let from = checking.get_in(tx, &2).unwrap_or(0);
        let to = savings.get_in(tx, &2).unwrap_or(0);
        checking.insert_in(tx, &2, &(from - 250));
        savings.insert_in(tx, &2, &(to + 250));
    });
    println!(
        "after transfer: checking[2]={} savings[2]={} total={} ({} fence)",
        checking.get(&heap, &2).unwrap(),
        savings.get(&heap, &2).unwrap(),
        total(&heap, &checking, &savings),
        heap.nv().pm().stats().fences - fences_before,
    );
    heap.quiesce();

    // A transfer interrupted by a crash: both shadows built (moving 999
    // units — a torn commit would visibly change the total), but the
    // machine dies before the FASE's single ordering point.
    let c = heap.current(checking.root());
    let s = heap.current(savings.root());
    let from = checking.get(&heap, &0).unwrap();
    let to = savings.get(&heap, &0).unwrap();
    let _shadow_c = c.insert(heap.nv_mut(), 0, &(from - 999).to_le_bytes());
    let _shadow_s = s.insert(heap.nv_mut(), 0, &(to + 999).to_le_bytes());
    println!("-- crash mid-transfer (testing 5 adversarial subsets) --");
    for seed in 0..5u64 {
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = ModHeap::open(img);
        let c2: Book = h2.root(0).open().unwrap();
        let s2: Book = h2.root(1).open().unwrap();
        let t = total(&h2, &c2, &s2);
        println!("  seed {seed}: total after recovery = {t}");
        assert_eq!(t, 6000, "money neither created nor destroyed");
    }
    println!("all adversarial recoveries preserved the invariant. QED.");
}
