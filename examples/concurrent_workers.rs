//! Concurrent workers over a shared MOD heap with pipelined commits.
//!
//! ```text
//! cargo run --example concurrent_workers
//! ```
//!
//! Four producer/consumer threads share one durable queue and one
//! durable ledger map through a `SharedModHeap`. Each worker operation
//! is a FASE over both structures; the pipelined commit stage batches
//! concurrently staged FASEs and publishes each batch with exactly one
//! `sfence` + one pointer store. The run prints the fence amortization
//! (fences per FASE) and proves the result durable by crashing and
//! recovering the pool.

use mod_core::{DurableMap, DurableQueue, ModHeap, SeededRoundRobin, SharedModHeap, Turn};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};
use std::sync::Arc;

const WORKERS: usize = 4;
const OPS: u64 = 50;

fn main() {
    let pool = Pmem::new(PmemConfig::testing());
    let shared = SharedModHeap::create(pool, WORKERS);

    // Shared structures: a work channel and a ledger. Publishing happens
    // in the single-threaded setup phase; quiesce makes setup durable.
    let queue: DurableQueue<u64> = shared.setup(DurableQueue::create);
    let ledger: DurableMap<u64, u64> = shared.setup(DurableMap::create);
    shared.quiesce();
    let fences_before = shared.with(|h| h.nv().pm().stats().fences);

    // Four real threads, interleaved by the seeded round-robin
    // turnstile: that makes the run deterministic AND keeps the workers
    // in lock-step so every batch fills with one FASE per worker. (A
    // free-running fast worker would keep draining the pipeline early —
    // the commit stage never blocks, so it trades batch fill for
    // bounded latency.) Producers move tokens into queue + ledger in
    // one FASE; consumers settle them in one FASE. Each FASE is
    // individually failure-atomic; durability is group-commit.
    let sched = Arc::new(SeededRoundRobin::new(0xD15C0, WORKERS));
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let shared = shared.clone();
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    if sched.step(w) == Turn::Halt {
                        break;
                    }
                    if w % 2 == 0 {
                        let token = (w as u64) << 32 | i;
                        shared.fase(w, |tx| {
                            queue.enqueue_in(tx, &token);
                            ledger.insert_in(tx, &token, &(token % 97));
                        });
                    } else {
                        shared.fase(w, |tx| {
                            if let Some(t) = queue.dequeue_in(tx) {
                                ledger.remove_in(tx, &t);
                            }
                        });
                    }
                }
                shared.deregister(w);
                sched.finish(w);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    shared.flush();

    let stats = shared.stats();
    let fences = shared.with(|h| h.nv().pm().stats().fences) - fences_before;
    println!(
        "{} FASEs from {WORKERS} threads committed in {} batches (largest {})",
        stats.fases, stats.batches, stats.max_batch
    );
    println!(
        "{fences} fences total -> {:.3} fences per FASE (single-threaded MOD: 1.0)",
        fences as f64 / stats.fases as f64
    );
    let (qlen, mlen) = shared.with(|h| (queue.len(h), ledger.len(h)));
    println!("queue holds {qlen} tokens, ledger {mlen} entries");
    assert_eq!(qlen, mlen, "every queued token has a ledger entry");

    // Pull the plug and recover: the committed batches survive, each
    // FASE all-or-nothing.
    shared.quiesce();
    let img = shared.crash_image(CrashPolicy::OnlyFenced);
    let (mut heap, report) = ModHeap::open(img);
    let queue: DurableQueue<u64> = heap.root(0).open().unwrap();
    let ledger: DurableMap<u64, u64> = heap.root(1).open().unwrap();
    println!(
        "after crash + recovery: {} live blocks, queue {} / ledger {}",
        report.live_blocks,
        queue.len(&heap),
        ledger.len(&heap)
    );
    assert_eq!(queue.len(&heap), qlen);
    assert_eq!(ledger.len(&heap), mlen);
    println!("recovered state consistent ✓");
}
