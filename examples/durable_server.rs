//! Durable server, end to end: serve a file-backed pool over TCP, talk
//! to it with real clients, `SIGKILL` the server mid-stream, recover,
//! and re-query — the wire contract (`reply-after-fence` + exactly-once
//! sessions) demonstrated in one run.
//!
//! The parent spawns this same binary in `server` mode as the child
//! process, so the kill lands on a real process and recovery shares
//! nothing with it but the pool file.
//!
//! ```text
//! cargo run --release --example durable_server
//! ```

use mod_core::CommitMode;
use mod_server::{pool, serve, Command, Reply, ReplyDecoder};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Stdio};
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(mode) = args.next() {
        assert_eq!(mode, "server", "usage: durable_server [server <path>]");
        let path = PathBuf::from(args.next().expect("server needs a pool path"));
        server(&path);
        return;
    }
    parent();
}

/// Child mode: serve the pool until killed.
fn server(path: &Path) {
    let (heap, roots) = pool::open_or_create(
        path,
        2,
        CommitMode::Group {
            max_batch: 8,
            timeout: Duration::from_millis(2),
        },
    )
    .expect("open pool");
    let handle = serve(heap, roots, "127.0.0.1:0").expect("bind");
    println!("LISTENING {}", handle.addr());
    std::io::stdout().flush().unwrap();
    loop {
        std::thread::park(); // until SIGKILL
    }
}

fn spawn_server(exe: &Path, pool: &Path) -> (Child, SocketAddr) {
    let mut kid = std::process::Command::new(exe)
        .arg("server")
        .arg(pool)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let mut lines = BufReader::new(kid.stdout.take().unwrap());
    let mut line = String::new();
    lines.read_line(&mut line).expect("server banner");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .expect("LISTENING banner")
        .parse()
        .expect("socket address");
    (kid, addr)
}

/// One synchronous request. Returning from here is the durability
/// guarantee: the reply was flushed only after the op's batch fence.
fn request(stream: &mut TcpStream, dec: &mut ReplyDecoder, cmd: &Command) -> Reply {
    stream.write_all(&cmd.encode()).expect("send");
    let mut buf = [0u8; 4096];
    loop {
        if let Some(r) = dec.next_reply().expect("valid reply stream") {
            return r;
        }
        let n = stream.read(&mut buf).expect("recv");
        assert!(n > 0, "server hung up");
        dec.feed(&buf[..n]);
    }
}

fn sess(seq: u64, inner: Command) -> Command {
    Command::Session {
        client: 1,
        seq,
        inner: Box::new(inner),
    }
}

fn parent() {
    let mut path = std::env::temp_dir();
    path.push(format!("mod_durable_server_{}.pool", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let exe = std::env::current_exe().expect("current_exe");

    // ---- Lifetime 1: a client does acknowledged, sessioned work. ----
    let (mut kid, addr) = spawn_server(&exe, &path);
    let mut c = TcpStream::connect(addr).expect("connect");
    let mut dec = ReplyDecoder::new();
    for seq in 1..=20u64 {
        let r = request(
            &mut c,
            &mut dec,
            &sess(
                seq,
                Command::Incr {
                    key: b"hits".to_vec(),
                },
            ),
        );
        assert_eq!(r, Reply::Int(seq as i64), "acked INCR == seq");
    }
    let r = request(
        &mut c,
        &mut dec,
        &Command::Set {
            key: b"motd".to_vec(),
            value: b"durable hello".to_vec(),
        },
    );
    assert_eq!(r, Reply::Ok);
    println!("lifetime 1: 20 sessioned INCRs + a SET acknowledged");

    // Fire one more request and pull the plug before reading the reply:
    // a genuinely in-flight op whose fate the client cannot know.
    c.write_all(
        &sess(
            21,
            Command::Incr {
                key: b"hits".to_vec(),
            },
        )
        .encode(),
    )
    .expect("send in-flight op");
    kid.kill().expect("SIGKILL the server"); // no destructors, no checkpoint
    kid.wait().expect("reap");
    drop(c);
    println!("killed the server with seq 21 in flight");

    // ---- Lifetime 2: recover, retry, verify exactly-once. ----
    let (mut kid, addr) = spawn_server(&exe, &path);
    let mut c = TcpStream::connect(addr).expect("reconnect");
    let mut dec = ReplyDecoder::new();
    // Everything acknowledged before the kill must still be there.
    let motd = request(
        &mut c,
        &mut dec,
        &Command::Get {
            key: b"motd".to_vec(),
        },
    );
    assert_eq!(motd, Reply::Value(Some(b"durable hello".to_vec())));
    // The ordinary client retry resolves the in-flight op: the server
    // either applies it now or replays the memoized reply — exactly
    // once either way.
    let r = request(
        &mut c,
        &mut dec,
        &sess(
            21,
            Command::Incr {
                key: b"hits".to_vec(),
            },
        ),
    );
    assert_eq!(r, Reply::Int(21), "retried seq 21 applied exactly once");
    // And retrying it *again* replays the memoized reply, no re-execute.
    let again = request(
        &mut c,
        &mut dec,
        &sess(
            21,
            Command::Incr {
                key: b"hits".to_vec(),
            },
        ),
    );
    assert_eq!(again, Reply::Int(21), "memoized replay");
    let hits = request(
        &mut c,
        &mut dec,
        &Command::Get {
            key: b"hits".to_vec(),
        },
    );
    assert_eq!(hits, Reply::Value(Some(b"21".to_vec())));
    println!("lifetime 2: recovery kept all 20 acks, retry applied seq 21 exactly once");
    kid.kill().expect("final kill");
    kid.wait().expect("reap");
    std::fs::remove_file(&path).expect("cleanup");
    println!("durable_server: acked ⇒ durable, retries ⇒ exactly-once ✓");
}
