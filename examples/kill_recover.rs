//! Kill-and-recover: the first crash test in this repo that survives a
//! real process death.
//!
//! The parent spawns a **child process** (this same binary in `child`
//! mode) that writes a persistent session — one FASE per op over a map,
//! a queue and a counter in a file-backed pool — then `SIGKILL`s it at
//! an arbitrary point, reopens the pool file in the parent, and verifies
//! the recovered state against the session's shadow model: every
//! committed FASE present, all-or-nothing across all three structures,
//! any torn journal tail discarded at the last complete fence. Several
//! rounds run back-to-back, each child resuming from the state the
//! previous kill left behind.
//!
//! ```text
//! cargo run --release --example kill_recover
//! ```

use mod_workloads::session::{open_session, run_ops, verify_session};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

const SEED: u64 = 0xC0FF_EE00;
/// Ops the child aims for — far more than it survives to write.
const CHILD_TARGET: u64 = 5_000_000;
/// Kill delays per round, ms (progressively longer lifetimes).
const ROUND_MS: [u64; 6] = [40, 70, 110, 150, 200, 260];

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(mode) = args.next() {
        assert_eq!(mode, "child", "usage: kill_recover [child <path>]");
        let path = PathBuf::from(args.next().expect("child needs a pool path"));
        child(&path);
        return;
    }
    parent();
}

/// The writer: open (or create) the session and write until killed.
fn child(path: &Path) {
    let mut session = open_session(path, SEED).expect("child failed to open session");
    run_ops(&mut session, CHILD_TARGET);
    drop(session.heap.close().expect("orderly close"));
}

fn parent() {
    let mut path = std::env::temp_dir();
    path.push(format!("mod_kill_recover_{}.pool", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let exe = std::env::current_exe().expect("current_exe");

    let mut last_committed = 0u64;
    for (round, &ms) in ROUND_MS.iter().enumerate() {
        let mut kid = Command::new(&exe)
            .arg("child")
            .arg(&path)
            .spawn()
            .expect("spawn child writer");
        std::thread::sleep(Duration::from_millis(ms));
        kid.kill().expect("SIGKILL the writer"); // SIGKILL on unix
        let status = kid.wait().expect("reap child");
        // The child either died of the kill or (unlikely, huge target)
        // finished cleanly; both are valid inputs to recovery.
        let committed = verify_session(&path, SEED)
            .unwrap_or_else(|e| panic!("round {round}: recovery verification failed: {e}"));
        assert!(
            committed >= last_committed,
            "round {round}: committed ops went backwards ({last_committed} -> {committed})"
        );
        println!(
            "round {round}: killed after {ms} ms (status {status}) — \
             {committed} committed FASEs verified intact (+{})",
            committed - last_committed
        );
        last_committed = committed;
    }
    assert!(
        last_committed > 0,
        "no round committed anything — kills came before the first fence"
    );

    // Final lifetime: finish a clean tail in-process and close properly.
    let mut session = open_session(&path, SEED).expect("final reopen");
    let resume = session.committed;
    run_ops(&mut session, resume + 1_000);
    let pool_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let backend = session.heap.nv().pm().backend_stats();
    drop(session.heap.close().expect("orderly close"));
    let committed = verify_session(&path, SEED).expect("post-close verify");
    assert_eq!(committed, resume + 1_000);
    println!(
        "clean tail: resumed at {resume}, closed at {committed} \
         ({} fence records, {} journal bytes, {} compactions, pool file {pool_bytes} B)",
        backend.fence_batches, backend.journal_bytes, backend.compactions
    );
    std::fs::remove_file(&path).expect("cleanup");
    println!("kill_recover: all rounds recovered all-or-nothing ✓");
}
