//! Quickstart: a durable map that survives a crash.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Shows the typed Basic interface (paper Fig 6a): every update is a
//! failure-atomic section with exactly one ordering point, lookups are
//! read-only (`&heap`), and recovery brings the structure back after a
//! simulated power failure — no slot numbers, no root specs.

use mod_core::{DurableMap, ModHeap};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

fn main() {
    // A simulated persistent-memory pool (would be a DAX mapping on real
    // hardware), with crash simulation enabled.
    let pool = Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: true,
        ..PmemConfig::default()
    });
    let mut heap = ModHeap::create(pool);

    // Create a durable map published as typed root 0 and fill it. Each
    // insert is one FASE: pure shadow update + one sfence + pointer swing.
    let map: DurableMap<u64, String> = DurableMap::create(&mut heap);
    for (k, v) in [(1u64, "alpha"), (2, "beta"), (3, "gamma")] {
        map.insert(&mut heap, &k, &v.to_string());
    }
    println!("inserted {} entries", map.len(&heap));
    println!(
        "fences so far: {} (one per update + setup)",
        heap.nv().pm().stats().fences
    );

    // An update that never commits: the shadow is built and flushed, but
    // the machine dies before the FASE's ordering point retires it.
    heap.quiesce();
    let doomed = heap
        .current(map.root())
        .insert(heap.nv_mut(), 99, b"never-committed");
    let _ = doomed;

    // Power failure. Even if *everything* unfenced happened to hit PM,
    // the uncommitted update is invisible after recovery.
    let crashed = heap.into_pm().crash_image(CrashPolicy::PersistAll);
    println!("-- crash --");

    // Recovery is self-describing: the root directory knows there is a
    // map at index 0 (opening it as another type would panic).
    let (mut heap, report) = ModHeap::open(crashed);
    println!(
        "recovered {} live blocks ({} bytes); leaked shadow reclaimed by GC",
        report.live_blocks, report.live_bytes
    );
    let map: DurableMap<u64, String> = heap.root(0).open().unwrap();
    for k in [1u64, 2, 3, 99] {
        match map.get(&heap, &k) {
            Some(v) => println!("  key {k} -> {v:?}"),
            None => println!("  key {k} -> (absent)"),
        }
    }
    assert_eq!(map.len(&heap), 3);
    assert!(map.get(&heap, &99).is_none());
    println!("committed data survived; uncommitted update did not. QED.");
}
