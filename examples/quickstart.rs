//! Quickstart: a durable map that survives a crash.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Shows the Basic interface (paper Fig 6a): every update is a
//! failure-atomic section with exactly one ordering point, and recovery
//! brings the structure back after a simulated power failure.

use mod_core::basic::DurableMap;
use mod_core::recovery::{recover, RootSpec};
use mod_core::{ModHeap, RootKind};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

const MAP_SLOT: usize = 0;

fn main() {
    // A simulated persistent-memory pool (would be a DAX mapping on real
    // hardware), with crash simulation enabled.
    let pool = Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: true,
        ..PmemConfig::default()
    });
    let mut heap = ModHeap::create(pool);

    // Create a durable map published in root slot 0 and fill it. Each
    // insert is one FASE: pure shadow update + one sfence + pointer swing.
    let mut map = DurableMap::create(&mut heap, MAP_SLOT);
    for (k, v) in [(1u64, "alpha"), (2, "beta"), (3, "gamma")] {
        map.insert(&mut heap, k, v.as_bytes());
    }
    println!("inserted {} entries", map.len(&mut heap));
    println!(
        "fences so far: {} (one per update + setup)",
        heap.nv().pm().stats().fences
    );

    // An update that never commits: the shadow is built and flushed, but
    // the machine dies before the FASE's ordering point retires it.
    heap.quiesce();
    let doomed = map
        .current()
        .insert(heap.nv_mut(), 99, b"never-committed");
    let _ = doomed;

    // Power failure. Even if *everything* unfenced happened to hit PM,
    // the uncommitted update is invisible after recovery.
    let crashed = heap.into_pm().crash_image(CrashPolicy::PersistAll);
    println!("-- crash --");

    let (mut heap, report) = recover(crashed, &[RootSpec::new(MAP_SLOT, RootKind::Map)]);
    println!(
        "recovered {} live blocks ({} bytes); leaked shadow reclaimed by GC",
        report.live_blocks, report.live_bytes
    );
    let map = DurableMap::open(&mut heap, MAP_SLOT);
    for k in [1u64, 2, 3, 99] {
        match map.get(&mut heap, k) {
            Some(v) => println!("  key {k} -> {:?}", String::from_utf8_lossy(&v)),
            None => println!("  key {k} -> (absent)"),
        }
    }
    assert_eq!(map.len(&mut heap), 3);
    assert!(map.get(&mut heap, 99).is_none());
    println!("committed data survived; uncommitted update did not. QED.");
}
