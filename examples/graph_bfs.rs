//! Recoverable breadth-first search — the paper's bfs workload as an
//! application: the frontier queue lives in persistent memory, so a
//! crashed traversal resumes from where it died instead of restarting.
//!
//! ```text
//! cargo run --example graph_bfs
//! ```

use mod_core::basic::{DurableMap, DurableQueue};
use mod_core::recovery::{recover, RootSpec};
use mod_core::{ModHeap, RootKind};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};
use mod_workloads::graph::{bfs_volatile, generate_scale_free};

const FRONTIER_SLOT: usize = 0;
const LEVELS_SLOT: usize = 1;

fn main() {
    // The graph itself is volatile (rebuilt each run, like the paper's
    // Flickr graph); traversal progress is durable.
    let graph = generate_scale_free(4000, 6, 0x000F_11C4);
    println!(
        "graph: {} nodes, {} edge entries (scale-free)",
        graph.nodes(),
        graph.edge_entries()
    );

    let pool = Pmem::new(PmemConfig {
        capacity: 1 << 27,
        crash_sim: true,
        ..PmemConfig::default()
    });
    let mut heap = ModHeap::create(pool);
    let mut frontier = DurableQueue::create(&mut heap, FRONTIER_SLOT);
    let mut levels = DurableMap::create(&mut heap, LEVELS_SLOT);

    // Start BFS from node 0, but "crash" partway through.
    levels.insert(&mut heap, 0, &0u32.to_le_bytes());
    frontier.enqueue(&mut heap, 0);
    let mut visited = 0u32;
    while let Some(u) = frontier.dequeue(&mut heap) {
        visited += 1;
        if visited == 1500 {
            println!("-- simulated power failure after visiting 1500 nodes --");
            break;
        }
        let lvl = u32::from_le_bytes(levels.get(&mut heap, u).unwrap().try_into().unwrap());
        for &v in &graph.adj[u as usize] {
            if !levels.contains_key(&mut heap, v as u64) {
                levels.insert(&mut heap, v as u64, &(lvl + 1).to_le_bytes());
                frontier.enqueue(&mut heap, v as u64);
            }
        }
    }

    // Crash and recover: the frontier and level map come back; traversal
    // resumes without revisiting the first 1500 nodes.
    heap.quiesce();
    let img = heap.into_pm().crash_image(CrashPolicy::OnlyFenced);
    let (mut heap, report) = recover(
        img,
        &[
            RootSpec::new(FRONTIER_SLOT, RootKind::Queue),
            RootSpec::new(LEVELS_SLOT, RootKind::Map),
        ],
    );
    let mut frontier = DurableQueue::open(&mut heap, FRONTIER_SLOT);
    let mut levels = DurableMap::open(&mut heap, LEVELS_SLOT);
    println!(
        "recovered: frontier holds {} nodes, {} levels recorded, {} live blocks",
        frontier.len(&mut heap),
        levels.len(&mut heap),
        report.live_blocks
    );

    while let Some(u) = frontier.dequeue(&mut heap) {
        let lvl = u32::from_le_bytes(levels.get(&mut heap, u).unwrap().try_into().unwrap());
        for &v in &graph.adj[u as usize] {
            if !levels.contains_key(&mut heap, v as u64) {
                levels.insert(&mut heap, v as u64, &(lvl + 1).to_le_bytes());
                frontier.enqueue(&mut heap, v as u64);
            }
        }
    }

    // Cross-check against a volatile BFS oracle.
    let oracle = bfs_volatile(&graph, 0);
    let mut checked = 0;
    for (node, &want) in oracle.iter().enumerate() {
        let got = u32::from_le_bytes(
            levels
                .get(&mut heap, node as u64)
                .unwrap_or_else(|| panic!("node {node} unvisited"))
                .try_into()
                .unwrap(),
        );
        assert_eq!(got, want, "node {node}");
        checked += 1;
    }
    println!("resumed traversal completed: {checked} node levels match the oracle. QED.");
}
