//! Recoverable breadth-first search — the paper's bfs workload as an
//! application: the frontier queue and level map live in persistent
//! memory, so a crashed traversal resumes from where it died instead of
//! restarting.
//!
//! ```text
//! cargo run --example graph_bfs
//! ```

use mod_core::{DurableMap, DurableQueue, ModHeap};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};
use mod_workloads::graph::{bfs_volatile, generate_scale_free};

fn main() {
    // The graph itself is volatile (rebuilt each run, like the paper's
    // Flickr graph); traversal progress is durable.
    let graph = generate_scale_free(4000, 6, 0x000F_11C4);
    println!(
        "graph: {} nodes, {} edge entries (scale-free)",
        graph.nodes(),
        graph.edge_entries()
    );

    let pool = Pmem::new(PmemConfig {
        capacity: 1 << 27,
        crash_sim: true,
        ..PmemConfig::default()
    });
    let mut heap = ModHeap::create(pool);
    let frontier: DurableQueue<u32> = DurableQueue::create(&mut heap);
    let levels: DurableMap<u64, u32> = DurableMap::create(&mut heap);

    /// One whole BFS step — dequeue the head node, record every
    /// unvisited neighbor's level and extend the frontier — as a single
    /// FASE: a crash anywhere leaves the step entirely done or entirely
    /// undone (the head still queued), so no node's expansion can be
    /// half-lost.
    fn bfs_step(
        heap: &mut ModHeap,
        graph: &mod_workloads::graph::Graph,
        frontier: &DurableQueue<u32>,
        levels: &DurableMap<u64, u32>,
    ) -> Option<u32> {
        let u = frontier.peek(heap)?;
        let lvl = levels.get(heap, &(u as u64)).unwrap();
        heap.fase(|tx| {
            frontier.dequeue_in(tx);
            for &v in &graph.adj[u as usize] {
                if levels.get_in(tx, &(v as u64)).is_none() {
                    levels.insert_in(tx, &(v as u64), &(lvl + 1));
                    frontier.enqueue_in(tx, &v);
                }
            }
        });
        Some(u)
    }

    // Start BFS from node 0, but "crash" partway through.
    levels.insert(&mut heap, &0, &0);
    frontier.enqueue(&mut heap, &0);
    let mut visited = 0u32;
    while bfs_step(&mut heap, &graph, &frontier, &levels).is_some() {
        visited += 1;
        if visited == 1500 {
            println!("-- simulated power failure after visiting 1500 nodes --");
            break;
        }
    }

    // Crash and recover: the frontier and level map come back; traversal
    // resumes without revisiting the first 1500 nodes.
    heap.quiesce();
    let img = heap.into_pm().crash_image(CrashPolicy::OnlyFenced);
    let (mut heap, report) = ModHeap::open(img);
    let frontier: DurableQueue<u32> = heap.root(0).open().unwrap();
    let levels: DurableMap<u64, u32> = heap.root(1).open().unwrap();
    println!(
        "recovered: frontier holds {} nodes, {} levels recorded, {} live blocks",
        frontier.len(&heap),
        levels.len(&heap),
        report.live_blocks
    );

    while bfs_step(&mut heap, &graph, &frontier, &levels).is_some() {}

    // Cross-check against a volatile BFS oracle.
    let oracle = bfs_volatile(&graph, 0);
    let mut checked = 0;
    for (node, &want) in oracle.iter().enumerate() {
        let got = levels
            .get(&heap, &(node as u64))
            .unwrap_or_else(|| panic!("node {node} unvisited"));
        assert_eq!(got, want, "node {node}");
        checked += 1;
    }
    println!("resumed traversal completed: {checked} node levels match the oracle. QED.");
}
