//! A memcached-style durable key-value store over one recoverable map —
//! the paper's flagship application pattern (§4.3.1): every `set` is a
//! single-FASE map update, `get`s are free of flushes and fences.
//!
//! ```text
//! cargo run --example kvstore
//! ```

use mod_core::basic::DurableMap;
use mod_core::recovery::{recover, RootSpec};
use mod_core::{ModHeap, RootKind};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

const CACHE_SLOT: usize = 0;

/// A tiny text-keyed KV store: keys are hashed to the map's u64 key and
/// stored inside the value for verification, exactly like the memcached
/// workload kernel.
struct KvStore {
    map: DurableMap,
}

fn hash_key(key: &str) -> u64 {
    let mut z = 0xCBF2_9CE4_8422_2325u64;
    for b in key.bytes() {
        z ^= b as u64;
        z = z.wrapping_mul(0x100_0000_01B3);
    }
    z
}

impl KvStore {
    fn create(heap: &mut ModHeap) -> KvStore {
        KvStore {
            map: DurableMap::create(heap, CACHE_SLOT),
        }
    }

    fn open(heap: &mut ModHeap) -> KvStore {
        KvStore {
            map: DurableMap::open(heap, CACHE_SLOT),
        }
    }

    fn set(&mut self, heap: &mut ModHeap, key: &str, value: &[u8]) {
        let mut stored = Vec::with_capacity(2 + key.len() + value.len());
        stored.extend_from_slice(&(key.len() as u16).to_le_bytes());
        stored.extend_from_slice(key.as_bytes());
        stored.extend_from_slice(value);
        self.map.insert(heap, hash_key(key), &stored);
    }

    fn get(&self, heap: &mut ModHeap, key: &str) -> Option<Vec<u8>> {
        let stored = self.map.get(heap, hash_key(key))?;
        let klen = u16::from_le_bytes([stored[0], stored[1]]) as usize;
        // Verify the embedded key (hash-collision check).
        (&stored[2..2 + klen] == key.as_bytes()).then(|| stored[2 + klen..].to_vec())
    }

    fn delete(&mut self, heap: &mut ModHeap, key: &str) -> bool {
        self.map.remove(heap, hash_key(key))
    }
}

fn main() {
    let pool = Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: true,
        ..PmemConfig::default()
    });
    let mut heap = ModHeap::create(pool);
    let mut kv = KvStore::create(&mut heap);

    kv.set(&mut heap, "user:42:name", b"Ada Lovelace");
    kv.set(&mut heap, "user:42:email", b"ada@analytical.engine");
    kv.set(&mut heap, "session:abc", b"{\"ttl\": 3600}");
    kv.delete(&mut heap, "session:abc");
    kv.set(&mut heap, "user:42:email", b"ada@example.org"); // update

    let fences = heap.nv().pm().stats().fences;
    let sets = 5; // 4 sets + 1 delete committed above (plus setup)
    println!("performed {sets} mutations with {fences} total fences");
    println!(
        "  name  = {:?}",
        kv.get(&mut heap, "user:42:name").map(String::from_utf8)
    );
    println!(
        "  email = {:?}",
        kv.get(&mut heap, "user:42:email").map(String::from_utf8)
    );

    // Restart the "process": reopen the pool and find everything intact.
    heap.quiesce();
    let img = heap.into_pm().crash_image(CrashPolicy::OnlyFenced);
    println!("-- restart --");
    let (mut heap, _) = recover(img, &[RootSpec::new(CACHE_SLOT, RootKind::Map)]);
    let kv = KvStore::open(&mut heap);
    assert_eq!(
        kv.get(&mut heap, "user:42:email"),
        Some(b"ada@example.org".to_vec())
    );
    assert!(kv.get(&mut heap, "session:abc").is_none());
    println!("store intact after restart:");
    println!(
        "  email = {:?}",
        kv.get(&mut heap, "user:42:email").map(String::from_utf8)
    );
}
