//! A memcached-style durable key-value store over one recoverable map —
//! the paper's flagship application pattern (§4.3.1): every `set` is a
//! single-FASE map update, `get`s are free of flushes and fences.
//!
//! The store is just a typed `DurableMap<String, Vec<u8>>`: the codec
//! layer hashes the string key onto the 64-bit substrate and frames the
//! key bytes into the stored blob for verification — the FNV hashing and
//! length-prefix framing this example used to implement by hand.
//!
//! ```text
//! cargo run --example kvstore
//! ```

use mod_core::{DurableMap, ModHeap};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

/// A tiny text-keyed KV store.
struct KvStore {
    map: DurableMap<String, Vec<u8>>,
}

impl KvStore {
    fn create(heap: &mut ModHeap) -> KvStore {
        KvStore {
            map: DurableMap::create(heap),
        }
    }

    fn open(heap: &mut ModHeap) -> KvStore {
        KvStore {
            map: heap.root(0).open().unwrap(),
        }
    }

    fn set(&mut self, heap: &mut ModHeap, key: &str, value: &[u8]) {
        self.map.insert(heap, &key.to_string(), &value.to_vec());
    }

    fn get(&self, heap: &ModHeap, key: &str) -> Option<Vec<u8>> {
        self.map.get(heap, &key.to_string())
    }

    fn delete(&mut self, heap: &mut ModHeap, key: &str) -> bool {
        self.map.remove(heap, &key.to_string())
    }
}

fn main() {
    let pool = Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: true,
        ..PmemConfig::default()
    });
    let mut heap = ModHeap::create(pool);
    let mut kv = KvStore::create(&mut heap);

    kv.set(&mut heap, "user:42:name", b"Ada Lovelace");
    kv.set(&mut heap, "user:42:email", b"ada@analytical.engine");
    kv.set(&mut heap, "session:abc", b"{\"ttl\": 3600}");
    kv.delete(&mut heap, "session:abc");
    kv.set(&mut heap, "user:42:email", b"ada@example.org"); // update

    let fences = heap.nv().pm().stats().fences;
    let sets = 5; // 4 sets + 1 delete committed above (plus setup)
    println!("performed {sets} mutations with {fences} total fences");
    println!(
        "  name  = {:?}",
        kv.get(&heap, "user:42:name").map(String::from_utf8)
    );
    println!(
        "  email = {:?}",
        kv.get(&heap, "user:42:email").map(String::from_utf8)
    );

    // Restart the "process": reopen the pool and find everything intact.
    heap.quiesce();
    let img = heap.into_pm().crash_image(CrashPolicy::OnlyFenced);
    println!("-- restart --");
    let (mut heap, _) = ModHeap::open(img);
    let kv = KvStore::open(&mut heap);
    assert_eq!(
        kv.get(&heap, "user:42:email"),
        Some(b"ada@example.org".to_vec())
    );
    assert!(kv.get(&heap, "session:abc").is_none());
    println!("store intact after restart:");
    println!(
        "  email = {:?}",
        kv.get(&heap, "user:42:email").map(String::from_utf8)
    );
}
