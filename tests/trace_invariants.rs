//! The paper's automated-testing framework (§5.4) applied to every MOD
//! datastructure: record all PM allocations, writes, flushes, commits and
//! fences, then verify that (1) non-commit writes only touch freshly
//! allocated memory and (2) every written line is flushed before the next
//! fence.

use mod_core::basic::{DurableMap, DurableQueue, DurableSet, DurableStack, DurableVector};
use mod_core::{DurableDs, ModHeap};
use mod_funcds::PmMap;
use mod_pmem::{check_trace, Pmem, PmemConfig, PmPtr};

fn traced_heap() -> ModHeap {
    ModHeap::create(Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: false,
        trace: true,
        ..PmemConfig::default()
    }))
}

fn assert_clean(heap: &mut ModHeap, what: &str) {
    let trace = heap.nv_mut().pm_mut().take_trace();
    assert!(!trace.is_empty(), "{what}: trace should not be empty");
    if let Err(violations) = check_trace(&trace) {
        panic!(
            "{what}: {} violations, first: {}",
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn map_ops_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let mut map = DurableMap::create(&mut heap, 0);
    heap.nv_mut().pm_mut().take_trace(); // setup not under test
    for i in 0..200u64 {
        map.insert(&mut heap, i % 64, &[i as u8; 32]);
        if i % 5 == 0 {
            map.remove(&mut heap, (i + 3) % 64);
        }
    }
    assert_clean(&mut heap, "map insert/remove");
}

#[test]
fn set_ops_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let mut set = DurableSet::create(&mut heap, 0);
    heap.nv_mut().pm_mut().take_trace();
    for i in 0..200u64 {
        set.insert(&mut heap, i % 50);
        if i % 7 == 0 {
            set.remove(&mut heap, i % 50);
        }
    }
    assert_clean(&mut heap, "set insert/remove");
}

#[test]
fn vector_ops_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let mut vec = DurableVector::create_from(&mut heap, 0, &(0..500).collect::<Vec<_>>());
    heap.nv_mut().pm_mut().take_trace();
    for i in 0..100u64 {
        vec.push_back(&mut heap, i);
        vec.update(&mut heap, i % 500, i);
        vec.swap(&mut heap, i % 500, (i * 7) % 500);
        if i % 9 == 0 {
            vec.pop_back(&mut heap);
        }
    }
    assert_clean(&mut heap, "vector push/update/swap/pop");
}

#[test]
fn stack_and_queue_ops_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let mut stack = DurableStack::create(&mut heap, 0);
    let mut queue = DurableQueue::create(&mut heap, 1);
    heap.nv_mut().pm_mut().take_trace();
    for i in 0..150u64 {
        stack.push(&mut heap, i);
        queue.enqueue(&mut heap, i);
        if i % 3 == 0 {
            stack.pop(&mut heap);
            queue.dequeue(&mut heap); // exercises rear reversal
        }
    }
    assert_clean(&mut heap, "stack/queue ops");
}

#[test]
fn composition_commits_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let a0 = PmMap::empty(heap.nv_mut());
    let b0 = PmMap::empty(heap.nv_mut());
    heap.publish_root(0, a0);
    heap.publish_root(1, b0);
    heap.commit_siblings(2, PmPtr::NULL, &[a0.erase()], &[]);
    heap.nv_mut().pm_mut().take_trace();
    // Unrelated multi-slot FASE.
    let a1 = a0.insert(heap.nv_mut(), 1, b"x");
    let b1 = b0.insert(heap.nv_mut(), 2, b"y");
    heap.commit_unrelated(&[(0, a0.erase(), a1.erase()), (1, b0.erase(), b1.erase())]);
    // Sibling FASE.
    let old_parent = heap.read_root(2);
    let a2 = a1.insert(heap.nv_mut(), 3, b"z");
    heap.commit_siblings(2, old_parent, &[a2.erase()], &[a2.erase()]);
    assert_clean(&mut heap, "composition commits");
}

#[test]
fn checker_catches_a_buggy_in_place_write() {
    // Sanity-check the checker itself: an in-place overwrite of committed
    // data must be flagged.
    let mut heap = traced_heap();
    let mut map = DurableMap::create(&mut heap, 0);
    map.insert(&mut heap, 1, b"v");
    heap.nv_mut().pm_mut().take_trace();
    // Simulate a buggy datastructure writing to the live root object.
    let root = map.current().root();
    heap.nv_mut().write_u64(root.addr(), 0xBAD);
    heap.nv_mut().clwb(root.addr());
    heap.nv_mut().sfence();
    let trace = heap.nv_mut().pm_mut().take_trace();
    assert!(
        check_trace(&trace).is_err(),
        "checker must flag in-place writes to live data"
    );
}
