//! The paper's automated-testing framework (§5.4) applied to every MOD
//! datastructure through the typed API: record all PM allocations,
//! writes, flushes, commits and fences, then verify that (1) non-commit
//! writes only touch freshly allocated memory and (2) every written line
//! is flushed before the next fence.

use mod_core::{DurableMap, DurableQueue, DurableSet, DurableStack, DurableVector, ModHeap};
use mod_funcds::PmMap;
use mod_pmem::{check_trace, Pmem, PmemConfig};

fn traced_heap() -> ModHeap {
    ModHeap::create(Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: false,
        trace: true,
        ..PmemConfig::default()
    }))
}

fn assert_clean(heap: &mut ModHeap, what: &str) {
    let trace = heap.nv_mut().pm_mut().take_trace();
    assert!(!trace.is_empty(), "{what}: trace should not be empty");
    if let Err(violations) = check_trace(&trace) {
        panic!(
            "{what}: {} violations, first: {}",
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn map_ops_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let map: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut heap);
    heap.nv_mut().pm_mut().take_trace(); // setup not under test
    for i in 0..200u64 {
        map.insert(&mut heap, &(i % 64), &vec![i as u8; 32]);
        if i % 5 == 0 {
            map.remove(&mut heap, &((i + 3) % 64));
        }
    }
    assert_clean(&mut heap, "map insert/remove");
}

#[test]
fn hashed_key_map_ops_satisfy_mod_invariants() {
    // String keys route through the codec's bucket framing: same
    // shadow-discipline requirements apply.
    let mut heap = traced_heap();
    let map: DurableMap<String, String> = DurableMap::create(&mut heap);
    heap.nv_mut().pm_mut().take_trace();
    for i in 0..100u64 {
        let key = format!("user:{}", i % 32);
        map.insert(&mut heap, &key, &format!("profile-{i}"));
        if i % 7 == 0 {
            map.remove(&mut heap, &key);
        }
    }
    assert_clean(&mut heap, "hashed-key map insert/remove");
}

#[test]
fn set_ops_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let set: DurableSet<u64> = DurableSet::create(&mut heap);
    heap.nv_mut().pm_mut().take_trace();
    for i in 0..200u64 {
        set.insert(&mut heap, &(i % 50));
        if i % 7 == 0 {
            set.remove(&mut heap, &(i % 50));
        }
    }
    assert_clean(&mut heap, "set insert/remove");
}

#[test]
fn vector_ops_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let elems: Vec<u64> = (0..500).collect();
    let vec = DurableVector::create_from(&mut heap, &elems);
    heap.nv_mut().pm_mut().take_trace();
    for i in 0..100u64 {
        vec.push_back(&mut heap, &i);
        vec.update(&mut heap, i % 500, &i);
        vec.swap(&mut heap, i % 500, (i * 7) % 500);
        if i % 9 == 0 {
            vec.pop_back(&mut heap);
        }
    }
    assert_clean(&mut heap, "vector push/update/swap/pop");
}

#[test]
fn stack_and_queue_ops_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let stack: DurableStack<u64> = DurableStack::create(&mut heap);
    let queue: DurableQueue<u64> = DurableQueue::create(&mut heap);
    heap.nv_mut().pm_mut().take_trace();
    for i in 0..150u64 {
        stack.push(&mut heap, &i);
        queue.enqueue(&mut heap, &i);
        if i % 3 == 0 {
            stack.pop(&mut heap);
            queue.dequeue(&mut heap); // exercises rear reversal
        }
    }
    assert_clean(&mut heap, "stack/queue ops");
}

#[test]
fn multi_root_fases_satisfy_mod_invariants() {
    let mut heap = traced_heap();
    let m0 = PmMap::empty(heap.nv_mut());
    let a = heap.publish(m0);
    let b: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut heap);
    heap.nv_mut().pm_mut().take_trace();
    for i in 0..100u64 {
        // One FASE spanning a raw funcds root and a typed wrapper.
        heap.fase(|tx| {
            tx.update(a, |nv, m| m.insert(nv, i, b"x"));
            b.insert_in(tx, &i, &vec![i as u8; 8]);
        });
    }
    assert_clean(&mut heap, "multi-root FASEs");
}

#[test]
fn checker_catches_a_buggy_in_place_write() {
    // Sanity-check the checker itself: an in-place overwrite of committed
    // data must be flagged.
    let mut heap = traced_heap();
    let map: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut heap);
    map.insert(&mut heap, &1, &b"v".to_vec());
    heap.nv_mut().pm_mut().take_trace();
    // Simulate a buggy datastructure writing to the live root object.
    let root = heap.current(map.root()).root();
    heap.nv_mut().write_u64(root.addr(), 0xBAD);
    heap.nv_mut().clwb(root.addr());
    heap.nv_mut().sfence();
    let trace = heap.nv_mut().pm_mut().take_trace();
    assert!(
        check_trace(&trace).is_err(),
        "checker must flag in-place writes to live data"
    );
}
