//! Hybrid persistence ("Don't Persist All"): per-root [`PersistPolicy`]
//! selection through the unified `heap.root(index)` builder. A hybrid
//! root keeps its interior nodes in a volatile index (never flushed,
//! never charged) and persists only a compact op spine; recovery rebuilds
//! the index by replaying the spine. These tests pin the API contract
//! (policy recorded durably, mismatches are typed errors), the
//! equivalence contract (a hybrid root is observationally identical to a
//! full one), and the rebuild contract (crash → reopen → same contents).

use mod_core::{
    CommitMode, DurableMap, DurableQueue, DurableSet, DurableStack, DurableVector, ModHeap,
    OpenError, PersistPolicy, SharedModHeap,
};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

fn mh() -> ModHeap {
    ModHeap::create(Pmem::new(PmemConfig::testing()))
}

fn lcg(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
    *rng >> 16
}

#[test]
fn builder_creates_and_reopens_all_five_kinds_hybrid() {
    let mut h = mh();
    let map: DurableMap<u64, Vec<u8>> = h.root(0).policy(PersistPolicy::Hybrid).create();
    let set: DurableSet<u64> = h.root(1).policy(PersistPolicy::Hybrid).create();
    let vec: DurableVector<u64> = h.root(2).policy(PersistPolicy::Hybrid).create();
    let stack: DurableStack<u64> = h.root(3).policy(PersistPolicy::Hybrid).create();
    let queue: DurableQueue<u64> = h.root(4).policy(PersistPolicy::Hybrid).create();

    map.insert(&mut h, &1, &b"one".to_vec());
    map.insert(&mut h, &2, &b"two".to_vec());
    assert!(map.remove(&mut h, &1));
    set.insert(&mut h, &10);
    vec.push_back(&mut h, &7);
    vec.push_back(&mut h, &8);
    vec.update(&mut h, 0, &70);
    stack.push(&mut h, &5);
    stack.push(&mut h, &6);
    queue.enqueue(&mut h, &11);
    queue.enqueue(&mut h, &12);

    assert_eq!(map.get(&h, &2), Some(b"two".to_vec()));
    assert_eq!(map.get(&h, &1), None);
    assert_eq!(map.len(&h), 1);
    assert!(set.contains(&h, &10));
    assert_eq!(vec.to_vec(&h), vec![70, 8]);
    assert_eq!(stack.peek(&h), Some(6));
    assert_eq!(stack.pop(&mut h), Some(6));
    assert_eq!(queue.peek(&h), Some(11));
    assert_eq!(queue.dequeue(&mut h), Some(11));

    // Reopen every handle through the builder without a restart.
    let map2: DurableMap<u64, Vec<u8>> = h.root(0).policy(PersistPolicy::Hybrid).open().unwrap();
    assert_eq!(map2.policy(), PersistPolicy::Hybrid);
    assert_eq!(map2.get(&h, &2), Some(b"two".to_vec()));
    let vec2: DurableVector<u64> = h.root(2).policy(PersistPolicy::Hybrid).open().unwrap();
    assert_eq!(vec2.to_vec(&h), vec![70, 8]);
}

#[test]
fn open_or_create_opens_existing_and_rejects_gaps() {
    let mut h = mh();
    let created: DurableMap<u64, u64> = h
        .root(0)
        .policy(PersistPolicy::Hybrid)
        .open_or_create()
        .unwrap();
    created.insert(&mut h, &1, &100);
    let reopened: DurableMap<u64, u64> = h
        .root(0)
        .policy(PersistPolicy::Hybrid)
        .open_or_create()
        .unwrap();
    assert_eq!(reopened.get(&h, &1), Some(100));
    let gap: Result<DurableMap<u64, u64>, _> = h.root(5).open_or_create();
    assert!(matches!(gap, Err(OpenError::NoSuchRoot { index: 5, .. })));
}

#[test]
fn policy_mismatch_is_a_typed_error_both_ways() {
    let mut h = mh();
    let _hybrid: DurableMap<u64, u64> = h.root(0).policy(PersistPolicy::Hybrid).create();
    let _full: DurableMap<u64, u64> = h.root(1).create();

    let as_full: Result<DurableMap<u64, u64>, _> = h.root(0).open();
    match as_full {
        Err(OpenError::PolicyMismatch {
            index: 0,
            stored: PersistPolicy::Hybrid,
            requested: PersistPolicy::Full,
        }) => {}
        other => panic!("expected hybrid-as-full PolicyMismatch, got {other:?}"),
    }
    let as_hybrid: Result<DurableMap<u64, u64>, _> = h.root(1).policy(PersistPolicy::Hybrid).open();
    match as_hybrid {
        Err(OpenError::PolicyMismatch {
            index: 1,
            stored: PersistPolicy::Full,
            requested: PersistPolicy::Hybrid,
        }) => {}
        other => panic!("expected full-as-hybrid PolicyMismatch, got {other:?}"),
    }
    // The error names both policies for the operator.
    let msg = as_full.unwrap_err().to_string();
    assert!(msg.contains("Hybrid") && msg.contains("Full"), "{msg}");
}

/// Satellite 3: one random op sequence driven against a Full root and a
/// Hybrid root must produce the identical reply stream at every step and
/// identical logical contents at the end.
#[test]
fn full_and_hybrid_replies_and_contents_match_under_random_ops() {
    let mut hf = mh();
    let mut hh = mh();
    let full: DurableMap<u64, Vec<u8>> = hf.root(0).create();
    let hybrid: DurableMap<u64, Vec<u8>> = hh.root(0).policy(PersistPolicy::Hybrid).create();
    let fvec: DurableVector<i64> = hf.root(1).create();
    let hvec: DurableVector<i64> = hh.root(1).policy(PersistPolicy::Hybrid).create();

    let mut rng = 0x5EED_1234u64;
    for step in 0..600 {
        let k = lcg(&mut rng) % 48;
        match lcg(&mut rng) % 5 {
            0 => {
                let v = vec![(step % 251) as u8; (lcg(&mut rng) % 96) as usize];
                full.insert(&mut hf, &k, &v);
                hybrid.insert(&mut hh, &k, &v);
            }
            1 => {
                let rf = full.remove(&mut hf, &k);
                let rh = hybrid.remove(&mut hh, &k);
                assert_eq!(rf, rh, "remove reply diverged at step {step}");
            }
            2 => {
                let e = lcg(&mut rng) as i64 - (1 << 40);
                fvec.push_back(&mut hf, &e);
                hvec.push_back(&mut hh, &e);
            }
            3 => {
                let rf = fvec.pop_back(&mut hf);
                let rh = hvec.pop_back(&mut hh);
                assert_eq!(rf, rh, "pop reply diverged at step {step}");
            }
            _ => {
                let gf = full.get(&hf, &k);
                let gh = hybrid.get(&hh, &k);
                assert_eq!(gf, gh, "get reply diverged at step {step}");
                assert_eq!(full.len(&hf), hybrid.len(&hh));
            }
        }
    }
    assert_eq!(fvec.to_vec(&hf), hvec.to_vec(&hh));
    for k in 0..48 {
        assert_eq!(
            full.get(&hf, &k),
            hybrid.get(&hh, &k),
            "final contents at key {k}"
        );
    }
}

/// The tentpole's point: interior updates on a hybrid root skip the
/// flush pipeline entirely, and the simulator proves it.
#[test]
fn hybrid_interior_updates_avoid_flushes() {
    let run = |policy: PersistPolicy| {
        let mut h = mh();
        let map: DurableMap<u64, Vec<u8>> = h.root(0).policy(policy).create();
        for i in 0..256u64 {
            map.insert(&mut h, &i, &vec![i as u8; 32]);
        }
        let s = h.nv().pm().stats().clone();
        (
            s.effective_flushes,
            s.flushes_avoided,
            s.volatile_node_bytes,
        )
    };
    let (full_flushes, full_avoided, full_vbytes) = run(PersistPolicy::Full);
    let (hyb_flushes, hyb_avoided, hyb_vbytes) = run(PersistPolicy::Hybrid);
    assert_eq!(full_avoided, 0);
    assert_eq!(full_vbytes, 0);
    assert!(hyb_avoided > 0, "hybrid run avoided no flushes");
    assert!(hyb_vbytes > 0, "no bytes were ever volatile");
    assert!(
        hyb_flushes * 2 <= full_flushes,
        "expected >=2x flush reduction: full={full_flushes} hybrid={hyb_flushes}"
    );
}

/// Recovery contract: a crash drops the volatile index wholesale; reopen
/// replays the spine and rebuilds bit-identical logical contents.
#[test]
fn hybrid_roots_rebuild_after_crash() {
    let mut h = mh();
    let map: DurableMap<u64, Vec<u8>> = h.root(0).policy(PersistPolicy::Hybrid).create();
    let vec: DurableVector<u64> = h.root(1).policy(PersistPolicy::Hybrid).create();
    let stack: DurableStack<u64> = h.root(2).policy(PersistPolicy::Hybrid).create();
    let queue: DurableQueue<u64> = h.root(3).policy(PersistPolicy::Hybrid).create();
    let full: DurableMap<u64, u64> = h.root(4).create();

    let mut model = std::collections::BTreeMap::new();
    let mut rng = 0xC0FFEEu64;
    for _ in 0..300 {
        let k = lcg(&mut rng) % 64;
        if lcg(&mut rng) % 4 == 0 {
            map.remove(&mut h, &k);
            model.remove(&k);
        } else {
            let v = vec![(k % 251) as u8; 24];
            map.insert(&mut h, &k, &v);
            model.insert(k, v);
        }
    }
    for i in 0..40 {
        vec.push_back(&mut h, &(i * 3));
        stack.push(&mut h, &i);
        queue.enqueue(&mut h, &(i + 100));
    }
    vec.pop_back(&mut h);
    stack.pop(&mut h);
    queue.dequeue(&mut h);
    full.insert(&mut h, &9, &90);
    h.quiesce();

    let pm = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
    let (mut h2, _report) = ModHeap::open(pm);
    assert!(h2.rebuild_ns() > 0, "rebuild was never timed");

    let map: DurableMap<u64, Vec<u8>> = h2.root(0).policy(PersistPolicy::Hybrid).open().unwrap();
    let vec: DurableVector<u64> = h2.root(1).policy(PersistPolicy::Hybrid).open().unwrap();
    let stack: DurableStack<u64> = h2.root(2).policy(PersistPolicy::Hybrid).open().unwrap();
    let queue: DurableQueue<u64> = h2.root(3).policy(PersistPolicy::Hybrid).open().unwrap();
    let full: DurableMap<u64, u64> = h2.root(4).open().unwrap();

    assert_eq!(map.len(&h2), model.len() as u64);
    for (k, v) in &model {
        assert_eq!(map.get(&h2, k).as_ref(), Some(v), "rebuilt map at key {k}");
    }
    assert_eq!(
        vec.to_vec(&h2),
        (0..39).map(|i| i * 3).collect::<Vec<u64>>()
    );
    assert_eq!(stack.len(&h2), 39);
    assert_eq!(stack.peek(&h2), Some(38));
    assert_eq!(queue.len(&h2), 39);
    assert_eq!(queue.peek(&h2), Some(101));
    assert_eq!(
        full.get(&h2, &9),
        Some(90),
        "full root untouched by rebuild"
    );

    // The rebuilt index keeps absorbing writes and another crash cycle
    // still rebuilds.
    map.insert(&mut h2, &999, &b"post-crash".to_vec());
    h2.quiesce();
    let pm = h2.into_pm().crash_image(CrashPolicy::OnlyFenced);
    let (mut h3, _) = ModHeap::open(pm);
    let map: DurableMap<u64, Vec<u8>> = h3.root(0).policy(PersistPolicy::Hybrid).open().unwrap();
    assert_eq!(map.get(&h3, &999), Some(b"post-crash".to_vec()));
}

/// Spine compaction: a long history over a small live structure folds
/// into snapshot records instead of an unbounded op chain.
#[test]
fn compaction_bounds_spine_growth_and_rebuild_still_matches() {
    let mut h = mh();
    let vec: DurableVector<u64> = h.root(0).policy(PersistPolicy::Hybrid).create();
    // 4000 ops, live length never exceeds 4.
    for round in 0..1000u64 {
        for i in 0..4 {
            vec.push_back(&mut h, &(round * 7 + i));
        }
        for _ in 0..4 {
            vec.pop_back(&mut h);
        }
    }
    vec.push_back(&mut h, &42);
    h.quiesce();
    let live = h.nv().stats().live_bytes;
    assert!(
        live < 64 * 1024,
        "spine chain grew unboundedly: {live} live bytes after 8k ops on a 4-element vector"
    );
    let pm = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
    let (mut h2, _) = ModHeap::open(pm);
    let vec: DurableVector<u64> = h2.root(0).policy(PersistPolicy::Hybrid).open().unwrap();
    assert_eq!(vec.to_vec(&h2), vec![42]);
}

/// Hybrid roots compose with the shared engine: worker FASEs stage
/// spine records through the same lanes, snapshot readers see the
/// committed volatile head, and recovery still rebuilds.
#[test]
fn shared_mode_hybrid_ops_snapshot_reads_and_rebuild() {
    let pm = Pmem::new(PmemConfig::testing());
    let shared = SharedModHeap::create(pm, 2);
    let map: DurableMap<u64, u64> =
        shared.setup(|h| h.root(0).policy(PersistPolicy::Hybrid).create());
    let m0 = map;
    let m1 = map;
    std::thread::scope(|s| {
        let h0 = shared.clone();
        let h1 = shared.clone();
        s.spawn(move || {
            for i in 0..50u64 {
                h0.fase(0, |tx| m0.insert_in(tx, &(2 * i), &i));
            }
        });
        s.spawn(move || {
            for i in 0..50u64 {
                h1.fase(1, |tx| m1.insert_in(tx, &(2 * i + 1), &i));
            }
        });
    });
    shared.flush();
    let view = shared.snapshot();
    assert_eq!(view.map_len(&map), 100);
    assert_eq!(view.map_get(&map, &0), Some(0));
    assert_eq!(view.map_get(&map, &99), Some(49));
    drop(view);
    let (mut h2, _) = ModHeap::open(
        shared
            .into_heap()
            .into_pm()
            .crash_image(CrashPolicy::OnlyFenced),
    );
    let map: DurableMap<u64, u64> = h2.root(0).policy(PersistPolicy::Hybrid).open().unwrap();
    assert_eq!(map.len(&h2), 100);
    for i in 0..50 {
        assert_eq!(map.get(&h2, &(2 * i)), Some(i));
        assert_eq!(map.get(&h2, &(2 * i + 1)), Some(i));
    }
}

/// The journal half of the ablation: the memcached mix (16-byte keys,
/// 512-byte values, 95 % sets) against a *file-backed* pool journals
/// strictly fewer bytes per op under Hybrid — only compact spine records
/// reach the journal, never the rewritten interior nodes — and the run
/// elides real flushes.
#[test]
fn memcached_mix_journal_bytes_per_op_drop_under_hybrid() {
    let run = |policy: PersistPolicy, name: &str| {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "mod_hybrid_journal_{}_{name}.pool",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cfg = PmemConfig {
            capacity: 1 << 26,
            crash_sim: false,
            ..PmemConfig::default()
        };
        let mut h = ModHeap::create_file(&path, cfg).unwrap();
        let map: DurableMap<[u8; 16], Vec<u8>> = h.root(0).policy(policy).create();
        let mut rng = 0xCACE_D00Du64;
        const OPS: u64 = 400;
        for op in 0..OPS {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&(lcg(&mut rng) % 64).to_le_bytes());
            if lcg(&mut rng) % 100 < 95 {
                let mut v = vec![0u8; 512];
                v[..8].copy_from_slice(&op.to_le_bytes());
                map.insert(&mut h, &key, &v);
            } else {
                let _ = map.get(&h, &key);
            }
        }
        h.quiesce();
        let journal = h.nv().pm().backend_stats().journal_bytes;
        let avoided = h.nv().pm().stats().flushes_avoided;
        drop(h.close().unwrap());
        let _ = std::fs::remove_file(&path);
        (journal / OPS, avoided)
    };
    let (full_jpo, full_avoided) = run(PersistPolicy::Full, "full");
    let (hyb_jpo, hyb_avoided) = run(PersistPolicy::Hybrid, "hybrid");
    assert_eq!(full_avoided, 0);
    assert!(hyb_avoided > 0, "memcached hybrid run avoided no flushes");
    assert!(
        hyb_jpo < full_jpo,
        "journal bytes/op did not drop: full={full_jpo} hybrid={hyb_jpo}"
    );
}

/// Satellite 6 regression: when `wait_durable` times out and forces the
/// batch itself, the watermark it returns must come from the *resolved*
/// ticket — never a stale poll.
#[test]
fn wait_durable_forced_flush_returns_the_resolved_watermark() {
    let pm = Pmem::new(PmemConfig::testing());
    let shared = SharedModHeap::create_with(
        pm,
        2,
        CommitMode::Group {
            max_batch: 64,
            timeout: std::time::Duration::from_millis(5),
        },
    );
    let map: DurableMap<u64, u64> =
        shared.setup(|h| h.root(0).policy(PersistPolicy::Hybrid).create());
    // One lone worker stages; its peer never does, so only the forced
    // flush inside wait_durable can resolve the ticket.
    let (_, ticket) = shared.fase_ticketed(0, |tx| map.insert_in(tx, &1, &10));
    let ns = shared.wait_durable(&ticket);
    assert!(ticket.is_durable());
    assert_eq!(Some(ns), ticket.fence_ns());
    assert!(ns > 0.0);
}
