//! Property-based equivalence of the functional datastructures against
//! std-library models, including version immutability (old handles always
//! observe their original contents) and zero-leak reclamation.

use mod_alloc::NvHeap;
use mod_funcds::{HashKind, PmMap, PmQueue, PmStack, PmVector};
use mod_pmem::{Pmem, PmemConfig};
use proptest::prelude::*;
use std::collections::HashMap;

fn heap() -> NvHeap {
    NvHeap::format(Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: false,
        trace: false,
        ..PmemConfig::default()
    }))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8),
    Remove(u8),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
            any::<u8>().prop_map(Op::Remove),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn champ_matches_hashmap(ops in ops_strategy(), weak in any::<bool>()) {
        let mut h = heap();
        let hk = if weak { HashKind::WeakLow4 } else { HashKind::SplitMix };
        let mut m = PmMap::empty_with_hash(&mut h, hk);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let next = m.insert(&mut h, k as u64, &[v; 4]);
                    m.release(&mut h);
                    m = next;
                    model.insert(k as u64, vec![v; 4]);
                }
                Op::Remove(k) => {
                    let (next, removed) = m.remove(&mut h, k as u64);
                    prop_assert_eq!(removed, model.remove(&(k as u64)).is_some());
                    if removed {
                        m.release(&mut h);
                        m = next;
                    }
                }
            }
            prop_assert_eq!(m.len(&mut h) as usize, model.len());
        }
        for (&k, v) in &model {
            let got = m.get(&mut h, k);
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // Releasing the last version reclaims every block.
        m.release(&mut h);
        prop_assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn rrb_matches_vec(
        init in prop::collection::vec(any::<u64>(), 0..200),
        pushes in prop::collection::vec(any::<u64>(), 0..64),
        updates in prop::collection::vec((any::<u16>(), any::<u64>()), 0..32),
        pops in 0usize..48,
    ) {
        let mut h = heap();
        let mut v = PmVector::from_slice(&mut h, &init);
        let mut model = init.clone();
        for &e in &pushes {
            let next = v.push_back(&mut h, e);
            v.release(&mut h);
            v = next;
            model.push(e);
        }
        for &(i, val) in &updates {
            if model.is_empty() { continue; }
            let idx = i as u64 % model.len() as u64;
            let next = v.update(&mut h, idx, val);
            v.release(&mut h);
            v = next;
            model[idx as usize] = val;
        }
        for _ in 0..pops {
            match v.pop_back(&mut h) {
                Some((next, e)) => {
                    prop_assert_eq!(Some(e), model.pop());
                    v.release(&mut h);
                    v = next;
                }
                None => prop_assert!(model.is_empty()),
            }
        }
        prop_assert_eq!(v.to_vec(&mut h), model);
        v.release(&mut h);
        prop_assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn rrb_concat_matches_vec_concat(
        a in prop::collection::vec(any::<u64>(), 0..120),
        b in prop::collection::vec(any::<u64>(), 0..120),
    ) {
        let mut h = heap();
        let va = PmVector::from_slice(&mut h, &a);
        let vb = PmVector::from_slice(&mut h, &b);
        let vc = va.concat(&mut h, &vb);
        let mut want = a.clone();
        want.extend(&b);
        prop_assert_eq!(vc.to_vec(&mut h), want.clone());
        // Indexed access through any relaxed nodes.
        for idx in (0..want.len()).step_by(17) {
            prop_assert_eq!(vc.get(&mut h, idx as u64), want[idx]);
        }
        // Originals untouched.
        prop_assert_eq!(va.to_vec(&mut h), a);
        prop_assert_eq!(vb.to_vec(&mut h), b);
    }

    #[test]
    fn old_versions_are_immutable(ops in ops_strategy()) {
        // Keep every version alive and verify each still shows its own
        // snapshot at the end — multi-versioning done right.
        let mut h = heap();
        let mut versions = vec![(PmStack::empty(&mut h), Vec::<u64>::new())];
        for op in ops.iter().take(24) {
            let (cur, model) = versions.last().unwrap().clone();
            match *op {
                Op::Insert(_, v) => {
                    let next = cur.push(&mut h, v as u64);
                    let mut m2 = model.clone();
                    m2.insert(0, v as u64);
                    versions.push((next, m2));
                }
                Op::Remove(_) => {
                    if let Some((next, _)) = cur.pop(&mut h) {
                        let mut m2 = model.clone();
                        m2.remove(0);
                        versions.push((next, m2));
                    }
                }
            }
        }
        for (v, model) in &versions {
            prop_assert_eq!(&v.to_vec(&mut h), model);
        }
    }

    #[test]
    fn queue_matches_vecdeque(ops in ops_strategy()) {
        let mut h = heap();
        let mut q = PmQueue::empty(&mut h);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for op in &ops {
            match *op {
                Op::Insert(_, v) => {
                    let next = q.enqueue(&mut h, v as u64);
                    q.release(&mut h);
                    q = next;
                    model.push_back(v as u64);
                }
                Op::Remove(_) => match q.dequeue(&mut h) {
                    Some((next, e)) => {
                        prop_assert_eq!(Some(e), model.pop_front());
                        q.release(&mut h);
                        q = next;
                    }
                    None => prop_assert!(model.is_empty()),
                },
            }
        }
        let want: Vec<u64> = model.into_iter().collect();
        prop_assert_eq!(q.to_vec(&mut h), want);
        q.release(&mut h);
        prop_assert_eq!(h.stats().live_blocks, 0);
    }
}
