//! Randomized equivalence of the functional datastructures against
//! std-library models, including version immutability (old handles always
//! observe their original contents) and zero-leak reclamation.
//!
//! Deterministic xorshift streams replace an external property-testing
//! framework: cases are enumerated over seeds, so failures reproduce
//! exactly.

use mod_alloc::NvHeap;
use mod_funcds::{HashKind, PmMap, PmQueue, PmStack, PmVector};
use mod_pmem::{Pmem, PmemConfig};
use mod_workloads::WorkloadRng;
use std::collections::HashMap;

fn heap() -> NvHeap {
    NvHeap::format(Pmem::new(PmemConfig {
        capacity: 1 << 26,
        crash_sim: false,
        trace: false,
        ..PmemConfig::default()
    }))
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u8),
    Remove(u8),
}

fn ops_stream(rng: &mut WorkloadRng) -> Vec<Op> {
    let n = 1 + rng.below(79) as usize;
    (0..n)
        .map(|_| {
            if rng.percent(60) {
                Op::Insert(rng.below(256) as u8, rng.below(256) as u8)
            } else {
                Op::Remove(rng.below(256) as u8)
            }
        })
        .collect()
}

#[test]
fn champ_matches_hashmap() {
    for case in 0..48u64 {
        let mut rng = WorkloadRng::new(0xC4A4 + case);
        let ops = ops_stream(&mut rng);
        let weak = case % 2 == 0;
        let mut h = heap();
        let hk = if weak {
            HashKind::WeakLow4
        } else {
            HashKind::SplitMix
        };
        let mut m = PmMap::empty_with_hash(&mut h, hk);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let next = m.insert(&mut h, k as u64, &[v; 4]);
                    m.release(&mut h);
                    m = next;
                    model.insert(k as u64, vec![v; 4]);
                }
                Op::Remove(k) => {
                    let (next, removed) = m.remove(&mut h, k as u64);
                    assert_eq!(removed, model.remove(&(k as u64)).is_some(), "case {case}");
                    if removed {
                        m.release(&mut h);
                        m = next;
                    }
                }
            }
            assert_eq!(m.len(&mut h) as usize, model.len(), "case {case}");
        }
        for (&k, v) in &model {
            // Exercise both the charged and the peek read paths.
            assert_eq!(m.get(&mut h, k).as_ref(), Some(v), "case {case}");
            assert_eq!(m.peek_get(&h, k).as_ref(), Some(v), "case {case}");
        }
        // Releasing the last version reclaims every block.
        m.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0, "case {case}");
    }
}

#[test]
fn rrb_matches_vec() {
    for case in 0..24u64 {
        let mut rng = WorkloadRng::new(0x44B + case);
        let init: Vec<u64> = (0..rng.below(200)).map(|_| rng.next_u64()).collect();
        let pushes: Vec<u64> = (0..rng.below(64)).map(|_| rng.next_u64()).collect();
        let n_updates = rng.below(32);
        let pops = rng.below(48) as usize;

        let mut h = heap();
        let mut v = PmVector::from_slice(&mut h, &init);
        let mut model = init.clone();
        for &e in &pushes {
            let next = v.push_back(&mut h, e);
            v.release(&mut h);
            v = next;
            model.push(e);
        }
        for _ in 0..n_updates {
            if model.is_empty() {
                continue;
            }
            let idx = rng.below(model.len() as u64);
            let val = rng.next_u64();
            let next = v.update(&mut h, idx, val);
            v.release(&mut h);
            v = next;
            model[idx as usize] = val;
        }
        for _ in 0..pops {
            match v.pop_back(&mut h) {
                Some((next, e)) => {
                    assert_eq!(Some(e), model.pop(), "case {case}");
                    v.release(&mut h);
                    v = next;
                }
                None => assert!(model.is_empty(), "case {case}"),
            }
        }
        assert_eq!(v.to_vec(&mut h), model, "case {case}");
        assert_eq!(v.peek_to_vec(&h), model, "case {case}");
        v.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0, "case {case}");
    }
}

#[test]
fn rrb_concat_matches_vec_concat() {
    for case in 0..16u64 {
        let mut rng = WorkloadRng::new(0xC0CA + case);
        let a: Vec<u64> = (0..rng.below(120)).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..rng.below(120)).map(|_| rng.next_u64()).collect();
        let mut h = heap();
        let va = PmVector::from_slice(&mut h, &a);
        let vb = PmVector::from_slice(&mut h, &b);
        let vc = va.concat(&mut h, &vb);
        let mut want = a.clone();
        want.extend(&b);
        assert_eq!(vc.to_vec(&mut h), want, "case {case}");
        // Indexed access through any relaxed nodes, on both read paths.
        for idx in (0..want.len()).step_by(17) {
            assert_eq!(vc.get(&mut h, idx as u64), want[idx], "case {case}");
            assert_eq!(vc.peek_get(&h, idx as u64), want[idx], "case {case}");
        }
        // Originals untouched.
        assert_eq!(va.to_vec(&mut h), a, "case {case}");
        assert_eq!(vb.to_vec(&mut h), b, "case {case}");
    }
}

#[test]
fn old_versions_are_immutable() {
    for case in 0..12u64 {
        let mut rng = WorkloadRng::new(0x01D + case);
        let ops = ops_stream(&mut rng);
        // Keep every version alive and verify each still shows its own
        // snapshot at the end — multi-versioning done right.
        let mut h = heap();
        let mut versions = vec![(PmStack::empty(&mut h), Vec::<u64>::new())];
        for op in ops.iter().take(24) {
            let (cur, model) = versions.last().unwrap().clone();
            match *op {
                Op::Insert(_, v) => {
                    let next = cur.push(&mut h, v as u64);
                    let mut m2 = model.clone();
                    m2.insert(0, v as u64);
                    versions.push((next, m2));
                }
                Op::Remove(_) => {
                    if let Some((next, _)) = cur.pop(&mut h) {
                        let mut m2 = model.clone();
                        m2.remove(0);
                        versions.push((next, m2));
                    }
                }
            }
        }
        for (v, model) in &versions {
            assert_eq!(&v.to_vec(&mut h), model, "case {case}");
            assert_eq!(&v.peek_to_vec(&h), model, "case {case}");
        }
    }
}

#[test]
fn queue_matches_vecdeque() {
    for case in 0..24u64 {
        let mut rng = WorkloadRng::new(0x0DE + case);
        let ops = ops_stream(&mut rng);
        let mut h = heap();
        let mut q = PmQueue::empty(&mut h);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for op in &ops {
            match *op {
                Op::Insert(_, v) => {
                    let next = q.enqueue(&mut h, v as u64);
                    q.release(&mut h);
                    q = next;
                    model.push_back(v as u64);
                }
                Op::Remove(_) => match q.dequeue(&mut h) {
                    Some((next, e)) => {
                        assert_eq!(Some(e), model.pop_front(), "case {case}");
                        q.release(&mut h);
                        q = next;
                    }
                    None => assert!(model.is_empty(), "case {case}"),
                },
            }
            assert_eq!(q.peek_front(&h), model.front().copied(), "case {case}");
        }
        let want: Vec<u64> = model.into_iter().collect();
        assert_eq!(q.to_vec(&mut h), want, "case {case}");
        q.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0, "case {case}");
    }
}
