//! File-backed pools: cross-process kill/recover, torn journal tails,
//! compaction, and MemBackend behavior-identity.
//!
//! The kill test re-invokes this very test binary as the writer child
//! (the `writer_child` "test" below becomes the child's entry point when
//! `MOD_SESSION_POOL` is set), so a genuine `SIGKILL` lands on a process
//! mid-FASE-stream and recovery runs in a different process — no shared
//! memory, only the pool file.

use mod_core::{DurableMap, ModHeap};
use mod_pmem::{Pmem, PmemConfig};
use mod_workloads::session::{
    open_session, run_ops, session_policy, verify_session, SLOTS, WINDOW,
};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

fn temp_pool(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mod_persist_{}_{name}.pool", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Child entry point: under `MOD_SESSION_POOL` this "test" writes the
/// session until killed; in a normal test run it is an instant no-op.
#[test]
fn writer_child() {
    let Ok(path) = std::env::var("MOD_SESSION_POOL") else {
        return;
    };
    let seed: u64 = std::env::var("MOD_SESSION_SEED").unwrap().parse().unwrap();
    let mut session = open_session(PathBuf::from(path).as_path(), seed).unwrap();
    run_ops(&mut session, u64::MAX / 2); // write until the kill arrives
}

#[test]
fn kill_and_reopen_recovers_committed_fases() {
    let path = temp_pool("kill");
    let seed = 0xDEAD_BEEFu64;
    let exe = std::env::current_exe().unwrap();
    let mut last = 0u64;
    // The last round is generous so even a debug build on a loaded host
    // commits work; an early kill that beats initialization verifies as
    // the legal 0-committed state.
    for (round, ms) in [60u64, 150, 400].into_iter().enumerate() {
        let mut kid = Command::new(&exe)
            .args(["writer_child", "--exact", "--nocapture"])
            .env("MOD_SESSION_POOL", &path)
            .env("MOD_SESSION_SEED", seed.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(ms));
        kid.kill().unwrap(); // SIGKILL: no destructors, no checkpoint
        kid.wait().unwrap();
        let committed = verify_session(&path, seed)
            .unwrap_or_else(|e| panic!("round {round}: verification failed: {e}"));
        assert!(
            committed >= last,
            "round {round}: committed count regressed {last} -> {committed}"
        );
        last = committed;
    }
    assert!(
        last > 0,
        "three kill rounds committed nothing — writer never reached a fence"
    );
    // The survivor pool still works: resume, close cleanly, verify.
    let mut session = open_session(&path, seed).unwrap();
    let resume = session.committed;
    assert_eq!(resume, last);
    run_ops(&mut session, resume + 100);
    drop(session.heap.close().unwrap());
    assert_eq!(verify_session(&path, seed).unwrap(), resume + 100);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_journal_tail_recovers_to_a_complete_fence_at_any_cut() {
    // Write a session, then simulate kills at many byte offsets by
    // truncating a copy of the pool file: every cut must verify as a
    // consistent all-or-nothing prefix, monotone in the cut point.
    let path = temp_pool("torn");
    let seed = 7u64;
    let mut session = open_session(&path, seed).unwrap();
    run_ops(&mut session, 120);
    drop(session); // no close/checkpoint: the file is as a kill leaves it
    let full = std::fs::read(&path).unwrap();
    let base = {
        // State with no journal suffix at all: right after initialization.
        let cut_path = temp_pool("torn_cut");
        std::fs::write(&cut_path, &full).unwrap();
        verify_session(&cut_path, seed).unwrap()
    };
    // The last FASE's directory swing is fenced by the *next* FASE (or a
    // close), so an un-closed file holds one less than the staged count.
    assert_eq!(base, 119);
    let cut_path = temp_pool("torn_cut");
    // ~150 cuts spread over the whole file plus every byte of the tail.
    let init_len = full.len() - (full.len() / 3);
    let mut cuts: Vec<usize> = (0..100)
        .map(|i| init_len + i * (full.len() - init_len) / 100)
        .collect();
    cuts.extend(full.len() - 200..=full.len());
    let mut prev_n = None::<u64>;
    let mut distinct = std::collections::BTreeSet::new();
    for cut in cuts {
        std::fs::write(&cut_path, &full[..cut]).unwrap();
        let n = verify_session(&cut_path, seed)
            .unwrap_or_else(|e| panic!("cut at {cut}: inconsistent state: {e}"));
        if let Some(p) = prev_n {
            assert!(
                n >= p,
                "cut {cut}: committed count not monotone ({p} -> {n})"
            );
        }
        prev_n = Some(n);
        distinct.insert(n);
    }
    assert!(
        distinct.len() > 10,
        "cuts should land on many distinct fences, got {distinct:?}"
    );
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&cut_path).unwrap();
}

#[test]
fn pool_set_torn_shard_tail_recovers_to_the_frontier_at_any_cut() {
    // The pool-set variant of the torn-tail test, driven end-to-end: a
    // writer child runs in the power-loss-grade shape (4 shard journals,
    // fsync per fence — the env knobs the CI kill battery uses), gets
    // SIGKILLed, and then one shard journal of a copy of the set is
    // truncated at many byte offsets. Every cut must recover to a
    // consistent all-or-nothing prefix — the durable frontier: losing a
    // record in one shard journal must also retire every *complete*
    // record of later fences sitting in the sibling journals.
    let path = temp_pool("set_torn");
    let seed = 21u64;
    let exe = std::env::current_exe().unwrap();
    let mut kid = Command::new(&exe)
        .args(["writer_child", "--exact", "--nocapture"])
        .env("MOD_SESSION_POOL", &path)
        .env("MOD_SESSION_SEED", seed.to_string())
        .env("MOD_SESSION_SHARDS", "4")
        .env("MOD_SESSION_FSYNC", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(500));
    kid.kill().unwrap(); // SIGKILL: no destructors, no checkpoint
    kid.wait().unwrap();
    // First recovery truncates real torn tails in place and leaves a
    // clean set at the frontier — the baseline for the cut sweep.
    let committed = verify_session(&path, seed).unwrap();
    assert!(committed > 0, "child committed nothing before the kill");
    let shard_paths: Vec<PathBuf> = (0..4)
        .map(|s| {
            let mut p = path.as_os_str().to_os_string();
            p.push(format!(".s{s}"));
            PathBuf::from(p)
        })
        .collect();
    let base_bytes = std::fs::read(&path).unwrap();
    let shard_bytes: Vec<Vec<u8>> = shard_paths
        .iter()
        .map(|p| std::fs::read(p).unwrap())
        .collect();
    // Shards own contiguous address ranges, so a small workload in a big
    // pool concentrates in the low shards: cut the busiest journal.
    let victim = (0..4).max_by_key(|&s| shard_bytes[s].len()).unwrap();
    assert!(
        shard_bytes[victim].len() > 24,
        "no shard journal holds any records"
    );
    let cut_path = temp_pool("set_torn_cut");
    let cut_shards: Vec<PathBuf> = (0..4)
        .map(|s| {
            let mut p = cut_path.as_os_str().to_os_string();
            p.push(format!(".s{s}"));
            PathBuf::from(p)
        })
        .collect();
    // 24 = the shard-journal header; below that the member is invalid,
    // which a power loss cannot produce (headers are synced at create).
    let len = shard_bytes[victim].len();
    let mut cuts: Vec<usize> = (0..60).map(|i| 24 + i * (len - 24) / 60).collect();
    cuts.extend(len.saturating_sub(100).max(24)..=len);
    let mut prev_n = None::<u64>;
    let mut distinct = std::collections::BTreeSet::new();
    for cut in cuts {
        // Recovery truncates in place, so every cut starts from a fresh
        // copy of the whole set.
        std::fs::write(&cut_path, &base_bytes).unwrap();
        for (s, p) in cut_shards.iter().enumerate() {
            if s == victim {
                std::fs::write(p, &shard_bytes[s][..cut]).unwrap();
            } else {
                std::fs::write(p, &shard_bytes[s]).unwrap();
            }
        }
        let n = verify_session(&cut_path, seed)
            .unwrap_or_else(|e| panic!("cut shard {victim} at {cut}: inconsistent state: {e}"));
        if let Some(p) = prev_n {
            assert!(
                n >= p,
                "cut {cut}: committed count not monotone ({p} -> {n})"
            );
        }
        prev_n = Some(n);
        distinct.insert(n);
    }
    assert_eq!(
        prev_n,
        Some(committed),
        "an uncut victim journal must recover everything"
    );
    assert!(
        distinct.len() > 5,
        "cuts should land on many distinct frontiers, got {distinct:?}"
    );
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&cut_path).unwrap();
    for p in shard_paths.iter().chain(cut_shards.iter()) {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn compaction_bounds_the_file_and_preserves_state() {
    // This is a journal-*volume* test: it pins how much the Full-policy
    // journal grows and when it compacts. Under MOD_SESSION_POLICY=hybrid
    // the same op count journals a fraction of the bytes and legitimately
    // never crosses the threshold, so the hybrid battery skips it.
    if session_policy() != mod_core::PersistPolicy::Full {
        eprintln!("skipping: compaction volume test pins the Full journal shape");
        return;
    }
    let path = temp_pool("compaction");
    let seed = 42u64;
    let mut session = open_session(&path, seed).unwrap();
    // Enough churn that the journal crosses the compaction threshold.
    run_ops(&mut session, 1_500);
    let stats = session.heap.nv().pm().backend_stats();
    assert!(
        stats.compactions >= 1,
        "1.5k FASEs must have crossed the compaction threshold \
         ({} journal bytes appended)",
        stats.journal_bytes
    );
    drop(session.heap.close().unwrap());
    let file_len = std::fs::metadata(&path).unwrap().len();
    assert!(
        file_len < stats.journal_bytes,
        "compaction must keep the file ({file_len} B) well under the \
         total journal traffic ({} B)",
        stats.journal_bytes
    );
    // All state survives the compactions and the reopen.
    let committed = verify_session(&path, seed).unwrap();
    assert_eq!(committed, 1_500);
    let mut session = open_session(&path, seed).unwrap();
    run_ops(&mut session, 1_600);
    drop(session.heap.close().unwrap());
    assert_eq!(verify_session(&path, seed).unwrap(), 1_600);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn verifier_rejects_a_wrong_shadow_model() {
    // The kill tests are only as strong as the verifier: feed it the
    // wrong seed and it must notice every slot mismatching.
    let path = temp_pool("wrong_seed");
    let mut session = open_session(&path, 1).unwrap();
    run_ops(&mut session, 50);
    drop(session.heap.close().unwrap());
    assert!(verify_session(&path, 2).is_err(), "wrong seed must fail");
    assert_eq!(verify_session(&path, 1).unwrap(), 50);
    std::fs::remove_file(&path).unwrap();
}

const _: () = assert!(WINDOW < SLOTS, "session model: window must fit the map");

#[test]
fn mem_backend_paths_are_behavior_identical_to_file_pools_minus_io() {
    // The pluggable backend must not perturb the simulation: the same
    // typed workload on a MemBackend pool and a FileBackend pool charges
    // identical simulated time and identical PM counters — the only
    // difference is where durable bytes land.
    let run = |pm: Pmem| {
        let mut h = ModHeap::create(pm);
        let map: DurableMap<u64, u64> = DurableMap::create(&mut h);
        for i in 0..64u64 {
            map.insert(&mut h, &(i % 8), &i);
        }
        h.quiesce();
        let stats = h.nv().pm().stats().clone();
        let wall = h.nv().pm().clock().now_ns();
        (stats, wall)
    };
    let (mem_stats, mem_wall) = run(Pmem::new(PmemConfig::testing()));
    let path = temp_pool("identical");
    let (file_stats, file_wall) = run(Pmem::create_file(&path, PmemConfig::testing()).unwrap());
    assert_eq!(mem_stats, file_stats, "identical PM counters");
    assert_eq!(
        mem_wall.to_bits(),
        file_wall.to_bits(),
        "bit-identical simulated time"
    );
    std::fs::remove_file(&path).unwrap();
}
