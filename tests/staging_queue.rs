//! Interleaving tests for the lock-free staging path — the
//! [`mod_core::HandoffQueue`] and the stage/commit handoff built on it —
//! driven loom-style through every seeded turnstile schedule, with crash
//! injection at every step.
//!
//! Two layers:
//!
//! * **Queue-level** — real producer threads and a batch drainer
//!   interleaved by a [`SeededRoundRobin`]: at every possible halt point
//!   the union of drained batches and the final sweep must be exactly
//!   the multiset of completed pushes, in per-producer FIFO order —
//!   nothing lost, nothing duplicated, whatever the schedule.
//! * **Heap-level** — staging workers racing a dedicated *flusher*
//!   thread that batch-drains the pipeline mid-run (the push-vs-drain
//!   race the lock-free queue exists to make safe), frozen at every
//!   scheduler step: recovery must see each FASE all-or-nothing across
//!   both structures, and the op phase must cost exactly one fence per
//!   committed batch (via `PmStats`).

use mod_core::{
    DurableMap, DurableQueue, HandoffQueue, ModHeap, SeededRoundRobin, SharedModHeap, Turn,
};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Queue-level schedules
// ---------------------------------------------------------------------

const PUSHERS: usize = 3;
const PUSHES_PER_WORKER: u64 = 5;
const DRAIN_STEPS: u64 = 6;

/// Runs `PUSHERS` producer threads plus one batch drainer under a seeded
/// turnstile, optionally halting before step `halt_at`. Returns
/// `(batches drained during the run, items left at the freeze point,
/// pushes that completed)`.
fn run_queue_schedule(seed: u64, halt_at: Option<u64>) -> (Vec<Vec<u64>>, Vec<u64>, u64) {
    let q = Arc::new(HandoffQueue::<u64>::new());
    let sched = Arc::new(SeededRoundRobin::with_halt(seed, PUSHERS + 1, halt_at));
    let drained = Arc::new(Mutex::new(Vec::new()));
    let pushed = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for w in 0..PUSHERS {
        let q = Arc::clone(&q);
        let sched = Arc::clone(&sched);
        let pushed = Arc::clone(&pushed);
        handles.push(std::thread::spawn(move || {
            for i in 0..PUSHES_PER_WORKER {
                if sched.step(w) == Turn::Halt {
                    break;
                }
                q.push((w as u64) << 32 | i);
                pushed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            sched.finish(w);
        }));
    }
    {
        let q = Arc::clone(&q);
        let sched = Arc::clone(&sched);
        let drained = Arc::clone(&drained);
        handles.push(std::thread::spawn(move || {
            for _ in 0..DRAIN_STEPS {
                if sched.step(PUSHERS) == Turn::Halt {
                    break;
                }
                let batch = q.drain();
                if !batch.is_empty() {
                    drained.lock().unwrap().push(batch);
                }
            }
            sched.finish(PUSHERS);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let batches = Arc::try_unwrap(drained).unwrap().into_inner().unwrap();
    let rest = q.drain();
    let pushed = pushed.load(std::sync::atomic::Ordering::SeqCst);
    (batches, rest, pushed)
}

fn assert_queue_outcome(seed: u64, k: u64, batches: &[Vec<u64>], rest: &[u64], pushed: u64) {
    let all: Vec<u64> = batches
        .iter()
        .flatten()
        .chain(rest.iter())
        .copied()
        .collect();
    assert_eq!(
        all.len() as u64,
        pushed,
        "seed {seed} halt {k}: {} items recovered from {pushed} completed pushes",
        all.len()
    );
    let set: BTreeSet<u64> = all.iter().copied().collect();
    assert_eq!(set.len(), all.len(), "seed {seed} halt {k}: duplicates");
    // Per-producer FIFO across batch boundaries.
    for p in 0..PUSHERS as u64 {
        let seq: Vec<u64> = all
            .iter()
            .filter(|&&v| v >> 32 == p)
            .map(|&v| v & 0xFFFF_FFFF)
            .collect();
        assert_eq!(
            seq,
            (0..seq.len() as u64).collect::<Vec<_>>(),
            "seed {seed} halt {k}: producer {p} reordered"
        );
    }
}

#[test]
fn queue_schedules_lose_nothing_at_any_halt_point() {
    for seed in [1u64, 2, 3] {
        let (_, _, total) = {
            let (b, r, p) = run_queue_schedule(seed, None);
            assert_queue_outcome(seed, u64::MAX, &b, &r, p);
            (b, r, p)
        };
        assert_eq!(total, PUSHERS as u64 * PUSHES_PER_WORKER);
        let steps = PUSHERS as u64 * PUSHES_PER_WORKER + DRAIN_STEPS;
        for k in 0..=steps {
            let (batches, rest, pushed) = run_queue_schedule(seed, Some(k));
            assert_queue_outcome(seed, k, &batches, &rest, pushed);
        }
    }
}

#[test]
fn queue_schedules_are_deterministic_in_the_seed() {
    let a = run_queue_schedule(9, Some(10));
    let b = run_queue_schedule(9, Some(10));
    assert_eq!(a.0, b.0, "same seed, same drained batches");
    assert_eq!(a.1, b.1, "same seed, same residue");
}

// ---------------------------------------------------------------------
// Heap-level: staging vs batch-drain vs crash
// ---------------------------------------------------------------------

const STAGERS: usize = 3;
const OPS_PER_STAGER: u64 = 4;
const FLUSH_STEPS: u64 = 5;

fn token(worker: usize, op: u64) -> u64 {
    (worker as u64) * 100 + op
}

struct Outcome {
    image: Pmem,
    batches: u64,
    fases: u64,
    fences: u64,
}

/// `STAGERS` workers stage producer FASEs while a dedicated flusher
/// thread batch-drains the pipeline at seeded points; the run freezes
/// before step `halt_at`.
fn run_with_flusher(seed: u64, halt_at: Option<u64>) -> Outcome {
    let shared = SharedModHeap::create(Pmem::new(PmemConfig::testing()), STAGERS);
    let queue: DurableQueue<u64> = shared.setup(DurableQueue::create);
    let map: DurableMap<u64, u64> = shared.setup(DurableMap::create);
    shared.quiesce();
    let fences_before = shared.with(|h| h.nv().pm().stats().fences);

    let sched = Arc::new(SeededRoundRobin::with_halt(seed, STAGERS + 1, halt_at));
    let mut handles = Vec::new();
    for w in 0..STAGERS {
        let shared = shared.clone();
        let sched = Arc::clone(&sched);
        handles.push(std::thread::spawn(move || {
            let mut halted = false;
            for op in 0..OPS_PER_STAGER {
                if sched.step(w) == Turn::Halt {
                    halted = true;
                    break;
                }
                let t = token(w, op);
                shared.fase(w, |tx| {
                    queue.enqueue_in(tx, &t);
                    map.insert_in(tx, &t, &(t * 7));
                });
            }
            if !halted {
                shared.deregister(w);
            }
            sched.finish(w);
        }));
    }
    {
        // The flusher races the stagers' pushes with batch drains — the
        // exact interleaving the lock-free handoff queue must survive.
        let shared = shared.clone();
        let sched = Arc::clone(&sched);
        handles.push(std::thread::spawn(move || {
            for _ in 0..FLUSH_STEPS {
                if sched.step(STAGERS) == Turn::Halt {
                    break;
                }
                shared.flush();
            }
            sched.finish(STAGERS);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = shared.stats();
    let fences = shared.with(|h| h.nv().pm().stats().fences) - fences_before;
    Outcome {
        image: shared.crash_image(CrashPolicy::OnlyFenced),
        batches: stats.batches,
        fases: stats.fases,
        fences,
    }
}

fn recover(image: Pmem) -> (Vec<u64>, BTreeSet<u64>) {
    let (mut heap, _) = ModHeap::open(image);
    let queue: DurableQueue<u64> = heap.root(0).open().unwrap();
    let map: DurableMap<u64, u64> = heap.root(1).open().unwrap();
    let qtokens = heap.current(queue.root()).peek_to_vec(heap.nv());
    let mkeys: BTreeSet<u64> = heap
        .current(map.root())
        .peek_to_vec(heap.nv())
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    for &k in &mkeys {
        assert_eq!(map.get(&heap, &k), Some(k * 7), "ledger value for {k}");
    }
    (qtokens, mkeys)
}

fn assert_all_or_nothing(seed: u64, k: u64, qtokens: &[u64], mkeys: &BTreeSet<u64>) {
    let qset: BTreeSet<u64> = qtokens.iter().copied().collect();
    assert_eq!(
        qset.len(),
        qtokens.len(),
        "seed {seed} step {k}: dup tokens"
    );
    assert_eq!(
        &qset, mkeys,
        "seed {seed} step {k}: FASE half-applied across queue and ledger"
    );
    for w in 0..STAGERS {
        let ops: Vec<u64> = (0..OPS_PER_STAGER)
            .filter(|&op| qset.contains(&token(w, op)))
            .collect();
        assert_eq!(
            ops,
            (0..ops.len() as u64).collect::<Vec<_>>(),
            "seed {seed} step {k}: worker {w} out of order"
        );
    }
}

#[test]
fn flusher_race_full_runs_cost_one_fence_per_batch() {
    for seed in [1u64, 2, 3] {
        let out = run_with_flusher(seed, None);
        assert_eq!(out.fases, STAGERS as u64 * OPS_PER_STAGER);
        assert_eq!(
            out.fences, out.batches,
            "seed {seed}: fences ≠ batches with a racing flusher"
        );
        let (qtokens, mkeys) = recover(out.image);
        assert_all_or_nothing(seed, u64::MAX, &qtokens, &mkeys);
    }
}

#[test]
fn flusher_race_crash_at_every_step_is_all_or_nothing() {
    for seed in [1u64, 2] {
        let total = STAGERS as u64 * OPS_PER_STAGER + FLUSH_STEPS;
        for k in 0..=total {
            let out = run_with_flusher(seed, Some(k));
            assert_eq!(
                out.fences, out.batches,
                "seed {seed} step {k}: fences ≠ batches"
            );
            let (qtokens, mkeys) = recover(out.image);
            assert_all_or_nothing(seed, k, &qtokens, &mkeys);
        }
    }
}
