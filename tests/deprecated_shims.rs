//! Regression pin for the deprecated raw-slot Composition interface.
//!
//! `publish_root`, `commit_single`, `commit_siblings`, `commit_unrelated`
//! and spec-based `recover`/`root_handle` survive one more release as
//! `#[deprecated]` shims. This test pins their externally observable
//! behavior — fence counts, slot contents, recovery roundtrips, and
//! coexistence with the typed root directory — so the scheduled removal
//! in a later PR can be verified to be a pure deletion: when these shims
//! go, this file goes with them, and nothing else may change.

#![allow(deprecated)]

use mod_core::recovery::{parent_children, RootSpec};
use mod_core::{recover, root_handle, try_root_handle, DurableDs, DurableMap, ModHeap, RootKind};
use mod_funcds::{PmMap, PmQueue};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

fn mh() -> ModHeap {
    ModHeap::create(Pmem::new(PmemConfig::testing()))
}

#[test]
fn publish_and_commit_single_still_cost_one_fence() {
    let mut h = mh();
    let m0 = PmMap::empty(h.nv_mut());
    let fences = h.nv().pm().stats().fences;
    h.publish_root(0, m0);
    assert_eq!(h.nv().pm().stats().fences - fences, 1, "publish_root");
    let m1 = m0.insert(h.nv_mut(), 1, b"one");
    let fences = h.nv().pm().stats().fences;
    h.commit_single(0, m0, &[], m1);
    assert_eq!(h.nv().pm().stats().fences - fences, 1, "commit_single");
    assert_eq!(h.read_root(0), m1.root());
}

#[test]
fn commit_siblings_still_costs_one_fence() {
    let mut h = mh();
    let m = PmMap::empty(h.nv_mut());
    let q = PmQueue::empty(h.nv_mut());
    h.commit_siblings(
        3,
        mod_pmem::PmPtr::NULL,
        &[m.erase(), q.erase()],
        &[m.erase(), q.erase()],
    );
    let old_parent = h.read_root(3);
    let m2 = m.insert(h.nv_mut(), 1, b"x");
    let fences = h.nv().pm().stats().fences;
    h.commit_siblings(3, old_parent, &[m2.erase(), q.erase()], &[m2.erase()]);
    assert_eq!(h.nv().pm().stats().fences - fences, 1, "commit_siblings");
}

#[test]
fn commit_unrelated_still_costs_three_fences_and_retires_its_log() {
    let mut h = mh();
    let a0 = PmMap::empty(h.nv_mut());
    let b0 = PmQueue::empty(h.nv_mut());
    h.publish_root(0, a0);
    h.publish_root(1, b0);
    let a1 = a0.insert(h.nv_mut(), 1, b"x");
    let b1 = b0.enqueue(h.nv_mut(), 9);
    let fences = h.nv().pm().stats().fences;
    h.commit_unrelated(&[(0, a0.erase(), a1.erase()), (1, b0.erase(), b1.erase())]);
    assert_eq!(
        h.nv().pm().stats().fences - fences,
        3,
        "Fig 8d stays at three ordering points"
    );
    assert_eq!(h.read_root(0), a1.root());
    assert_eq!(h.read_root(1), b1.root());
}

#[test]
fn spec_based_recover_and_root_handles_roundtrip() {
    let mut h = mh();
    let m0 = PmMap::empty(h.nv_mut());
    h.publish_root(0, m0);
    let m1 = m0.insert(h.nv_mut(), 10, b"ten");
    h.commit_single(0, m0, &[], m1);
    h.quiesce();
    let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
    let (mut h2, report) = recover(img, &[RootSpec::new(0, RootKind::Map)]);
    assert!(report.live_blocks > 0);
    let m: PmMap = root_handle(&mut h2, 0);
    assert_eq!(m.get(h2.nv_mut(), 10), Some(b"ten".to_vec()));
    assert!(try_root_handle::<PmMap>(&mut h2, 5).is_none());
}

#[test]
fn parent_children_reads_sibling_parents_after_recovery() {
    let mut h = mh();
    let m = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 1, b"one");
    let q = PmQueue::empty(h.nv_mut()).enqueue(h.nv_mut(), 2);
    h.commit_siblings(
        7,
        mod_pmem::PmPtr::NULL,
        &[m.erase(), q.erase()],
        &[m.erase(), q.erase()],
    );
    h.quiesce();
    let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
    let (mut h2, _) = recover(img, &[RootSpec::new(7, RootKind::Parent)]);
    let kids = parent_children(&mut h2, 7);
    assert_eq!(kids.len(), 2);
    assert_eq!(kids[0].kind, RootKind::Map);
    assert_eq!(kids[1].kind, RootKind::Queue);
    let m = PmMap::from_root(kids[0].root);
    assert_eq!(m.get(h2.nv_mut(), 1), Some(b"one".to_vec()));
}

#[test]
fn raw_slots_and_typed_directory_coexist_across_recovery() {
    // A legacy app migrating piecemeal: one raw slot plus one typed
    // root in the same pool must both survive spec-based recovery.
    let mut h = mh();
    let raw = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 1, b"raw");
    h.publish_root(0, raw);
    let typed: DurableMap<u64, String> = DurableMap::create(&mut h);
    typed.insert(&mut h, &2, &"typed".to_string());
    h.quiesce();
    let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
    let (mut h2, _) = recover(img, &[RootSpec::new(0, RootKind::Map)]);
    let raw2: PmMap = root_handle(&mut h2, 0);
    assert_eq!(raw2.get(h2.nv_mut(), 1), Some(b"raw".to_vec()));
    let typed2 = DurableMap::<u64, String>::open(&h2, 0);
    assert_eq!(typed2.get(&h2, &2), Some("typed".to_string()));
}

#[test]
#[should_panic(expected = "reserved for the typed root directory")]
fn raw_slots_still_cannot_touch_the_directory_slot() {
    let mut h = mh();
    let m0 = PmMap::empty(h.nv_mut());
    h.publish_root(mod_core::ROOT_DIR_SLOT, m0);
}
