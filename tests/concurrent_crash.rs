//! Concurrent crash-injection test: interrupt pipelined FASE batches
//! staged from 4 real threads at *every* scheduler step, under seeded
//! deterministic interleavings, and assert that recovery sees each FASE
//! all-or-nothing.
//!
//! Four workers run over one `SharedModHeap`, interleaved by a
//! [`SeededRoundRobin`] turnstile so the global op order is a pure
//! function of the seed. Each worker op is one FASE moving a token into
//! *two* structures (a `DurableQueue<u64>` work channel and a
//! `DurableMap<u64, u64>` ledger). The harness freezes the run at step
//! `k` for every `k` in the schedule (the scheduler halts, the pool is
//! crash-imaged with staged-but-unbatched FASEs still in flight), then
//! recovers and checks:
//!
//! * **atomicity across structures** — the recovered queue contents and
//!   ledger keys are exactly the same token set: no FASE is ever half
//!   applied, whichever batch it rode in and wherever the crash fell;
//! * **per-worker prefix** — each worker's recovered tokens form a
//!   prefix of its op sequence (batches commit in staging order);
//! * **pipelining really happened** — the full run costs exactly one
//!   fence per committed batch (asserted via `PmStats`), with batches
//!   carrying multiple FASEs.

use mod_core::{DurableMap, DurableQueue, ModHeap, SeededRoundRobin, SharedModHeap, Turn};
use mod_pmem::{CrashPolicy, PmStats, Pmem, PmemConfig};
use std::collections::BTreeSet;
use std::sync::Arc;

const WORKERS: usize = 4;
const OPS_PER_WORKER: u64 = 4;

fn token(worker: usize, op: u64) -> u64 {
    (worker as u64) * 100 + op
}

struct RunOutcome {
    image: Pmem,
    steps: u64,
    batches: u64,
    fases: u64,
    /// PM activity between setup and the end of the op phase.
    pm: PmStats,
}

/// Runs the 4-worker schedule, optionally halting before step `halt_at`,
/// and crash-images the pool exactly as the freeze left it.
fn run(seed: u64, halt_at: Option<u64>) -> RunOutcome {
    let shared = SharedModHeap::create(Pmem::new(PmemConfig::testing()), WORKERS);
    let queue: DurableQueue<u64> = shared.setup(DurableQueue::create);
    let map: DurableMap<u64, u64> = shared.setup(DurableMap::create);
    // Make setup durable before serving traffic: the last publish's
    // directory swing is fenced by this quiesce, not by a later batch.
    shared.quiesce();
    let pm_before = shared.with(|h| h.nv().pm().stats().clone());

    let sched = Arc::new(SeededRoundRobin::with_halt(seed, WORKERS, halt_at));
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let shared = shared.clone();
        let sched = Arc::clone(&sched);
        handles.push(std::thread::spawn(move || {
            let mut halted = false;
            for op in 0..OPS_PER_WORKER {
                if sched.step(w) == Turn::Halt {
                    halted = true;
                    break;
                }
                let t = token(w, op);
                shared.fase(w, |tx| {
                    queue.enqueue_in(tx, &t);
                    map.insert_in(tx, &t, &(t * 7));
                });
            }
            // A crashed worker must not drain the pipeline on its way
            // out — the freeze has to capture staged FASEs in flight.
            // Orderly completion deregisters (still holding the turn
            // token, so the global order stays deterministic).
            if !halted {
                shared.deregister(w);
            }
            sched.finish(w);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = shared.stats();
    let pm_after = shared.with(|h| h.nv().pm().stats().clone());
    RunOutcome {
        image: shared.crash_image(CrashPolicy::OnlyFenced),
        steps: sched.steps_granted(),
        batches: stats.batches,
        fases: stats.fases,
        pm: pm_after.since(&pm_before),
    }
}

/// Recovers a crash image and returns `(queue tokens, ledger keys)`.
fn recover(image: Pmem) -> (Vec<u64>, BTreeSet<u64>) {
    let (mut heap, _report) = ModHeap::open(image);
    let queue: DurableQueue<u64> = heap.root(0).open().unwrap();
    let map: DurableMap<u64, u64> = heap.root(1).open().unwrap();
    let root = queue.root();
    let qtokens = heap.current(root).peek_to_vec(heap.nv());
    let mroot = map.root();
    let mkeys: BTreeSet<u64> = heap
        .current(mroot)
        .peek_to_vec(heap.nv())
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    // Every surviving ledger value must be intact, not just present.
    for &k in &mkeys {
        assert_eq!(map.get(&heap, &k), Some(k * 7), "ledger value for {k}");
    }
    (qtokens, mkeys)
}

fn assert_all_or_nothing(seed: u64, k: u64, qtokens: &[u64], mkeys: &BTreeSet<u64>) {
    let qset: BTreeSet<u64> = qtokens.iter().copied().collect();
    assert_eq!(
        qset.len(),
        qtokens.len(),
        "seed {seed} step {k}: duplicate tokens in queue"
    );
    assert_eq!(
        &qset, mkeys,
        "seed {seed} step {k}: a FASE was half-applied across queue and ledger"
    );
    assert!(
        qset.len() as u64 <= k,
        "seed {seed} step {k}: more FASEs survived than were ever staged"
    );
    // Per-worker prefix: worker w's surviving ops are 0..n_w.
    for w in 0..WORKERS {
        let ops: Vec<u64> = (0..OPS_PER_WORKER)
            .filter(|&op| qset.contains(&token(w, op)))
            .collect();
        assert_eq!(
            ops,
            (0..ops.len() as u64).collect::<Vec<_>>(),
            "seed {seed} step {k}: worker {w} survived out of order"
        );
    }
}

#[test]
fn full_run_commits_everything_with_one_fence_per_batch() {
    for seed in [1u64, 2, 3] {
        let out = run(seed, None);
        assert_eq!(out.steps, WORKERS as u64 * OPS_PER_WORKER);
        assert_eq!(out.fases, 16);
        assert!(
            out.batches < out.fases,
            "seed {seed}: pipelining never batched anything"
        );
        // One ordering point per committed batch — the pipelined Fig 8
        // property, via PmStats. (Deferred-reclamation fences are
        // issued *inside* batch commits, so the op phase adds none.)
        assert_eq!(
            out.pm.fences, out.batches,
            "seed {seed}: fences ≠ batches during the op phase"
        );
        // Full run + flushed pipeline: nothing may be missing. The
        // final batch's directory swing is made durable by quiesce
        // inside crash_image? No — OnlyFenced drops the unfenced tail,
        // which is at most the last batch. Recovery must still be
        // consistent; completeness is checked for the fenced prefix.
        let (qtokens, mkeys) = recover(out.image);
        assert_all_or_nothing(seed, out.steps, &qtokens, &mkeys);
    }
}

#[test]
fn crash_at_every_scheduler_step_is_all_or_nothing() {
    // Three seeded interleavings, frozen before every scheduler step
    // (0 = nothing ran .. S = everything staged, tail maybe unfenced).
    for seed in [1u64, 2, 3] {
        let total = run(seed, None).steps;
        for k in 0..=total {
            let out = run(seed, Some(k));
            assert_eq!(out.steps, k, "seed {seed}: halted at the wrong step");
            let (qtokens, mkeys) = recover(out.image);
            assert_all_or_nothing(seed, k, &qtokens, &mkeys);
        }
    }
}

#[test]
fn crash_replays_are_deterministic() {
    // Same seed + same halt step ⇒ byte-identical recovered state.
    let (q1, m1) = recover(run(5, Some(7)).image);
    let (q2, m2) = recover(run(5, Some(7)).image);
    assert_eq!(q1, q2);
    assert_eq!(m1, m2);
    // And a different seed produces a different (but still consistent)
    // interleaving somewhere along the schedule.
    let mut any_diff = false;
    for k in 0..=16 {
        let (qa, _) = recover(run(11, Some(k)).image);
        let (qb, _) = recover(run(12, Some(k)).image);
        if qa != qb {
            any_diff = true;
            break;
        }
    }
    assert!(any_diff, "seeds 11 and 12 never diverged");
}

#[test]
fn adversarial_persistence_choices_stay_atomic() {
    // Beyond OnlyFenced: let arbitrary subsets of unfenced lines
    // persist at the freeze point and re-check atomicity.
    for crash_seed in 0..8u64 {
        let shared = SharedModHeap::create(Pmem::new(PmemConfig::testing()), WORKERS);
        let queue: DurableQueue<u64> = shared.setup(DurableQueue::create);
        let map: DurableMap<u64, u64> = shared.setup(DurableMap::create);
        shared.quiesce();
        // Two committed batches, then a frozen partial batch.
        for op in 0..2u64 {
            for w in 0..WORKERS {
                let t = token(w, op);
                shared.fase(w, |tx| {
                    queue.enqueue_in(tx, &t);
                    map.insert_in(tx, &t, &(t * 7));
                });
            }
        }
        for w in 0..2 {
            let t = token(w, 2);
            shared.fase(w, |tx| {
                queue.enqueue_in(tx, &t);
                map.insert_in(tx, &t, &(t * 7));
            });
        }
        let image = shared.crash_image(CrashPolicy::Seeded(crash_seed));
        let (qtokens, mkeys) = recover(image);
        assert_all_or_nothing(99, 10, &qtokens, &mkeys);
    }
}
