//! Wire-protocol property battery for the `mod-server` RESP-style codec
//! (the socket-facing sibling of `codec_properties.rs`):
//!
//! * xorshift-fuzzed frame and reply roundtrips — arbitrary binary
//!   tokens, including embedded CRLFs and protocol metacharacters;
//! * partial-read resumption: a multi-frame stream split at **every**
//!   byte boundary decodes to the same frames, and a decoder never
//!   consumes a partial frame;
//! * oversized and corrupt frames are rejected with the typed
//!   [`ProtoError`] variants, never a panic or a silent skip.

use mod_server::{
    encode_tokens, Command, FrameDecoder, ProtoError, Reply, ReplyDecoder, MAX_ARGS, MAX_BULK,
};

/// The same xorshift* generator the other test batteries use.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Binary-heavy token bytes: biased toward protocol metacharacters
    /// so framing bugs can't hide behind benign alphabets.
    fn token(&mut self, max_len: usize) -> Vec<u8> {
        let len = (self.next() as usize) % (max_len + 1);
        (0..len)
            .map(|_| match self.next() % 8 {
                0 => b'\r',
                1 => b'\n',
                2 => b'*',
                3 => b'$',
                _ => self.next() as u8,
            })
            .collect()
    }
}

fn decode_all(dec: &mut FrameDecoder) -> Vec<Vec<Vec<u8>>> {
    let mut frames = Vec::new();
    while let Some(f) = dec.next_frame().expect("valid stream") {
        frames.push(f);
    }
    frames
}

// ---------------------------------------------------------------------
// Fuzzed roundtrips
// ---------------------------------------------------------------------

#[test]
fn fuzzed_frames_roundtrip() {
    let mut rng = Rng::new(0xF4A3E5);
    for _ in 0..500 {
        let argc = 1 + (rng.next() as usize) % MAX_ARGS;
        let tokens: Vec<Vec<u8>> = (0..argc).map(|_| rng.token(200)).collect();
        let mut dec = FrameDecoder::new();
        dec.feed(&encode_tokens(&tokens));
        assert_eq!(decode_all(&mut dec), vec![tokens]);
        assert!(dec.is_empty(), "roundtrip leaves no residue");
    }
}

#[test]
fn fuzzed_commands_roundtrip_through_tokens() {
    let mut rng = Rng::new(0xC0FFEE);
    for i in 0..300u64 {
        let key = rng.token(40);
        let cmd = match i % 8 {
            0 => Command::Ping,
            1 => Command::Get { key },
            2 => Command::Set {
                key,
                value: rng.token(300),
            },
            3 => Command::Del { key },
            4 => Command::Incr { key },
            5 => Command::LPush {
                value: rng.token(300),
            },
            6 => Command::RPop,
            _ => Command::Session {
                client: rng.next(),
                seq: rng.next().max(1),
                inner: Box::new(Command::Set {
                    key,
                    value: rng.token(100),
                }),
            },
        };
        let mut dec = FrameDecoder::new();
        dec.feed(&cmd.encode());
        let tokens = dec.next_frame().unwrap().expect("one frame");
        assert_eq!(Command::parse(&tokens).expect("parses back"), cmd);
        assert!(dec.is_empty());
    }
}

#[test]
fn fuzzed_replies_roundtrip() {
    let mut rng = Rng::new(0x5E44F);
    for i in 0..500u64 {
        let reply = match i % 5 {
            0 => Reply::Ok,
            1 => Reply::Pong,
            2 => Reply::Int(rng.next() as i64),
            3 => Reply::Value(if rng.next() % 4 == 0 {
                None
            } else {
                Some(rng.token(300))
            }),
            // Errors are sanitized on the wire: fuzz with clean text.
            _ => Reply::Err(format!("ERR fuzz {i}")),
        };
        let mut dec = ReplyDecoder::new();
        dec.feed(&reply.encode());
        assert_eq!(dec.next_reply().unwrap(), Some(reply));
        assert!(dec.is_empty());
    }
}

// ---------------------------------------------------------------------
// Partial-read resumption
// ---------------------------------------------------------------------

/// A short pipelined stream of adversarial frames (binary keys with
/// embedded CRLF and `$`/`*` bytes, empty tokens, a max-arity frame).
fn sample_stream() -> (Vec<u8>, Vec<Vec<Vec<u8>>>) {
    let frames: Vec<Vec<Vec<u8>>> = vec![
        vec![b"PING".to_vec()],
        vec![b"SET".to_vec(), b"k\r\n$9".to_vec(), b"*2\r\nv".to_vec()],
        vec![b"GET".to_vec(), Vec::new()],
        (0..MAX_ARGS)
            .map(|i| vec![b'a' + (i as u8 % 26); i])
            .collect(),
        vec![b"DEL".to_vec(), vec![0u8; 37]],
    ];
    let wire: Vec<u8> = frames.iter().flat_map(|f| encode_tokens(f)).collect();
    (wire, frames)
}

#[test]
fn every_byte_boundary_split_resumes() {
    let (wire, frames) = sample_stream();
    for split in 0..=wire.len() {
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..split]);
        let mut got = decode_all(&mut dec);
        dec.feed(&wire[split..]);
        got.extend(decode_all(&mut dec));
        assert_eq!(got, frames, "split at byte {split}");
        assert!(dec.is_empty(), "split at byte {split} leaves residue");
    }
}

#[test]
fn byte_at_a_time_feeding_decodes_the_whole_stream() {
    let (wire, frames) = sample_stream();
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    for b in &wire {
        dec.feed(std::slice::from_ref(b));
        got.extend(decode_all(&mut dec));
    }
    assert_eq!(got, frames);
    assert!(dec.is_empty());
}

#[test]
fn a_partial_frame_is_never_consumed() {
    let (wire, _) = sample_stream();
    // Any strict prefix of a single frame yields no frame and keeps
    // waiting; completing the bytes later must still decode.
    let one = encode_tokens(&[b"SET".to_vec(), b"key".to_vec(), b"value".to_vec()]);
    for cut in 0..one.len() {
        let mut dec = FrameDecoder::new();
        dec.feed(&one[..cut]);
        assert_eq!(dec.next_frame().unwrap(), None, "prefix of {cut} bytes");
        dec.feed(&one[cut..]);
        assert!(dec.next_frame().unwrap().is_some());
    }
    // And reply streams resume the same way.
    let reply_wire: Vec<u8> = [
        Reply::Ok,
        Reply::Value(Some(b"x\r\n+OK\r\n".to_vec())),
        Reply::Int(-42),
        Reply::Value(None),
    ]
    .iter()
    .flat_map(Reply::encode)
    .collect();
    for split in 0..=reply_wire.len() {
        let mut dec = ReplyDecoder::new();
        let mut got = Vec::new();
        dec.feed(&reply_wire[..split]);
        while let Some(r) = dec.next_reply().unwrap() {
            got.push(r);
        }
        dec.feed(&reply_wire[split..]);
        while let Some(r) = dec.next_reply().unwrap() {
            got.push(r);
        }
        assert_eq!(got.len(), 4, "split at {split}");
        assert!(dec.is_empty());
    }
    drop(wire);
}

// ---------------------------------------------------------------------
// Oversized and corrupt frames → typed errors
// ---------------------------------------------------------------------

fn expect_err(wire: &[u8]) -> ProtoError {
    let mut dec = FrameDecoder::new();
    dec.feed(wire);
    loop {
        match dec.next_frame() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("stream accepted: {wire:?}"),
            Err(e) => return e,
        }
    }
}

#[test]
fn oversized_frames_are_typed_errors() {
    // Bulk length beyond MAX_BULK — rejected from the header alone,
    // without buffering a gigabyte.
    let wire = format!("*1\r\n${}\r\n", MAX_BULK + 1).into_bytes();
    assert!(matches!(
        expect_err(&wire),
        ProtoError::Oversized { len, .. } if len == MAX_BULK + 1
    ));
    // Arity beyond MAX_ARGS.
    let wire = format!("*{}\r\n", MAX_ARGS + 1).into_bytes();
    assert!(matches!(
        expect_err(&wire),
        ProtoError::Oversized { len, .. } if len == MAX_ARGS + 1
    ));
    // A length line longer than any valid header can be is structural
    // corruption (Corrupt, not Oversized: no length was parsed).
    let wire = format!("*1\r\n${}\r\n", "9".repeat(64)).into_bytes();
    assert!(matches!(expect_err(&wire), ProtoError::Corrupt { .. }));
}

#[test]
fn corrupt_frames_are_typed_errors() {
    for wire in [
        b"+OK\r\n".to_vec(),              // reply where a request belongs
        b"*x\r\n".to_vec(),               // non-numeric argc
        b"*0\r\n".to_vec(),               // empty frame
        b"*1\r\nGET\r\n".to_vec(),        // missing $ bulk header
        b"*1\r\n$a\r\n".to_vec(),         // non-numeric bulk length
        b"*1\r\n$3\r\nGETX\r\n".to_vec(), // bulk not CRLF-terminated
        b"*1\r\n$-1\r\n".to_vec(),        // negative bulk in a request
        b"*1\n$3\r\nGET\r\n".to_vec(),    // bare LF line ending
    ] {
        assert!(
            matches!(expect_err(&wire), ProtoError::Corrupt { .. }),
            "wire {wire:?}"
        );
    }
}

#[test]
fn corrupt_replies_are_typed_errors() {
    for wire in [
        b"*1\r\n$4\r\nPING\r\n".to_vec(), // request where a reply belongs
        b"+WAT\r\n".to_vec(),             // unknown simple string
        b":12x\r\n".to_vec(),             // non-numeric int
        b":\r\n".to_vec(),                // empty int
        b"$-2\r\n".to_vec(),              // invalid null marker
        b"$3\r\nabX-\r\n".to_vec(),       // bulk not CRLF-terminated
    ] {
        let mut dec = ReplyDecoder::new();
        dec.feed(&wire);
        assert!(dec.next_reply().is_err(), "wire {wire:?}");
    }
    // Oversized reply bulk is the Oversized variant, not Corrupt.
    let mut dec = ReplyDecoder::new();
    dec.feed(format!("${}\r\n", MAX_BULK + 1).as_bytes());
    assert!(matches!(
        dec.next_reply(),
        Err(ProtoError::Oversized { .. })
    ));
}

#[test]
fn long_error_replies_truncate_but_stay_decodable() {
    // A server error that quotes client input could otherwise blow the
    // decoder's header-line budget and kill the connection.
    let huge = Reply::Err(format!("ERR {}", "x".repeat(10_000)));
    let wire = huge.encode();
    let mut dec = ReplyDecoder::new();
    dec.feed(&wire);
    match dec.next_reply().expect("bounded line decodes") {
        Some(Reply::Err(msg)) => {
            assert!(msg.starts_with("ERR xxx"));
            assert!(msg.len() < 300, "truncated to the line budget");
        }
        other => panic!("expected an error reply, got {other:?}"),
    }
    assert!(dec.is_empty());
}

#[test]
fn errors_are_sticky_no_resync_after_corruption() {
    // After a framing error the decoder must not silently resynchronize
    // and hand out frames from an unknown stream position.
    let mut dec = FrameDecoder::new();
    dec.feed(b"*x\r\n");
    dec.feed(&encode_tokens(&[b"PING".to_vec()]));
    assert!(dec.next_frame().is_err());
    assert!(dec.next_frame().is_err(), "error repeats, no resync");
}
