//! Cross-crate integration: MOD and PMDK-style implementations process
//! identical operation streams and agree on final contents; pools survive
//! multiple simulated process lifetimes; all Table 2 workloads run end to
//! end on all three systems.

use mod_core::{DurableMap, DurableVector, ModHeap};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};
use mod_stm::{StmHashMap, StmVector, TxHeap, TxMode};
use mod_workloads::{run_workload, ScaleConfig, System, Workload};

/// The same randomized insert/remove stream applied to MOD's map and both
/// PMDK-style maps must produce identical contents.
#[test]
fn mod_and_stm_maps_agree_on_final_contents() {
    let ops: Vec<(u64, Option<Vec<u8>>)> = {
        let mut rng = 0xABCDEFu64;
        (0..400)
            .map(|i| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let k = rng % 64;
                if rng.is_multiple_of(4) {
                    (k, None) // remove
                } else {
                    (k, Some(vec![(i % 251) as u8; 24]))
                }
            })
            .collect()
    };

    // MOD.
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
    let dmap: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut heap);
    for (k, v) in &ops {
        match v {
            Some(v) => dmap.insert(&mut heap, k, v),
            None => {
                dmap.remove(&mut heap, k);
            }
        }
    }
    let mut mod_contents = heap.current(dmap.root()).to_vec(heap.nv_mut());
    mod_contents.sort();

    // PMDK-style, both modes.
    for mode in [TxMode::Undo, TxMode::Hybrid] {
        let mut th = TxHeap::format(Pmem::new(PmemConfig::testing()), mode);
        let smap = StmHashMap::create(&mut th, 6);
        for (k, v) in &ops {
            match v {
                Some(v) => {
                    smap.insert(&mut th, *k, v);
                }
                None => {
                    smap.remove(&mut th, *k);
                }
            }
        }
        // Collect via lookups over the key space.
        let mut stm_contents: Vec<(u64, Vec<u8>)> = Vec::new();
        for k in 0..64u64 {
            if let Some(v) = smap.get(&mut th, k) {
                stm_contents.push((k, v));
            }
        }
        stm_contents.sort();
        assert_eq!(
            mod_contents, stm_contents,
            "{mode:?} disagrees with MOD on final contents"
        );
    }
}

#[test]
fn vectors_agree_after_identical_update_streams() {
    let n = 300u64;
    let updates: Vec<(u64, u64)> = {
        let mut rng = 77u64;
        (0..200)
            .map(|_| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                (rng % n, rng >> 32)
            })
            .collect()
    };
    let elems: Vec<u64> = (0..n).collect();

    let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
    let dvec = DurableVector::create_from(&mut heap, &elems);
    for &(i, v) in &updates {
        dvec.update(&mut heap, i, &v);
    }
    let mod_result: Vec<u64> = dvec.to_vec(&heap);

    let mut th = TxHeap::format(Pmem::new(PmemConfig::testing()), TxMode::Hybrid);
    let svec = StmVector::create_from(&mut th, &elems);
    for &(i, v) in &updates {
        svec.update(&mut th, i, v);
    }
    assert_eq!(mod_result, svec.to_vec(&mut th));
}

/// Data survives several consecutive "process lifetimes" (crash, recover,
/// mutate, crash again, ...), with GC keeping the heap leak-free.
#[test]
fn multiple_process_lifetimes() {
    let mut pm = {
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
        let map: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut heap);
        map.insert(&mut heap, &0, &b"generation-0".to_vec());
        heap.quiesce();
        heap.into_pm().crash_image(CrashPolicy::OnlyFenced)
    };
    for generation in 1..=5u64 {
        let (mut heap, report) = ModHeap::open(pm);
        let map: DurableMap<u64, Vec<u8>> = heap.root(0).open().unwrap();
        // Everything from previous generations is present.
        for g in 0..generation {
            let want = format!("generation-{g}");
            assert_eq!(
                map.get(&heap, &g),
                Some(want.into_bytes()),
                "generation {generation} lost key {g}"
            );
        }
        assert_eq!(map.len(&heap), generation);
        // Heap stays bounded: live bytes grow only with real data.
        assert!(report.live_bytes < 64 * 1024);
        let value = format!("generation-{generation}");
        map.insert(&mut heap, &generation, &value.into_bytes());
        // Start an update that never commits (leaked by the crash).
        let _ = heap
            .current(map.root())
            .insert(heap.nv_mut(), 999, b"uncommitted");
        heap.quiesce();
        pm = heap.into_pm().crash_image(CrashPolicy::Seeded(generation));
    }
}

/// Smoke: every workload runs on every system at a small scale, produces
/// sensible counters, and MOD always uses fewer fences than PMDK.
#[test]
fn all_workloads_all_systems_smoke() {
    let scale = ScaleConfig {
        ops: 120,
        preload: 120,
        seed: 7,
        capacity: 1 << 26,
    };
    for w in Workload::all() {
        let mut fences = std::collections::HashMap::new();
        for sys in System::all() {
            let r = run_workload(w, sys, &scale);
            assert!(r.total_ns() > 0.0, "{w}/{sys}: no time elapsed");
            assert!(r.fences > 0, "{w}/{sys}: no fences");
            fences.insert(sys, r.fences);
        }
        assert!(
            fences[&System::Mod] < fences[&System::Pmdk15],
            "{w}: MOD ({}) should fence less than PMDK v1.5 ({})",
            fences[&System::Mod],
            fences[&System::Pmdk15]
        );
        assert!(
            fences[&System::Pmdk15] <= fences[&System::Pmdk14],
            "{w}: v1.5 ({}) should fence at most v1.4 ({})",
            fences[&System::Pmdk15],
            fences[&System::Pmdk14]
        );
    }
}

/// The headline claim end to end: a MOD Basic-interface update is exactly
/// one epoch (one fence), and the PMDK equivalents sit in the 5–11 band.
#[test]
fn fence_counts_match_fig10_bands() {
    let scale = ScaleConfig {
        ops: 200,
        preload: 200,
        seed: 11,
        capacity: 1 << 26,
    };
    let m = run_workload(Workload::Map, System::Mod, &scale);
    assert_eq!(m.profiles[0].fences_per_op(), 1.0);
    let p15 = run_workload(Workload::Map, System::Pmdk15, &scale);
    let f15 = p15.profiles[0].fences_per_op();
    assert!((5.0..=11.0).contains(&f15), "v1.5: {f15}");
    let p14 = run_workload(Workload::Map, System::Pmdk14, &scale);
    assert!(p14.profiles[0].fences_per_op() > f15);
}
