//! End-to-end kill -9 battery for `mod-server`: a real child process
//! serving a real `FileBackend` pool over real sockets, killed mid-
//! stream, reopened, and replayed from the client's request log.
//!
//! The contract under test is the wire contract:
//!
//! * **reply-after-fence** — an acknowledged op is durable: after any
//!   SIGKILL, a direct reopen of the pool shows every acked `(seq)`
//!   applied;
//! * **exactly-once sessions** — replaying the request log never
//!   double-applies: stale seqs are rejected with a typed error, the
//!   last seq returns the memoized reply, and the maybe-in-flight op a
//!   kill leaves behind is resolved by the client's ordinary retry.
//!
//! The child entry point mirrors `persistence.rs`: the `server_child`
//! "test" below becomes a real server process when `MOD_SERVER_POOL` is
//! set, so the SIGKILL lands on a different process and recovery shares
//! nothing with the writer but the pool file.

use mod_core::{CommitMode, ModHeap, PersistPolicy};
use mod_pmem::{CrashPolicy, Durability, Pmem, PmemConfig};
use mod_server::{pool, serve, Command, Reply, ReplyDecoder, ServerRoots};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Stdio};
use std::time::Duration;

/// Persistence policy for the battery: `MOD_SESSION_POLICY=hybrid`
/// reruns every SIGKILL round with hybrid (volatile-index) roots, so
/// recovery additionally exercises the spine replay path.
fn test_policy() -> PersistPolicy {
    match std::env::var("MOD_SESSION_POLICY").as_deref() {
        Ok("hybrid") => PersistPolicy::Hybrid,
        _ => PersistPolicy::Full,
    }
}

fn temp_pool(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mod_server_{}_{name}.pool", std::process::id()));
    remove_pool(&p);
    p
}

/// Removes a pool and any shard journals of its set.
fn remove_pool(path: &Path) {
    let _ = std::fs::remove_file(path);
    for s in 0..8 {
        let mut sp = path.as_os_str().to_os_string();
        sp.push(format!(".s{s}"));
        let _ = std::fs::remove_file(sp);
    }
}

/// Child entry point: under `MOD_SERVER_POOL` this "test" serves the
/// pool until killed; in a normal test run it is an instant no-op.
///
/// The child serves a **2-shard pool set with `Durability::Fsync`** —
/// the power-loss-grade shape — so every SIGKILL round in this file
/// also exercises per-shard journal recovery with parallel replay.
#[test]
fn server_child() {
    let Ok(path) = std::env::var("MOD_SERVER_POOL") else {
        return;
    };
    let (heap, roots) = pool::open_or_create_with(
        Path::new(&path),
        2,
        CommitMode::Group {
            max_batch: 8,
            timeout: Duration::from_millis(2),
        },
        Durability::Fsync,
        2,
        test_policy(),
    )
    .unwrap();
    let handle = serve(heap, roots, "127.0.0.1:0").unwrap();
    println!("LISTENING {}", handle.addr());
    std::io::stdout().flush().unwrap();
    loop {
        std::thread::park(); // until SIGKILL
    }
}

// The returned child is always SIGKILLed and reaped by the caller; the
// lint can't see ownership across the return.
#[allow(clippy::zombie_processes)]
fn spawn_server(path: &Path) -> (Child, SocketAddr) {
    let exe = std::env::current_exe().unwrap();
    let mut kid = std::process::Command::new(&exe)
        .args(["server_child", "--exact", "--nocapture"])
        .env("MOD_SERVER_POOL", path)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(kid.stdout.take().unwrap());
    let mut line = String::new();
    loop {
        line.clear();
        let n = lines.read_line(&mut line).unwrap();
        assert!(n > 0, "server child exited before listening");
        // The marker may share a line with libtest's "test ..." banner.
        if let Some(at) = line.find("LISTENING ") {
            let addr = line[at + "LISTENING ".len()..].trim();
            return (kid, addr.parse().unwrap());
        }
    }
}

/// One synchronous request: write the frame, block for the reply. By
/// reply-after-fence, returning from here means the op is durable.
fn request(stream: &mut TcpStream, dec: &mut ReplyDecoder, cmd: &Command) -> Reply {
    stream.write_all(&cmd.encode()).unwrap();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(r) = dec.next_reply().expect("valid reply stream") {
            return r;
        }
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server hung up mid-request");
        dec.feed(&buf[..n]);
    }
}

fn sess(client: u64, seq: u64, inner: Command) -> Command {
    Command::Session {
        client,
        seq,
        inner: Box::new(inner),
    }
}

fn incr(seq: u64) -> Command {
    sess(
        7,
        seq,
        Command::Incr {
            key: b"counter".to_vec(),
        },
    )
}

fn lpush(seq: u64) -> Command {
    sess(
        9,
        seq,
        Command::LPush {
            value: format!("job-{seq}").into_bytes(),
        },
    )
}

/// Reads the pool directly (no server) and returns the counter value
/// and the list length.
fn inspect_pool(path: &Path) -> (i64, u64) {
    let (mut heap, _) = ModHeap::open_file(path, pool::pool_config()).unwrap();
    let roots = ServerRoots::open(&mut heap, test_policy()).unwrap();
    let counter = roots
        .kv
        .get(&heap, &b"counter".to_vec())
        .map(|b| String::from_utf8(b).unwrap().parse().unwrap())
        .unwrap_or(0);
    (counter, roots.list_ids.len(&heap))
}

#[test]
fn acked_ops_survive_sigkill_and_replay_is_exactly_once() {
    let path = temp_pool("kill");
    // The client's durable request log: every acked (seq, reply) pair
    // for the INCR session; LPUSH acks counted separately.
    let mut acked: Vec<(u64, Reply)> = Vec::new();
    let mut pushes = 0u64;
    for round in 0..3u64 {
        let (mut kid, addr) = spawn_server(&path);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut dec = ReplyDecoder::new();
        // Replay the whole log from the top: exactly-once means stale
        // seqs are rejected (typed error, no re-execution) and the most
        // recent seq returns its memoized reply verbatim.
        for (i, (seq, reply)) in acked.iter().enumerate() {
            let got = request(&mut stream, &mut dec, &incr(*seq));
            if i + 1 == acked.len() {
                assert_eq!(&got, reply, "memoized replay of seq {seq}");
            } else {
                match &got {
                    Reply::Err(e) => assert!(
                        e.contains("out of order"),
                        "stale seq {seq} must be rejected, got {e:?}"
                    ),
                    other => panic!("stale seq {seq} re-executed: {other:?}"),
                }
            }
        }
        // The kill may have left one request in flight: retry it. The
        // server either applies it now (it was lost) or replays the
        // memoized reply (it committed before the kill) — the client
        // cannot tell and must not need to.
        let mut seq = acked.len() as u64 + 1;
        let retry = request(&mut stream, &mut dec, &incr(seq));
        assert_eq!(
            retry,
            Reply::Int(seq as i64),
            "retried seq {seq}: exactly-once INCR implies reply == seq"
        );
        acked.push((seq, retry));
        // Fresh traffic for this round: INCRs with an LPUSH sprinkled in.
        for _ in 0..10 {
            seq += 1;
            let r = request(&mut stream, &mut dec, &incr(seq));
            assert_eq!(r, Reply::Int(seq as i64), "acked INCR reply == seq");
            acked.push((seq, r));
        }
        let p = request(&mut stream, &mut dec, &lpush(pushes + 1));
        assert!(matches!(p, Reply::Int(_)), "LPUSH acks an id: {p:?}");
        pushes += 1;
        // Fire one more request and kill without reading the reply —
        // a genuinely in-flight op for the next round to resolve.
        stream.write_all(&incr(seq + 1).encode()).unwrap();
        stream.flush().unwrap();
        kid.kill().unwrap(); // SIGKILL: no destructors, no checkpoint
        kid.wait().unwrap();
        drop(stream);
        // Reply-after-fence, checked in a third process-independent way:
        // a direct reopen shows every acked op, and at most the one
        // in-flight op beyond them.
        let (counter, list_len) = inspect_pool(&path);
        let max_acked = acked.len() as i64;
        assert!(
            counter >= max_acked,
            "round {round}: acked seq {max_acked} lost (counter {counter})"
        );
        assert!(
            counter <= max_acked + 1,
            "round {round}: counter {counter} beyond sent ops {}",
            max_acked + 1
        );
        assert_eq!(list_len, pushes, "round {round}: LPUSH exactly-once");
    }
    // Final session: resolve the last in-flight op, then verify the
    // whole history one more time.
    let (mut kid, addr) = spawn_server(&path);
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut dec = ReplyDecoder::new();
    let seq = acked.len() as u64 + 1;
    let r = request(&mut stream, &mut dec, &incr(seq));
    assert_eq!(r, Reply::Int(seq as i64));
    acked.push((seq, r));
    // Retrying an LPUSH seq must not grow the list.
    let p = request(&mut stream, &mut dec, &lpush(pushes));
    assert!(matches!(p, Reply::Int(_)), "memoized LPUSH id: {p:?}");
    let v = request(
        &mut stream,
        &mut dec,
        &Command::Get {
            key: b"counter".to_vec(),
        },
    );
    assert_eq!(
        v,
        Reply::Value(Some(acked.len().to_string().into_bytes())),
        "counter equals the number of distinct acked seqs: exactly-once"
    );
    kid.kill().unwrap();
    kid.wait().unwrap();
    let (counter, list_len) = inspect_pool(&path);
    assert_eq!(counter, acked.len() as i64);
    assert_eq!(list_len, pushes, "LPUSH retries never double-apply");
    remove_pool(&path);
}

#[test]
fn session_retry_replays_a_memoized_error_verbatim() {
    // Exactly-once covers failures too: a SESSION op that answered
    // `-ERR` has *completed* — the error is the memoized reply, and a
    // retry of that seq must replay it verbatim, never re-execute the
    // inner command. Re-execution is observable here because the key is
    // repaired between the first delivery and the retry: a re-executed
    // INCR would suddenly succeed with `:6`.
    let path = temp_pool("memoerr");
    let key = || b"gauge".to_vec();
    let (mut kid, addr) = spawn_server(&path);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut dec = ReplyDecoder::new();
    // Poison the key: INCR over a non-integer value fails.
    let r = request(
        &mut stream,
        &mut dec,
        &Command::Set {
            key: key(),
            value: b"not-a-number".to_vec(),
        },
    );
    assert_eq!(r, Reply::Ok);
    let first = request(
        &mut stream,
        &mut dec,
        &sess(11, 1, Command::Incr { key: key() }),
    );
    let Reply::Err(msg) = &first else {
        panic!("INCR over a non-integer must fail, got {first:?}");
    };
    assert!(!msg.is_empty());
    // Repair the key: a *re-executed* INCR would now succeed.
    let r = request(
        &mut stream,
        &mut dec,
        &Command::Set {
            key: key(),
            value: b"5".to_vec(),
        },
    );
    assert_eq!(r, Reply::Ok);
    let retry = request(
        &mut stream,
        &mut dec,
        &sess(11, 1, Command::Incr { key: key() }),
    );
    assert_eq!(retry, first, "retried seq 1 must replay the memoized -ERR");
    // The memoized error must survive a SIGKILL too: the (seq, reply)
    // pair committed in the same FASE as the session bump.
    kid.kill().unwrap();
    kid.wait().unwrap();
    drop(stream);
    let (mut kid, addr) = spawn_server(&path);
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut dec = ReplyDecoder::new();
    let replayed = request(
        &mut stream,
        &mut dec,
        &sess(11, 1, Command::Incr { key: key() }),
    );
    assert_eq!(
        replayed, first,
        "memoized -ERR must replay verbatim across a kill"
    );
    // A fresh seq executes for real — proof the session is live and the
    // replays above were memoization, not a wedged error state.
    let next = request(
        &mut stream,
        &mut dec,
        &sess(11, 2, Command::Incr { key: key() }),
    );
    assert_eq!(
        next,
        Reply::Int(6),
        "seq 2 executes against the repaired key"
    );
    // And the failed seq never bumped the value behind the scenes.
    let v = request(&mut stream, &mut dec, &Command::Get { key: key() });
    assert_eq!(v, Reply::Value(Some(b"6".to_vec())));
    kid.kill().unwrap();
    kid.wait().unwrap();
    remove_pool(&path);
}

#[test]
fn acked_op_is_recoverable_at_every_step() {
    // The in-process, deterministic half of the battery: drive the exact
    // code path a connection uses (ticketed FASE → wait_durable → ack)
    // and take a crash image at *every* step — both before the fence
    // wait (op may or may not be in; state must be consistent) and after
    // it (op must be in: that is the ack the server would flush).
    use mod_core::SharedModHeap;
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
    let roots = ServerRoots::create(&mut heap, test_policy());
    let sh = SharedModHeap::from_heap_with(
        heap,
        2,
        CommitMode::Group {
            max_batch: 4,
            timeout: Duration::from_millis(1),
        },
    );
    sh.deregister(1); // one-connection server: a lone slot carries all ops
    let reopen = |img: Pmem| {
        let (mut h, _) = ModHeap::open(img);
        let counter: i64 = ServerRoots::open(&mut h, test_policy())
            .unwrap()
            .kv
            .get(&h, &b"counter".to_vec())
            .map(|b| String::from_utf8(b).unwrap().parse().unwrap())
            .unwrap_or(0);
        counter
    };
    for k in 1..=32i64 {
        let (reply, ticket) = sh
            .try_fase_ticketed(0, |tx| roots.execute_in(tx, &incr(k as u64)))
            .unwrap();
        assert_eq!(reply, Reply::Int(k));
        // Crash between commit-request and fence wait: the op is either
        // fully in or fully out, never torn.
        let mid = reopen(sh.crash_image(CrashPolicy::OnlyFenced));
        assert!(
            mid == k || mid == k - 1,
            "step {k}: torn recovery state (counter {mid})"
        );
        // The ack point. Crashing anywhere after this — before the
        // reply bytes ever reach the socket — must preserve the op.
        sh.wait_durable(&ticket);
        let acked = reopen(sh.crash_image(CrashPolicy::OnlyFenced));
        assert_eq!(acked, k, "step {k}: acknowledged op lost");
    }
}
