//! Codec property battery: xorshift-driven roundtrips for the
//! `PmKey`/`PmValue`/`PmWord` bridges plus adversarial collision tests —
//! byte keys that all FNV-collide into one bucket must degrade to an
//! in-bucket scan, never cross-talk, and never lose a sibling.

use mod_core::codec::{
    codec_compatible, codec_word_elem, codec_word_fields, codec_word_kv, fnv1a_64, KeyRepr,
};
use mod_core::{DurableMap, ModHeap, PmKey, PmValue, PmWord};
use mod_pmem::{Pmem, PmemConfig};
use std::collections::HashMap;

/// The same xorshift* generator the workloads use (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = (self.next() as usize) % (max_len + 1);
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn mh() -> ModHeap {
    ModHeap::create(Pmem::new(PmemConfig::testing()))
}

// ---------------------------------------------------------------------
// Roundtrips
// ---------------------------------------------------------------------

#[test]
fn word_codecs_roundtrip_random_values() {
    let mut rng = Rng::new(0xC0DEC);
    for _ in 0..2_000 {
        let w = rng.next();
        assert_eq!(u64::from_word(w.to_word()), w);
        assert_eq!(usize::from_word((w as usize).to_word()), w as usize);
        let i = w as i64;
        assert_eq!(i64::from_word(i.to_word()), i);
        let i32v = w as i32;
        assert_eq!(i32::from_word(i32v.to_word()), i32v);
        let u32v = w as u32;
        assert_eq!(u32::from_word(u32v.to_word()), u32v);
        let u16v = w as u16;
        assert_eq!(u16::from_word(u16v.to_word()), u16v);
        let u8v = w as u8;
        assert_eq!(u8::from_word(u8v.to_word()), u8v);
        let b = w & 1 == 1;
        assert_eq!(bool::from_word(b.to_word()), b);
    }
}

#[test]
fn value_codecs_roundtrip_random_values() {
    let mut rng = Rng::new(0x7A1_u64);
    for _ in 0..500 {
        let blob = rng.bytes(300);
        assert_eq!(Vec::<u8>::from_value_bytes(&blob.value_bytes()), blob);
        let s: String = blob.iter().map(|&b| char::from(b % 94 + 32)).collect();
        assert_eq!(String::from_value_bytes(&s.value_bytes()), s);
        let n = rng.next();
        assert_eq!(u64::from_value_bytes(&n.value_bytes()), n);
        assert_eq!(i64::from_value_bytes(&(n as i64).value_bytes()), n as i64);
        assert_eq!(u32::from_value_bytes(&(n as u32).value_bytes()), n as u32);
        assert_eq!(i16::from_value_bytes(&(n as i16).value_bytes()), n as i16);
        let arr = [n as u8, (n >> 8) as u8, (n >> 16) as u8];
        assert_eq!(<[u8; 3]>::from_value_bytes(&arr.value_bytes()), arr);
    }
}

#[test]
fn key_reprs_are_consistent_and_exact_keys_injective() {
    let mut rng = Rng::new(0x5EED);
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for _ in 0..2_000 {
        let k = rng.next();
        // Exact keys: the repr IS the key; same key, same word; distinct
        // keys, distinct words.
        match k.repr() {
            KeyRepr::Exact(w) => {
                assert_eq!(w, k);
                if let Some(prev) = seen.insert(w, k) {
                    assert_eq!(prev, k, "exact repr collided");
                }
            }
            other => panic!("u64 must be exact, got {other:?}"),
        }
        // Hashed keys: repr is stable and carries the verification bytes.
        let bytes = rng.bytes(40);
        match bytes.repr() {
            KeyRepr::Hashed { hash, bytes: b } => {
                assert_eq!(hash, fnv1a_64(&bytes));
                assert_eq!(b, bytes);
            }
            other => panic!("Vec<u8> must be hashed, got {other:?}"),
        }
        // &K delegates.
        let by_ref: &Vec<u8> = &bytes;
        assert_eq!(PmKey::repr(&by_ref), bytes.repr());
    }
}

// ---------------------------------------------------------------------
// Adversarial collisions
// ---------------------------------------------------------------------

/// A byte key whose bucket selector is deliberately degenerate: only 4
/// distinct hash values for the whole key space, so nearly every insert
/// collides and the bucket framing is exercised constantly.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct AdversarialKey(Vec<u8>);

impl PmKey for AdversarialKey {
    const EXACT: bool = false;

    fn repr(&self) -> KeyRepr {
        KeyRepr::Hashed {
            hash: fnv1a_64(&self.0) % 4,
            bytes: self.0.clone(),
        }
    }
}

#[test]
fn colliding_keys_never_cross_talk() {
    // Model-based property test: random insert/remove/get against a
    // volatile HashMap model; with only 4 buckets every operation is a
    // collision-path operation.
    let mut h = mh();
    let map: DurableMap<AdversarialKey, Vec<u8>> = DurableMap::create(&mut h);
    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    let mut rng = Rng::new(0xAD7E_25A1);
    let mut keys: Vec<Vec<u8>> = Vec::new();
    for step in 0..600 {
        let op = rng.next() % 10;
        if op < 5 || keys.is_empty() {
            // Insert (reusing an old key 50% of the time → overwrite).
            let kb = if !keys.is_empty() && rng.next().is_multiple_of(2) {
                keys[(rng.next() as usize) % keys.len()].clone()
            } else {
                let kb = rng.bytes(24);
                keys.push(kb.clone());
                kb
            };
            let v = rng.bytes(32);
            map.insert(&mut h, &AdversarialKey(kb.clone()), &v);
            model.insert(kb, v);
        } else if op < 7 {
            let kb = keys[(rng.next() as usize) % keys.len()].clone();
            let removed = map.remove(&mut h, &AdversarialKey(kb.clone()));
            assert_eq!(removed, model.remove(&kb).is_some(), "step {step}");
        } else {
            // Lookup of a random (maybe absent) key.
            let kb = if rng.next().is_multiple_of(2) {
                keys[(rng.next() as usize) % keys.len()].clone()
            } else {
                rng.bytes(24)
            };
            assert_eq!(
                map.get(&h, &AdversarialKey(kb.clone())),
                model.get(&kb).cloned(),
                "step {step}: cross-talk or lost entry for key {kb:?}"
            );
        }
        if step % 100 == 0 {
            assert_eq!(map.len(&h), model.len() as u64, "step {step}");
        }
    }
    // Full sweep: every model entry retrievable, length matches.
    assert_eq!(map.len(&h), model.len() as u64);
    for (kb, v) in &model {
        assert_eq!(
            map.get(&h, &AdversarialKey(kb.clone())).as_ref(),
            Some(v),
            "final sweep lost {kb:?}"
        );
    }
}

#[test]
fn true_fnv_prefix_pairs_share_buckets_without_loss() {
    // Byte keys that genuinely share FNV-1a prefixes stress the framing
    // with realistic near-collisions; the degenerate 4-bucket key above
    // covers full collisions. Here every key pair (p, p+suffix) lives in
    // (usually) different buckets but the scan must distinguish empty
    // suffix from extension.
    let mut h = mh();
    let map: DurableMap<Vec<u8>, u64> = DurableMap::create(&mut h);
    let mut rng = Rng::new(77);
    for i in 0..200u64 {
        let p = rng.bytes(12);
        let mut ext = p.clone();
        ext.push(i as u8);
        map.insert(&mut h, &p, &i);
        map.insert(&mut h, &ext, &(i + 10_000));
        assert_eq!(map.get(&h, &p), Some(i), "prefix lost after extension");
        assert_eq!(map.get(&h, &ext), Some(i + 10_000));
    }
}

// ---------------------------------------------------------------------
// Codec tag words
// ---------------------------------------------------------------------

#[test]
fn codec_words_are_injective_over_builtin_codecs() {
    let mut seen = HashMap::new();
    for key in 0..=13u8 {
        for value in 0..=10u8 {
            let w = codec_word_kv(key, value);
            assert_eq!(codec_word_fields(w), (true, key, value));
            if let Some(prev) = seen.insert(w, (key, value)) {
                panic!("codec word collision: {prev:?} vs {:?}", (key, value));
            }
        }
    }
    for elem in 0..=8u8 {
        let w = codec_word_elem(elem);
        assert_eq!(codec_word_fields(w), (true, elem, 0));
    }
}

#[test]
fn codec_compatibility_rules() {
    let a = codec_word_kv(1, 1); // u64 → Vec<u8>
    let b = codec_word_kv(13, 4); // bytes → u64
    assert!(codec_compatible(a, a));
    assert!(!codec_compatible(a, b));
    assert!(!codec_compatible(b, a));
    // Untagged (legacy / custom) accepts anything.
    assert!(codec_compatible(0, a));
    assert!(codec_compatible(a, 0));
    // A zero field (custom key codec) is a wildcard for that field only.
    let custom_key = codec_word_kv(0, 1);
    assert!(codec_compatible(custom_key, a));
    assert!(!codec_compatible(codec_word_kv(0, 4), a));
}
