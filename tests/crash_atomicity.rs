//! Property-based crash-atomicity tests: for random operation sequences
//! and random crash points, under adversarial choices of which unfenced
//! cachelines persisted, recovery must yield exactly the state after some
//! committed prefix of operations — never a torn state (§5.2).

use mod_core::basic::{DurableMap, DurableQueue, DurableStack};
use mod_core::recovery::{recover, RootSpec};
use mod_core::{ModHeap, RootKind};
use mod_pmem::{CrashPolicy, Pmem, PmemConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u8),
    Remove(u8),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| MapOp::Insert(k % 16, v)),
        any::<u8>().prop_map(|k| MapOp::Remove(k % 16)),
    ]
}

fn apply_map(model: &mut std::collections::HashMap<u64, Vec<u8>>, op: &MapOp) {
    match *op {
        MapOp::Insert(k, v) => {
            model.insert(k as u64, vec![v; 8]);
        }
        MapOp::Remove(k) => {
            model.remove(&(k as u64));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn map_recovers_to_a_committed_prefix(
        ops in prop::collection::vec(map_op(), 1..20),
        crash_after in 0usize..20,
        seed in 0u64..8,
    ) {
        let crash_after = crash_after.min(ops.len());
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
        let mut map = DurableMap::create(&mut heap, 0);
        heap.quiesce(); // creation itself must be durable before we rely on the slot
        // Models of every committed prefix state.
        let mut prefix_states = vec![std::collections::HashMap::new()];
        let mut model = std::collections::HashMap::new();
        for op in ops.iter().take(crash_after) {
            match *op {
                MapOp::Insert(k, v) => map.insert(&mut heap, k as u64, &[v; 8]),
                MapOp::Remove(k) => {
                    map.remove(&mut heap, k as u64);
                }
            }
            apply_map(&mut model, op);
            prefix_states.push(model.clone());
        }
        // One more op is in flight (shadow built, maybe partially flushed,
        // commit may or may not have its pointer persist).
        if crash_after < ops.len() {
            let op = &ops[crash_after];
            match *op {
                MapOp::Insert(k, v) => map.insert(&mut heap, k as u64, &[v; 8]),
                MapOp::Remove(k) => {
                    map.remove(&mut heap, k as u64);
                }
            }
            apply_map(&mut model, op);
            prefix_states.push(model.clone());
        }
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = recover(img, &[RootSpec::new(0, RootKind::Map)]);
        let recovered = DurableMap::open(&mut h2, 0);
        let mut got: Vec<(u64, Vec<u8>)> = recovered.current().to_vec(h2.nv_mut());
        got.sort();
        let matches_some_prefix = prefix_states.iter().any(|state| {
            let mut want: Vec<(u64, Vec<u8>)> =
                state.iter().map(|(&k, v)| (k, v.clone())).collect();
            want.sort();
            want == got
        });
        prop_assert!(
            matches_some_prefix,
            "recovered state matches no committed prefix: {got:?}"
        );
    }

    #[test]
    fn queue_recovers_to_a_committed_prefix(
        pushes in prop::collection::vec(any::<u8>(), 1..15),
        pops in 0usize..10,
        seed in 0u64..6,
    ) {
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
        let mut queue = DurableQueue::create(&mut heap, 0);
        heap.quiesce();
        let mut prefix_states: Vec<Vec<u64>> = vec![Vec::new()];
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for &e in &pushes {
            queue.enqueue(&mut heap, e as u64);
            model.push_back(e as u64);
            prefix_states.push(model.iter().copied().collect());
        }
        for _ in 0..pops {
            if queue.dequeue(&mut heap).is_some() {
                model.pop_front();
                prefix_states.push(model.iter().copied().collect());
            }
        }
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = recover(img, &[RootSpec::new(0, RootKind::Queue)]);
        let q = DurableQueue::open(&mut h2, 0);
        let got = q.current().to_vec(h2.nv_mut());
        prop_assert!(
            prefix_states.contains(&got),
            "queue state {got:?} matches no committed prefix"
        );
    }

    #[test]
    fn stack_recovers_to_a_committed_prefix(
        entries in prop::collection::vec(any::<u8>(), 1..15),
        seed in 0u64..6,
    ) {
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
        let mut stack = DurableStack::create(&mut heap, 0);
        heap.quiesce();
        let mut prefix_states: Vec<Vec<u64>> = vec![Vec::new()];
        let mut model = Vec::new();
        for &e in &entries {
            stack.push(&mut heap, e as u64);
            model.push(e as u64);
            let mut top_first = model.clone();
            top_first.reverse();
            prefix_states.push(top_first);
        }
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = recover(img, &[RootSpec::new(0, RootKind::Stack)]);
        let s = DurableStack::open(&mut h2, 0);
        let got = s.current().to_vec(h2.nv_mut());
        prop_assert!(
            prefix_states.contains(&got),
            "stack state {got:?} matches no committed prefix"
        );
    }
}

#[test]
fn unrelated_commit_is_all_or_nothing_under_crashes() {
    use mod_core::DurableDs;
    use mod_funcds::PmMap;
    // The general-case commit (Fig 8d) must move both slots or neither.
    for seed in 0..30u64 {
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
        let a0 = PmMap::empty(heap.nv_mut());
        let b0 = PmMap::empty(heap.nv_mut());
        heap.publish_root(0, a0);
        heap.publish_root(1, b0);
        heap.quiesce();
        let a1 = a0.insert(heap.nv_mut(), 1, b"a1");
        let b1 = b0.insert(heap.nv_mut(), 2, b"b1");
        heap.commit_unrelated(&[(0, a0.erase(), a1.erase()), (1, b0.erase(), b1.erase())]);
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = recover(
            img,
            &[
                RootSpec::new(0, RootKind::Map),
                RootSpec::new(1, RootKind::Map),
            ],
        );
        let a = DurableMap::open(&mut h2, 0);
        let b = DurableMap::open(&mut h2, 1);
        let a_new = a.contains_key(&mut h2, 1);
        let b_new = b.contains_key(&mut h2, 2);
        assert_eq!(
            a_new, b_new,
            "seed {seed}: unrelated commit tore (a={a_new}, b={b_new})"
        );
    }
}
