//! Crash-atomicity tests: for randomized operation sequences and random
//! crash points, under adversarial choices of which unfenced cachelines
//! persisted, recovery must yield exactly the state after some committed
//! prefix of operations — never a torn state (§5.2).
//!
//! Deterministic xorshift streams replace an external property-testing
//! framework: every case is enumerated over seeds, so failures reproduce
//! exactly.

use mod_core::{DurableMap, DurableQueue, DurableStack, ModHeap};
use mod_pmem::{CrashPolicy, PmStats, Pmem, PmemConfig};
use mod_workloads::WorkloadRng;

fn fresh_heap() -> ModHeap {
    ModHeap::create(Pmem::new(PmemConfig::testing()))
}

#[derive(Debug, Clone, Copy)]
enum MapOp {
    Insert(u64, u8),
    Remove(u64),
}

fn map_ops(rng: &mut WorkloadRng, n: usize) -> Vec<MapOp> {
    (0..n)
        .map(|_| {
            if rng.percent(60) {
                MapOp::Insert(rng.below(16), rng.below(251) as u8)
            } else {
                MapOp::Remove(rng.below(16))
            }
        })
        .collect()
}

#[test]
fn map_recovers_to_a_committed_prefix() {
    for case in 0..24u64 {
        let mut rng = WorkloadRng::new(0xA11CE + case);
        let n_ops = 1 + rng.below(19) as usize;
        let ops = map_ops(&mut rng, n_ops);
        let crash_after = (rng.below(20) as usize).min(ops.len());
        let seed = rng.below(8);

        let mut heap = fresh_heap();
        let map: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut heap);
        heap.quiesce(); // creation must be durable before we rely on it
        let mut prefix_states = vec![std::collections::HashMap::new()];
        let mut model = std::collections::HashMap::new();
        // `crash_after` committed ops, then one more in flight.
        for op in ops.iter().take(crash_after + 1) {
            match *op {
                MapOp::Insert(k, v) => {
                    map.insert(&mut heap, &k, &vec![v; 8]);
                    model.insert(k, vec![v; 8]);
                }
                MapOp::Remove(k) => {
                    map.remove(&mut heap, &k);
                    model.remove(&k);
                }
            }
            prefix_states.push(model.clone());
        }
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = ModHeap::open(img);
        let recovered: DurableMap<u64, Vec<u8>> = h2.root(0).open().unwrap();
        let mut got: Vec<(u64, Vec<u8>)> = h2.current(recovered.root()).to_vec(h2.nv_mut());
        got.sort();
        let matches_some_prefix = prefix_states.iter().any(|state| {
            let mut want: Vec<(u64, Vec<u8>)> =
                state.iter().map(|(&k, v)| (k, v.clone())).collect();
            want.sort();
            want == got
        });
        assert!(
            matches_some_prefix,
            "case {case}: recovered state matches no committed prefix: {got:?}"
        );
    }
}

#[test]
fn queue_recovers_to_a_committed_prefix() {
    for case in 0..18u64 {
        let mut rng = WorkloadRng::new(0xBEE + case);
        let pushes = 1 + rng.below(14);
        let pops = rng.below(10);
        let seed = rng.below(6);

        let mut heap = fresh_heap();
        let queue: DurableQueue<u64> = DurableQueue::create(&mut heap);
        heap.quiesce();
        let mut prefix_states: Vec<Vec<u64>> = vec![Vec::new()];
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for _ in 0..pushes {
            let e = rng.below(256);
            queue.enqueue(&mut heap, &e);
            model.push_back(e);
            prefix_states.push(model.iter().copied().collect());
        }
        for _ in 0..pops {
            if queue.dequeue(&mut heap).is_some() {
                model.pop_front();
                prefix_states.push(model.iter().copied().collect());
            }
        }
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = ModHeap::open(img);
        let q: DurableQueue<u64> = h2.root(0).open().unwrap();
        let got = h2.current(q.root()).to_vec(h2.nv_mut());
        assert!(
            prefix_states.contains(&got),
            "case {case}: queue state {got:?} matches no committed prefix"
        );
    }
}

#[test]
fn stack_recovers_to_a_committed_prefix() {
    for case in 0..18u64 {
        let mut rng = WorkloadRng::new(0x57ACC + case);
        let entries = 1 + rng.below(14);
        let seed = rng.below(6);

        let mut heap = fresh_heap();
        let stack: DurableStack<u64> = DurableStack::create(&mut heap);
        heap.quiesce();
        let mut prefix_states: Vec<Vec<u64>> = vec![Vec::new()];
        let mut model = Vec::new();
        for _ in 0..entries {
            let e = rng.below(256);
            stack.push(&mut heap, &e);
            model.push(e);
            let mut top_first = model.clone();
            top_first.reverse();
            prefix_states.push(top_first);
        }
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = ModHeap::open(img);
        let s: DurableStack<u64> = h2.root(0).open().unwrap();
        let got = h2.current(s.root()).to_vec(h2.nv_mut());
        assert!(
            prefix_states.contains(&got),
            "case {case}: stack state {got:?} matches no committed prefix"
        );
    }
}

// ---------------------------------------------------------------------
// Multi-structure FASE crash injection
// ---------------------------------------------------------------------

/// State of the three structures, as recovered.
#[derive(Debug, PartialEq, Eq, Clone)]
struct TriState {
    map: Vec<(u64, Vec<u8>)>,
    queue: Vec<u64>,
    stack: Vec<u64>,
}

fn observe(pm: Pmem) -> TriState {
    let (mut h, _) = ModHeap::open(pm);
    let map: DurableMap<u64, Vec<u8>> = h.root(0).open().unwrap();
    let queue: DurableQueue<u64> = h.root(1).open().unwrap();
    let stack: DurableStack<u64> = h.root(2).open().unwrap();
    let mut m = h.current(map.root()).to_vec(h.nv_mut());
    m.sort();
    TriState {
        map: m,
        queue: h.current(queue.root()).to_vec(h.nv_mut()),
        stack: h.current(stack.root()).to_vec(h.nv_mut()),
    }
}

/// Interrupts a three-structure `heap.fase(..)` at every step boundary —
/// after each of the three staged updates, right after the closure
/// (before commit internals complete is not observable: they are one
/// call), and after commit but before the pointer store is fenced — and
/// asserts all-or-nothing recovery under adversarial persistence at each
/// point. Also pins the acceptance criterion: the whole FASE executes
/// exactly one `sfence` (PmStats).
#[test]
fn three_structure_fase_interrupts_at_every_step_boundary() {
    for seed in 0..12u64 {
        let mut heap = fresh_heap();
        let map: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut heap);
        let queue: DurableQueue<u64> = DurableQueue::create(&mut heap);
        let stack: DurableStack<u64> = DurableStack::create(&mut heap);
        // A committed baseline state.
        heap.fase(|tx| {
            map.insert_in(tx, &1, &b"one".to_vec());
            queue.enqueue_in(tx, &10);
            stack.push_in(tx, &100);
        });
        heap.quiesce();
        let before = observe(heap.nv().pm().crash_image(CrashPolicy::OnlyFenced));

        // The FASE under test, with crash images captured at every step
        // boundary inside the closure.
        let mut mid_images: Vec<(&'static str, Pmem)> = Vec::new();
        let stats_before: PmStats = heap.nv().pm().stats().clone();
        heap.fase(|tx| {
            mid_images.push((
                "before-any-update",
                tx.pm().crash_image(CrashPolicy::Seeded(seed)),
            ));
            map.insert_in(tx, &2, &b"two".to_vec());
            mid_images.push((
                "after-map-update",
                tx.pm().crash_image(CrashPolicy::Seeded(seed)),
            ));
            queue.enqueue_in(tx, &20);
            mid_images.push((
                "after-queue-update",
                tx.pm().crash_image(CrashPolicy::Seeded(seed)),
            ));
            stack.push_in(tx, &200);
            mid_images.push((
                "after-stack-update",
                tx.pm().crash_image(CrashPolicy::Seeded(seed)),
            ));
        });
        let fases_fences = heap.nv().pm().stats().fences - stats_before.fences;
        assert_eq!(
            fases_fences, 1,
            "a three-structure FASE must cost exactly one ordering point"
        );

        // Any crash inside the closure: nothing published — recovery must
        // see exactly the baseline on all three structures.
        for (boundary, img) in mid_images {
            let got = observe(img);
            assert_eq!(
                got, before,
                "seed {seed}: crash {boundary} must recover the old state"
            );
        }

        // Crash after the FASE returned but before its pointer store is
        // known durable: recovery sees the old state or the new state,
        // never a mix.
        let mut after = before.clone();
        after.map.push((2, b"two".to_vec()));
        after.map.sort();
        after.queue.push(20);
        after.stack.insert(0, 200);
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let got = observe(img);
        assert!(
            got == before || got == after,
            "seed {seed}: post-commit crash tore the FASE: {got:?}"
        );

        // Once fenced, the new state must be the one recovered.
        heap.quiesce();
        let got = observe(heap.into_pm().crash_image(CrashPolicy::OnlyFenced));
        assert_eq!(got, after, "seed {seed}: fenced state lost");
    }
}

/// The same all-or-nothing property across heterogeneous updates in a
/// single FASE, driven through many adversarial persistence subsets with
/// `PersistAll` sanity anchors.
#[test]
fn multi_root_fase_is_all_or_nothing_under_crashes() {
    for seed in 0..30u64 {
        let mut heap = fresh_heap();
        let a: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut heap);
        let b: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut heap);
        heap.quiesce();
        heap.fase(|tx| {
            a.insert_in(tx, &1, &b"a1".to_vec());
            b.insert_in(tx, &2, &b"b1".to_vec());
        });
        let img = heap.nv().pm().crash_image(CrashPolicy::Seeded(seed));
        let (mut h2, _) = ModHeap::open(img);
        let a2: DurableMap<u64, Vec<u8>> = h2.root(0).open().unwrap();
        let b2: DurableMap<u64, Vec<u8>> = h2.root(1).open().unwrap();
        let a_new = a2.contains_key(&h2, &1);
        let b_new = b2.contains_key(&h2, &2);
        assert_eq!(
            a_new, b_new,
            "seed {seed}: multi-root FASE tore (a={a_new}, b={b_new})"
        );
    }
}
