//! Crash-equivalence property test for the fence-epoch flush cache:
//! flush coalescing is a *performance* transformation — it must be
//! invisible to every crash outcome.
//!
//! The same 4-worker turnstile-driven workload as `concurrent_crash.rs`
//! (each FASE moves a token into a `DurableQueue` and a `DurableMap`)
//! runs twice per schedule point — once with `coalesce_flushes` on, once
//! off — frozen at EVERY scheduler step, and the crash images are
//! compared **byte for byte** over every line either run ever wrote,
//! under all three persistence policies (`OnlyFenced`, `PersistAll`, and
//! a seeded adversarial subset).
//!
//! Why equality holds: the cache only elides a `clwb` whose writeback
//! cannot change what persists — the line is clean, already in flight
//! un-re-dirtied, or bit-identical to its durable image. Lines treated
//! differently by the two runs therefore always carry bytes the durable
//! image already holds, and elision *removes* such a line from the
//! owner's line table exactly where the off-run's fence would have
//! retired it — so at every scheduler-step boundary the two runs' line
//! tables are identical, and even the seeded subset policy draws the
//! same choice.

use mod_core::{DurableMap, DurableQueue, ModHeap, SeededRoundRobin, SharedModHeap, Turn};
use mod_pmem::{CrashPolicy, PmStats, Pmem, PmemConfig, TraceEvent};
use std::collections::BTreeSet;
use std::sync::Arc;

const WORKERS: usize = 4;
const OPS_PER_WORKER: u64 = 4;

fn token(worker: usize, op: u64) -> u64 {
    (worker as u64) * 100 + op
}

/// Crash images under the three persistence policies, in a fixed order.
const POLICIES: [CrashPolicy; 3] = [
    CrashPolicy::OnlyFenced,
    CrashPolicy::PersistAll,
    CrashPolicy::Seeded(0xC0A1),
];

struct RunOutcome {
    images: Vec<Pmem>,
    /// Every line address the committed trace wrote.
    lines: BTreeSet<u64>,
    steps: u64,
    /// PM activity between setup and the freeze.
    pm: PmStats,
}

/// Runs the seeded 4-worker schedule with the flush cache on or off,
/// halting before step `halt_at`, and images the frozen pool under
/// every policy.
fn run(seed: u64, halt_at: Option<u64>, coalesce: bool) -> RunOutcome {
    let cfg = PmemConfig {
        coalesce_flushes: coalesce,
        ..PmemConfig::testing()
    };
    let shared = SharedModHeap::create(Pmem::new(cfg), WORKERS);
    let queue: DurableQueue<u64> = shared.setup(DurableQueue::create);
    let map: DurableMap<u64, u64> = shared.setup(DurableMap::create);
    shared.quiesce();
    let pm_before = shared.with(|h| h.nv().pm().stats().clone());

    let sched = Arc::new(SeededRoundRobin::with_halt(seed, WORKERS, halt_at));
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let shared = shared.clone();
        let sched = Arc::clone(&sched);
        handles.push(std::thread::spawn(move || {
            let mut halted = false;
            for op in 0..OPS_PER_WORKER {
                if sched.step(w) == Turn::Halt {
                    halted = true;
                    break;
                }
                let t = token(w, op);
                shared.fase(w, |tx| {
                    queue.enqueue_in(tx, &t);
                    map.insert_in(tx, &t, &(t * 7));
                });
            }
            if !halted {
                shared.deregister(w);
            }
            sched.finish(w);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let pm_after = shared.with(|h| h.nv().pm().stats().clone());
    let lines = shared.with(|h| {
        let mut lines = BTreeSet::new();
        for e in h.nv().pm().trace() {
            if let TraceEvent::Write { addr, len } = *e {
                let mut l = addr & !63;
                while l < addr + len {
                    lines.insert(l);
                    l += 64;
                }
            }
        }
        lines
    });
    RunOutcome {
        images: POLICIES.iter().map(|&p| shared.crash_image(p)).collect(),
        lines,
        steps: sched.steps_granted(),
        pm: pm_after.since(&pm_before),
    }
}

/// The image's bytes over `lines`, concatenated in address order.
fn image_bytes(img: &Pmem, lines: &BTreeSet<u64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(lines.len() * 64);
    let mut buf = [0u8; 64];
    for &l in lines {
        img.peek_bytes(l, &mut buf);
        out.extend_from_slice(&buf);
    }
    out
}

fn assert_equivalent(seed: u64, k: u64, on: &RunOutcome, off: &RunOutcome) {
    assert_eq!(
        on.steps, off.steps,
        "seed {seed} step {k}: schedules diverged"
    );
    // Ordering behavior is untouched: the elision may drop flushes but
    // never a fence, and the two runs commit the same batches.
    assert_eq!(
        on.pm.fences, off.pm.fences,
        "seed {seed} step {k}: coalescing changed the fence count"
    );
    assert!(
        on.pm.effective_flushes <= off.pm.effective_flushes,
        "seed {seed} step {k}: the flush cache added writebacks"
    );
    // The comparison footprint is every line either run wrote.
    let lines: BTreeSet<u64> = on.lines.union(&off.lines).copied().collect();
    for (i, policy) in POLICIES.iter().enumerate() {
        assert_eq!(
            image_bytes(&on.images[i], &lines),
            image_bytes(&off.images[i], &lines),
            "seed {seed} step {k}: crash image differs under {policy:?}"
        );
    }
}

#[test]
fn coalescing_leaves_every_crash_image_bit_identical_at_every_step() {
    // Two seeded interleavings, frozen before every scheduler step; the
    // full (unhalted) run rides along as k == total.
    for seed in [1u64, 2] {
        let total = run(seed, None, true).steps;
        for k in 0..=total {
            let halt = if k == total { None } else { Some(k) };
            let on = run(seed, halt, true);
            let off = run(seed, halt, false);
            assert_equivalent(seed, k, &on, &off);
        }
    }
}

#[test]
fn coalescing_is_active_and_recovery_agrees() {
    // Guard against vacuity: the full run must actually elide flushes,
    // and recovery from the two OnlyFenced images must land on the same
    // structure contents.
    let on = run(3, None, true);
    let off = run(3, None, false);
    assert!(
        on.pm.flushes_deduped > 0,
        "the equivalence test exercised no elision at all"
    );
    assert_eq!(
        on.pm.flushes_issued, off.pm.flushes_issued,
        "the request stream itself must not depend on the cache"
    );
    assert!(on.pm.flush_identity_holds());
    assert!(off.pm.flush_identity_holds());
    let recover = |img: Pmem| -> (Vec<u64>, Vec<(u64, Vec<u8>)>) {
        let (mut heap, _) = ModHeap::open(img);
        let queue: DurableQueue<u64> = heap.root(0).open().unwrap();
        let map: DurableMap<u64, u64> = heap.root(1).open().unwrap();
        let q = heap.current(queue.root()).peek_to_vec(heap.nv());
        let m = heap.current(map.root()).peek_to_vec(heap.nv());
        (q, m)
    };
    let (q_on, m_on) = recover(on.images.into_iter().next().unwrap());
    let (q_off, m_off) = recover(off.images.into_iter().next().unwrap());
    assert_eq!(q_on, q_off);
    assert_eq!(m_on, m_off);
}
