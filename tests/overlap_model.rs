//! Property tests of the overlapped WPQ-drain latency model.
//!
//! Invariants, over randomized op streams (deterministic xorshift RNG,
//! like the other property suites):
//!
//! 1. **Upper bound** — the overlapped flush timeline is never longer
//!    than the serialized charge-at-the-fence timeline the old model
//!    used (`Σ clwb_issue + Σ fence_stall_ns(n)`): background drain can
//!    only hide work, never add it.
//! 2. **Lower bound** — the timeline never beats the drain critical
//!    path: every line's `launch + drain` occupancy is paid somewhere
//!    (under compute or at the fence).
//! 3. **Accounting** — `overlap_ns + residual_stall_ns` of the fences
//!    equals the serialized stall reference, and `overlap_ratio` is in
//!    `[0, 1]`.
//! 4. **Crash semantics** — issued-but-undrained lines stay
//!    policy-dependent at a crash; drained-but-unfenced lines always
//!    persist; dirty lines never persist under `OnlyFenced`.

use mod_pmem::{CrashPolicy, LatencyModel, Pmem, PmemConfig};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Store to line `l` (dirties it).
    Write(u64),
    /// Flush line `l`.
    Clwb(u64),
    /// App compute of `ns`.
    Compute(f64),
    /// Ordering point.
    Fence,
}

fn random_stream(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = Rng(seed | 1);
    let mut ops = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let line = rng.below(32);
        ops.push(match rng.below(10) {
            0..=3 => Op::Write(line),
            4..=6 => Op::Clwb(line),
            7..=8 => Op::Compute(rng.below(800) as f64),
            _ => Op::Fence,
        });
    }
    ops.push(Op::Fence); // always end ordered
    ops
}

/// Replays `ops` against a real pool, tracking what the serialized
/// (charge-at-the-fence) model would have charged for the same stream
/// and the drain critical path actually scheduled. Writes that would
/// race an in-flight writeback are redirected to a never-flushed shadow
/// region: the race corner is exercised separately (the old model
/// under-counted the superseded drain there, so the upper bound is only
/// exact on race-free streams). Returns
/// `(overlapped_total, serialized_total, critical_path_total)` in
/// simulated ns of the full timeline.
fn replay(ops: &[Op]) -> (f64, f64, f64) {
    use mod_pmem::WpqDrain;
    use std::collections::HashSet;

    let m = LatencyModel::optane();
    let mut pm = Pmem::new(PmemConfig::testing());
    let addr_of = |l: u64| 0x2000 + l * 64;

    // Reference replication of the old model: identical non-flush
    // charges, but each fence charges fence_stall_ns(inflight)...
    let mut serialized_extra = 0.0;
    // ...and a shadow calendar recording the completion each fence had
    // to respect (the drain critical path, a lower bound).
    let mut shadow = WpqDrain::new();
    let mut inflight: HashSet<u64> = HashSet::new();
    let mut critical = 0.0f64;

    for &op in ops {
        match op {
            Op::Write(l) => {
                if inflight.contains(&l) {
                    // Avoid the store/writeback race: park the store in
                    // a disjoint, never-flushed region instead.
                    pm.write_u64(0x40000 + l * 64, l);
                } else {
                    pm.write_u64(addr_of(l), l);
                }
            }
            Op::Clwb(l) => {
                // A request can be elided by the fence-epoch flush cache
                // (clean line, already in flight, or content-identical to
                // the fenced image) — only a grown in-flight set means a
                // writeback was actually scheduled.
                let inflight_before = pm.inflight_flushes();
                let issue_at = pm.clock().now_ns();
                pm.clwb(addr_of(l));
                if pm.inflight_flushes() > inflight_before {
                    shadow.schedule(l, issue_at, m.wpq_launch_ns, m.wpq_drain_ns, m.wpq_lanes);
                    inflight.insert(l);
                }
            }
            Op::Compute(ns) => pm.charge_ns(ns),
            Op::Fence => {
                let n = pm.inflight_flushes();
                assert_eq!(n, inflight.len(), "mirror drifted from the pool");
                let before = pm.clock().now_ns();
                pm.sfence();
                let paid = pm.clock().now_ns() - before;
                serialized_extra += m.fence_stall_ns(n) - paid;
                critical = critical.max(shadow.last_done());
                shadow.reset();
                inflight.clear();
            }
        }
    }
    let overlapped = pm.clock().now_ns();
    let serialized = overlapped + serialized_extra;
    (overlapped, serialized, critical)
}

#[test]
fn overlapped_timeline_bounded_by_serialized_and_critical_path() {
    for seed in 1..=40u64 {
        let ops = random_stream(seed, 200);
        let (overlapped, serialized, critical) = replay(&ops);
        assert!(
            overlapped <= serialized + 1e-6,
            "seed {seed}: overlapped {overlapped:.1} ns exceeds serialized \
             (charge-at-fence) {serialized:.1} ns"
        );
        assert!(
            overlapped + 1e-6 >= critical,
            "seed {seed}: overlapped {overlapped:.1} ns beats the drain \
             critical path {critical:.1} ns"
        );
    }
}

#[test]
fn overlap_accounting_balances_against_the_serialized_reference() {
    for seed in 1..=20u64 {
        let ops = random_stream(seed ^ 0xABCD, 150);
        let m = LatencyModel::optane();
        let mut pm = Pmem::new(PmemConfig::testing());
        let addr_of = |l: u64| 0x2000 + l * 64;
        let mut serialized_stalls = 0.0;
        let mut raced = false;
        for &op in &ops {
            match op {
                Op::Write(l) => {
                    let inflight = pm.inflight_flushes();
                    pm.write_u64(addr_of(l), l);
                    // A store racing an in-flight writeback leaves its
                    // superseded drain in the queue: the next fence may
                    // wait longer than fence_stall_ns(n) says.
                    raced |= pm.inflight_flushes() < inflight;
                }
                Op::Clwb(l) => pm.clwb(addr_of(l)),
                Op::Compute(ns) => pm.charge_ns(ns),
                Op::Fence => {
                    let n = pm.inflight_flushes();
                    if n > 0 {
                        serialized_stalls += m.fence_stall_ns(n);
                    }
                    pm.sfence();
                }
            }
        }
        let stats = pm.stats();
        let ratio = stats.overlap_ratio();
        assert!((0.0..=1.0).contains(&ratio), "seed {seed}: ratio {ratio}");
        // overlap + residual covers at least the serialized reference of
        // the non-empty fences — exactly, unless a racing store left
        // superseded drains in the queue (then fences wait a bit more).
        let sum = stats.overlap_ns + stats.residual_stall_ns;
        if raced {
            assert!(
                sum >= serialized_stalls - 1e-6,
                "seed {seed}: overlap {:.1} + residual {:.1} < serialized {:.1}",
                stats.overlap_ns,
                stats.residual_stall_ns,
                serialized_stalls
            );
        } else {
            assert!(
                (sum - serialized_stalls).abs() < 1e-6,
                "seed {seed}: overlap {:.1} + residual {:.1} != serialized {:.1}",
                stats.overlap_ns,
                stats.residual_stall_ns,
                serialized_stalls
            );
        }
    }
}

#[test]
fn issued_but_undrained_lines_stay_policy_dependent() {
    // Crash injected immediately after the clwb: the drain calendar has
    // had no time to run, so the line's fate belongs to the policy.
    let mut pm = Pmem::new(PmemConfig::testing());
    pm.write_u64(0x100, 7);
    pm.clwb(0x100);
    assert_eq!(pm.inflight_flushes(), 1);
    assert_eq!(pm.drained_unfenced_lines(), 0, "no simulated time passed");
    assert_eq!(
        pm.crash_image(CrashPolicy::OnlyFenced).peek_u64(0x100),
        0,
        "issued-but-undrained may be lost"
    );
    assert_eq!(
        pm.crash_image(CrashPolicy::PersistAll).peek_u64(0x100),
        7,
        "…or persist, if the drain raced the failure"
    );
    // Two seeds that disagree about an 8-line in-flight set prove the
    // subset choice is real (not all-or-nothing).
    let mut pm = Pmem::new(PmemConfig::testing());
    for l in 0..8u64 {
        pm.write_u64(0x1000 + l * 64, l + 1);
        pm.clwb(0x1000 + l * 64);
    }
    let survivors = |img: &Pmem| -> Vec<bool> {
        (0..8u64)
            .map(|l| img.peek_u64(0x1000 + l * 64) != 0)
            .collect()
    };
    let a = survivors(&pm.crash_image(CrashPolicy::Seeded(3)));
    assert!(a.iter().any(|&s| s) && a.iter().any(|&s| !s), "true subset");
}

#[test]
fn drain_completion_flips_a_line_from_policy_dependent_to_durable() {
    // The same line, the same policy — only simulated time differs.
    let charge = LatencyModel::optane().drain_path_ns(1);
    let mut pm = Pmem::new(PmemConfig::testing());
    pm.write_u64(0x100, 7);
    pm.clwb(0x100);
    // Just short of the drain completion: still policy-dependent.
    pm.charge_ns(charge - 50.0);
    assert_eq!(pm.drained_unfenced_lines(), 0);
    assert_eq!(pm.crash_image(CrashPolicy::OnlyFenced).peek_u64(0x100), 0);
    // Past it: drained-but-unfenced, survives the lossiest policy.
    pm.charge_ns(100.0);
    assert_eq!(pm.drained_unfenced_lines(), 1);
    assert_eq!(pm.crash_image(CrashPolicy::OnlyFenced).peek_u64(0x100), 7);
    // A store racing the drained-but-unfenced line re-dirties it; the
    // pre-store content stays durable, the new store does not.
    pm.write_u64(0x100, 9);
    let img = pm.crash_image(CrashPolicy::OnlyFenced);
    assert_eq!(img.peek_u64(0x100), 7, "drained content is durable");
}

#[test]
fn recovery_sees_committed_state_regardless_of_drain_timing() {
    // End-to-end: a FASE's shadow lines may be drained or undrained when
    // the crash hits; recovery must land on the committed version either
    // way (the directory swing is what gates visibility, not the drain).
    use mod_core::{DurableMap, ModHeap};
    for drain_time in [0.0, 5_000.0] {
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
        let map: DurableMap<u64, u64> = DurableMap::create(&mut heap);
        map.insert(&mut heap, &1, &11);
        heap.quiesce();
        // Interrupted FASE: shadow built + flushed, never committed.
        let cur = heap.current(map.root());
        let _shadow = cur.insert(heap.nv_mut(), 2, &22u64.to_le_bytes());
        if drain_time > 0.0 {
            heap.nv_mut().pm_mut().charge_ns(drain_time); // shadows drain
        }
        let img = heap.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let (mut h2, _) = ModHeap::open(img);
        let map: DurableMap<u64, u64> = h2.root(0).open().unwrap();
        assert_eq!(map.get(&h2, &1), Some(11), "drain_time {drain_time}");
        assert_eq!(map.get(&h2, &2), None, "uncommitted stays invisible");
    }
}
