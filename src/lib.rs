//! Umbrella crate for the MOD reproduction workspace.
//!
//! Re-exports the member crates so that examples and integration tests can
//! use a single dependency. See [`mod_core`] for the paper's contribution
//! (the MOD library itself) and `DESIGN.md` for the system inventory.

pub use mod_alloc as alloc;
pub use mod_core as core;
pub use mod_funcds as funcds;
pub use mod_pmem as pmem;
pub use mod_stm as stm;
pub use mod_workloads as workloads;
