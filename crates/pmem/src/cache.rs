//! Set-associative L1D cache simulator.
//!
//! Used to reproduce Fig 11 of the paper (L1D miss ratios of PMDK vs MOD
//! workloads). Every simulated-PM access runs through this model; the
//! pointer-chasing layouts of functional datastructures show up directly
//! as extra misses, while flat PMDK-style arrays mostly hit.

use crate::line::line_of;

/// Geometry of the simulated cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// The paper's L1D: 32 KB, 8-way, 64-byte lines (Table 1).
    pub fn l1d() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// The paper's shared last-level cache (Table 1: 33 MB; modelled as
    /// 32 MB, 16-way). PM latency is only paid on LLC misses.
    pub fn llc() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    fn num_sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig::l1d()
    }
}

/// Hit/miss counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio; 0 when no accesses have occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Element-wise difference `self - earlier`.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses - earlier.accesses,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// An LRU set-associative cache over cacheline addresses.
#[derive(Clone, Debug)]
pub struct CacheSim {
    cfg: CacheConfig,
    // Per set: line tags in LRU order, index 0 = most recently used.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly into at least one set.
    pub fn new(cfg: CacheConfig) -> CacheSim {
        let sets = cfg.num_sets();
        assert!(sets > 0, "cache too small for its associativity");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        CacheSim {
            sets: vec![Vec::with_capacity(cfg.ways); sets],
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// Simulates an access to `addr`; returns `true` on hit. Write
    /// accesses allocate like reads (write-allocate policy).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = line_of(addr);
        let set_idx = (line / self.cfg.line_bytes as u64) as usize % self.sets.len();
        let set = &mut self.sets[set_idx];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.insert(0, line);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.cfg.ways {
                set.pop();
            }
            set.insert(0, line);
            self.stats.misses += 1;
            false
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters, keeping cache contents (warm cache, cold stats).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drops all cached lines and counters.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }

    /// Cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1d_geometry() {
        let cfg = CacheConfig::l1d();
        assert_eq!(cfg.num_sets(), 64);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = CacheSim::new(CacheConfig::l1d());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1008)); // same line
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 sets, 2 ways, 64B lines → lines mapping to set 0: 0, 128, 256...
        let cfg = CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        };
        let mut c = CacheSim::new(cfg);
        assert!(!c.access(0)); // set 0: [0]
        assert!(!c.access(128)); // set 0: [128, 0]
        assert!(c.access(0)); // set 0: [0, 128]
        assert!(!c.access(256)); // evicts 128 → [256, 0]
        assert!(c.access(0));
        assert!(!c.access(128)); // was evicted
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let cfg = CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        };
        let mut c = CacheSim::new(cfg);
        c.access(0); // set 0
        c.access(64); // set 1
        c.access(128); // set 0
        c.access(192); // set 1
        assert!(c.access(0));
        assert!(c.access(64));
    }

    #[test]
    fn miss_ratio_sequential_vs_random() {
        // Sequential sweeps over a small working set should have a far
        // lower miss ratio than pointer-chasing over a large one.
        let mut seq = CacheSim::new(CacheConfig::l1d());
        for _ in 0..4 {
            for a in (0..16 * 1024u64).step_by(8) {
                seq.access(a);
            }
        }
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        let mut random = CacheSim::new(CacheConfig::l1d());
        for _ in 0..8192 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            random.access(rng % (64 * 1024 * 1024));
        }
        assert!(seq.stats().miss_ratio() < 0.1);
        assert!(random.stats().miss_ratio() > 0.8);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = CacheSim::new(CacheConfig::l1d());
        c.access(0x40);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x40), "line should still be cached");
    }

    #[test]
    fn clear_drops_contents() {
        let mut c = CacheSim::new(CacheConfig::l1d());
        c.access(0x40);
        c.clear();
        assert!(!c.access(0x40));
    }
}
