//! Background write-pending-queue (WPQ) drain channels.
//!
//! The paper's §3 microbenchmark shows that a `clwb`'s writeback does not
//! wait for the `sfence`: it *launches* as the instruction issues and
//! drains through the memory controller's write-pending queue in the
//! background, so a fence pays only the **residual** drain that has not
//! finished by the time it executes. [`WpqDrain`] is that queue: a small
//! event calendar of per-line drain completions. Each `clwb` schedules a
//! drain at its issue timestamp — an overlappable *launch* phase
//! ([`crate::LatencyModel::wpq_launch_ns`]) followed by a serialized
//! per-line *drain* occupancy ([`crate::LatencyModel::wpq_drain_ns`]) on
//! the line's WPQ lane — and `sfence` stalls until the latest scheduled
//! completion, not for the whole backlog from scratch.
//!
//! With the default single WPQ lane and flushes issued back-to-back, the
//! last completion lands at `launch + n·drain` past the first issue —
//! exactly the Amdahl stall `fence_base · (f + (1 − f)·n)` the old
//! charge-everything-at-the-fence model used, so the saturated limit (no
//! compute between flush and fence) reproduces Fig 4 unchanged. Any
//! compute charged between the `clwb`s and the fence now genuinely hides
//! drain work, which is the lever batched group commits exploit.

/// One timeline's WPQ: per-lane drain-channel occupancy plus the latest
/// scheduled completion. Times are simulated nanoseconds on the clock of
/// whichever timeline (global, or the shard-lane group) owns the queue.
#[derive(Clone, Debug, Default)]
pub struct WpqDrain {
    /// Time each WPQ lane's serialized drain channel frees up.
    lane_free_at: Vec<f64>,
    /// Completion time of the latest drain scheduled since the last fence.
    last_done: f64,
}

impl WpqDrain {
    /// An empty queue with no lanes materialized.
    pub fn new() -> WpqDrain {
        WpqDrain::default()
    }

    /// Schedules the writeback of `line`, issued at time `now`: the
    /// launch phase overlaps freely, then the drain occupies the line's
    /// WPQ lane (`line % n_lanes`) after any earlier drain queued there.
    /// Returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if `n_lanes` is zero.
    pub fn schedule(
        &mut self,
        line: u64,
        now: f64,
        launch_ns: f64,
        drain_ns: f64,
        n_lanes: usize,
    ) -> f64 {
        assert!(n_lanes > 0, "a WPQ needs at least one drain lane");
        if self.lane_free_at.len() < n_lanes {
            self.lane_free_at.resize(n_lanes, 0.0);
        }
        let lane = (line % n_lanes as u64) as usize;
        let start = (now + launch_ns).max(self.lane_free_at[lane]);
        let done = start + drain_ns;
        self.lane_free_at[lane] = done;
        self.last_done = self.last_done.max(done);
        done
    }

    /// Completion time of the latest scheduled drain (0 when idle).
    pub fn last_done(&self) -> f64 {
        self.last_done
    }

    /// Merges another calendar's watermark: a fence on this timeline now
    /// also waits for drains scheduled there (used when a worker shard
    /// hands its staged lines — and their in-flight drains — to the
    /// commit stage).
    pub fn note_done(&mut self, t: f64) {
        self.last_done = self.last_done.max(t);
    }

    /// Residual stall a fence executing at time `now` pays: how far the
    /// latest in-flight drain completion lies in the future (0 when the
    /// backlog already drained in the background).
    pub fn residual_at(&self, now: f64) -> f64 {
        (self.last_done - now).max(0.0)
    }

    /// Empties the queue — the fence just waited for every in-flight
    /// drain, so the WPQ is idle again.
    pub fn reset(&mut self) {
        self.lane_free_at.iter_mut().for_each(|t| *t = 0.0);
        self.last_done = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_drains_serialize_on_one_lane() {
        let mut q = WpqDrain::new();
        // 4 lines issued at t=0: launch 289, drain 63.5 each, one lane.
        let mut done = 0.0;
        for line in 0..4u64 {
            done = q.schedule(line, 0.0, 289.0, 63.5, 1);
        }
        assert!((done - (289.0 + 4.0 * 63.5)).abs() < 1e-9);
        assert_eq!(q.last_done(), done);
    }

    #[test]
    fn residual_shrinks_as_time_passes() {
        let mut q = WpqDrain::new();
        q.schedule(0, 0.0, 289.0, 63.5, 1);
        assert!((q.residual_at(0.0) - 352.5).abs() < 1e-9);
        assert!((q.residual_at(300.0) - 52.5).abs() < 1e-9);
        assert_eq!(q.residual_at(400.0), 0.0, "fully drained in background");
    }

    #[test]
    fn lanes_drain_in_parallel() {
        let mut q = WpqDrain::new();
        let a = q.schedule(0, 0.0, 10.0, 50.0, 2);
        let b = q.schedule(1, 0.0, 10.0, 50.0, 2); // other lane: no queueing
        let c = q.schedule(2, 0.0, 10.0, 50.0, 2); // lane 0 again: queues
        assert_eq!(a, 60.0);
        assert_eq!(b, 60.0);
        assert_eq!(c, 110.0);
        assert_eq!(q.last_done(), 110.0);
    }

    #[test]
    fn late_issue_starts_after_launch_not_channel() {
        let mut q = WpqDrain::new();
        q.schedule(0, 0.0, 10.0, 5.0, 1); // done at 15
        let done = q.schedule(1, 100.0, 10.0, 5.0, 1);
        assert_eq!(done, 115.0, "idle channel: launch bound, not queueing");
    }

    #[test]
    fn reset_empties_the_queue() {
        let mut q = WpqDrain::new();
        q.schedule(0, 0.0, 10.0, 5.0, 1);
        q.reset();
        assert_eq!(q.last_done(), 0.0);
        assert_eq!(q.residual_at(0.0), 0.0);
        assert_eq!(q.schedule(0, 0.0, 10.0, 5.0, 1), 15.0);
    }

    #[test]
    #[should_panic(expected = "at least one drain lane")]
    fn zero_lanes_rejected() {
        WpqDrain::new().schedule(0, 0.0, 1.0, 1.0, 0);
    }
}
