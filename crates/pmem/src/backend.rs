//! Pluggable persistence backends: where a pool's durable bytes live.
//!
//! The simulator decides *what* is durable (the line-state machine in
//! [`crate::Pmem`]: dirty → in-flight → fenced); a [`PoolBackend`]
//! decides *where* that durable state lives:
//!
//! * [`MemBackend`] — volatile host memory (the original behavior): the
//!   durable image is the crash-sim arena, and the pool dies with the
//!   process. Every hook is a no-op, so pools built through
//!   [`crate::Pmem::new`] behave byte-for-byte as before.
//! * [`FileBackend`] — a real file: at each `sfence`, exactly the lines
//!   the latency/crash model says became durable are appended as one
//!   checksummed batch record (see [`crate::journal`]); the journal
//!   periodically compacts into a full arena snapshot (written to a temp
//!   file and atomically renamed). A pool written this way is
//!   re-openable by a *different process* after a kill: replay is the
//!   snapshot plus every complete batch, with any torn tail discarded at
//!   the last complete fence.
//!
//! ## What a process kill preserves
//!
//! Each fence's batch is appended with a single `write(2)`: once the call
//! returns, the record survives the death of the process (the page cache
//! outlives it). A kill *during* the write leaves a torn record that
//! replay discards — recovery lands on the previous fence, which is a
//! legal crash outcome (the fence that died was never acknowledged).
//! *Drained-but-unfenced* lines (`Inflight { done_ns }` whose background
//! drain completed) are journaled when the model observes them — a store
//! racing an in-flight writeback, or an orderly
//! [`crate::Pmem::checkpoint`] — as [`BatchKind::Drained`] records; at an
//! uncooperative kill they are lost, which realizes the
//! [`crate::CrashPolicy::OnlyFenced`] choice on a medium whose WPQ dies
//! with the machine. Power-loss-grade durability would add an
//! `fsync` per fence; [`FileBackend`] syncs at compaction and checkpoint
//! instead, which is exact for process kills (the headline scenario) and
//! documented, not hidden.

use crate::arena::SharedArena;
use crate::journal::{
    self, BatchKind, LineImage, Replay, ReplayError, SnapshotExtent, HEADER_BYTES,
};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which backend family a pool uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Volatile host memory ([`MemBackend`]).
    Mem,
    /// File-backed journal + snapshot ([`FileBackend`]).
    File,
}

/// Observability counters for a backend.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Batch records appended so far (all kinds).
    pub batches_appended: u64,
    /// [`BatchKind::Fence`] records: exactly one per `sfence` that had
    /// in-flight lines — one per FASE batch on the MOD commit path.
    pub fence_batches: u64,
    /// [`BatchKind::Drained`] records: in-flight writebacks the model
    /// observed completing without a fence (store races, checkpoints).
    pub drained_batches: u64,
    /// Total journal bytes appended (excluding snapshots).
    pub journal_bytes: u64,
    /// Snapshot compactions performed.
    pub compactions: u64,
}

/// The storage layer behind a [`crate::Pmem`] pool.
///
/// Implementations receive *durability events* from the simulator: one
/// [`PoolBackend::append_batch`] per fence (or per drained-line
/// observation), plus compaction/sync hooks at orderly points. All
/// methods take `&self` — a backend is shared by every forked shard
/// handle of its pool and must synchronize internally.
pub trait PoolBackend: fmt::Debug + Send + Sync {
    /// Which backend family this is.
    fn kind(&self) -> BackendKind;

    /// Whether the pool should collect line images and deliver
    /// durability batches at all. `false` lets the volatile backend keep
    /// the fence path byte-for-byte identical to the pre-backend code
    /// (no content reads, no allocation).
    fn wants_batches(&self) -> bool {
        false
    }

    /// One durability event: `lines` became durable at simulated time
    /// `fence_ns` (see [`BatchKind`] for why). Called with the lines in
    /// ascending address order.
    fn append_batch(&self, _kind: BatchKind, _lines: &[LineImage], _fence_ns: f64) {}

    /// Whether enough journal has accumulated that the caller should
    /// offer a compaction ([`PoolBackend::compact`]) at the next orderly
    /// point.
    fn should_compact(&self) -> bool {
        false
    }

    /// Compacts the journal into a full snapshot of `durable` (the
    /// pool's durable image). Crash-safe: the snapshot is written to a
    /// sibling temp file, synced, and atomically renamed over the pool.
    fn compact(&self, _durable: &SharedArena) -> io::Result<()> {
        Ok(())
    }

    /// Forces written data to stable storage (fsync).
    fn sync(&self) -> io::Result<()> {
        Ok(())
    }

    /// Observability counters.
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

/// The volatile backend: durable state lives in the crash-sim arena and
/// dies with the process. All hooks are no-ops.
#[derive(Debug, Default)]
pub struct MemBackend;

impl PoolBackend for MemBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mem
    }
}

/// Journal bytes since the last snapshot that trigger a compaction offer.
const DEFAULT_COMPACT_BYTES: u64 = 1 << 20;

#[derive(Debug)]
struct FileState {
    file: File,
    /// Journal bytes appended since the last snapshot.
    since_snapshot: u64,
    /// Next batch sequence number.
    seq: u64,
}

/// The file-backed backend: one pool file holding a snapshot plus an
/// append-only, checksummed fence journal (see the module docs and
/// [`crate::journal`] for the format and crash semantics).
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    state: Mutex<FileState>,
    compact_bytes: u64,
    batches: AtomicU64,
    fence_batches: AtomicU64,
    drained_batches: AtomicU64,
    journal_bytes: AtomicU64,
    compactions: AtomicU64,
}

impl FileBackend {
    /// Creates a fresh pool file (truncating any existing file): header
    /// plus an empty snapshot, synced to disk.
    pub fn create(path: &Path, capacity: u64) -> io::Result<FileBackend> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&journal::encode_header(capacity))?;
        file.write_all(&journal::encode_snapshot(&[]))?;
        file.sync_all()?;
        Ok(FileBackend {
            path: path.to_path_buf(),
            state: Mutex::new(FileState {
                file,
                since_snapshot: 0,
                seq: 0,
            }),
            compact_bytes: DEFAULT_COMPACT_BYTES,
            batches: AtomicU64::new(0),
            fence_batches: AtomicU64::new(0),
            drained_batches: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        })
    }

    /// Opens an existing pool file, replaying snapshot + journal: every
    /// complete batch is applied; a torn tail is truncated away so the
    /// file ends at the last complete fence before appends resume.
    /// Returns the backend plus the replay (capacity, extents, batches)
    /// for the caller to rebuild the arena from.
    pub fn open(path: &Path) -> io::Result<(FileBackend, Replay)> {
        // A kill mid-compaction can leave a stale temp file; it was never
        // renamed, so it is garbage.
        let _ = std::fs::remove_file(tmp_path(path));
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = journal::replay(&bytes).map_err(replay_io_err)?;
        if replay.torn_bytes > 0 {
            file.set_len(replay.valid_len as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        let since_snapshot = (replay.valid_len - HEADER_BYTES) as u64
            - journal::encode_snapshot(&replay.extents).len() as u64;
        let seq = replay.batches.last().map_or(0, |b| b.seq + 1);
        Ok((
            FileBackend {
                path: path.to_path_buf(),
                state: Mutex::new(FileState {
                    file,
                    since_snapshot,
                    seq,
                }),
                compact_bytes: DEFAULT_COMPACT_BYTES,
                batches: AtomicU64::new(0),
                fence_batches: AtomicU64::new(0),
                drained_batches: AtomicU64::new(0),
                journal_bytes: AtomicU64::new(0),
                compactions: AtomicU64::new(0),
            },
            replay,
        ))
    }

    /// Path of the pool file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

fn replay_io_err(e: ReplayError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Collects the durable arena's resident bytes as snapshot extents.
/// Trailing zero bytes of each segment are trimmed (freshly formatted
/// pools are almost entirely zero).
fn extents_of(durable: &SharedArena) -> Vec<SnapshotExtent> {
    let seg = crate::arena::SEGMENT_BYTES;
    let mut extents = Vec::new();
    let mut addr = 0u64;
    while addr < durable.capacity() {
        let len = seg.min(durable.capacity() - addr);
        if durable.is_resident(addr) {
            let mut data = vec![0u8; len as usize];
            durable.read(addr, &mut data);
            let used = data.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
            data.truncate(used);
            if !data.is_empty() {
                extents.push(SnapshotExtent { addr, data });
            }
        }
        addr += len;
    }
    extents
}

impl PoolBackend for FileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::File
    }

    fn wants_batches(&self) -> bool {
        true
    }

    fn append_batch(&self, kind: BatchKind, lines: &[LineImage], fence_ns: f64) {
        if lines.is_empty() {
            return;
        }
        let mut st = self.state.lock().unwrap();
        let record = journal::encode_batch(st.seq, kind, fence_ns, lines);
        st.seq += 1;
        st.since_snapshot += record.len() as u64;
        // One write(2) per fence: complete once it returns, torn (and
        // discarded at replay) if the process dies inside it.
        st.file
            .write_all(&record)
            .expect("pool journal append failed");
        self.batches.fetch_add(1, Ordering::Relaxed);
        match kind {
            BatchKind::Fence => &self.fence_batches,
            BatchKind::Drained => &self.drained_batches,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.journal_bytes
            .fetch_add(record.len() as u64, Ordering::Relaxed);
    }

    fn should_compact(&self) -> bool {
        self.state.lock().unwrap().since_snapshot >= self.compact_bytes
    }

    fn compact(&self, durable: &SharedArena) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let tmp = tmp_path(&self.path);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&journal::encode_header(durable.capacity()))?;
            f.write_all(&journal::encode_snapshot(&extents_of(durable)))?;
            f.sync_all()?;
        }
        // Atomic cut-over: a kill before the rename leaves the old pool
        // (plus a stale .tmp that open() removes); after it, the new one.
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        st.file = file;
        st.since_snapshot = 0;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        self.state.lock().unwrap().file.sync_all()
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            batches_appended: self.batches.load(Ordering::Relaxed),
            fence_batches: self.fence_batches.load(Ordering::Relaxed),
            drained_batches: self.drained_batches.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mod_backend_{}_{}", std::process::id(), name));
        p
    }

    fn line(addr: u64, fill: u8) -> LineImage {
        LineImage {
            addr,
            data: [fill; 64],
        }
    }

    #[test]
    fn create_append_reopen_replays_batches() {
        let path = tmp_file("roundtrip");
        let be = FileBackend::create(&path, 1 << 20).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 1), line(64, 2)], 100.0);
        be.append_batch(BatchKind::Drained, &[line(128, 3)], 150.0);
        drop(be);
        let (be2, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.capacity, 1 << 20);
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.batches[0].lines.len(), 2);
        assert_eq!(replay.batches[1].kind, BatchKind::Drained);
        assert_eq!(replay.torn_bytes, 0);
        // Appends resume with a later sequence number.
        be2.append_batch(BatchKind::Fence, &[line(192, 4)], 200.0);
        drop(be2);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 3);
        assert_eq!(replay.batches[2].seq, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp_file("torn");
        let be = FileBackend::create(&path, 1 << 20).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 7)], 1.0);
        be.append_batch(BatchKind::Fence, &[line(64, 8)], 2.0);
        drop(be);
        // Tear the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let (be2, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1, "partial batch discarded");
        // The file was truncated to the valid prefix, so a new append
        // followed by a reopen yields exactly [batch0, new batch].
        be2.append_batch(BatchKind::Fence, &[line(128, 9)], 3.0);
        drop(be2);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.batches[1].lines[0].data[0], 9);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_resets_journal_and_survives_reopen() {
        let path = tmp_file("compact");
        let be = FileBackend::create(&path, 1 << 22).unwrap();
        let durable = SharedArena::new(1 << 22);
        durable.write(0, b"durable-state");
        durable.write_u64(4096, 42);
        be.append_batch(BatchKind::Fence, &[line(0, 1)], 1.0);
        be.compact(&durable).unwrap();
        assert_eq!(be.stats().compactions, 1);
        // Journal restarts empty after the snapshot.
        be.append_batch(BatchKind::Fence, &[line(64, 5)], 2.0);
        drop(be);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1, "pre-compaction batches folded in");
        let ext = &replay.extents;
        assert!(!ext.is_empty());
        assert_eq!(&ext[0].data[..13], b"durable-state");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_tmp_file_is_ignored_on_open() {
        let path = tmp_file("staletmp");
        let be = FileBackend::create(&path, 1 << 20).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 1)], 1.0);
        drop(be);
        std::fs::write(tmp_path(&path), b"half-written snapshot garbage").unwrap();
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert!(!tmp_path(&path).exists(), "stale tmp cleaned up");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mem_backend_is_inert() {
        let be = MemBackend;
        assert_eq!(be.kind(), BackendKind::Mem);
        assert!(!be.wants_batches());
        assert!(!be.should_compact());
        be.append_batch(BatchKind::Fence, &[line(0, 1)], 1.0);
        assert_eq!(be.stats(), BackendStats::default());
    }

    #[test]
    fn open_missing_or_garbage_file_errors() {
        let path = tmp_file("missing");
        assert!(FileBackend::open(&path).is_err());
        std::fs::write(&path, b"not a pool").unwrap();
        let err = FileBackend::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
