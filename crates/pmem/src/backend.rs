//! Pluggable persistence backends: where a pool's durable bytes live.
//!
//! The simulator decides *what* is durable (the line-state machine in
//! [`crate::Pmem`]: dirty → in-flight → fenced); a [`PoolBackend`]
//! decides *where* that durable state lives:
//!
//! * [`MemBackend`] — volatile host memory (the original behavior): the
//!   durable image is the crash-sim arena, and the pool dies with the
//!   process. Every hook is a no-op, so pools built through
//!   [`crate::Pmem::new`] behave byte-for-byte as before.
//! * [`FileBackend`] — a real file: at each `sfence`, exactly the lines
//!   the latency/crash model says became durable are appended as one
//!   checksummed batch record (see [`crate::journal`]); the journal
//!   periodically compacts into a full arena snapshot (written to a temp
//!   file and atomically renamed). A pool written this way is
//!   re-openable by a *different process* after a kill: replay is the
//!   snapshot plus every complete batch, with any torn tail discarded at
//!   the last complete fence.
//!
//! ## Pool sets
//!
//! A pool created with more than one journal shard
//! ([`FileBackend::create_set`]) is a **pool set**: the base file holds
//! the snapshot, and each shard journal `pool.s<i>` receives the slice
//! of every fence that falls in its contiguous address range. Records
//! carry the global batch sequence plus the mask of shards the fence
//! touched, so recovery scans the journals **in parallel threads** and
//! merges them back into the single global order — bit-identical to what
//! a one-journal pool would have recorded (fences slice their
//! already-address-sorted lines across ascending shard ranges, so
//! concatenating slices in shard order restores the original record).
//! A fence is recovered only if *every* shard it touched holds its
//! slice; recovery truncates each journal back to that durable frontier.
//!
//! ## What a process kill preserves
//!
//! Each fence's batch is appended with a single `write(2)` per touched
//! journal: once the call returns, the record survives the death of the
//! process (the page cache outlives it). A kill *during* the write
//! leaves a torn record that replay discards — recovery lands on the
//! previous fence, which is a legal crash outcome (the fence that died
//! was never acknowledged). *Drained-but-unfenced* lines
//! (`Inflight { done_ns }` whose background drain completed) are
//! journaled when the model observes them — a store racing an in-flight
//! writeback, or an orderly [`crate::Pmem::checkpoint`] — as
//! [`BatchKind::Drained`] records; at an uncooperative kill they are
//! lost, which realizes the [`crate::CrashPolicy::OnlyFenced`] choice on
//! a medium whose WPQ dies with the machine.
//!
//! ## Durability grades
//!
//! [`Durability::Buffered`] (the default) stops there: appends are
//! process-kill-grade — the page cache survives the process but not the
//! machine — and the backend fsyncs only at compaction and checkpoint.
//! [`Durability::Fsync`] upgrades every fence to power-loss-grade: each
//! touched shard journal is fdatasync'd before the append returns, so an
//! acknowledged fence is on the medium. Group commit amortizes the cost:
//! batching N FASEs into one fence costs one fsync round (one fsync per
//! touched shard journal) for all N.
//!
//! ## Journal format versions
//!
//! New pools are created with v3 headers and append **compact** batch
//! records (sorted, deduplicated line sets with varint delta-encoded
//! addresses — see [`crate::journal`]). Opening negotiates the version
//! from the pool header: v1 single-file pools and v2 pool sets replay
//! bit-identically and then accumulate v3 records in place, since the
//! record tag (not the header) names each record's codec.

use crate::arena::SharedArena;
use crate::journal::{
    self, BatchKind, LineImage, Replay, ReplayError, ShardReplay, SnapshotExtent, HEADER_BYTES,
    MAX_SHARDS, SHARD_BASE,
};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which backend family a pool uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Volatile host memory ([`MemBackend`]).
    Mem,
    /// File-backed journal + snapshot ([`FileBackend`]).
    File,
}

/// How hard a [`FileBackend`] pushes each fence toward the medium.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// Append with `write(2)` only: the record survives a process kill
    /// (page cache), not a power loss. Fsync happens at compaction and
    /// checkpoint. The default, and the only mode prior formats had.
    #[default]
    Buffered,
    /// fdatasync every dirty shard journal before a **fence** append
    /// returns: an acknowledged fence survives power loss. Drained-line
    /// records stay buffered until the next fence's sync round covers
    /// them (they carry earlier sequence numbers, so recovery's
    /// contiguous frontier would otherwise recede past an acked fence),
    /// and group commit amortizes the whole thing to one fsync round
    /// per batch of FASEs.
    Fsync,
}

/// Observability counters for a backend.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Batch records appended so far (all kinds).
    pub batches_appended: u64,
    /// [`BatchKind::Fence`] records: exactly one per `sfence` that had
    /// in-flight lines — one per FASE batch on the MOD commit path.
    pub fence_batches: u64,
    /// [`BatchKind::Drained`] records: in-flight writebacks the model
    /// observed completing without a fence (store races, checkpoints).
    pub drained_batches: u64,
    /// Total journal bytes appended (excluding snapshots).
    pub journal_bytes: u64,
    /// Snapshot compactions performed.
    pub compactions: u64,
    /// Journal shards (1 = classic single-file pool; 0 = no journal).
    /// Also the scan parallelism a recovery of this pool uses.
    pub journal_shards: u64,
    /// Journal bytes appended per shard (len = `journal_shards`).
    pub journal_bytes_by_shard: Vec<u64>,
    /// Individual fsync calls issued on the per-fence append path
    /// ([`Durability::Fsync`] only; compaction/checkpoint syncs are not
    /// counted here).
    pub fsyncs: u64,
    /// Fsync *rounds*: append events that fsync'd (each round syncs
    /// every touched shard journal once). Under group commit this is one
    /// per batch, so rounds/FASE ≤ 1/N for batch size N.
    pub fsync_rounds: u64,
}

/// The storage layer behind a [`crate::Pmem`] pool.
///
/// Implementations receive *durability events* from the simulator: one
/// [`PoolBackend::append_batch`] per fence (or per drained-line
/// observation), plus compaction/sync hooks at orderly points. All
/// methods take `&self` — a backend is shared by every forked shard
/// handle of its pool and must synchronize internally.
pub trait PoolBackend: fmt::Debug + Send + Sync {
    /// Which backend family this is.
    fn kind(&self) -> BackendKind;

    /// Whether the pool should collect line images and deliver
    /// durability batches at all. `false` lets the volatile backend keep
    /// the fence path byte-for-byte identical to the pre-backend code
    /// (no content reads, no allocation).
    fn wants_batches(&self) -> bool {
        false
    }

    /// One durability event: `lines` became durable at simulated time
    /// `fence_ns` (see [`BatchKind`] for why). Called with the lines in
    /// ascending address order.
    fn append_batch(&self, _kind: BatchKind, _lines: &[LineImage], _fence_ns: f64) {}

    /// Whether enough journal has accumulated that the caller should
    /// offer a compaction ([`PoolBackend::compact`]) at the next orderly
    /// point.
    fn should_compact(&self) -> bool {
        false
    }

    /// Compacts the journal into a full snapshot of `durable` (the
    /// pool's durable image). Crash-safe: the snapshot is written to a
    /// sibling temp file, synced, and atomically renamed over the pool.
    fn compact(&self, _durable: &SharedArena) -> io::Result<()> {
        Ok(())
    }

    /// Forces written data to stable storage (fsync).
    fn sync(&self) -> io::Result<()> {
        Ok(())
    }

    /// Total on-disk bytes of the pool's files. A backend with no files
    /// reports 0. Errors (e.g. a pool member deleted out from under the
    /// process) surface as typed io errors, never a panic.
    fn durable_file_bytes(&self) -> io::Result<u64> {
        Ok(0)
    }

    /// Observability counters.
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

/// The volatile backend: durable state lives in the crash-sim arena and
/// dies with the process. All hooks are no-ops.
#[derive(Debug, Default)]
pub struct MemBackend;

impl PoolBackend for MemBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mem
    }
}

/// Journal bytes since the last snapshot that trigger a compaction offer.
const DEFAULT_COMPACT_BYTES: u64 = 1 << 20;

#[derive(Debug)]
struct SetState {
    /// The base pool file. For a single-file (v1) pool this is also the
    /// journal; for a pool set it holds only the snapshot + seq mark.
    base: File,
    /// Per-shard journal files (empty for a single-file pool).
    journals: Vec<File>,
    /// Journal bytes appended since the last snapshot (set-wide).
    since_snapshot: u64,
    /// Next global batch sequence number.
    seq: u64,
    /// Bitmask of journal members with appended-but-unsynced bytes
    /// (bit 0 = the base file for a single-file pool). A fence's fsync
    /// round must cover every dirty member, not just the shards the
    /// fence touched: a buffered drained-line record holds an earlier
    /// sequence number, and losing it to power-off would recede the
    /// recovery frontier below an already-acknowledged fence.
    dirty: u64,
}

/// The file-backed backend: a pool file (or pool set) holding a snapshot
/// plus an append-only, checksummed fence journal — one journal file per
/// address shard when created with [`FileBackend::create_set`] (see the
/// module docs and [`crate::journal`] for formats and crash semantics).
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    durability: Durability,
    /// Journal shard count (1 = classic single-file pool).
    shards: u16,
    /// Bytes of pool address space per shard (64-aligned; the last shard
    /// absorbs the remainder).
    span: u64,
    state: Mutex<SetState>,
    compact_bytes: u64,
    batches: AtomicU64,
    fence_batches: AtomicU64,
    drained_batches: AtomicU64,
    journal_bytes: AtomicU64,
    compactions: AtomicU64,
    fsyncs: AtomicU64,
    fsync_rounds: AtomicU64,
    per_shard_bytes: Vec<AtomicU64>,
}

/// The fixed address partition of a pool set: contiguous equal 64-byte-
/// aligned ranges. Deterministic in (capacity, shards) alone, so every
/// open of the set — and every writer generation — agrees on it.
fn shard_span(capacity: u64, shards: u16) -> u64 {
    let raw = capacity.div_ceil(shards as u64);
    ((raw + 63) & !63).max(64)
}

fn shard_path(path: &Path, shard: u16) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".s{shard}"));
    PathBuf::from(os)
}

impl FileBackend {
    /// Creates a fresh single-file pool (truncating any existing file):
    /// header plus an empty snapshot, synced to disk.
    pub fn create(path: &Path, capacity: u64) -> io::Result<FileBackend> {
        FileBackend::create_set(path, capacity, 1, Durability::Buffered)
    }

    /// Creates a fresh pool with `shards` journal files (1 = a classic
    /// single-file pool, bit-identical to [`FileBackend::create`]) and
    /// the given per-fence durability grade. `shards` is clamped to
    /// `1..=64` (the touched-shard mask is a `u64`). New pools carry v3
    /// headers and compact (varint/delta) batch records; pools with v1
    /// or v2 headers still open and replay bit-identically.
    pub fn create_set(
        path: &Path,
        capacity: u64,
        shards: u16,
        durability: Durability,
    ) -> io::Result<FileBackend> {
        let shards = shards.clamp(1, MAX_SHARDS);
        let mut base = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut journals = Vec::new();
        if shards == 1 {
            base.write_all(&journal::encode_header_v3(capacity))?;
            base.write_all(&journal::encode_snapshot(&[]))?;
        } else {
            base.write_all(&journal::encode_set_header_v3(capacity, shards, SHARD_BASE))?;
            base.write_all(&journal::encode_snapshot(&[]))?;
            base.write_all(&journal::encode_seq_mark(0))?;
            for i in 0..shards {
                let mut j = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(shard_path(path, i))?;
                j.write_all(&journal::encode_set_header_v3(capacity, shards, i))?;
                j.sync_all()?;
                journals.push(j);
            }
        }
        base.sync_all()?;
        Ok(FileBackend::assemble(
            path, durability, shards, capacity, base, journals, 0, 0,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        path: &Path,
        durability: Durability,
        shards: u16,
        capacity: u64,
        base: File,
        journals: Vec<File>,
        since_snapshot: u64,
        seq: u64,
    ) -> FileBackend {
        FileBackend {
            path: path.to_path_buf(),
            durability,
            shards,
            span: shard_span(capacity, shards),
            state: Mutex::new(SetState {
                base,
                journals,
                since_snapshot,
                seq,
                dirty: 0,
            }),
            compact_bytes: DEFAULT_COMPACT_BYTES,
            batches: AtomicU64::new(0),
            fence_batches: AtomicU64::new(0),
            drained_batches: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            fsync_rounds: AtomicU64::new(0),
            per_shard_bytes: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Opens an existing pool (single-file or set; the header says
    /// which) with [`Durability::Buffered`] appends.
    pub fn open(path: &Path) -> io::Result<(FileBackend, Replay)> {
        FileBackend::open_with(path, Durability::Buffered)
    }

    /// Opens an existing pool file or pool set, replaying snapshot +
    /// journal(s): every complete batch is applied; torn tails — and,
    /// for a set, complete records whose fence lost a slice in a sibling
    /// journal — are truncated away so appends resume at the durable
    /// frontier. A set's shard journals are scanned in parallel, one
    /// thread per journal, then merged by global sequence; the merged
    /// batch order is bit-identical to a single-journal replay. Returns
    /// the backend plus the replay for the caller to rebuild the arena.
    pub fn open_with(path: &Path, durability: Durability) -> io::Result<(FileBackend, Replay)> {
        // A kill mid-compaction can leave a stale temp file; it was never
        // renamed, so it is garbage.
        let _ = std::fs::remove_file(tmp_path(path));
        let mut base = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        base.read_to_end(&mut bytes)?;
        if !journal::is_set_member(&bytes).map_err(replay_io_err)? {
            // Single-file pool (v1, or v3 with a zero geometry word).
            let replay = journal::replay(&bytes).map_err(replay_io_err)?;
            if replay.torn_bytes > 0 {
                base.set_len(replay.valid_len as u64)?;
            }
            base.seek(SeekFrom::End(0))?;
            let since_snapshot = (replay.valid_len - HEADER_BYTES) as u64
                - journal::encode_snapshot(&replay.extents).len() as u64;
            let seq = replay.batches.last().map_or(0, |b| b.seq + 1);
            let capacity = replay.capacity;
            return Ok((
                FileBackend::assemble(
                    path,
                    durability,
                    1,
                    capacity,
                    base,
                    Vec::new(),
                    since_snapshot,
                    seq,
                ),
                replay,
            ));
        }
        let set = journal::replay_set_base(&bytes).map_err(replay_io_err)?;
        // Scan every shard journal in parallel: the scans are
        // independent (checksums, framing, decode), and the merge below
        // is a pure function of their results — so the recovered image
        // cannot depend on thread interleaving.
        let scans: Vec<(File, ShardReplay, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..set.shards)
                .map(|i| {
                    let p = shard_path(path, i);
                    scope.spawn(move || -> io::Result<(File, ShardReplay, u64)> {
                        let mut f = OpenOptions::new()
                            .read(true)
                            .write(true)
                            .open(&p)
                            .map_err(|e| member_err(&p, &e))?;
                        let mut jbytes = Vec::new();
                        f.read_to_end(&mut jbytes)?;
                        let scan = journal::replay_shard_journal(&jbytes).map_err(replay_io_err)?;
                        if scan.header.capacity != set.capacity
                            || scan.header.shards != set.shards
                            || scan.header.shard_index != i
                        {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("pool-set member {} does not match its base", p.display()),
                            ));
                        }
                        Ok((f, scan, jbytes.len() as u64))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard scan thread panicked"))
                .collect::<io::Result<Vec<_>>>()
        })?;
        let per_shard: Vec<Vec<journal::ShardBatchRecord>> =
            scans.iter().map(|(_, s, _)| s.records.clone()).collect();
        let merged = journal::merge_shard_records(&per_shard, set.snap_seq);
        // Truncate each journal back to the durable frontier: both torn
        // tails and complete records of fences that lost a slice
        // elsewhere. Journal order is sequence order, so the cut is the
        // end of the last record below the frontier.
        let mut journals = Vec::with_capacity(scans.len());
        let mut since_snapshot = 0u64;
        let mut torn = 0u64;
        let mut valid = bytes.len();
        for (mut f, scan, len) in scans {
            let keep = scan
                .records
                .iter()
                .position(|r| r.batch.seq >= merged.frontier)
                .unwrap_or(scan.records.len());
            let cut = if keep == 0 {
                HEADER_BYTES
            } else {
                scan.ends[keep - 1]
            };
            if (cut as u64) < len {
                f.set_len(cut as u64)?;
            }
            f.seek(SeekFrom::End(0))?;
            since_snapshot += (cut - HEADER_BYTES) as u64;
            torn += len - cut as u64;
            valid += cut;
            journals.push(f);
        }
        let replay = Replay {
            capacity: set.capacity,
            extents: set.extents,
            batches: merged.batches,
            valid_len: valid,
            torn_bytes: torn as usize,
        };
        Ok((
            FileBackend::assemble(
                path,
                durability,
                set.shards,
                set.capacity,
                base,
                journals,
                since_snapshot,
                merged.frontier,
            ),
            replay,
        ))
    }

    /// Path of the pool's base file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Journal shard count (1 = classic single-file pool). Recovery
    /// scans a set's journals with this many parallel threads.
    pub fn shard_count(&self) -> u16 {
        self.shards
    }

    /// The per-fence durability grade appends use.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Which journal shard owns a pool address.
    fn shard_of(&self, addr: u64) -> usize {
        ((addr / self.span) as usize).min(self.shards as usize - 1)
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

fn replay_io_err(e: ReplayError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

fn member_err(path: &Path, e: &io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("pool member {}: {e}", path.display()))
}

/// Collects the durable arena's resident bytes as snapshot extents.
/// Trailing zero bytes of each segment are trimmed (freshly formatted
/// pools are almost entirely zero).
fn extents_of(durable: &SharedArena) -> Vec<SnapshotExtent> {
    let seg = crate::arena::SEGMENT_BYTES;
    let mut extents = Vec::new();
    let mut addr = 0u64;
    while addr < durable.capacity() {
        let len = seg.min(durable.capacity() - addr);
        if durable.is_resident(addr) {
            let mut data = vec![0u8; len as usize];
            durable.read(addr, &mut data);
            let used = data.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
            data.truncate(used);
            if !data.is_empty() {
                extents.push(SnapshotExtent { addr, data });
            }
        }
        addr += len;
    }
    extents
}

impl PoolBackend for FileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::File
    }

    fn wants_batches(&self) -> bool {
        true
    }

    fn append_batch(&self, kind: BatchKind, lines: &[LineImage], fence_ns: f64) {
        if lines.is_empty() {
            return;
        }
        let mut st = self.state.lock().unwrap();
        let seq = st.seq;
        st.seq += 1;
        let mut appended = 0u64;
        if self.shards == 1 {
            // Appends always use the compact v3 record codec, whatever
            // the file's header version: replay keys record decoding off
            // the tag, so a pre-upgrade pool legally mixes generations.
            let record = journal::encode_batch_v3(seq, kind, fence_ns, lines);
            // One write(2) per fence: complete once it returns, torn
            // (and discarded at replay) if the process dies inside it.
            st.base
                .write_all(&record)
                .expect("pool journal append failed");
            appended = record.len() as u64;
            self.per_shard_bytes[0].fetch_add(appended, Ordering::Relaxed);
            st.dirty |= 1;
            if self.durability == Durability::Fsync && kind == BatchKind::Fence {
                st.base.sync_data().expect("pool journal fsync failed");
                st.dirty = 0;
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.fsync_rounds.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            // Slice the (address-sorted) fence across the contiguous
            // shard ranges; every slice carries the global sequence and
            // the full touched mask so recovery can tell a complete
            // fence from one that lost a slice.
            let mut runs: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
            let mut start = 0usize;
            while start < lines.len() {
                let shard = self.shard_of(lines[start].addr);
                let mut end = start + 1;
                while end < lines.len() && self.shard_of(lines[end].addr) == shard {
                    end += 1;
                }
                runs.push((shard, start..end));
                start = end;
            }
            let mask: u64 = runs.iter().map(|(s, _)| 1u64 << s).sum();
            for (shard, range) in &runs {
                let record = journal::encode_shard_batch_v3(
                    seq,
                    kind,
                    fence_ns,
                    mask,
                    &lines[range.clone()],
                );
                st.journals[*shard]
                    .write_all(&record)
                    .expect("pool journal append failed");
                appended += record.len() as u64;
                self.per_shard_bytes[*shard].fetch_add(record.len() as u64, Ordering::Relaxed);
            }
            st.dirty |= mask;
            if self.durability == Durability::Fsync && kind == BatchKind::Fence {
                // The round covers every dirty member, not just this
                // fence's shards: buffered drained-line records hold
                // earlier sequence numbers, and an acked fence must
                // never outlive them on disk (frontier contiguity).
                let mut synced = 0u64;
                for shard in 0..self.shards as usize {
                    if st.dirty & (1u64 << shard) != 0 {
                        st.journals[shard]
                            .sync_data()
                            .expect("pool journal fsync failed");
                        synced += 1;
                    }
                }
                st.dirty = 0;
                self.fsyncs.fetch_add(synced, Ordering::Relaxed);
                self.fsync_rounds.fetch_add(1, Ordering::Relaxed);
            }
        }
        st.since_snapshot += appended;
        self.batches.fetch_add(1, Ordering::Relaxed);
        match kind {
            BatchKind::Fence => &self.fence_batches,
            BatchKind::Drained => &self.drained_batches,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.journal_bytes.fetch_add(appended, Ordering::Relaxed);
    }

    fn should_compact(&self) -> bool {
        self.state.lock().unwrap().since_snapshot >= self.compact_bytes
    }

    fn compact(&self, durable: &SharedArena) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let tmp = tmp_path(&self.path);
        {
            let mut f = File::create(&tmp)?;
            if self.shards == 1 {
                f.write_all(&journal::encode_header_v3(durable.capacity()))?;
                f.write_all(&journal::encode_snapshot(&extents_of(durable)))?;
            } else {
                f.write_all(&journal::encode_set_header_v3(
                    durable.capacity(),
                    self.shards,
                    SHARD_BASE,
                ))?;
                f.write_all(&journal::encode_snapshot(&extents_of(durable)))?;
                f.write_all(&journal::encode_seq_mark(st.seq))?;
            }
            f.sync_all()?;
        }
        // Atomic cut-over: a kill before the rename leaves the old pool
        // (plus a stale .tmp that open() removes); after it, the new one.
        std::fs::rename(&tmp, &self.path)?;
        let mut base = OpenOptions::new().read(true).write(true).open(&self.path)?;
        base.seek(SeekFrom::End(0))?;
        st.base = base;
        // Only after the base holds the new snapshot + seq mark may the
        // shard journals shrink: a kill mid-truncation leaves records
        // below the mark, which recovery ignores as stale. The reverse
        // order would lose the un-snapshotted records.
        for j in &mut st.journals {
            j.set_len(HEADER_BYTES as u64)?;
            j.seek(SeekFrom::Start(HEADER_BYTES as u64))?;
            j.sync_all()?;
        }
        st.since_snapshot = 0;
        st.dirty = 0;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.base.sync_all()?;
        for j in &st.journals {
            j.sync_all()?;
        }
        st.dirty = 0;
        Ok(())
    }

    fn durable_file_bytes(&self) -> io::Result<u64> {
        let len = |p: &Path| -> io::Result<u64> {
            std::fs::metadata(p)
                .map(|m| m.len())
                .map_err(|e| member_err(p, &e))
        };
        let mut total = len(&self.path)?;
        if self.shards > 1 {
            for i in 0..self.shards {
                total += len(&shard_path(&self.path, i))?;
            }
        }
        Ok(total)
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            batches_appended: self.batches.load(Ordering::Relaxed),
            fence_batches: self.fence_batches.load(Ordering::Relaxed),
            drained_batches: self.drained_batches.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            journal_shards: self.shards as u64,
            journal_bytes_by_shard: self
                .per_shard_bytes
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            fsync_rounds: self.fsync_rounds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mod_backend_{}_{}", std::process::id(), name));
        p
    }

    fn line(addr: u64, fill: u8) -> LineImage {
        LineImage {
            addr,
            data: [fill; 64],
        }
    }

    fn remove_set(path: &Path, shards: u16) {
        let _ = std::fs::remove_file(path);
        for i in 0..shards {
            let _ = std::fs::remove_file(shard_path(path, i));
        }
    }

    #[test]
    fn create_append_reopen_replays_batches() {
        let path = tmp_file("roundtrip");
        let be = FileBackend::create(&path, 1 << 20).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 1), line(64, 2)], 100.0);
        be.append_batch(BatchKind::Drained, &[line(128, 3)], 150.0);
        drop(be);
        let (be2, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.capacity, 1 << 20);
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.batches[0].lines.len(), 2);
        assert_eq!(replay.batches[1].kind, BatchKind::Drained);
        assert_eq!(replay.torn_bytes, 0);
        // Appends resume with a later sequence number.
        be2.append_batch(BatchKind::Fence, &[line(192, 4)], 200.0);
        drop(be2);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 3);
        assert_eq!(replay.batches[2].seq, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp_file("torn");
        let be = FileBackend::create(&path, 1 << 20).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 7)], 1.0);
        be.append_batch(BatchKind::Fence, &[line(64, 8)], 2.0);
        drop(be);
        // Tear the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let (be2, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1, "partial batch discarded");
        // The file was truncated to the valid prefix, so a new append
        // followed by a reopen yields exactly [batch0, new batch].
        be2.append_batch(BatchKind::Fence, &[line(128, 9)], 3.0);
        drop(be2);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.batches[1].lines[0].data[0], 9);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_resets_journal_and_survives_reopen() {
        let path = tmp_file("compact");
        let be = FileBackend::create(&path, 1 << 22).unwrap();
        let durable = SharedArena::new(1 << 22);
        durable.write(0, b"durable-state");
        durable.write_u64(4096, 42);
        be.append_batch(BatchKind::Fence, &[line(0, 1)], 1.0);
        be.compact(&durable).unwrap();
        assert_eq!(be.stats().compactions, 1);
        // Journal restarts empty after the snapshot.
        be.append_batch(BatchKind::Fence, &[line(64, 5)], 2.0);
        drop(be);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1, "pre-compaction batches folded in");
        let ext = &replay.extents;
        assert!(!ext.is_empty());
        assert_eq!(&ext[0].data[..13], b"durable-state");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_tmp_file_is_ignored_on_open() {
        let path = tmp_file("staletmp");
        let be = FileBackend::create(&path, 1 << 20).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 1)], 1.0);
        drop(be);
        std::fs::write(tmp_path(&path), b"half-written snapshot garbage").unwrap();
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert!(!tmp_path(&path).exists(), "stale tmp cleaned up");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mem_backend_is_inert() {
        let be = MemBackend;
        assert_eq!(be.kind(), BackendKind::Mem);
        assert!(!be.wants_batches());
        assert!(!be.should_compact());
        be.append_batch(BatchKind::Fence, &[line(0, 1)], 1.0);
        assert_eq!(be.stats(), BackendStats::default());
        assert_eq!(be.durable_file_bytes().unwrap(), 0);
    }

    #[test]
    fn open_missing_or_garbage_file_errors() {
        let path = tmp_file("missing");
        assert!(FileBackend::open(&path).is_err());
        std::fs::write(&path, b"not a pool").unwrap();
        let err = FileBackend::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    /// The fence sequence the pool-set tests replay: address-sorted
    /// lines spread across the 4-shard partition of a 1 MiB pool, plus
    /// fences confined to a single shard.
    fn set_workload(be: &FileBackend) {
        let span = shard_span(1 << 20, 4);
        be.append_batch(
            BatchKind::Fence,
            &[line(0, 1), line(span, 2), line(3 * span, 3)],
            1.0,
        );
        be.append_batch(BatchKind::Fence, &[line(64, 4)], 2.0);
        be.append_batch(
            BatchKind::Drained,
            &[line(span + 64, 5), line(2 * span, 6)],
            3.0,
        );
        be.append_batch(
            BatchKind::Fence,
            &[
                line(128, 7),
                line(span + 128, 8),
                line(2 * span + 64, 9),
                line(3 * span + 64, 10),
            ],
            4.0,
        );
    }

    #[test]
    fn pool_set_reopen_is_bit_identical_to_a_single_file_pool() {
        // The same fence sequence through a single-file pool and a
        // 4-shard set must replay to identical batch streams — same
        // sequences, same kinds, same line order, same bytes.
        let single = tmp_file("seteq_single");
        let set = tmp_file("seteq_set");
        let b1 = FileBackend::create(&single, 1 << 20).unwrap();
        let b4 = FileBackend::create_set(&set, 1 << 20, 4, Durability::Buffered).unwrap();
        set_workload(&b1);
        set_workload(&b4);
        drop(b1);
        drop(b4);
        let (_, r1) = FileBackend::open(&single).unwrap();
        let (be4, r4) = FileBackend::open(&set).unwrap();
        assert_eq!(r1.batches, r4.batches, "merged replay == serial replay");
        assert_eq!(r1.extents, r4.extents);
        assert_eq!(be4.shard_count(), 4);
        assert_eq!(r4.torn_bytes, 0);
        std::fs::remove_file(&single).unwrap();
        remove_set(&set, 4);
    }

    #[test]
    fn pool_set_append_reopen_resumes_the_global_sequence() {
        let path = tmp_file("setresume");
        let be = FileBackend::create_set(&path, 1 << 20, 4, Durability::Buffered).unwrap();
        set_workload(&be);
        drop(be);
        let (be2, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 4);
        be2.append_batch(BatchKind::Fence, &[line(0, 11)], 5.0);
        drop(be2);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 5);
        assert_eq!(replay.batches[4].seq, 4, "global sequence resumes");
        remove_set(&path, 4);
    }

    #[test]
    fn pool_set_torn_shard_tail_truncates_every_member_to_the_frontier() {
        // Tear the tail of ONE shard journal: the whole set must recover
        // to the last fence every shard holds completely, and the
        // sibling journals must be truncated back to that frontier so
        // appends resume consistently.
        let path = tmp_file("settorn");
        let be = FileBackend::create_set(&path, 1 << 20, 4, Durability::Buffered).unwrap();
        set_workload(&be);
        drop(be);
        // Shard 0 saw fences 0, 1 and 3: tearing its last record drops
        // fence 3 set-wide even though shards 1..3 hold their slices.
        let s0 = shard_path(&path, 0);
        let len = std::fs::metadata(&s0).unwrap().len();
        let f = OpenOptions::new().write(true).open(&s0).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let (be2, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 3, "fence 3 lost its shard-0 slice");
        assert_eq!(replay.batches.last().unwrap().seq, 2);
        assert!(replay.torn_bytes > 0);
        // Appends resume at the frontier; a reopen sees 4 batches again
        // with the new fence in slot 3.
        be2.append_batch(BatchKind::Fence, &[line(0, 12), line(1 << 19, 13)], 9.0);
        drop(be2);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 4);
        assert_eq!(replay.batches[3].seq, 3);
        assert_eq!(replay.batches[3].lines[0].data[0], 12);
        assert_eq!(replay.torn_bytes, 0, "members were truncated consistently");
        remove_set(&path, 4);
    }

    #[test]
    fn pool_set_compaction_folds_journals_and_keeps_members_consistent() {
        let path = tmp_file("setcompact");
        let be = FileBackend::create_set(&path, 1 << 20, 4, Durability::Buffered).unwrap();
        let durable = SharedArena::new(1 << 20);
        durable.write(0, b"set-durable-state");
        set_workload(&be);
        be.compact(&durable).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 21)], 10.0);
        drop(be);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1, "pre-compaction fences folded in");
        assert_eq!(replay.batches[0].seq, 4, "sequence survives compaction");
        assert_eq!(&replay.extents[0].data[..17], b"set-durable-state");
        remove_set(&path, 4);
    }

    #[test]
    fn pool_set_stale_records_after_interrupted_truncation_are_ignored() {
        // Crash window: compaction renamed the new base (snapshot +
        // seq mark) but died before truncating the shard journals. The
        // stale records sit below the mark and must neither resurface
        // nor cap the frontier.
        let path = tmp_file("setstale");
        let be = FileBackend::create_set(&path, 1 << 20, 4, Durability::Buffered).unwrap();
        let durable = SharedArena::new(1 << 20);
        durable.write(0, b"post-compaction");
        set_workload(&be);
        // Snapshot the journal files, compact, then restore the old
        // journals over the truncated ones — the on-disk state of a kill
        // between the rename and the truncations.
        let saved: Vec<Vec<u8>> = (0..4)
            .map(|i| std::fs::read(shard_path(&path, i)).unwrap())
            .collect();
        be.compact(&durable).unwrap();
        drop(be);
        for (i, bytes) in saved.iter().enumerate() {
            std::fs::write(shard_path(&path, i as u16), bytes).unwrap();
        }
        let (be2, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 0, "stale records not resurrected");
        assert_eq!(&replay.extents[0].data[..15], b"post-compaction");
        be2.append_batch(BatchKind::Fence, &[line(64, 30)], 20.0);
        drop(be2);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.batches[0].seq, 4, "resumes past the seq mark");
        remove_set(&path, 4);
    }

    #[test]
    fn pool_set_missing_member_is_a_typed_error() {
        let path = tmp_file("setmissing");
        let be = FileBackend::create_set(&path, 1 << 20, 3, Durability::Buffered).unwrap();
        drop(be);
        std::fs::remove_file(shard_path(&path, 1)).unwrap();
        let err = FileBackend::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert!(err.to_string().contains(".s1"), "names the member: {err}");
        remove_set(&path, 3);
    }

    #[test]
    fn fsync_mode_counts_one_round_per_fence() {
        let path = tmp_file("fsynccount");
        let be = FileBackend::create_set(&path, 1 << 20, 4, Durability::Fsync).unwrap();
        assert_eq!(be.durability(), Durability::Fsync);
        set_workload(&be);
        let s = be.stats();
        assert_eq!(
            s.fsync_rounds, 3,
            "one round per FENCE append; the drained append stays buffered"
        );
        // Each round syncs the dirty members: fence 1 dirtied {0,1,3},
        // fence 2 {0}, then the drained append leaves {1,2} buffered so
        // fence 3 (touching all four shards) syncs {0,1,2,3}: 3 + 1 + 4.
        assert_eq!(s.fsyncs, 8);
        assert_eq!(s.journal_shards, 4);
        assert_eq!(s.journal_bytes_by_shard.len(), 4);
        assert!(s.journal_bytes_by_shard.iter().all(|&b| b > 0));
        assert_eq!(
            s.journal_bytes_by_shard.iter().sum::<u64>(),
            s.journal_bytes
        );
        drop(be);
        let be = FileBackend::create(&path, 1 << 20).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 1)], 1.0);
        assert_eq!(be.stats().fsync_rounds, 0, "buffered mode never fsyncs");
        drop(be);
        remove_set(&path, 4);
    }

    #[test]
    fn new_pools_carry_v3_headers_and_compact_records() {
        let path = tmp_file("v3fresh");
        let be = FileBackend::create(&path, 1 << 20).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 1), line(64, 2)], 1.0);
        let compact_bytes = be.stats().journal_bytes;
        let v1_bytes = journal::encode_batch(0, BatchKind::Fence, 1.0, &[line(0, 1), line(64, 2)])
            .len() as u64;
        assert!(
            compact_bytes < v1_bytes,
            "v3 appends must be smaller: {compact_bytes} vs {v1_bytes}"
        );
        drop(be);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            journal::V3_FORMAT_VERSION
        );
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.batches[0].lines.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pre_upgrade_v1_pool_replays_and_accumulates_v3_appends() {
        // Handcraft a pool exactly as a v1-era build laid it down:
        // v1 header, empty snapshot, v1 batch records. The new build
        // must replay it bit-identically, then append v3 records into
        // the same (still v1-headered) journal.
        let path = tmp_file("v1upgrade");
        let mut f = journal::encode_header(1 << 20).to_vec();
        f.extend_from_slice(&journal::encode_snapshot(&[]));
        let old = [
            (0u64, vec![line(0, 1), line(64, 2)], 10.0),
            (1u64, vec![line(128, 3)], 20.0),
        ];
        for (seq, lines, ns) in &old {
            f.extend_from_slice(&journal::encode_batch(*seq, BatchKind::Fence, *ns, lines));
        }
        std::fs::write(&path, &f).unwrap();
        let (be, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.batches[0].lines, old[0].1);
        assert_eq!(replay.batches[1].lines, old[1].1);
        assert_eq!(replay.torn_bytes, 0);
        be.append_batch(BatchKind::Fence, &[line(192, 4)], 30.0);
        drop(be);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            journal::FORMAT_VERSION,
            "the header stays v1; only the records upgrade"
        );
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 3, "v1 records + the v3 append");
        assert_eq!(replay.batches[2].seq, 2);
        assert_eq!(replay.batches[2].lines, vec![line(192, 4)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pre_upgrade_v2_set_replays_and_accumulates_v3_appends() {
        // A v2-era pool set: v2 member headers, v2 shard-batch records.
        // The new build opens it, merges bit-identically, and appends
        // compact records to the same journals.
        let path = tmp_file("v2upgrade");
        let span = shard_span(1 << 20, 2);
        let mut base = journal::encode_set_header(1 << 20, 2, SHARD_BASE).to_vec();
        base.extend_from_slice(&journal::encode_snapshot(&[]));
        base.extend_from_slice(&journal::encode_seq_mark(0));
        std::fs::write(&path, &base).unwrap();
        let mut j0 = journal::encode_set_header(1 << 20, 2, 0).to_vec();
        j0.extend_from_slice(&journal::encode_shard_batch(
            0,
            BatchKind::Fence,
            1.0,
            0b11,
            &[line(0, 1)],
        ));
        std::fs::write(shard_path(&path, 0), &j0).unwrap();
        let mut j1 = journal::encode_set_header(1 << 20, 2, 1).to_vec();
        j1.extend_from_slice(&journal::encode_shard_batch(
            0,
            BatchKind::Fence,
            1.0,
            0b11,
            &[line(span, 2)],
        ));
        std::fs::write(shard_path(&path, 1), &j1).unwrap();
        let (be, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.batches[0].lines, vec![line(0, 1), line(span, 2)]);
        be.append_batch(BatchKind::Fence, &[line(64, 3), line(span + 64, 4)], 2.0);
        drop(be);
        let (_, replay) = FileBackend::open(&path).unwrap();
        assert_eq!(replay.batches.len(), 2, "v2 base + v3 append merged");
        assert_eq!(replay.batches[1].seq, 1);
        assert_eq!(
            replay.batches[1].lines,
            vec![line(64, 3), line(span + 64, 4)]
        );
        assert_eq!(replay.torn_bytes, 0);
        remove_set(&path, 2);
    }

    #[test]
    fn durable_file_bytes_is_typed_not_a_panic() {
        // Satellite: the stats path must report a missing pool member as
        // a typed io error, never a panic.
        let path = tmp_file("statbytes");
        let be = FileBackend::create_set(&path, 1 << 20, 2, Durability::Buffered).unwrap();
        be.append_batch(BatchKind::Fence, &[line(0, 1)], 1.0);
        let on_disk = be.durable_file_bytes().unwrap();
        assert!(on_disk > 3 * HEADER_BYTES as u64);
        std::fs::remove_file(shard_path(&path, 1)).unwrap();
        let err = be.durable_file_bytes().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert!(err.to_string().contains(".s1"), "names the member: {err}");
        remove_set(&path, 2);
    }
}
