//! Pool-file codec: the on-disk format behind [`crate::FileBackend`].
//!
//! A v1 file-backed pool is **one** file laid out as
//!
//! ```text
//! [file header]  magic, format version, pool capacity      (fixed 24 B)
//! [snapshot]     full durable arena image at compaction     (one record)
//! [batch]*       one checksummed record per fence           (append-only)
//! ```
//!
//! A v2 **pool set** splits the journal across one file per address
//! shard so recovery can scan them in parallel:
//!
//! ```text
//! pool          [set header: base]  [snapshot]  [seq-mark: snap_seq]
//! pool.s0       [set header: shard 0]  [shard batch]*
//! pool.s1       [set header: shard 1]  [shard batch]*
//! ...
//! ```
//!
//! Every shard-batch record carries the **global** batch sequence plus a
//! bitmask of the shards that fence touched, so recovery merges the
//! per-shard journals back into one global order: a sequence is durable
//! only when *every* shard in its mask holds the record, and the durable
//! frontier is the largest prefix of complete sequences. The base file's
//! seq-mark pins the sequence the snapshot folded in; shard records below
//! it are stale leftovers of an interrupted post-compaction truncation
//! and are ignored.
//!
//! A v3 pool keeps the same file layout but writes **compact batch
//! records**: the fence's line set is deduplicated last-write-wins,
//! sorted by address, and the addresses are stored as varint *deltas*
//! over line indices instead of 8-byte absolutes. The header version
//! distinguishes the layouts — a v3 header with a zero geometry word is
//! a single-file pool, nonzero a set member — while the **record tag**
//! (not the header) names each record's codec, so every replay scanner
//! accepts both record generations in any journal: a v1/v2 pool keeps
//! replaying bit-identically under a v3 build and simply accumulates v3
//! records from then on (mixed journals are legal).
//!
//! Every record is framed as `[tag: u32][body_len: u32][body][fnv64 of
//! tag+len+body]`, so the replay scanner can always tell a *torn tail*
//! (the process died mid-`write(2)`) from a complete record: if the
//! remaining bytes cannot hold the frame, or the checksum does not match,
//! the scan stops **at the last complete record** and reports the torn
//! suffix for truncation. A batch record is the durability unit — exactly
//! the lines one `sfence` made durable — so a torn tail never resurrects
//! a partial fence: recovery lands on the previous complete fence, never
//! a partial batch.
//!
//! The codec is pure (byte slices in, byte vectors out, no IO) so the
//! property tests below can fuzz records and tear journals at every
//! offset without touching a filesystem.

use crate::line::CACHELINE;

/// Pool-file magic ("MODPOOLF").
pub const FILE_MAGIC: u64 = 0x4D4F_4450_4F4F_4C46;
/// On-disk format version (single-file pools).
pub const FORMAT_VERSION: u32 = 1;
/// On-disk format version for pool-set members (base + shard journals).
pub const SET_FORMAT_VERSION: u32 = 2;
/// On-disk format version for v3 pools (compact varint/delta batch
/// records). The geometry word routes the open: zero means a
/// single-file pool, nonzero a pool-set member.
pub const V3_FORMAT_VERSION: u32 = 3;
/// Bytes of the fixed file header.
pub const HEADER_BYTES: usize = 24;
/// `shard_index` sentinel naming the base (snapshot) member of a set.
pub const SHARD_BASE: u16 = 0xFFFF;
/// Most shards a set can have (the touched-shard mask is a `u64`).
pub const MAX_SHARDS: u16 = 64;

/// Record tag: a full durable-arena snapshot (compaction point).
const TAG_SNAPSHOT: u32 = 0x534E_4150; // "SNAP"
/// Record tag: one fence's worth of durable lines.
const TAG_BATCH: u32 = 0x4241_5443; // "BATC"
/// Record tag: one shard's slice of a fence, tagged with the global
/// sequence and the mask of shards the fence touched (pool sets only).
const TAG_SHARD_BATCH: u32 = 0x5342_4154; // "SBAT"
/// Record tag: the base file's sequence mark — the first global sequence
/// *not* folded into the snapshot it follows (pool sets only).
const TAG_SEQ_MARK: u32 = 0x5345_514D; // "SEQM"
/// Record tag: a compact (varint/delta) batch record.
const TAG_BATCH_V3: u32 = 0x4241_5433; // "BAT3"
/// Record tag: a compact shard-batch record (pool sets only).
const TAG_SHARD_BATCH_V3: u32 = 0x5342_4133; // "SBA3"

/// Why a batch of lines became durable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchKind {
    /// An `sfence` ordered the lines: the normal one-record-per-fence
    /// append (one per FASE batch on the MOD commit path).
    Fence,
    /// `Inflight { done_ns }` lines whose background drain had already
    /// completed — persisted without a fence (a store racing an in-flight
    /// writeback, or drained-but-unfenced lines at an orderly
    /// checkpoint). The crash model says these reached the medium.
    Drained,
}

impl BatchKind {
    fn to_u32(self) -> u32 {
        match self {
            BatchKind::Fence => 0,
            BatchKind::Drained => 1,
        }
    }

    fn from_u32(v: u32) -> Option<BatchKind> {
        match v {
            0 => Some(BatchKind::Fence),
            1 => Some(BatchKind::Drained),
            _ => None,
        }
    }
}

/// One cacheline's durable image: address and contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineImage {
    /// Line-aligned pool address.
    pub addr: u64,
    /// The 64 content bytes.
    pub data: [u8; CACHELINE as usize],
}

/// One decoded batch record.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRecord {
    /// Monotonic sequence number (debugging/ordering sanity).
    pub seq: u64,
    /// Why the lines became durable.
    pub kind: BatchKind,
    /// Simulated time of the fence (bit-exact f64).
    pub fence_ns: f64,
    /// The lines this record makes durable.
    pub lines: Vec<LineImage>,
}

/// One snapshot extent: a contiguous run of durable bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotExtent {
    /// Pool address of the first byte.
    pub addr: u64,
    /// The bytes.
    pub data: Vec<u8>,
}

/// FNV-1a 64-bit checksum (dependency-free, good torn-write detector).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Appends a canonical LEB128 varint (7 payload bits per byte, high bit
/// = continuation, no redundant trailing zero bytes).
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a canonical LEB128 varint at `*at`, advancing it past the
/// encoding. `None` on truncation, 64-bit overflow, or a non-canonical
/// encoding (a redundant trailing zero byte) — the v3 decoders treat all
/// three as a malformed record, i.e. a torn tail.
fn read_varint(b: &[u8], at: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = b.get(*at)?;
        *at += 1;
        if shift > 63 || (shift == 63 && byte & 0x7E != 0) {
            return None; // would overflow u64
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            if byte == 0 && shift != 0 {
                return None; // non-canonical: redundant high byte
            }
            return Some(v);
        }
        shift += 7;
    }
}

/// Encodes the fixed file header.
pub fn encode_header(capacity: u64) -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[0..8].copy_from_slice(&FILE_MAGIC.to_le_bytes());
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // [12..16) reserved (zero).
    out[16..24].copy_from_slice(&capacity.to_le_bytes());
    out
}

/// Encodes the fixed file header of a v3 single-file pool (zero
/// geometry word).
pub fn encode_header_v3(capacity: u64) -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[0..8].copy_from_slice(&FILE_MAGIC.to_le_bytes());
    out[8..12].copy_from_slice(&V3_FORMAT_VERSION.to_le_bytes());
    // [12..16) geometry (zero: single-file).
    out[16..24].copy_from_slice(&capacity.to_le_bytes());
    out
}

/// Decodes and validates a single-file pool header (v1, or v3 with a
/// zero geometry word), returning the pool capacity.
pub fn decode_header(bytes: &[u8]) -> Result<u64, ReplayError> {
    match header_version(bytes)? {
        FORMAT_VERSION => Ok(read_u64(bytes, 16)),
        V3_FORMAT_VERSION => {
            if read_u32(bytes, 12) != 0 {
                return Err(ReplayError::NotAPool(
                    "pool-set member where a single-file pool belongs",
                ));
            }
            Ok(read_u64(bytes, 16))
        }
        v => Err(ReplayError::UnsupportedVersion(v)),
    }
}

/// Whether a pool header names a set member (per-shard journals) or a
/// single-file pool — the routing decision behind `FileBackend::open`.
/// v1 is always single-file and v2 always a set member; a v3 header is
/// a set member exactly when its geometry word is nonzero.
pub fn is_set_member(bytes: &[u8]) -> Result<bool, ReplayError> {
    match header_version(bytes)? {
        FORMAT_VERSION => Ok(false),
        SET_FORMAT_VERSION => Ok(true),
        V3_FORMAT_VERSION => Ok(read_u32(bytes, 12) != 0),
        v => Err(ReplayError::UnsupportedVersion(v)),
    }
}

/// The on-disk format version of a pool file, if it is one at all. Used
/// to route an `open` to the v1 single-file or v2 pool-set reader.
pub fn header_version(bytes: &[u8]) -> Result<u32, ReplayError> {
    if bytes.len() < HEADER_BYTES {
        return Err(ReplayError::NotAPool("file shorter than the header"));
    }
    if read_u64(bytes, 0) != FILE_MAGIC {
        return Err(ReplayError::NotAPool("bad magic"));
    }
    Ok(read_u32(bytes, 8))
}

/// Decoded v2 pool-set member header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SetHeader {
    /// Pool capacity in bytes (identical across every member).
    pub capacity: u64,
    /// Number of journal shards in the set.
    pub shards: u16,
    /// Which member this file is: `0..shards` for a shard journal,
    /// [`SHARD_BASE`] for the base (snapshot) file.
    pub shard_index: u16,
}

/// Encodes a v2 pool-set member header. The reserved word of the v1
/// header carries the shard geometry: low half the shard count, high
/// half this member's index ([`SHARD_BASE`] for the base file).
pub fn encode_set_header(capacity: u64, shards: u16, shard_index: u16) -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[0..8].copy_from_slice(&FILE_MAGIC.to_le_bytes());
    out[8..12].copy_from_slice(&SET_FORMAT_VERSION.to_le_bytes());
    let geom = (shards as u32) | ((shard_index as u32) << 16);
    out[12..16].copy_from_slice(&geom.to_le_bytes());
    out[16..24].copy_from_slice(&capacity.to_le_bytes());
    out
}

/// Encodes a v3 pool-set member header (same geometry word as v2, but
/// the journal carries compact batch records).
pub fn encode_set_header_v3(capacity: u64, shards: u16, shard_index: u16) -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[0..8].copy_from_slice(&FILE_MAGIC.to_le_bytes());
    out[8..12].copy_from_slice(&V3_FORMAT_VERSION.to_le_bytes());
    let geom = (shards as u32) | ((shard_index as u32) << 16);
    out[12..16].copy_from_slice(&geom.to_le_bytes());
    out[16..24].copy_from_slice(&capacity.to_le_bytes());
    out
}

/// Decodes and validates a pool-set member header (v2, or v3 with a
/// nonzero geometry word).
pub fn decode_set_header(bytes: &[u8]) -> Result<SetHeader, ReplayError> {
    let version = header_version(bytes)?;
    if version != SET_FORMAT_VERSION && version != V3_FORMAT_VERSION {
        return Err(ReplayError::UnsupportedVersion(version));
    }
    let geom = read_u32(bytes, 12);
    if version == V3_FORMAT_VERSION && geom == 0 {
        return Err(ReplayError::NotAPool(
            "single-file pool where a pool-set member belongs",
        ));
    }
    let shards = (geom & 0xFFFF) as u16;
    let shard_index = (geom >> 16) as u16;
    if shards == 0 || shards > MAX_SHARDS {
        return Err(ReplayError::NotAPool("pool-set shard count out of range"));
    }
    if shard_index != SHARD_BASE && shard_index >= shards {
        return Err(ReplayError::NotAPool("pool-set shard index out of range"));
    }
    Ok(SetHeader {
        capacity: read_u64(bytes, 16),
        shards,
        shard_index,
    })
}

/// Frames `body` as a record: tag, length, body, checksum.
fn encode_record(tag: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + body.len());
    push_u32(&mut out, tag);
    push_u32(&mut out, body.len() as u32);
    out.extend_from_slice(body);
    let sum = fnv1a64(&out);
    push_u64(&mut out, sum);
    out
}

/// Encodes one batch record (the per-fence append).
pub fn encode_batch(seq: u64, kind: BatchKind, fence_ns: f64, lines: &[LineImage]) -> Vec<u8> {
    let mut body = Vec::with_capacity(24 + lines.len() * (8 + CACHELINE as usize));
    push_u64(&mut body, seq);
    push_u32(&mut body, kind.to_u32());
    push_u32(&mut body, lines.len() as u32);
    push_u64(&mut body, fence_ns.to_bits());
    for l in lines {
        push_u64(&mut body, l.addr);
        body.extend_from_slice(&l.data);
    }
    encode_record(TAG_BATCH, &body)
}

/// Encodes one shard-batch record: shard `slice` of the fence `seq`,
/// which touched the shards in `shard_mask` (bit *i* = shard *i*).
pub fn encode_shard_batch(
    seq: u64,
    kind: BatchKind,
    fence_ns: f64,
    shard_mask: u64,
    lines: &[LineImage],
) -> Vec<u8> {
    let mut body = Vec::with_capacity(32 + lines.len() * (8 + CACHELINE as usize));
    push_u64(&mut body, seq);
    push_u32(&mut body, kind.to_u32());
    push_u32(&mut body, lines.len() as u32);
    push_u64(&mut body, fence_ns.to_bits());
    push_u64(&mut body, shard_mask);
    for l in lines {
        push_u64(&mut body, l.addr);
        body.extend_from_slice(&l.data);
    }
    encode_record(TAG_SHARD_BATCH, &body)
}

/// Builds a v3 body: the line set deduplicated last-write-wins and
/// sorted by address, addresses delta-encoded as varints over line
/// indices (`addr / 64`): the first delta is the index itself, each
/// subsequent one the gap to the previous index minus one (indices are
/// strictly ascending). `fence_ns` stays a bit-exact 8-byte f64.
fn encode_v3_body(
    seq: u64,
    kind: BatchKind,
    fence_ns: f64,
    shard_mask: Option<u64>,
    lines: &[LineImage],
) -> Vec<u8> {
    use std::collections::BTreeMap;
    let mut sorted: BTreeMap<u64, &[u8; CACHELINE as usize]> = BTreeMap::new();
    for l in lines {
        debug_assert_eq!(l.addr % CACHELINE, 0, "v3 records hold whole lines");
        sorted.insert(l.addr / CACHELINE, &l.data);
    }
    let mut body = Vec::with_capacity(24 + sorted.len() * (3 + CACHELINE as usize));
    push_varint(&mut body, seq);
    body.push(kind.to_u32() as u8);
    push_varint(&mut body, sorted.len() as u64);
    push_u64(&mut body, fence_ns.to_bits());
    if let Some(mask) = shard_mask {
        push_varint(&mut body, mask);
    }
    let mut prev: Option<u64> = None;
    for (&index, data) in &sorted {
        let delta = match prev {
            None => index,
            Some(p) => index - p - 1,
        };
        push_varint(&mut body, delta);
        body.extend_from_slice(&data[..]);
        prev = Some(index);
    }
    body
}

/// Encodes one compact (v3) batch record. The line set is deduplicated
/// last-write-wins and sorted by address before encoding, so the decoded
/// record may be smaller than the input. Addresses must be line-aligned.
pub fn encode_batch_v3(seq: u64, kind: BatchKind, fence_ns: f64, lines: &[LineImage]) -> Vec<u8> {
    encode_record(
        TAG_BATCH_V3,
        &encode_v3_body(seq, kind, fence_ns, None, lines),
    )
}

/// Encodes one compact (v3) shard-batch record; see [`encode_batch_v3`]
/// and [`encode_shard_batch`].
pub fn encode_shard_batch_v3(
    seq: u64,
    kind: BatchKind,
    fence_ns: f64,
    shard_mask: u64,
    lines: &[LineImage],
) -> Vec<u8> {
    encode_record(
        TAG_SHARD_BATCH_V3,
        &encode_v3_body(seq, kind, fence_ns, Some(shard_mask), lines),
    )
}

/// Decodes a v3 body (batch, or shard batch when `with_mask`), returning
/// the record and its shard mask (0 for plain batches). `None` marks a
/// malformed record — truncation, a non-canonical varint, an index
/// overflow, or trailing bytes — which replay treats as a torn tail.
fn decode_v3_body(body: &[u8], with_mask: bool) -> Option<(BatchRecord, u64)> {
    let mut at = 0usize;
    let seq = read_varint(body, &mut at)?;
    let kind = BatchKind::from_u32(*body.get(at)? as u32)?;
    at += 1;
    let n = read_varint(body, &mut at)?;
    if body.len() < at + 8 {
        return None;
    }
    let fence_ns = f64::from_bits(read_u64(body, at));
    at += 8;
    let shard_mask = if with_mask {
        let mask = read_varint(body, &mut at)?;
        if mask == 0 {
            return None;
        }
        mask
    } else {
        0
    };
    // Each line needs at least one delta byte plus its 64 content bytes;
    // a count the remaining body cannot hold is malformed (and must not
    // drive a huge allocation).
    if n as u128 * (1 + CACHELINE as u128) > (body.len() - at) as u128 {
        return None;
    }
    let mut lines = Vec::with_capacity(n as usize);
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let delta = read_varint(body, &mut at)?;
        let index = match prev {
            None => delta,
            Some(p) => p.checked_add(delta)?.checked_add(1)?,
        };
        let addr = index.checked_mul(CACHELINE)?;
        if body.len() < at + CACHELINE as usize {
            return None;
        }
        let mut data = [0u8; CACHELINE as usize];
        data.copy_from_slice(&body[at..at + CACHELINE as usize]);
        at += CACHELINE as usize;
        lines.push(LineImage { addr, data });
        prev = Some(index);
    }
    (at == body.len()).then_some((
        BatchRecord {
            seq,
            kind,
            fence_ns,
            lines,
        },
        shard_mask,
    ))
}

/// Encodes the base file's sequence mark: the first global sequence not
/// folded into the preceding snapshot.
pub fn encode_seq_mark(snap_seq: u64) -> Vec<u8> {
    encode_record(TAG_SEQ_MARK, &snap_seq.to_le_bytes())
}

/// Encodes a snapshot record from durable extents.
pub fn encode_snapshot(extents: &[SnapshotExtent]) -> Vec<u8> {
    let payload: usize = extents.iter().map(|e| 16 + e.data.len()).sum();
    let mut body = Vec::with_capacity(8 + payload);
    push_u64(&mut body, extents.len() as u64);
    for e in extents {
        push_u64(&mut body, e.addr);
        push_u64(&mut body, e.data.len() as u64);
        body.extend_from_slice(&e.data);
    }
    encode_record(TAG_SNAPSHOT, &body)
}

/// A hard replay failure: the file is not a pool at all (a torn tail is
/// *not* an error — it is the expected crash outcome and is reported in
/// [`Replay::torn_bytes`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The header is missing or the magic does not match.
    NotAPool(&'static str),
    /// The header names a format version this binary does not read.
    UnsupportedVersion(u32),
    /// The mandatory snapshot record (directly after the header) is
    /// damaged: with no base image the journal cannot be replayed.
    SnapshotDamaged,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::NotAPool(why) => write!(f, "not a MOD pool file: {why}"),
            ReplayError::UnsupportedVersion(v) => write!(f, "unsupported pool format v{v}"),
            ReplayError::SnapshotDamaged => write!(f, "pool snapshot record damaged"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The result of scanning a pool file.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Pool capacity from the header.
    pub capacity: u64,
    /// The snapshot's durable extents (the base image).
    pub extents: Vec<SnapshotExtent>,
    /// Every complete batch record after the snapshot, in journal order.
    pub batches: Vec<BatchRecord>,
    /// Length of the valid prefix; bytes past this are the torn tail and
    /// should be truncated before appending resumes.
    pub valid_len: usize,
    /// Bytes discarded as a torn/corrupt tail.
    pub torn_bytes: usize,
}

enum Scan {
    Record {
        tag: u32,
        body: Vec<u8>,
        next: usize,
    },
    Torn,
}

/// Scans one framed record at `at`. Anything short, oversized or
/// checksum-failing is `Torn` — the crash model's "partial write".
fn scan_record(bytes: &[u8], at: usize) -> Scan {
    let remaining = bytes.len() - at;
    if remaining < 16 {
        return Scan::Torn;
    }
    let body_len = read_u32(bytes, at + 4) as usize;
    let total = match body_len.checked_add(16) {
        Some(t) if t <= remaining => t,
        _ => return Scan::Torn, // length field torn or record truncated
    };
    let sum = read_u64(bytes, at + 8 + body_len);
    if fnv1a64(&bytes[at..at + 8 + body_len]) != sum {
        return Scan::Torn;
    }
    Scan::Record {
        tag: read_u32(bytes, at),
        body: bytes[at + 8..at + 8 + body_len].to_vec(),
        next: at + total,
    }
}

fn decode_batch_body(body: &[u8]) -> Option<BatchRecord> {
    if body.len() < 24 {
        return None;
    }
    let seq = read_u64(body, 0);
    let kind = BatchKind::from_u32(read_u32(body, 8))?;
    let n = read_u32(body, 12) as usize;
    let fence_ns = f64::from_bits(read_u64(body, 16));
    let line_bytes = 8 + CACHELINE as usize;
    if body.len() != 24 + n * line_bytes {
        return None;
    }
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let at = 24 + i * line_bytes;
        let mut data = [0u8; CACHELINE as usize];
        data.copy_from_slice(&body[at + 8..at + line_bytes]);
        lines.push(LineImage {
            addr: read_u64(body, at),
            data,
        });
    }
    Some(BatchRecord {
        seq,
        kind,
        fence_ns,
        lines,
    })
}

fn decode_snapshot_body(body: &[u8]) -> Option<Vec<SnapshotExtent>> {
    if body.len() < 8 {
        return None;
    }
    let n = read_u64(body, 0) as usize;
    let mut extents = Vec::with_capacity(n);
    let mut at = 8usize;
    for _ in 0..n {
        if body.len() - at < 16 {
            return None;
        }
        let addr = read_u64(body, at);
        let len = read_u64(body, at + 8) as usize;
        at += 16;
        if body.len() - at < len {
            return None;
        }
        extents.push(SnapshotExtent {
            addr,
            data: body[at..at + len].to_vec(),
        });
        at += len;
    }
    (at == body.len()).then_some(extents)
}

/// Replays a pool file image: header, snapshot, then every complete batch
/// record. Scanning stops at the first torn or corrupt record — the state
/// recovered is exactly the last complete fence, never a partial batch.
pub fn replay(bytes: &[u8]) -> Result<Replay, ReplayError> {
    let capacity = decode_header(bytes)?;
    // The snapshot directly after the header is mandatory: compaction
    // writes the whole file (header + snapshot) before the atomic rename,
    // so a pool file can never legally have a torn snapshot.
    let (extents, mut at) = match scan_record(bytes, HEADER_BYTES) {
        Scan::Record {
            tag: TAG_SNAPSHOT,
            body,
            next,
        } => (
            decode_snapshot_body(&body).ok_or(ReplayError::SnapshotDamaged)?,
            next,
        ),
        _ => return Err(ReplayError::SnapshotDamaged),
    };
    let mut batches = Vec::new();
    loop {
        if at == bytes.len() {
            break;
        }
        // Both record generations are accepted in any journal: a pre-v3
        // pool keeps its v1 records and accumulates v3 appends.
        match scan_record(bytes, at) {
            Scan::Record {
                tag: TAG_BATCH,
                body,
                next,
            } => match decode_batch_body(&body) {
                Some(b) => {
                    batches.push(b);
                    at = next;
                }
                None => break, // framed but malformed: stop, truncate
            },
            Scan::Record {
                tag: TAG_BATCH_V3,
                body,
                next,
            } => match decode_v3_body(&body, false) {
                Some((b, _)) => {
                    batches.push(b);
                    at = next;
                }
                None => break,
            },
            // An unknown tag or a torn frame ends the valid prefix.
            _ => break,
        }
    }
    Ok(Replay {
        capacity,
        extents,
        batches,
        valid_len: at,
        torn_bytes: bytes.len() - at,
    })
}

/// One decoded shard-batch record: the global batch plus the mask of
/// shards its fence touched.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardBatchRecord {
    /// The batch slice this journal holds (lines restricted to the
    /// owning shard's address range, still in ascending address order).
    pub batch: BatchRecord,
    /// Bit *i* set ⇔ shard *i* holds a slice of this fence.
    pub shard_mask: u64,
}

fn decode_shard_batch_body(body: &[u8]) -> Option<ShardBatchRecord> {
    if body.len() < 32 {
        return None;
    }
    let seq = read_u64(body, 0);
    let kind = BatchKind::from_u32(read_u32(body, 8))?;
    let n = read_u32(body, 12) as usize;
    let fence_ns = f64::from_bits(read_u64(body, 16));
    let shard_mask = read_u64(body, 24);
    let line_bytes = 8 + CACHELINE as usize;
    if shard_mask == 0 || body.len() != 32 + n * line_bytes {
        return None;
    }
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let at = 32 + i * line_bytes;
        let mut data = [0u8; CACHELINE as usize];
        data.copy_from_slice(&body[at + 8..at + line_bytes]);
        lines.push(LineImage {
            addr: read_u64(body, at),
            data,
        });
    }
    Some(ShardBatchRecord {
        batch: BatchRecord {
            seq,
            kind,
            fence_ns,
            lines,
        },
        shard_mask,
    })
}

/// The decoded base member of a pool set: the snapshot image plus the
/// sequence mark that fences its journals.
#[derive(Clone, Debug)]
pub struct SetBase {
    /// Pool capacity from the header.
    pub capacity: u64,
    /// Number of journal shards in the set.
    pub shards: u16,
    /// The snapshot's durable extents (the base image).
    pub extents: Vec<SnapshotExtent>,
    /// First global sequence *not* folded into the snapshot: shard
    /// records below this are stale and must be ignored.
    pub snap_seq: u64,
}

/// Replays a pool-set base file: set header (base member), snapshot,
/// sequence mark. The base is only ever written whole (create, or
/// compaction's write-then-rename), so any damage is a hard error — a
/// torn base is not a legal crash outcome.
pub fn replay_set_base(bytes: &[u8]) -> Result<SetBase, ReplayError> {
    let hdr = decode_set_header(bytes)?;
    if hdr.shard_index != SHARD_BASE {
        return Err(ReplayError::NotAPool(
            "shard journal where the base file belongs",
        ));
    }
    let (extents, at) = match scan_record(bytes, HEADER_BYTES) {
        Scan::Record {
            tag: TAG_SNAPSHOT,
            body,
            next,
        } => (
            decode_snapshot_body(&body).ok_or(ReplayError::SnapshotDamaged)?,
            next,
        ),
        _ => return Err(ReplayError::SnapshotDamaged),
    };
    let snap_seq = match scan_record(bytes, at) {
        Scan::Record {
            tag: TAG_SEQ_MARK,
            body,
            next,
        } if body.len() == 8 && next == bytes.len() => read_u64(&body, 0),
        _ => return Err(ReplayError::SnapshotDamaged),
    };
    Ok(SetBase {
        capacity: hdr.capacity,
        shards: hdr.shards,
        extents,
        snap_seq,
    })
}

/// One scanned shard journal: its complete records plus, for each, the
/// byte offset just past it (so the caller can truncate the journal back
/// to any record boundary — the durable frontier may sit below the last
/// complete record when a sibling journal lost part of a later fence).
#[derive(Clone, Debug)]
pub struct ShardReplay {
    /// The member header (capacity, shard count, this journal's index).
    pub header: SetHeader,
    /// Every complete shard-batch record, in journal (= sequence) order.
    pub records: Vec<ShardBatchRecord>,
    /// `ends[i]` = byte offset just past `records[i]`.
    pub ends: Vec<usize>,
    /// Length of the valid prefix (end of the last complete record).
    pub valid_len: usize,
    /// Bytes past `valid_len` — the torn tail.
    pub torn_bytes: usize,
}

/// Scans one shard journal: set header, then shard-batch records until
/// the torn tail. Pure and thread-safe — pool-set recovery runs one scan
/// per journal in parallel.
pub fn replay_shard_journal(bytes: &[u8]) -> Result<ShardReplay, ReplayError> {
    let header = decode_set_header(bytes)?;
    if header.shard_index == SHARD_BASE {
        return Err(ReplayError::NotAPool(
            "base file where a shard journal belongs",
        ));
    }
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut at = HEADER_BYTES;
    loop {
        if at == bytes.len() {
            break;
        }
        match scan_record(bytes, at) {
            Scan::Record {
                tag: TAG_SHARD_BATCH,
                body,
                next,
            } => match decode_shard_batch_body(&body) {
                Some(r) => {
                    records.push(r);
                    ends.push(next);
                    at = next;
                }
                None => break,
            },
            Scan::Record {
                tag: TAG_SHARD_BATCH_V3,
                body,
                next,
            } => match decode_v3_body(&body, true) {
                Some((batch, shard_mask)) => {
                    records.push(ShardBatchRecord { batch, shard_mask });
                    ends.push(next);
                    at = next;
                }
                None => break,
            },
            _ => break,
        }
    }
    Ok(ShardReplay {
        header,
        records,
        ends,
        valid_len: at,
        torn_bytes: bytes.len() - at,
    })
}

/// The merge of a pool set's shard journals back into one global order.
#[derive(Clone, Debug, Default)]
pub struct MergedJournal {
    /// Every *complete* batch at or above the snapshot's sequence mark,
    /// in ascending sequence order, each with its slices concatenated in
    /// shard-index order. Because a fence's lines are sorted by address
    /// before being sliced across the set's contiguous address ranges,
    /// this restores exactly the line order a v1 single journal records —
    /// which is what makes pool-set replay bit-identical to serial
    /// single-journal replay.
    pub batches: Vec<BatchRecord>,
    /// The next expected global sequence: every sequence below it is
    /// complete and merged; everything at or above it (incomplete sets,
    /// records past a gap) is discarded.
    pub frontier: u64,
    /// Complete shard records discarded for sitting at or past the
    /// frontier (their fence lost a slice in a sibling journal).
    pub dropped_records: usize,
}

/// Merges per-shard records (indexed by shard) into the global batch
/// order, computing the durable frontier.
///
/// A sequence is durable only if every shard in its mask holds its
/// record. Sequences are allocated densely, so a missing sequence (every
/// slice torn) or an incomplete one ends the durable prefix: later
/// records — even complete ones — belong to fences that were never fully
/// on disk and are dropped, exactly as a v1 journal drops everything
/// past its first torn record. Records below `snap_seq` are stale
/// leftovers of an interrupted post-compaction truncation; their content
/// is already in the snapshot and they are skipped entirely.
pub fn merge_shard_records(per_shard: &[Vec<ShardBatchRecord>], snap_seq: u64) -> MergedJournal {
    use std::collections::BTreeMap;
    struct Pending {
        want: u64,
        have: u64,
        kind: BatchKind,
        fence_ns_bits: u64,
        slices: Vec<(usize, Vec<LineImage>)>,
        damaged: bool,
    }
    let mut by_seq: BTreeMap<u64, Pending> = BTreeMap::new();
    for (shard, records) in per_shard.iter().enumerate() {
        for r in records {
            if r.batch.seq < snap_seq {
                continue;
            }
            let p = by_seq.entry(r.batch.seq).or_insert_with(|| Pending {
                want: r.shard_mask,
                have: 0,
                kind: r.batch.kind,
                fence_ns_bits: r.batch.fence_ns.to_bits(),
                slices: Vec::new(),
                damaged: false,
            });
            // Every slice of a fence carries identical metadata; a
            // mismatch (or a duplicate slice) means the set is not a
            // consistent image of that fence.
            if p.want != r.shard_mask
                || p.kind != r.batch.kind
                || p.fence_ns_bits != r.batch.fence_ns.to_bits()
                || p.have & (1 << shard) != 0
                || r.shard_mask & (1 << shard) == 0
            {
                p.damaged = true;
                continue;
            }
            p.have |= 1 << shard;
            p.slices.push((shard, r.batch.lines.clone()));
        }
    }
    let mut batches = Vec::new();
    let mut frontier = snap_seq;
    for (&seq, p) in by_seq.iter_mut() {
        if seq != frontier || p.damaged || p.have != p.want {
            break;
        }
        p.slices.sort_by_key(|(shard, _)| *shard);
        let lines = p.slices.drain(..).flat_map(|(_, l)| l).collect();
        batches.push(BatchRecord {
            seq,
            kind: p.kind,
            fence_ns: f64::from_bits(p.fence_ns_bits),
            lines,
        });
        frontier = seq + 1;
    }
    let dropped_records = by_seq
        .range(frontier..)
        .map(|(_, p)| p.have.count_ones() as usize)
        .sum();
    MergedJournal {
        batches,
        frontier,
        dropped_records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* for fuzzed records.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn fuzz_line(rng: &mut XorShift) -> LineImage {
        let mut data = [0u8; 64];
        for chunk in data.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next().to_le_bytes());
        }
        LineImage {
            addr: (rng.next() % (1 << 26)) & !63,
            data,
        }
    }

    fn fuzz_batch(rng: &mut XorShift) -> BatchRecord {
        let n = (rng.next() % 9) as usize;
        BatchRecord {
            seq: rng.next(),
            kind: if rng.next() % 4 == 0 {
                BatchKind::Drained
            } else {
                BatchKind::Fence
            },
            fence_ns: f64::from_bits(rng.next() % (1 << 62)).abs(),
            lines: (0..n).map(|_| fuzz_line(rng)).collect(),
        }
    }

    fn file_with(extents: &[SnapshotExtent], batches: &[BatchRecord]) -> Vec<u8> {
        let mut f = encode_header(1 << 26).to_vec();
        f.extend_from_slice(&encode_snapshot(extents));
        for b in batches {
            f.extend_from_slice(&encode_batch(b.seq, b.kind, b.fence_ns, &b.lines));
        }
        f
    }

    #[test]
    fn fuzzed_batches_roundtrip() {
        let mut rng = XorShift(0x5EED_CAFE);
        for _ in 0..200 {
            let batch = fuzz_batch(&mut rng);
            let file = file_with(&[], std::slice::from_ref(&batch));
            let r = replay(&file).unwrap();
            assert_eq!(r.capacity, 1 << 26);
            assert_eq!(r.batches, vec![batch]);
            assert_eq!(r.torn_bytes, 0);
            assert_eq!(r.valid_len, file.len());
        }
    }

    #[test]
    fn fuzzed_snapshots_roundtrip() {
        let mut rng = XorShift(0x00A1_1CE5);
        for _ in 0..50 {
            let n = (rng.next() % 6) as usize;
            let extents: Vec<SnapshotExtent> = (0..n)
                .map(|_| SnapshotExtent {
                    addr: rng.next() % (1 << 20),
                    data: (0..(rng.next() % 300)).map(|_| rng.next() as u8).collect(),
                })
                .collect();
            let r = replay(&file_with(&extents, &[])).unwrap();
            assert_eq!(r.extents, extents);
        }
    }

    #[test]
    fn torn_tail_recovers_to_last_complete_fence_at_every_offset() {
        // Truncate the journal at EVERY byte length: replay must always
        // recover exactly the batches whose records fit completely —
        // never a partial batch, never an error.
        let mut rng = XorShift(7);
        let batches: Vec<BatchRecord> = (0..5).map(|_| fuzz_batch(&mut rng)).collect();
        let file = file_with(&[], &batches);
        // Record boundaries: offsets at which k complete batches end.
        let mut boundaries = vec![HEADER_BYTES + encode_snapshot(&[]).len()];
        for b in &batches {
            boundaries.push(
                boundaries.last().unwrap()
                    + encode_batch(b.seq, b.kind, b.fence_ns, &b.lines).len(),
            );
        }
        for cut in boundaries[0]..=file.len() {
            let r = replay(&file[..cut]).unwrap();
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                r.batches.len(),
                complete,
                "cut at {cut}: must land on the last complete fence"
            );
            assert_eq!(r.batches[..], batches[..complete]);
            assert_eq!(r.valid_len, boundaries[complete]);
            assert_eq!(r.torn_bytes, cut - boundaries[complete]);
        }
    }

    #[test]
    fn corrupt_byte_in_tail_record_discards_it() {
        let mut rng = XorShift(99);
        let batches: Vec<BatchRecord> = (0..3).map(|_| fuzz_batch(&mut rng)).collect();
        let clean = file_with(&[], &batches);
        let last_len = encode_batch(
            batches[2].seq,
            batches[2].kind,
            batches[2].fence_ns,
            &batches[2].lines,
        )
        .len();
        // Flip one byte inside the last record: checksum must reject it.
        for victim in [clean.len() - last_len + 2, clean.len() - 5] {
            let mut file = clean.clone();
            file[victim] ^= 0x40;
            let r = replay(&file).unwrap();
            assert_eq!(r.batches[..], batches[..2], "corrupt record dropped");
            assert!(r.torn_bytes > 0);
        }
    }

    #[test]
    fn header_validation() {
        assert!(matches!(replay(&[]), Err(ReplayError::NotAPool(_))));
        assert!(matches!(replay(&[0u8; 64]), Err(ReplayError::NotAPool(_))));
        let mut bad_version = encode_header(1 << 20).to_vec();
        bad_version[8] = 99;
        bad_version.extend_from_slice(&encode_snapshot(&[]));
        assert!(matches!(
            replay(&bad_version),
            Err(ReplayError::UnsupportedVersion(99))
        ));
        // Missing or torn snapshot is a hard error, not a torn tail.
        let headless = encode_header(1 << 20).to_vec();
        assert!(matches!(
            replay(&headless),
            Err(ReplayError::SnapshotDamaged)
        ));
    }

    #[test]
    fn oversized_length_field_is_torn_not_a_panic() {
        // A torn length field can claim a huge body: the scanner must
        // treat it as torn instead of slicing out of bounds.
        let mut file = file_with(&[], &[]);
        file.extend_from_slice(&TAG_BATCH.to_le_bytes());
        file.extend_from_slice(&u32::MAX.to_le_bytes());
        file.extend_from_slice(&[0u8; 32]);
        let r = replay(&file).unwrap();
        assert_eq!(r.batches.len(), 0);
        assert_eq!(r.torn_bytes, 40);
    }

    /// Fixed 4-shard geometry for the pool-set tests: contiguous equal
    /// address ranges, the same map [`crate::FileBackend`] uses.
    const SET_SHARDS: usize = 4;
    const SET_SPAN: u64 = (1 << 26) / SET_SHARDS as u64;

    fn shard_of(addr: u64) -> usize {
        ((addr / SET_SPAN) as usize).min(SET_SHARDS - 1)
    }

    /// Slices globally-ordered batches into per-shard journal images,
    /// returning the shard journal bytes plus each shard's records.
    fn shard_journals(batches: &[BatchRecord]) -> (Vec<Vec<u8>>, Vec<Vec<ShardBatchRecord>>) {
        let mut bytes: Vec<Vec<u8>> = (0..SET_SHARDS)
            .map(|i| encode_set_header(1 << 26, SET_SHARDS as u16, i as u16).to_vec())
            .collect();
        let mut records: Vec<Vec<ShardBatchRecord>> = vec![Vec::new(); SET_SHARDS];
        for b in batches {
            let mut slices: Vec<Vec<LineImage>> = vec![Vec::new(); SET_SHARDS];
            for l in &b.lines {
                slices[shard_of(l.addr)].push(l.clone());
            }
            let mask: u64 = slices
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_empty())
                .map(|(i, _)| 1u64 << i)
                .sum();
            // An empty fence never reaches the backend; every encoded
            // batch touches at least one shard.
            for (i, lines) in slices.into_iter().enumerate() {
                if lines.is_empty() {
                    continue;
                }
                bytes[i].extend_from_slice(&encode_shard_batch(
                    b.seq, b.kind, b.fence_ns, mask, &lines,
                ));
                records[i].push(ShardBatchRecord {
                    batch: BatchRecord {
                        seq: b.seq,
                        kind: b.kind,
                        fence_ns: b.fence_ns,
                        lines,
                    },
                    shard_mask: mask,
                });
            }
        }
        (bytes, records)
    }

    /// Dense-seq batches with sorted line addresses — the exact shape
    /// the `sfence` path appends.
    fn fenced_batches(rng: &mut XorShift, n: usize) -> Vec<BatchRecord> {
        (0..n as u64)
            .map(|seq| {
                let mut b = fuzz_batch(rng);
                b.seq = seq;
                if b.lines.is_empty() {
                    b.lines.push(fuzz_line(rng));
                }
                b.lines.sort_by_key(|l| l.addr);
                b.lines.dedup_by_key(|l| l.addr);
                b
            })
            .collect()
    }

    #[test]
    fn set_header_roundtrip_and_validation() {
        let h = encode_set_header(1 << 26, 4, 2);
        let d = decode_set_header(&h).unwrap();
        assert_eq!(
            d,
            SetHeader {
                capacity: 1 << 26,
                shards: 4,
                shard_index: 2
            }
        );
        let base = encode_set_header(1 << 20, 8, SHARD_BASE);
        assert_eq!(decode_set_header(&base).unwrap().shard_index, SHARD_BASE);
        // A v1 header is not a set member; a v2 header is not a v1 pool.
        assert!(matches!(
            decode_set_header(&encode_header(1 << 20)),
            Err(ReplayError::UnsupportedVersion(1))
        ));
        assert!(matches!(
            decode_header(&h),
            Err(ReplayError::UnsupportedVersion(2))
        ));
        assert!(decode_set_header(&encode_set_header(1, 4, 4)).is_err());
        assert!(decode_set_header(&encode_set_header(1, 0, 0)).is_err());
        assert!(decode_set_header(&encode_set_header(1, 65, 0)).is_err());
        assert_eq!(header_version(&h).unwrap(), SET_FORMAT_VERSION);
    }

    #[test]
    fn set_base_roundtrips_and_rejects_damage() {
        let extents = vec![SnapshotExtent {
            addr: 128,
            data: vec![7u8; 100],
        }];
        let mut f = encode_set_header(1 << 26, 3, SHARD_BASE).to_vec();
        f.extend_from_slice(&encode_snapshot(&extents));
        f.extend_from_slice(&encode_seq_mark(42));
        let base = replay_set_base(&f).unwrap();
        assert_eq!(base.shards, 3);
        assert_eq!(base.snap_seq, 42);
        assert_eq!(base.extents, extents);
        // The base is written whole then renamed: any tear is a hard
        // error, never a silently-truncated recovery.
        for cut in HEADER_BYTES..f.len() {
            assert!(replay_set_base(&f[..cut]).is_err(), "cut at {cut}");
        }
        // A shard journal is not a base.
        let j = encode_set_header(1 << 26, 3, 0);
        assert!(matches!(replay_set_base(&j), Err(ReplayError::NotAPool(_))));
    }

    #[test]
    fn pool_set_merge_is_bit_identical_to_single_journal_replay() {
        // The headline property, journal level: slice fenced batches
        // across 4 shard journals, scan each independently, merge — the
        // merged batches must equal the single v1 journal's replay,
        // record for record, line order and all.
        let mut rng = XorShift(0xD15C_0B07);
        let batches = fenced_batches(&mut rng, 24);
        let single = replay(&file_with(&[], &batches)).unwrap();
        let (bytes, _) = shard_journals(&batches);
        let scans: Vec<ShardReplay> = bytes
            .iter()
            .map(|b| replay_shard_journal(b).unwrap())
            .collect();
        let per_shard: Vec<Vec<ShardBatchRecord>> = scans.into_iter().map(|s| s.records).collect();
        let merged = merge_shard_records(&per_shard, 0);
        assert_eq!(merged.frontier, 24);
        assert_eq!(merged.dropped_records, 0);
        assert_eq!(merged.batches, single.batches);
    }

    #[test]
    fn pool_set_torn_tail_per_shard_at_every_offset_recovers_a_maximal_prefix() {
        // Truncate EACH shard journal at EVERY byte offset (siblings
        // intact): the merge must always converge on a prefix of the
        // global batch order — bit-identical to the single journal
        // truncated at the same frontier — and the frontier must be
        // maximal (the first dropped fence really lost a slice).
        let mut rng = XorShift(0x7EA2_7A11);
        let batches = fenced_batches(&mut rng, 12);
        let (bytes, full_records) = shard_journals(&batches);
        for victim in 0..SET_SHARDS {
            for cut in HEADER_BYTES..=bytes[victim].len() {
                let scan = replay_shard_journal(&bytes[victim][..cut]).unwrap();
                let mut per_shard: Vec<Vec<ShardBatchRecord>> = full_records.clone();
                per_shard[victim] = scan.records;
                let merged = merge_shard_records(&per_shard, 0);
                let n = merged.batches.len();
                assert_eq!(merged.frontier, n as u64, "cut {victim}@{cut}");
                assert_eq!(
                    merged.batches[..],
                    batches[..n],
                    "cut {victim}@{cut}: must be a bit-identical prefix"
                );
                // Maximality: the first dropped fence, if any, must have
                // lost its slice in the victim journal.
                if n < batches.len() {
                    let next = &batches[n];
                    let touched = next.lines.iter().any(|l| shard_of(l.addr) == victim);
                    let survived = per_shard[victim].iter().any(|r| r.batch.seq == next.seq);
                    assert!(
                        touched && !survived,
                        "cut {victim}@{cut}: fence {} dropped without cause",
                        next.seq
                    );
                }
            }
        }
    }

    #[test]
    fn stale_records_below_the_seq_mark_are_ignored() {
        // Crash between compaction's base rename and the journal
        // truncations: shard journals still hold records below the new
        // snap_seq. They are already folded into the snapshot and must
        // not cap the frontier or resurface.
        let mut rng = XorShift(0x57A1E);
        let batches = fenced_batches(&mut rng, 8);
        let (_, per_shard) = shard_journals(&batches);
        let merged = merge_shard_records(&per_shard, 5);
        assert_eq!(merged.frontier, 8);
        assert_eq!(merged.batches[..], batches[5..]);
        // ... including when a stale record is torn away entirely: only
        // sequences >= snap_seq gate the frontier.
        let mut holey = per_shard.clone();
        for recs in &mut holey {
            recs.retain(|r| r.batch.seq >= 3);
        }
        let merged = merge_shard_records(&holey, 5);
        assert_eq!(merged.batches[..], batches[5..]);
    }

    #[test]
    fn inconsistent_slices_end_the_durable_prefix() {
        let mut rng = XorShift(0xBAD);
        let batches = fenced_batches(&mut rng, 6);
        let (_, per_shard) = shard_journals(&batches);
        // Corrupt one fence's metadata in one shard: mask disagreement.
        let mut bad = per_shard.clone();
        'outer: for recs in bad.iter_mut() {
            for r in recs.iter_mut() {
                if r.batch.seq == 3 {
                    r.shard_mask ^= 1 << 63;
                    break 'outer;
                }
            }
        }
        let merged = merge_shard_records(&bad, 0);
        assert_eq!(merged.batches[..], batches[..3], "prefix before the damage");
        assert_eq!(merged.frontier, 3);
        assert!(merged.dropped_records > 0);
    }

    #[test]
    fn shard_batch_records_roundtrip_with_offsets() {
        let mut rng = XorShift(0x0FF5);
        let batches = fenced_batches(&mut rng, 5);
        let (bytes, records) = shard_journals(&batches);
        for (i, b) in bytes.iter().enumerate() {
            let scan = replay_shard_journal(b).unwrap();
            assert_eq!(scan.header.shard_index, i as u16);
            assert_eq!(scan.records, records[i]);
            assert_eq!(scan.torn_bytes, 0);
            assert_eq!(scan.valid_len, b.len());
            assert_eq!(scan.ends.last().copied().unwrap_or(HEADER_BYTES), b.len());
            // ends[] really are record boundaries: rescanning a prefix
            // cut at ends[k] yields exactly k+1 records.
            for (k, &end) in scan.ends.iter().enumerate() {
                let again = replay_shard_journal(&b[..end]).unwrap();
                assert_eq!(again.records.len(), k + 1);
                assert_eq!(again.torn_bytes, 0);
            }
        }
    }

    /// The v3 encoder's normalization: last-write-wins per address,
    /// ascending address order.
    fn v3_normalize(lines: &[LineImage]) -> Vec<LineImage> {
        let mut m = std::collections::BTreeMap::new();
        for l in lines {
            m.insert(l.addr, l.data);
        }
        m.into_iter()
            .map(|(addr, data)| LineImage { addr, data })
            .collect()
    }

    fn file_with_v3(extents: &[SnapshotExtent], batches: &[BatchRecord]) -> Vec<u8> {
        let mut f = encode_header_v3(1 << 26).to_vec();
        f.extend_from_slice(&encode_snapshot(extents));
        for b in batches {
            f.extend_from_slice(&encode_batch_v3(b.seq, b.kind, b.fence_ns, &b.lines));
        }
        f
    }

    #[test]
    fn varint_roundtrips_and_rejects_noncanonical() {
        let mut rng = XorShift(0x7A21_0717);
        let probe = |v: u64| {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut at = 0;
            assert_eq!(read_varint(&buf, &mut at), Some(v));
            assert_eq!(at, buf.len(), "no trailing bytes consumed or left");
            // Every strict prefix is truncation, not a value.
            for cut in 0..buf.len() {
                let mut at = 0;
                assert_eq!(read_varint(&buf[..cut], &mut at), None, "v={v} cut={cut}");
            }
        };
        for v in [0u64, 1, 127, 128, 129, 16383, 16384, u64::MAX - 1, u64::MAX] {
            probe(v);
        }
        for _ in 0..500 {
            let shift = rng.next() % 64;
            probe(rng.next() >> shift);
        }
        // Non-canonical: the same value padded with a redundant zero
        // continuation byte must be rejected, so every value has exactly
        // one encoding (re-encoding a decoded record is byte-identical).
        for v in [0u64, 1, 127, 300] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let last = buf.len() - 1;
            buf[last] |= 0x80;
            buf.push(0x00);
            let mut at = 0;
            assert_eq!(read_varint(&buf, &mut at), None, "padded v={v}");
        }
        // Overflow: 11 continuation bytes, or bit 64 and up set.
        let mut too_long = vec![0x80u8; 10];
        too_long.push(0x01);
        let mut at = 0;
        assert_eq!(read_varint(&too_long, &mut at), None);
        let mut overflow = vec![0xFFu8; 9];
        overflow.push(0x02); // bit 64
        let mut at = 0;
        assert_eq!(read_varint(&overflow, &mut at), None);
        let mut max = vec![0xFFu8; 9];
        max.push(0x01); // exactly u64::MAX
        let mut at = 0;
        assert_eq!(read_varint(&max, &mut at), Some(u64::MAX));
    }

    #[test]
    fn fuzzed_v3_batches_roundtrip() {
        // Same shape as `fuzzed_batches_roundtrip`, through the compact
        // codec: the decoded record is the encoder's normalized line set
        // (sorted, deduplicated last-write-wins), metadata bit-exact.
        let mut rng = XorShift(0x5EED_BA73);
        for _ in 0..200 {
            let batch = fuzz_batch(&mut rng);
            let file = file_with_v3(&[], std::slice::from_ref(&batch));
            let r = replay(&file).unwrap();
            assert_eq!(r.capacity, 1 << 26);
            assert_eq!(r.batches.len(), 1);
            assert_eq!(r.batches[0].seq, batch.seq);
            assert_eq!(r.batches[0].kind, batch.kind);
            assert_eq!(
                r.batches[0].fence_ns.to_bits(),
                batch.fence_ns.to_bits(),
                "fence_ns stays bit-exact through v3"
            );
            assert_eq!(r.batches[0].lines, v3_normalize(&batch.lines));
            assert_eq!(r.torn_bytes, 0);
            assert_eq!(r.valid_len, file.len());
        }
    }

    #[test]
    fn v3_dedup_is_last_write_wins() {
        let mk = |addr: u64, fill: u8| LineImage {
            addr,
            data: [fill; 64],
        };
        // Two writes to 0x1000 (the later wins), one to 0x0040, out of
        // address order on purpose.
        let lines = vec![mk(0x1000, 0xAA), mk(0x40, 0x11), mk(0x1000, 0xBB)];
        let file = file_with_v3(
            &[],
            &[BatchRecord {
                seq: 9,
                kind: BatchKind::Fence,
                fence_ns: 1.5,
                lines,
            }],
        );
        let r = replay(&file).unwrap();
        assert_eq!(
            r.batches[0].lines,
            vec![mk(0x40, 0x11), mk(0x1000, 0xBB)],
            "sorted ascending, duplicate collapsed to the last write"
        );
    }

    #[test]
    fn v3_records_are_smaller_than_v1() {
        // The win the compact codec exists for: sorted fence batches
        // (the real append shape) shrink per record, dramatically so for
        // address-local batches where most deltas are one byte.
        let mut rng = XorShift(0xC0DE_C355);
        let batches = fenced_batches(&mut rng, 30);
        let mut v1 = 0usize;
        let mut v3 = 0usize;
        for b in &batches {
            v1 += encode_batch(b.seq, b.kind, b.fence_ns, &b.lines).len();
            v3 += encode_batch_v3(b.seq, b.kind, b.fence_ns, &b.lines).len();
        }
        assert!(
            v3 < v1,
            "compact codec must shrink fenced batches: {v3} vs {v1}"
        );
        // A dense run of adjacent lines: every delta after the first is
        // one byte, so the per-line overhead drops from 8 B to ~1 B.
        let dense: Vec<LineImage> = (0..32u64)
            .map(|i| LineImage {
                addr: 0x8000 + i * 64,
                data: [i as u8; 64],
            })
            .collect();
        let v1 = encode_batch(1, BatchKind::Fence, 0.0, &dense).len();
        let v3 = encode_batch_v3(1, BatchKind::Fence, 0.0, &dense).len();
        assert!(
            (v3 as f64) < (v1 as f64) * 0.92,
            "dense batch must shrink ≥8%: v3={v3} v1={v1}"
        );
    }

    #[test]
    fn v3_torn_tail_recovers_to_last_complete_fence_at_every_offset() {
        // The v1 tear battery, replayed over compact records: truncate
        // at EVERY byte length — replay always lands on the last
        // complete fence, never a partial batch, never an error. Tears
        // mid-varint are exercised by construction.
        let mut rng = XorShift(0x7EA2_0003);
        let batches = fenced_batches(&mut rng, 5);
        let file = file_with_v3(&[], &batches);
        let mut boundaries = vec![HEADER_BYTES + encode_snapshot(&[]).len()];
        for b in &batches {
            boundaries.push(
                boundaries.last().unwrap()
                    + encode_batch_v3(b.seq, b.kind, b.fence_ns, &b.lines).len(),
            );
        }
        for cut in boundaries[0]..=file.len() {
            let r = replay(&file[..cut]).unwrap();
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                r.batches.len(),
                complete,
                "cut at {cut}: must land on the last complete fence"
            );
            assert_eq!(r.batches[..], batches[..complete]);
            assert_eq!(r.valid_len, boundaries[complete]);
            assert_eq!(r.torn_bytes, cut - boundaries[complete]);
        }
    }

    #[test]
    fn mixed_generation_journal_replays_in_order() {
        // A pre-upgrade pool keeps its v1 records and accumulates v3
        // appends: the record tag, not the header version, names each
        // record's codec, so one journal legally holds both.
        let mut rng = XorShift(0x3311_BEEF);
        let batches = fenced_batches(&mut rng, 9);
        for header in [encode_header(1 << 26), encode_header_v3(1 << 26)] {
            let mut f = header.to_vec();
            f.extend_from_slice(&encode_snapshot(&[]));
            for (i, b) in batches.iter().enumerate() {
                let rec = if i < 4 {
                    encode_batch(b.seq, b.kind, b.fence_ns, &b.lines)
                } else {
                    encode_batch_v3(b.seq, b.kind, b.fence_ns, &b.lines)
                };
                f.extend_from_slice(&rec);
            }
            let r = replay(&f).unwrap();
            assert_eq!(r.batches, batches, "both generations, one order");
            assert_eq!(r.torn_bytes, 0);
        }
    }

    #[test]
    fn v2_shard_set_with_v3_appends_merges_bit_identically() {
        // Mixed-version pool set: a v2-era set (v2 headers, v2 records)
        // that a v3 build appended compact records to. Scan + merge must
        // equal the single-journal replay of the same batches.
        let mut rng = XorShift(0xAB5E_7001);
        let batches = fenced_batches(&mut rng, 16);
        let (mut bytes, _) = shard_journals(&batches[..8]); // v2 era
        for b in &batches[8..] {
            // Append the upgrade-era fences as v3 shard records.
            let mut slices: Vec<Vec<LineImage>> = vec![Vec::new(); SET_SHARDS];
            for l in &b.lines {
                slices[shard_of(l.addr)].push(l.clone());
            }
            let mask: u64 = slices
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_empty())
                .map(|(i, _)| 1u64 << i)
                .sum();
            for (i, lines) in slices.into_iter().enumerate() {
                if lines.is_empty() {
                    continue;
                }
                bytes[i].extend_from_slice(&encode_shard_batch_v3(
                    b.seq, b.kind, b.fence_ns, mask, &lines,
                ));
            }
        }
        let per_shard: Vec<Vec<ShardBatchRecord>> = bytes
            .iter()
            .map(|b| replay_shard_journal(b).unwrap().records)
            .collect();
        let merged = merge_shard_records(&per_shard, 0);
        assert_eq!(merged.frontier, 16);
        assert_eq!(merged.dropped_records, 0);
        let single = replay(&file_with(&[], &batches)).unwrap();
        assert_eq!(merged.batches, single.batches);
    }

    #[test]
    fn v3_header_roundtrip_and_routing() {
        // Single-file v3: decode_header accepts it, set decoding and the
        // set-member route reject it.
        let single = encode_header_v3(1 << 22);
        assert_eq!(decode_header(&single).unwrap(), 1 << 22);
        assert!(!is_set_member(&single).unwrap());
        assert!(matches!(
            decode_set_header(&single),
            Err(ReplayError::NotAPool(_))
        ));
        // Set-member v3: decode_set_header accepts it, single rejects.
        let member = encode_set_header_v3(1 << 22, 4, 1);
        assert_eq!(
            decode_set_header(&member).unwrap(),
            SetHeader {
                capacity: 1 << 22,
                shards: 4,
                shard_index: 1
            }
        );
        assert!(is_set_member(&member).unwrap());
        assert!(matches!(
            decode_header(&member),
            Err(ReplayError::NotAPool(_))
        ));
        // The v3 base member replays like a v2 base.
        let mut base = encode_set_header_v3(1 << 22, 4, SHARD_BASE).to_vec();
        base.extend_from_slice(&encode_snapshot(&[]));
        base.extend_from_slice(&encode_seq_mark(7));
        assert_eq!(replay_set_base(&base).unwrap().snap_seq, 7);
        // Routing over the old generations is unchanged.
        assert!(!is_set_member(&encode_header(1)).unwrap());
        assert!(is_set_member(&encode_set_header(1, 2, 0)).unwrap());
        assert!(matches!(
            is_set_member(&{
                let mut h = encode_header(1);
                h[8] = 9;
                h
            }),
            Err(ReplayError::UnsupportedVersion(9))
        ));
        // Geometry validation still applies to v3 members.
        assert!(decode_set_header(&encode_set_header_v3(1, 4, 4)).is_err());
        assert!(decode_set_header(&encode_set_header_v3(1, 65, 0)).is_err());
    }

    #[test]
    fn v3_record_with_noncanonical_varint_is_torn() {
        // Corrupting a delta into a padded (non-canonical) encoding
        // changes the bytes, so the checksum already rejects it; here we
        // re-frame with a fixed checksum to prove the *decoder* also
        // refuses — torn tail, not a mis-parsed batch.
        let b = BatchRecord {
            seq: 1,
            kind: BatchKind::Fence,
            fence_ns: 2.0,
            lines: vec![LineImage {
                addr: 0x40,
                data: [3u8; 64],
            }],
        };
        let rec = encode_batch_v3(b.seq, b.kind, b.fence_ns, &b.lines);
        // Body layout: seq=1 (1 B), kind (1 B), n=1 (1 B), fence (8 B),
        // then the first delta varint — pad it to two bytes.
        let mut body = rec[8..rec.len() - 8].to_vec();
        assert_eq!(body[11], 1, "first delta is index 1, one byte");
        body[11] = 0x81;
        body.insert(12, 0x00);
        let reframed = encode_record(TAG_BATCH_V3, &body);
        let mut file = file_with_v3(&[], &[]);
        file.extend_from_slice(&reframed);
        let r = replay(&file).unwrap();
        assert_eq!(r.batches.len(), 0, "non-canonical delta is not a batch");
        assert_eq!(r.torn_bytes, reframed.len());
    }

    #[test]
    fn fence_ns_is_bit_exact() {
        let b = BatchRecord {
            seq: 1,
            kind: BatchKind::Fence,
            fence_ns: 353.000000000001,
            lines: vec![],
        };
        let r = replay(&file_with(&[], std::slice::from_ref(&b))).unwrap();
        assert_eq!(r.batches[0].fence_ns.to_bits(), b.fence_ns.to_bits());
    }
}
