//! Pool-file codec: the on-disk format behind [`crate::FileBackend`].
//!
//! A file-backed pool is **one** file laid out as
//!
//! ```text
//! [file header]  magic, format version, pool capacity      (fixed 24 B)
//! [snapshot]     full durable arena image at compaction     (one record)
//! [batch]*       one checksummed record per fence           (append-only)
//! ```
//!
//! Every record is framed as `[tag: u32][body_len: u32][body][fnv64 of
//! tag+len+body]`, so the replay scanner can always tell a *torn tail*
//! (the process died mid-`write(2)`) from a complete record: if the
//! remaining bytes cannot hold the frame, or the checksum does not match,
//! the scan stops **at the last complete record** and reports the torn
//! suffix for truncation. A batch record is the durability unit — exactly
//! the lines one `sfence` made durable — so a torn tail never resurrects
//! a partial fence: recovery lands on the previous complete fence, never
//! a partial batch.
//!
//! The codec is pure (byte slices in, byte vectors out, no IO) so the
//! property tests below can fuzz records and tear journals at every
//! offset without touching a filesystem.

use crate::line::CACHELINE;

/// Pool-file magic ("MODPOOLF").
pub const FILE_MAGIC: u64 = 0x4D4F_4450_4F4F_4C46;
/// On-disk format version.
pub const FORMAT_VERSION: u32 = 1;
/// Bytes of the fixed file header.
pub const HEADER_BYTES: usize = 24;

/// Record tag: a full durable-arena snapshot (compaction point).
const TAG_SNAPSHOT: u32 = 0x534E_4150; // "SNAP"
/// Record tag: one fence's worth of durable lines.
const TAG_BATCH: u32 = 0x4241_5443; // "BATC"

/// Why a batch of lines became durable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchKind {
    /// An `sfence` ordered the lines: the normal one-record-per-fence
    /// append (one per FASE batch on the MOD commit path).
    Fence,
    /// `Inflight { done_ns }` lines whose background drain had already
    /// completed — persisted without a fence (a store racing an in-flight
    /// writeback, or drained-but-unfenced lines at an orderly
    /// checkpoint). The crash model says these reached the medium.
    Drained,
}

impl BatchKind {
    fn to_u32(self) -> u32 {
        match self {
            BatchKind::Fence => 0,
            BatchKind::Drained => 1,
        }
    }

    fn from_u32(v: u32) -> Option<BatchKind> {
        match v {
            0 => Some(BatchKind::Fence),
            1 => Some(BatchKind::Drained),
            _ => None,
        }
    }
}

/// One cacheline's durable image: address and contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineImage {
    /// Line-aligned pool address.
    pub addr: u64,
    /// The 64 content bytes.
    pub data: [u8; CACHELINE as usize],
}

/// One decoded batch record.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRecord {
    /// Monotonic sequence number (debugging/ordering sanity).
    pub seq: u64,
    /// Why the lines became durable.
    pub kind: BatchKind,
    /// Simulated time of the fence (bit-exact f64).
    pub fence_ns: f64,
    /// The lines this record makes durable.
    pub lines: Vec<LineImage>,
}

/// One snapshot extent: a contiguous run of durable bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotExtent {
    /// Pool address of the first byte.
    pub addr: u64,
    /// The bytes.
    pub data: Vec<u8>,
}

/// FNV-1a 64-bit checksum (dependency-free, good torn-write detector).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Encodes the fixed file header.
pub fn encode_header(capacity: u64) -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[0..8].copy_from_slice(&FILE_MAGIC.to_le_bytes());
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // [12..16) reserved (zero).
    out[16..24].copy_from_slice(&capacity.to_le_bytes());
    out
}

/// Decodes and validates the file header, returning the pool capacity.
pub fn decode_header(bytes: &[u8]) -> Result<u64, ReplayError> {
    if bytes.len() < HEADER_BYTES {
        return Err(ReplayError::NotAPool("file shorter than the header"));
    }
    if read_u64(bytes, 0) != FILE_MAGIC {
        return Err(ReplayError::NotAPool("bad magic"));
    }
    let version = read_u32(bytes, 8);
    if version != FORMAT_VERSION {
        return Err(ReplayError::UnsupportedVersion(version));
    }
    Ok(read_u64(bytes, 16))
}

/// Frames `body` as a record: tag, length, body, checksum.
fn encode_record(tag: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + body.len());
    push_u32(&mut out, tag);
    push_u32(&mut out, body.len() as u32);
    out.extend_from_slice(body);
    let sum = fnv1a64(&out);
    push_u64(&mut out, sum);
    out
}

/// Encodes one batch record (the per-fence append).
pub fn encode_batch(seq: u64, kind: BatchKind, fence_ns: f64, lines: &[LineImage]) -> Vec<u8> {
    let mut body = Vec::with_capacity(24 + lines.len() * (8 + CACHELINE as usize));
    push_u64(&mut body, seq);
    push_u32(&mut body, kind.to_u32());
    push_u32(&mut body, lines.len() as u32);
    push_u64(&mut body, fence_ns.to_bits());
    for l in lines {
        push_u64(&mut body, l.addr);
        body.extend_from_slice(&l.data);
    }
    encode_record(TAG_BATCH, &body)
}

/// Encodes a snapshot record from durable extents.
pub fn encode_snapshot(extents: &[SnapshotExtent]) -> Vec<u8> {
    let payload: usize = extents.iter().map(|e| 16 + e.data.len()).sum();
    let mut body = Vec::with_capacity(8 + payload);
    push_u64(&mut body, extents.len() as u64);
    for e in extents {
        push_u64(&mut body, e.addr);
        push_u64(&mut body, e.data.len() as u64);
        body.extend_from_slice(&e.data);
    }
    encode_record(TAG_SNAPSHOT, &body)
}

/// A hard replay failure: the file is not a pool at all (a torn tail is
/// *not* an error — it is the expected crash outcome and is reported in
/// [`Replay::torn_bytes`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The header is missing or the magic does not match.
    NotAPool(&'static str),
    /// The header names a format version this binary does not read.
    UnsupportedVersion(u32),
    /// The mandatory snapshot record (directly after the header) is
    /// damaged: with no base image the journal cannot be replayed.
    SnapshotDamaged,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::NotAPool(why) => write!(f, "not a MOD pool file: {why}"),
            ReplayError::UnsupportedVersion(v) => write!(f, "unsupported pool format v{v}"),
            ReplayError::SnapshotDamaged => write!(f, "pool snapshot record damaged"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The result of scanning a pool file.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Pool capacity from the header.
    pub capacity: u64,
    /// The snapshot's durable extents (the base image).
    pub extents: Vec<SnapshotExtent>,
    /// Every complete batch record after the snapshot, in journal order.
    pub batches: Vec<BatchRecord>,
    /// Length of the valid prefix; bytes past this are the torn tail and
    /// should be truncated before appending resumes.
    pub valid_len: usize,
    /// Bytes discarded as a torn/corrupt tail.
    pub torn_bytes: usize,
}

enum Scan {
    Record {
        tag: u32,
        body: Vec<u8>,
        next: usize,
    },
    Torn,
}

/// Scans one framed record at `at`. Anything short, oversized or
/// checksum-failing is `Torn` — the crash model's "partial write".
fn scan_record(bytes: &[u8], at: usize) -> Scan {
    let remaining = bytes.len() - at;
    if remaining < 16 {
        return Scan::Torn;
    }
    let body_len = read_u32(bytes, at + 4) as usize;
    let total = match body_len.checked_add(16) {
        Some(t) if t <= remaining => t,
        _ => return Scan::Torn, // length field torn or record truncated
    };
    let sum = read_u64(bytes, at + 8 + body_len);
    if fnv1a64(&bytes[at..at + 8 + body_len]) != sum {
        return Scan::Torn;
    }
    Scan::Record {
        tag: read_u32(bytes, at),
        body: bytes[at + 8..at + 8 + body_len].to_vec(),
        next: at + total,
    }
}

fn decode_batch_body(body: &[u8]) -> Option<BatchRecord> {
    if body.len() < 24 {
        return None;
    }
    let seq = read_u64(body, 0);
    let kind = BatchKind::from_u32(read_u32(body, 8))?;
    let n = read_u32(body, 12) as usize;
    let fence_ns = f64::from_bits(read_u64(body, 16));
    let line_bytes = 8 + CACHELINE as usize;
    if body.len() != 24 + n * line_bytes {
        return None;
    }
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let at = 24 + i * line_bytes;
        let mut data = [0u8; CACHELINE as usize];
        data.copy_from_slice(&body[at + 8..at + line_bytes]);
        lines.push(LineImage {
            addr: read_u64(body, at),
            data,
        });
    }
    Some(BatchRecord {
        seq,
        kind,
        fence_ns,
        lines,
    })
}

fn decode_snapshot_body(body: &[u8]) -> Option<Vec<SnapshotExtent>> {
    if body.len() < 8 {
        return None;
    }
    let n = read_u64(body, 0) as usize;
    let mut extents = Vec::with_capacity(n);
    let mut at = 8usize;
    for _ in 0..n {
        if body.len() - at < 16 {
            return None;
        }
        let addr = read_u64(body, at);
        let len = read_u64(body, at + 8) as usize;
        at += 16;
        if body.len() - at < len {
            return None;
        }
        extents.push(SnapshotExtent {
            addr,
            data: body[at..at + len].to_vec(),
        });
        at += len;
    }
    (at == body.len()).then_some(extents)
}

/// Replays a pool file image: header, snapshot, then every complete batch
/// record. Scanning stops at the first torn or corrupt record — the state
/// recovered is exactly the last complete fence, never a partial batch.
pub fn replay(bytes: &[u8]) -> Result<Replay, ReplayError> {
    let capacity = decode_header(bytes)?;
    // The snapshot directly after the header is mandatory: compaction
    // writes the whole file (header + snapshot) before the atomic rename,
    // so a pool file can never legally have a torn snapshot.
    let (extents, mut at) = match scan_record(bytes, HEADER_BYTES) {
        Scan::Record {
            tag: TAG_SNAPSHOT,
            body,
            next,
        } => (
            decode_snapshot_body(&body).ok_or(ReplayError::SnapshotDamaged)?,
            next,
        ),
        _ => return Err(ReplayError::SnapshotDamaged),
    };
    let mut batches = Vec::new();
    loop {
        if at == bytes.len() {
            break;
        }
        match scan_record(bytes, at) {
            Scan::Record {
                tag: TAG_BATCH,
                body,
                next,
            } => match decode_batch_body(&body) {
                Some(b) => {
                    batches.push(b);
                    at = next;
                }
                None => break, // framed but malformed: stop, truncate
            },
            // An unknown tag or a torn frame ends the valid prefix.
            _ => break,
        }
    }
    Ok(Replay {
        capacity,
        extents,
        batches,
        valid_len: at,
        torn_bytes: bytes.len() - at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* for fuzzed records.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn fuzz_line(rng: &mut XorShift) -> LineImage {
        let mut data = [0u8; 64];
        for chunk in data.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next().to_le_bytes());
        }
        LineImage {
            addr: (rng.next() % (1 << 26)) & !63,
            data,
        }
    }

    fn fuzz_batch(rng: &mut XorShift) -> BatchRecord {
        let n = (rng.next() % 9) as usize;
        BatchRecord {
            seq: rng.next(),
            kind: if rng.next() % 4 == 0 {
                BatchKind::Drained
            } else {
                BatchKind::Fence
            },
            fence_ns: f64::from_bits(rng.next() % (1 << 62)).abs(),
            lines: (0..n).map(|_| fuzz_line(rng)).collect(),
        }
    }

    fn file_with(extents: &[SnapshotExtent], batches: &[BatchRecord]) -> Vec<u8> {
        let mut f = encode_header(1 << 26).to_vec();
        f.extend_from_slice(&encode_snapshot(extents));
        for b in batches {
            f.extend_from_slice(&encode_batch(b.seq, b.kind, b.fence_ns, &b.lines));
        }
        f
    }

    #[test]
    fn fuzzed_batches_roundtrip() {
        let mut rng = XorShift(0x5EED_CAFE);
        for _ in 0..200 {
            let batch = fuzz_batch(&mut rng);
            let file = file_with(&[], std::slice::from_ref(&batch));
            let r = replay(&file).unwrap();
            assert_eq!(r.capacity, 1 << 26);
            assert_eq!(r.batches, vec![batch]);
            assert_eq!(r.torn_bytes, 0);
            assert_eq!(r.valid_len, file.len());
        }
    }

    #[test]
    fn fuzzed_snapshots_roundtrip() {
        let mut rng = XorShift(0x00A1_1CE5);
        for _ in 0..50 {
            let n = (rng.next() % 6) as usize;
            let extents: Vec<SnapshotExtent> = (0..n)
                .map(|_| SnapshotExtent {
                    addr: rng.next() % (1 << 20),
                    data: (0..(rng.next() % 300)).map(|_| rng.next() as u8).collect(),
                })
                .collect();
            let r = replay(&file_with(&extents, &[])).unwrap();
            assert_eq!(r.extents, extents);
        }
    }

    #[test]
    fn torn_tail_recovers_to_last_complete_fence_at_every_offset() {
        // Truncate the journal at EVERY byte length: replay must always
        // recover exactly the batches whose records fit completely —
        // never a partial batch, never an error.
        let mut rng = XorShift(7);
        let batches: Vec<BatchRecord> = (0..5).map(|_| fuzz_batch(&mut rng)).collect();
        let file = file_with(&[], &batches);
        // Record boundaries: offsets at which k complete batches end.
        let mut boundaries = vec![HEADER_BYTES + encode_snapshot(&[]).len()];
        for b in &batches {
            boundaries.push(
                boundaries.last().unwrap()
                    + encode_batch(b.seq, b.kind, b.fence_ns, &b.lines).len(),
            );
        }
        for cut in boundaries[0]..=file.len() {
            let r = replay(&file[..cut]).unwrap();
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                r.batches.len(),
                complete,
                "cut at {cut}: must land on the last complete fence"
            );
            assert_eq!(r.batches[..], batches[..complete]);
            assert_eq!(r.valid_len, boundaries[complete]);
            assert_eq!(r.torn_bytes, cut - boundaries[complete]);
        }
    }

    #[test]
    fn corrupt_byte_in_tail_record_discards_it() {
        let mut rng = XorShift(99);
        let batches: Vec<BatchRecord> = (0..3).map(|_| fuzz_batch(&mut rng)).collect();
        let clean = file_with(&[], &batches);
        let last_len = encode_batch(
            batches[2].seq,
            batches[2].kind,
            batches[2].fence_ns,
            &batches[2].lines,
        )
        .len();
        // Flip one byte inside the last record: checksum must reject it.
        for victim in [clean.len() - last_len + 2, clean.len() - 5] {
            let mut file = clean.clone();
            file[victim] ^= 0x40;
            let r = replay(&file).unwrap();
            assert_eq!(r.batches[..], batches[..2], "corrupt record dropped");
            assert!(r.torn_bytes > 0);
        }
    }

    #[test]
    fn header_validation() {
        assert!(matches!(replay(&[]), Err(ReplayError::NotAPool(_))));
        assert!(matches!(replay(&[0u8; 64]), Err(ReplayError::NotAPool(_))));
        let mut bad_version = encode_header(1 << 20).to_vec();
        bad_version[8] = 99;
        bad_version.extend_from_slice(&encode_snapshot(&[]));
        assert!(matches!(
            replay(&bad_version),
            Err(ReplayError::UnsupportedVersion(99))
        ));
        // Missing or torn snapshot is a hard error, not a torn tail.
        let headless = encode_header(1 << 20).to_vec();
        assert!(matches!(
            replay(&headless),
            Err(ReplayError::SnapshotDamaged)
        ));
    }

    #[test]
    fn oversized_length_field_is_torn_not_a_panic() {
        // A torn length field can claim a huge body: the scanner must
        // treat it as torn instead of slicing out of bounds.
        let mut file = file_with(&[], &[]);
        file.extend_from_slice(&TAG_BATCH.to_le_bytes());
        file.extend_from_slice(&u32::MAX.to_le_bytes());
        file.extend_from_slice(&[0u8; 32]);
        let r = replay(&file).unwrap();
        assert_eq!(r.batches.len(), 0);
        assert_eq!(r.torn_bytes, 40);
    }

    #[test]
    fn fence_ns_is_bit_exact() {
        let b = BatchRecord {
            seq: 1,
            kind: BatchKind::Fence,
            fence_ns: 353.000000000001,
            lines: vec![],
        };
        let r = replay(&file_with(&[], std::slice::from_ref(&b))).unwrap();
        assert_eq!(r.batches[0].fence_ns.to_bits(), b.fence_ns.to_bits());
    }
}
