//! Flush/fence counters and the flushes-per-fence histogram.
//!
//! Fig 10 of the paper plots *flushes per operation* against *fences per
//! operation*; §3 reports the median number of flushes overlapped per
//! fence. [`PmStats`] collects the raw counters and [`EpochHistogram`]
//! the per-fence overlap distribution (one "epoch" = the span between two
//! ordering points).

use std::collections::BTreeMap;

/// Histogram over the number of flushes outstanding at each fence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochHistogram {
    counts: BTreeMap<u32, u64>,
    total_epochs: u64,
}

impl EpochHistogram {
    /// Creates an empty histogram.
    pub fn new() -> EpochHistogram {
        EpochHistogram::default()
    }

    /// Records a fence that found `flushes` outstanding flushes.
    pub fn record(&mut self, flushes: u32) {
        *self.counts.entry(flushes).or_insert(0) += 1;
        self.total_epochs += 1;
    }

    /// Number of recorded epochs (= fences).
    pub fn epochs(&self) -> u64 {
        self.total_epochs
    }

    /// Mean flushes per epoch; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total_epochs == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().map(|(&k, &v)| k as u64 * v).sum();
        sum as f64 / self.total_epochs as f64
    }

    /// Median flushes per epoch; 0 if empty.
    pub fn median(&self) -> u32 {
        if self.total_epochs == 0 {
            return 0;
        }
        let mid = self.total_epochs.div_ceil(2);
        let mut seen = 0;
        for (&k, &v) in &self.counts {
            seen += v;
            if seen >= mid {
                return k;
            }
        }
        0
    }

    /// Iterates `(flushes_in_epoch, occurrences)` in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

/// Raw counters of simulated PM activity.
///
/// Flush requests obey the accounting identity
/// `flushes_issued == effective_flushes + flushes_deduped + flushes_avoided`:
/// every request is classified exactly once as real writeback work
/// (effective), elided by the fence-epoch flush cache (deduped), or elided
/// because the line is volatile node-cache state (avoided).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PmStats {
    /// Flush requests: every `clwb` the commit pipeline asked for,
    /// whether or not the instruction was ultimately issued.
    pub flushes_issued: u64,
    /// `clwb`s that actually transitioned a dirty line to in-flight
    /// (excludes redundant flushes of clean/already-flushed lines).
    pub effective_flushes: u64,
    /// Flush requests elided by the fence-epoch flush cache: the line was
    /// already in flight and not re-dirtied since the last `sfence`, was
    /// clean, or its content was bit-identical to its last-fenced image —
    /// so the writeback could not change what persists.
    pub flushes_deduped: u64,
    /// `sfence` instructions executed.
    pub fences: u64,
    /// Read accesses (of any width).
    pub reads: u64,
    /// Write accesses (of any width).
    pub writes: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// WPQ drain work (ns) that completed in the background before its
    /// fence — the stall the old charge-at-the-fence model would have
    /// paid but the overlapped model hid under compute.
    pub overlap_ns: f64,
    /// Residual stall (ns) actually paid at fences that found flushes in
    /// flight: the part of the drain calendar still in the future when
    /// the `sfence` executed.
    pub residual_stall_ns: f64,
    /// `clwb`s that targeted a volatile node-cache line and were elided
    /// ("Don't Persist All" hybrid roots): flush traffic a full-
    /// persistence structure would have paid.
    pub flushes_avoided: u64,
    /// Cumulative bytes of interior-node blocks marked volatile by this
    /// handle (hybrid roots' index footprint kept out of the persistence
    /// pipeline).
    pub volatile_node_bytes: u64,
    /// Distribution of flushes outstanding per fence.
    pub epoch_hist: EpochHistogram,
}

impl PmStats {
    /// Creates zeroed counters.
    pub fn new() -> PmStats {
        PmStats::default()
    }

    /// Counter-wise sum `self + other` (histograms merged by epoch
    /// count). Used to roll per-shard counters up into a pool total.
    pub fn merge(&mut self, other: &PmStats) {
        self.flushes_issued += other.flushes_issued;
        self.effective_flushes += other.effective_flushes;
        self.flushes_deduped += other.flushes_deduped;
        self.fences += other.fences;
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_written += other.bytes_written;
        self.overlap_ns += other.overlap_ns;
        self.residual_stall_ns += other.residual_stall_ns;
        self.flushes_avoided += other.flushes_avoided;
        self.volatile_node_bytes += other.volatile_node_bytes;
        for (flushes, occurrences) in other.epoch_hist.iter() {
            for _ in 0..occurrences {
                self.epoch_hist.record(flushes);
            }
        }
    }

    /// Counter-wise difference `self - earlier` (histogram omitted: the
    /// difference of histograms is rarely meaningful; it is left empty).
    pub fn since(&self, earlier: &PmStats) -> PmStats {
        PmStats {
            flushes_issued: self.flushes_issued - earlier.flushes_issued,
            effective_flushes: self.effective_flushes - earlier.effective_flushes,
            flushes_deduped: self.flushes_deduped - earlier.flushes_deduped,
            fences: self.fences - earlier.fences,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            bytes_written: self.bytes_written - earlier.bytes_written,
            overlap_ns: self.overlap_ns - earlier.overlap_ns,
            residual_stall_ns: self.residual_stall_ns - earlier.residual_stall_ns,
            flushes_avoided: self.flushes_avoided - earlier.flushes_avoided,
            volatile_node_bytes: self.volatile_node_bytes - earlier.volatile_node_bytes,
            epoch_hist: EpochHistogram::new(),
        }
    }

    /// Fraction of the WPQ drain workload that overlapped with compute
    /// instead of stalling a fence: `overlap / (overlap + residual)`,
    /// 0 when no drain work happened. 0 means every fence paid the full
    /// Amdahl stall (the old serialized model); values toward 1 mean
    /// drains finished in the background before their fence.
    pub fn overlap_ratio(&self) -> f64 {
        let total = self.overlap_ns + self.residual_stall_ns;
        if total == 0.0 {
            0.0
        } else {
            self.overlap_ns / total
        }
    }

    /// Whether the flush classification adds up: every request must be
    /// counted exactly once as effective, deduped, or avoided.
    pub fn flush_identity_holds(&self) -> bool {
        self.flushes_issued == self.effective_flushes + self.flushes_deduped + self.flushes_avoided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_median() {
        let mut h = EpochHistogram::new();
        for n in [1u32, 1, 2, 8, 8, 8] {
            h.record(n);
        }
        assert_eq!(h.epochs(), 6);
        assert!((h.mean() - 28.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.median(), 2);
    }

    #[test]
    fn histogram_empty() {
        let h = EpochHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.median(), 0);
        assert_eq!(h.epochs(), 0);
    }

    #[test]
    fn histogram_single() {
        let mut h = EpochHistogram::new();
        h.record(5);
        assert_eq!(h.median(), 5);
        assert_eq!(h.mean(), 5.0);
    }

    #[test]
    fn histogram_iter_sorted() {
        let mut h = EpochHistogram::new();
        h.record(3);
        h.record(1);
        h.record(3);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(1, 1), (3, 2)]);
    }

    #[test]
    fn stats_since() {
        let mut a = PmStats::new();
        a.flushes_issued = 10;
        a.fences = 2;
        a.overlap_ns = 100.0;
        let mut b = a.clone();
        b.flushes_issued = 25;
        b.flushes_deduped = 4;
        b.fences = 3;
        b.writes = 7;
        b.overlap_ns = 250.0;
        b.residual_stall_ns = 40.0;
        let d = b.since(&a);
        assert_eq!(d.flushes_issued, 15);
        assert_eq!(d.flushes_deduped, 4);
        assert_eq!(d.fences, 1);
        assert_eq!(d.writes, 7);
        assert_eq!(d.overlap_ns, 150.0);
        assert_eq!(d.residual_stall_ns, 40.0);
    }

    #[test]
    fn flush_identity() {
        let mut s = PmStats::new();
        assert!(s.flush_identity_holds(), "zeroed counters satisfy it");
        s.flushes_issued = 10;
        s.effective_flushes = 6;
        s.flushes_deduped = 3;
        s.flushes_avoided = 1;
        assert!(s.flush_identity_holds());
        s.flushes_deduped = 4;
        assert!(!s.flush_identity_holds(), "double counting must be caught");
    }

    #[test]
    fn overlap_ratio_bounds() {
        let mut s = PmStats::new();
        assert_eq!(s.overlap_ratio(), 0.0, "no drain work yet");
        s.overlap_ns = 300.0;
        s.residual_stall_ns = 100.0;
        assert!((s.overlap_ratio() - 0.75).abs() < 1e-12);
        let mut t = PmStats::new();
        t.overlap_ns = 100.0;
        t.merge(&s);
        assert!((t.overlap_ratio() - 0.8).abs() < 1e-12, "merge sums ns");
    }
}
