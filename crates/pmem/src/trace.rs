//! Execution traces and the paper's automated-testing invariants (§5.4).
//!
//! The paper proposes testing recoverable datastructures by recording all
//! PM allocations, writes, flushes, commits and fences, then verifying:
//!
//! 1. every PM write *outside a commit section* targets newly allocated
//!    memory (out-of-place discipline — no reachable data is overwritten);
//! 2. every PM write is followed by a flush of its cacheline before the
//!    next fence (nothing the FASE produced can be left unflushed when the
//!    ordering point retires).
//!
//! [`TraceChecker`] implements exactly those two checks over a
//! [`TraceEvent`] stream.

use crate::line::{line_of, lines_covering};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// One recorded PM event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Persistent allocation of `[addr, addr+len)`.
    Alloc {
        /// Start of the allocated payload.
        addr: u64,
        /// Payload length in bytes.
        len: u64,
    },
    /// Deallocation of `[addr, addr+len)`.
    Free {
        /// Start of the freed payload.
        addr: u64,
        /// Payload length in bytes.
        len: u64,
    },
    /// A store of `len` bytes at `addr`.
    Write {
        /// Start address of the store.
        addr: u64,
        /// Store width in bytes.
        len: u64,
    },
    /// A `clwb` of the line containing `line`.
    Clwb {
        /// Line base address.
        line: u64,
    },
    /// An `sfence`.
    Fence,
    /// Start of a commit section (pointer-swing writes are exempt from
    /// invariant 1 inside it).
    CommitBegin,
    /// End of a commit section; the FASE's fresh-allocation set resets.
    CommitEnd,
}

/// A violation of the §5.4 invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A write outside a commit section hit memory that was not freshly
    /// allocated in the current FASE.
    WriteToLiveData {
        /// Address written.
        addr: u64,
        /// Width of the write.
        len: u64,
        /// Index of the offending event in the trace.
        event_index: usize,
    },
    /// A fence retired while a written line had not been flushed since its
    /// last write.
    UnflushedWriteAtFence {
        /// The offending cacheline base.
        line: u64,
        /// Index of the fence event in the trace.
        event_index: usize,
    },
    /// CommitEnd without CommitBegin, or nested CommitBegin.
    UnbalancedCommitMarker {
        /// Index of the offending event.
        event_index: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::WriteToLiveData {
                addr,
                len,
                event_index,
            } => write!(
                f,
                "write to live (non-fresh) PM at {addr:#x}+{len} (event {event_index})"
            ),
            Violation::UnflushedWriteAtFence { line, event_index } => write!(
                f,
                "fence retired with unflushed written line {line:#x} (event {event_index})"
            ),
            Violation::UnbalancedCommitMarker { event_index } => {
                write!(f, "unbalanced commit marker (event {event_index})")
            }
        }
    }
}

/// A set of disjoint half-open intervals, used to track freshly allocated
/// PM within the current FASE.
#[derive(Clone, Debug, Default)]
pub struct IntervalSet {
    // start -> end, disjoint, non-adjacent-merged.
    map: BTreeMap<u64, u64>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> IntervalSet {
        IntervalSet::default()
    }

    /// Inserts `[start, end)`, merging with neighbours.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        // Absorb any interval overlapping or adjacent to [start, end).
        let overlapping: Vec<u64> = self
            .map
            .range(..=end)
            .filter(|&(&s, &e)| e >= start && s <= end)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.map.remove(&s).unwrap();
            new_start = new_start.min(s);
            new_end = new_end.max(e);
        }
        self.map.insert(new_start, new_end);
    }

    /// Removes `[start, end)`, splitting intervals as needed.
    pub fn remove(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let overlapping: Vec<(u64, u64)> = self
            .map
            .range(..end)
            .filter(|&(&s, &e)| e > start && s < end)
            .map(|(&s, &e)| (s, e))
            .collect();
        for (s, e) in overlapping {
            self.map.remove(&s);
            if s < start {
                self.map.insert(s, start);
            }
            if e > end {
                self.map.insert(end, e);
            }
        }
    }

    /// Whether `[start, end)` is fully contained.
    pub fn contains_range(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        match self.map.range(..=start).next_back() {
            Some((_, &e)) => e >= end,
            None => false,
        }
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of disjoint intervals (diagnostics).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Streaming checker for the §5.4 invariants.
#[derive(Debug, Default)]
pub struct TraceChecker {
    fresh: IntervalSet,
    in_commit: bool,
    seq: u64,
    last_write: HashMap<u64, u64>, // line -> seq of last write
    last_flush: HashMap<u64, u64>, // line -> seq of last clwb
    index: usize,
    violations: Vec<Violation>,
}

impl TraceChecker {
    /// Creates a checker with an empty fresh set.
    pub fn new() -> TraceChecker {
        TraceChecker::default()
    }

    /// Feeds one event.
    pub fn feed(&mut self, ev: &TraceEvent) {
        self.seq += 1;
        match *ev {
            TraceEvent::Alloc { addr, len } => {
                self.fresh.insert(addr, addr + len);
            }
            TraceEvent::Free { addr, len } => {
                self.fresh.remove(addr, addr + len);
            }
            TraceEvent::Write { addr, len } => {
                if !self.in_commit && !self.fresh.contains_range(addr, addr + len) {
                    self.violations.push(Violation::WriteToLiveData {
                        addr,
                        len,
                        event_index: self.index,
                    });
                }
                for line in lines_covering(addr, len) {
                    self.last_write.insert(line, self.seq);
                }
            }
            TraceEvent::Clwb { line } => {
                self.last_flush.insert(line_of(line), self.seq);
            }
            TraceEvent::Fence => {
                for (&line, &wseq) in &self.last_write {
                    let flushed = self.last_flush.get(&line).copied().unwrap_or(0);
                    if flushed < wseq {
                        self.violations.push(Violation::UnflushedWriteAtFence {
                            line,
                            event_index: self.index,
                        });
                    }
                }
                self.last_write.clear();
                self.last_flush.clear();
            }
            TraceEvent::CommitBegin => {
                if self.in_commit {
                    self.violations.push(Violation::UnbalancedCommitMarker {
                        event_index: self.index,
                    });
                }
                self.in_commit = true;
            }
            TraceEvent::CommitEnd => {
                if !self.in_commit {
                    self.violations.push(Violation::UnbalancedCommitMarker {
                        event_index: self.index,
                    });
                }
                self.in_commit = false;
                // FASE complete: subsequent writes need fresh allocations.
                self.fresh.clear();
            }
        }
        self.index += 1;
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consumes the checker, returning `Err` with all violations if any.
    pub fn finish(self) -> Result<(), Vec<Violation>> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(self.violations)
        }
    }
}

/// Checks a complete trace against the §5.4 invariants.
///
/// # Errors
///
/// Returns every violation found, in trace order.
///
/// ```
/// use mod_pmem::trace::{check_trace, TraceEvent};
/// let trace = vec![
///     TraceEvent::Alloc { addr: 0x100, len: 64 },
///     TraceEvent::Write { addr: 0x100, len: 8 },
///     TraceEvent::Clwb { line: 0x100 },
///     TraceEvent::Fence,
/// ];
/// check_trace(&trace)?;
/// # Ok::<(), Vec<mod_pmem::trace::Violation>>(())
/// ```
pub fn check_trace(events: &[TraceEvent]) -> Result<(), Vec<Violation>> {
    let mut c = TraceChecker::new();
    for ev in events {
        c.feed(ev);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_insert_merge() {
        let mut s = IntervalSet::new();
        s.insert(0, 10);
        s.insert(20, 30);
        assert_eq!(s.len(), 2);
        s.insert(10, 20); // bridges
        assert_eq!(s.len(), 1);
        assert!(s.contains_range(0, 30));
    }

    #[test]
    fn interval_remove_splits() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.remove(40, 60);
        assert!(s.contains_range(0, 40));
        assert!(s.contains_range(60, 100));
        assert!(!s.contains_range(39, 41));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn interval_contains_partial() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        assert!(!s.contains_range(5, 15));
        assert!(!s.contains_range(15, 25));
        assert!(s.contains_range(10, 20));
        assert!(s.contains_range(12, 18));
    }

    #[test]
    fn interval_empty_range_trivially_contained() {
        let s = IntervalSet::new();
        assert!(s.contains_range(5, 5));
    }

    #[test]
    fn clean_mod_style_trace_passes() {
        let t = vec![
            TraceEvent::Alloc {
                addr: 0x100,
                len: 64,
            },
            TraceEvent::Write {
                addr: 0x100,
                len: 64,
            },
            TraceEvent::Clwb { line: 0x100 },
            TraceEvent::CommitBegin,
            TraceEvent::Write { addr: 0x0, len: 8 }, // root slot
            TraceEvent::Clwb { line: 0x0 },
            TraceEvent::Fence,
            TraceEvent::CommitEnd,
        ];
        assert!(check_trace(&t).is_ok());
    }

    #[test]
    fn in_place_write_is_flagged() {
        // Write to memory never allocated in this FASE.
        let t = vec![TraceEvent::Write {
            addr: 0x500,
            len: 8,
        }];
        let errs = check_trace(&t).unwrap_err();
        assert!(matches!(
            errs[0],
            Violation::WriteToLiveData { addr: 0x500, .. }
        ));
    }

    #[test]
    fn write_after_commit_end_needs_new_alloc() {
        let t = vec![
            TraceEvent::Alloc {
                addr: 0x100,
                len: 64,
            },
            TraceEvent::Write {
                addr: 0x100,
                len: 8,
            },
            TraceEvent::Clwb { line: 0x100 },
            TraceEvent::CommitBegin,
            TraceEvent::Fence,
            TraceEvent::CommitEnd,
            // Next FASE writes the same (now live) node: violation.
            TraceEvent::Write {
                addr: 0x100,
                len: 8,
            },
        ];
        let errs = check_trace(&t).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], Violation::WriteToLiveData { .. }));
    }

    #[test]
    fn unflushed_write_at_fence_is_flagged() {
        let t = vec![
            TraceEvent::Alloc {
                addr: 0x100,
                len: 128,
            },
            TraceEvent::Write {
                addr: 0x100,
                len: 8,
            },
            TraceEvent::Write {
                addr: 0x140,
                len: 8,
            },
            TraceEvent::Clwb { line: 0x100 },
            TraceEvent::Fence, // 0x140 written but never flushed
        ];
        let errs = check_trace(&t).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::UnflushedWriteAtFence { line: 0x140, .. })));
    }

    #[test]
    fn write_after_flush_before_fence_is_flagged() {
        let t = vec![
            TraceEvent::Alloc {
                addr: 0x100,
                len: 64,
            },
            TraceEvent::Write {
                addr: 0x100,
                len: 8,
            },
            TraceEvent::Clwb { line: 0x100 },
            TraceEvent::Write {
                addr: 0x108,
                len: 8,
            }, // dirties line again
            TraceEvent::Fence,
        ];
        let errs = check_trace(&t).unwrap_err();
        assert!(matches!(
            errs[0],
            Violation::UnflushedWriteAtFence { line: 0x100, .. }
        ));
    }

    #[test]
    fn freed_memory_is_not_fresh() {
        let t = vec![
            TraceEvent::Alloc {
                addr: 0x100,
                len: 64,
            },
            TraceEvent::Free {
                addr: 0x100,
                len: 64,
            },
            TraceEvent::Write {
                addr: 0x100,
                len: 8,
            },
        ];
        let errs = check_trace(&t).unwrap_err();
        assert!(matches!(errs[0], Violation::WriteToLiveData { .. }));
    }

    #[test]
    fn commit_writes_are_exempt_from_freshness() {
        let t = vec![
            TraceEvent::CommitBegin,
            TraceEvent::Write { addr: 0x0, len: 8 },
            TraceEvent::Clwb { line: 0x0 },
            TraceEvent::Fence,
            TraceEvent::CommitEnd,
        ];
        assert!(check_trace(&t).is_ok());
    }

    #[test]
    fn unbalanced_commit_markers_flagged() {
        let errs = check_trace(&[TraceEvent::CommitEnd]).unwrap_err();
        assert!(matches!(errs[0], Violation::UnbalancedCommitMarker { .. }));
        let errs = check_trace(&[TraceEvent::CommitBegin, TraceEvent::CommitBegin]).unwrap_err();
        assert!(matches!(errs[0], Violation::UnbalancedCommitMarker { .. }));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::WriteToLiveData {
            addr: 0x10,
            len: 8,
            event_index: 3,
        };
        let s = v.to_string();
        assert!(s.contains("0x10"));
        assert!(s.contains("live"));
    }
}
