//! The simulated persistent-memory device and cache hierarchy.
//!
//! [`Pmem`] is the single chokepoint through which every persistent access
//! flows. It implements the semantics the paper depends on:
//!
//! * stores land in a (simulated) volatile cache and mark their cacheline
//!   *dirty* — they are **not** durable;
//! * `clwb` starts a weakly-ordered writeback: the line becomes
//!   *in-flight* and its drain is scheduled on the line's WPQ lane
//!   ([`crate::WpqDrain`]) **from issue time**, overlapping freely with
//!   other flushes and with any compute charged afterwards (§3, Fig 3);
//! * `sfence` stalls only until the latest in-flight drain completes —
//!   the *residual* of the background calendar, which saturates to the
//!   Amdahl stall of [`LatencyModel::fence_stall_ns`] when nothing
//!   overlaps — and only then is the flushed data guaranteed durable.
//!   The hidden share is accounted in [`PmStats::overlap_ns`], the paid
//!   share in [`PmStats::residual_stall_ns`];
//! * at a crash, durable data survives, and so does every in-flight line
//!   whose background drain had already completed on the global timeline
//!   (*drained-but-unfenced*: the writeback physically reached the
//!   medium). Any subset of dirty and *issued-but-undrained* lines may
//!   additionally persist (cache evictions, drains racing the failure),
//!   which [`Pmem::crash_image`] models with a pluggable [`CrashPolicy`].

use crate::arena::SharedArena;
use crate::backend::{BackendKind, BackendStats, Durability, FileBackend, MemBackend, PoolBackend};
use crate::cache::{CacheConfig, CacheSim, CacheStats};
use crate::clock::{SimClock, TimeCategory};
use crate::drain::WpqDrain;
use crate::journal::{BatchKind, LineImage};
use crate::line::{line_of, lines_covering, CACHELINE};
use crate::model::LatencyModel;
use crate::stats::PmStats;
use crate::trace::TraceEvent;
use crate::volatile::VolatileSet;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Construction parameters for a simulated PM pool.
#[derive(Clone, Debug)]
pub struct PmemConfig {
    /// Pool capacity in bytes.
    pub capacity: u64,
    /// Maintain a durable image so crashes can be simulated. Costs one
    /// extra lazily-populated arena.
    pub crash_sim: bool,
    /// Record a [`TraceEvent`] stream (for the §5.4 checker).
    pub trace: bool,
    /// Latency parameters.
    pub latency: LatencyModel,
    /// L1D geometry.
    pub cache: CacheConfig,
    /// Last-level cache geometry.
    pub llc: CacheConfig,
    /// Per-fence durability grade of a file-backed pool (ignored by
    /// memory-backed pools). [`Durability::Fsync`] makes an acknowledged
    /// fence power-loss durable; the default [`Durability::Buffered`]
    /// is process-kill grade.
    pub durability: Durability,
    /// Journal shard count for [`Pmem::create_file`]: >1 creates a pool
    /// *set* (one journal file per contiguous address range, replayed in
    /// parallel on open). Clamped to `1..=64`; 1 (the default) keeps the
    /// classic single-file v1 format. On [`Pmem::open_file`] the shard
    /// count comes from the file set itself, not this field.
    pub journal_shards: u16,
    /// Enable the fence-epoch flush cache: a `clwb` whose writeback could
    /// not change what persists — the line is already in flight and not
    /// re-dirtied since the last `sfence`, is clean, or its content is
    /// bit-identical to its last-fenced image — is elided: no issue
    /// charge, no WPQ slot, counted in [`PmStats::flushes_deduped`].
    /// Off restores the issue-everything pipeline (requests that schedule
    /// nothing still pay the issue charge); classification counters are
    /// maintained either way.
    pub coalesce_flushes: bool,
}

impl Default for PmemConfig {
    fn default() -> PmemConfig {
        PmemConfig {
            capacity: 1 << 30,
            crash_sim: false,
            trace: false,
            latency: LatencyModel::optane(),
            cache: CacheConfig::l1d(),
            llc: CacheConfig::llc(),
            durability: Durability::Buffered,
            journal_shards: 1,
            coalesce_flushes: true,
        }
    }
}

impl PmemConfig {
    /// A small pool with crash simulation and tracing enabled — the
    /// configuration used by most tests.
    pub fn testing() -> PmemConfig {
        PmemConfig {
            capacity: 1 << 26,
            crash_sim: true,
            trace: true,
            ..PmemConfig::default()
        }
    }

    /// A pool tuned for benchmarking: no crash image, no tracing.
    pub fn benchmarking(capacity: u64) -> PmemConfig {
        PmemConfig {
            capacity,
            crash_sim: false,
            trace: false,
            ..PmemConfig::default()
        }
    }
}

#[derive(Copy, Clone, Debug, PartialEq)]
enum LineState {
    /// Written but not flushed: lost at a crash unless the policy evicts.
    Dirty,
    /// `clwb` issued; the background drain completes at `done_ns` on the
    /// global timeline. Before `done_ns` the line is
    /// *issued-but-undrained* (crash persistence is policy-dependent);
    /// after it the line is *drained-but-unfenced* (the writeback reached
    /// the medium, so it survives any crash — only the *ordering*
    /// guarantee still waits for the fence).
    Inflight { done_ns: f64 },
}

/// Which non-durable lines additionally persist at a crash.
#[derive(Copy, Clone, Debug)]
pub enum CrashPolicy {
    /// Only fenced (guaranteed-durable) data survives: the most lossy
    /// legal outcome.
    OnlyFenced,
    /// Every dirty and in-flight line happens to be written back: the most
    /// complete legal outcome.
    PersistAll,
    /// Each dirty/in-flight line persists pseudo-randomly (deterministic
    /// in the seed) — for adversarial property testing over many subsets.
    Seeded(u64),
}

impl CrashPolicy {
    fn keeps(self, line: u64) -> bool {
        match self {
            CrashPolicy::OnlyFenced => false,
            CrashPolicy::PersistAll => true,
            CrashPolicy::Seeded(seed) => {
                // SplitMix64 over (seed ^ line): decide by parity bit.
                let mut z = seed ^ line.wrapping_mul(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) & 1 == 1
            }
        }
    }
}

/// Per-shard execution lane: its own simulated clock and activity
/// counters, so concurrent workers accumulate time in parallel timelines
/// while the global clock/stats keep counting total work.
#[derive(Debug, Default)]
struct ShardLane {
    clock: SimClock,
    stats: PmStats,
}

/// Volatile line states in transit from a worker's shard handle to the
/// commit-stage pool (see [`Pmem::take_lines`] / [`Pmem::absorb_lines`]).
/// Opaque: the line-state machine stays private to this module.
#[derive(Debug)]
pub struct LineHandoff {
    lines: Vec<(u64, LineState)>,
    /// In-flight count among `lines` (sanity checking).
    inflight: usize,
    /// WPQ calendar watermark: completion time of the latest drain the
    /// worker scheduled, on the worker's (comparable) clock.
    drain_last_done: f64,
}

impl LineHandoff {
    /// Number of lines in transit.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the handoff carries no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// In-flight (flushed-but-unfenced) lines in transit.
    pub fn inflight(&self) -> usize {
        self.inflight
    }
}

/// How a pool file was rebuilt by [`Pmem::open_file`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Complete batch records applied.
    pub batches: u64,
    /// Line images applied from those batches.
    pub lines: u64,
    /// Bytes discarded as a torn/corrupt journal tail.
    pub torn_bytes: u64,
    /// Host (wall-clock) nanoseconds the replay took.
    pub host_ns: u64,
    /// Journal scan threads the open used: the pool set's shard count
    /// (1 for a classic single-file pool).
    pub replay_parallelism: u64,
}

/// The simulated PM pool plus its cache hierarchy, clock and counters.
#[derive(Debug)]
pub struct Pmem {
    cfg: PmemConfig,
    data: SharedArena,
    durable: Option<SharedArena>,
    /// Where durable bytes live ([`MemBackend`] or [`FileBackend`]);
    /// shared with every forked shard handle.
    backend: Arc<dyn PoolBackend>,
    /// Set by [`Pmem::open_file`] on the pool it returns.
    replay: Option<ReplayStats>,
    lines: HashMap<u64, LineState>,
    inflight: usize,
    cache: CacheSim,
    llc: CacheSim,
    clock: SimClock,
    stats: PmStats,
    /// WPQ drain calendar of the global timeline (also the authority for
    /// per-line drained-at-crash decisions).
    drain: WpqDrain,
    /// WPQ drain calendar shared by the shard-lane timelines: the queue
    /// is one piece of hardware, so drains from different lanes
    /// serialize against each other even though the lanes' compute
    /// overlaps.
    shard_drain: WpqDrain,
    /// Per-shard lanes (empty unless [`Pmem::configure_shards`] ran).
    lanes: Vec<ShardLane>,
    active_shard: usize,
    /// Volatile node-cache marks ("Don't Persist All" hybrid roots):
    /// shared by every forked handle, empty on crash images and fresh
    /// opens — volatility is process state.
    volatile: Arc<VolatileSet>,
    trace: Vec<TraceEvent>,
}

impl Pmem {
    /// Creates a zero-filled, memory-backed pool (the pool dies with the
    /// process; see [`Pmem::create_file`] for one that does not).
    pub fn new(cfg: PmemConfig) -> Pmem {
        let data = SharedArena::new(cfg.capacity);
        // The durable image is maintained unconditionally: besides crash
        // simulation it is the fence-epoch flush cache's authority for
        // "bytes already persistent" (see `clwb`). Segments materialize
        // lazily, so the cost tracks the touched working set, not
        // capacity.
        let durable = Some(SharedArena::new(cfg.capacity));
        Pmem::from_parts(cfg, data, durable, Arc::new(MemBackend), None)
    }

    /// Formats a fresh **file-backed** pool at `path` (truncating any
    /// existing file): the pool header and an empty snapshot are written
    /// and synced, and from then on every `sfence` appends its durable
    /// lines to the file's journal. File-backed pools always maintain a
    /// durable image (the compaction source), regardless of
    /// [`PmemConfig::crash_sim`].
    pub fn create_file(path: &Path, cfg: PmemConfig) -> io::Result<Pmem> {
        let backend =
            FileBackend::create_set(path, cfg.capacity, cfg.journal_shards, cfg.durability)?;
        let data = SharedArena::new(cfg.capacity);
        let durable = SharedArena::new(cfg.capacity);
        Ok(Pmem::from_parts(
            cfg,
            data,
            Some(durable),
            Arc::new(backend),
            None,
        ))
    }

    /// Opens an existing file-backed pool, replaying its snapshot plus
    /// every complete journal batch into a fresh arena; a torn tail
    /// (a record the dying process never finished writing) is discarded
    /// and truncated away, so recovery lands on the last complete fence,
    /// never a partial batch. The pool's capacity comes from the file
    /// header (overriding `cfg.capacity`); volatile state starts cold,
    /// exactly like a machine after the crash. Replay metrics are
    /// reported by [`Pmem::replay_stats`].
    pub fn open_file(path: &Path, cfg: PmemConfig) -> io::Result<Pmem> {
        let t0 = std::time::Instant::now();
        let (backend, replay) = FileBackend::open_with(path, cfg.durability)?;
        let mut cfg = cfg;
        cfg.capacity = replay.capacity;
        let data = SharedArena::new(replay.capacity);
        for e in &replay.extents {
            data.write(e.addr, &e.data);
        }
        let mut lines = 0u64;
        for b in &replay.batches {
            for l in &b.lines {
                data.write(l.addr, &l.data);
                lines += 1;
            }
        }
        let durable = data.snapshot();
        let stats = ReplayStats {
            batches: replay.batches.len() as u64,
            lines,
            torn_bytes: replay.torn_bytes as u64,
            host_ns: t0.elapsed().as_nanos() as u64,
            replay_parallelism: backend.shard_count() as u64,
        };
        Ok(Pmem::from_parts(
            cfg,
            data,
            Some(durable),
            Arc::new(backend),
            Some(stats),
        ))
    }

    fn from_parts(
        cfg: PmemConfig,
        data: SharedArena,
        durable: Option<SharedArena>,
        backend: Arc<dyn PoolBackend>,
        replay: Option<ReplayStats>,
    ) -> Pmem {
        Pmem {
            data,
            durable,
            backend,
            replay,
            lines: HashMap::new(),
            inflight: 0,
            cache: CacheSim::new(cfg.cache.clone()),
            llc: CacheSim::new(cfg.llc.clone()),
            clock: SimClock::new(),
            stats: PmStats::new(),
            drain: WpqDrain::new(),
            shard_drain: WpqDrain::new(),
            lanes: Vec::new(),
            active_shard: 0,
            volatile: Arc::new(VolatileSet::new(cfg.capacity)),
            trace: Vec::new(),
            cfg,
        }
    }

    /// Which persistence backend this pool writes through.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Backend observability counters (journal bytes, batches appended,
    /// compactions). All zero for memory-backed pools.
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Replay metrics, if this pool was produced by [`Pmem::open_file`].
    pub fn replay_stats(&self) -> Option<&ReplayStats> {
        self.replay.as_ref()
    }

    /// Total on-disk bytes of the pool's file(s); 0 for memory-backed
    /// pools. A missing pool member surfaces as a typed io error naming
    /// the file — never a panic.
    pub fn backend_file_bytes(&self) -> io::Result<u64> {
        self.backend.durable_file_bytes()
    }

    /// Reads the 64 content bytes of each line in `addrs` (peek path: no
    /// cache/time charges — journal appends are not simulated work).
    fn line_images(&self, addrs: &[u64]) -> Vec<LineImage> {
        addrs
            .iter()
            .map(|&addr| {
                let mut data = [0u8; CACHELINE as usize];
                self.data.read(addr, &mut data);
                LineImage { addr, data }
            })
            .collect()
    }

    /// Orderly checkpoint of a file-backed pool: appends every
    /// *drained-but-unfenced* line to the journal (their background
    /// writebacks completed — per the crash model they reached the
    /// medium), folds the journal into a fresh snapshot, and fsyncs.
    /// No-op (and `Ok`) on memory-backed pools.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        if !self.backend.wants_batches() {
            return Ok(());
        }
        let now = self.clock.now_ns();
        let mut drained: Vec<u64> = self
            .lines
            .iter()
            .filter(|&(_, s)| matches!(s, LineState::Inflight { done_ns } if *done_ns <= now))
            .map(|(&l, _)| l)
            .collect();
        drained.sort_unstable();
        if !drained.is_empty() {
            // Durable copy first, journal second (see the same ordering
            // note in `sfence`).
            if let Some(d) = self.durable.as_ref() {
                for &l in &drained {
                    d.copy_from(&self.data, l, CACHELINE);
                }
            }
            let images = self.line_images(&drained);
            self.backend.append_batch(BatchKind::Drained, &images, now);
        }
        if let Some(d) = self.durable.as_ref() {
            self.backend.compact(d)?;
        }
        self.backend.sync()
    }

    /// The pool configuration.
    pub fn config(&self) -> &PmemConfig {
        &self.cfg
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.cfg.capacity
    }

    // ------------------------------------------------------------------
    // Shard lanes (concurrent timelines)
    // ------------------------------------------------------------------

    /// Configures `n` shard lanes: per-shard clocks and counters that let
    /// a thread-per-shard front end account work in parallel simulated
    /// timelines while the global clock keeps the serial total. Resets
    /// any previous lane state; shard 0 becomes active.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn configure_shards(&mut self, n: usize) {
        assert!(n > 0, "need at least one shard");
        self.lanes = (0..n).map(|_| ShardLane::default()).collect();
        self.active_shard = 0;
    }

    /// Number of configured shard lanes (0 when unsharded).
    pub fn shard_count(&self) -> usize {
        self.lanes.len()
    }

    /// Routes subsequent charges and counters to shard `s`'s lane.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    pub fn set_active_shard(&mut self, s: usize) {
        assert!(
            s < self.lanes.len().max(1),
            "shard {s} out of range ({} configured)",
            self.lanes.len()
        );
        self.active_shard = s;
    }

    /// The shard currently receiving charges (0 when unsharded).
    pub fn active_shard(&self) -> usize {
        self.active_shard
    }

    /// Activity counters attributed to shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    pub fn shard_stats(&self, s: usize) -> &PmStats {
        &self.lanes[s].stats
    }

    /// Simulated time accumulated on shard `s`'s lane.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    pub fn lane_ns(&self, s: usize) -> f64 {
        self.lanes[s].clock.now_ns()
    }

    /// Per-category time breakdown of shard `s`'s lane.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    pub fn lane_breakdown(&self, s: usize) -> crate::clock::TimeBreakdown {
        self.lanes[s].clock.breakdown()
    }

    /// Advances shard `s`'s lane to at least `t` simulated nanoseconds,
    /// charging the stall (waiting on a shared event such as a pipelined
    /// batch fence) as flush time. The global clock is untouched: waiting
    /// is not work.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    pub fn sync_lane_to(&mut self, s: usize, t: f64) {
        self.lanes[s].clock.sync_to_ns(t, TimeCategory::Flush);
    }

    /// Simulated wall-clock time of the pool: the slowest shard lane when
    /// sharded (lanes run in parallel), else the global clock.
    pub fn wall_ns(&self) -> f64 {
        if self.lanes.is_empty() {
            self.clock.now_ns()
        } else {
            self.lanes
                .iter()
                .map(|l| l.clock.now_ns())
                .fold(0.0, f64::max)
        }
    }

    /// Rolls all shard-lane counters up into one total (equals the global
    /// counters for activity that happened while lanes were configured).
    pub fn rolled_up_shard_stats(&self) -> PmStats {
        let mut total = PmStats::new();
        for lane in &self.lanes {
            total.merge(&lane.stats);
        }
        total
    }

    /// Advances the global clock and the active shard's lane together.
    fn tick(&mut self, cat: TimeCategory, ns: f64) {
        self.clock.advance_as(cat, ns);
        if let Some(lane) = self.lanes.get_mut(self.active_shard) {
            lane.clock.advance_as(cat, ns);
        }
    }

    /// [`Pmem::tick`] attributed to the current tag.
    fn tick_tagged(&mut self, ns: f64) {
        self.tick(self.clock.current_tag(), ns);
    }

    fn lane_stats_mut(&mut self) -> Option<&mut PmStats> {
        self.lanes.get_mut(self.active_shard).map(|l| &mut l.stats)
    }

    // ------------------------------------------------------------------
    // Access paths
    // ------------------------------------------------------------------

    /// Two-level lookup: L1 hit, else LLC hit, else PM.
    fn access_cost(&mut self, line: u64, hit_ns: f64) -> f64 {
        if self.cache.access(line) {
            return hit_ns;
        }
        if self.llc.access(line) {
            return self.cfg.latency.llc_hit_ns;
        }
        self.cfg.latency.pm_miss_ns
    }

    fn charge_read_lines(&mut self, addr: u64, len: u64) {
        for l in lines_covering(addr, len) {
            let ns = self.access_cost(l, self.cfg.latency.l1_hit_ns);
            self.tick_tagged(ns);
        }
        self.stats.reads += 1;
        if let Some(s) = self.lane_stats_mut() {
            s.reads += 1;
        }
    }

    fn charge_write_lines(&mut self, addr: u64, len: u64) {
        for l in lines_covering(addr, len) {
            // Write-allocate: a miss performs a read-for-ownership fill.
            let ns = self.access_cost(l, self.cfg.latency.store_ns);
            self.tick_tagged(ns);
            if matches!(
                self.lines.insert(l, LineState::Dirty),
                Some(LineState::Inflight { .. })
            ) {
                // A store raced an in-flight writeback. The writeback is
                // modelled as completing with the pre-store content (a
                // legal outcome — and the one `sfence` would have
                // guaranteed); `write_bytes` copied that content to the
                // durable image before updating the data array. The new
                // store leaves the line dirty again.
                self.inflight -= 1;
            }
        }
        self.stats.writes += 1;
        self.stats.bytes_written += len;
        if let Some(s) = self.lane_stats_mut() {
            s.writes += 1;
            s.bytes_written += len;
        }
    }

    /// Reads `buf.len()` bytes at `addr` through the cache model.
    /// Volatile node-cache lines bypass the model: a hybrid root's
    /// interior index is DRAM state, not simulated PM traffic.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        if !self.volatile.contains(addr) {
            self.charge_read_lines(addr, buf.len() as u64);
        }
        self.data.read(addr, buf);
    }

    /// Reads `len` bytes at `addr` into a fresh vector.
    pub fn read_vec(&mut self, addr: u64, len: u64) -> Vec<u8> {
        let mut v = vec![0u8; len as usize];
        self.read_bytes(addr, &mut v);
        v
    }

    /// Writes `buf` at `addr` through the cache model (store, not flush).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        if self.volatile.contains(addr) {
            // Volatile node-cache store: never dirty, never flushed,
            // never journaled, never charged. The line can't be in the
            // dirty/in-flight table (volatile blocks own whole lines and
            // are marked before their first store), so the raced-
            // writeback pre-image logic below can't apply either.
            debug_assert!(
                lines_covering(addr, buf.len() as u64).all(|l| self.volatile.contains(l)),
                "write straddles a volatile/persistent block boundary"
            );
            self.data.write(addr, buf);
            return;
        }
        // Persist pre-store content of any in-flight line being rewritten
        // (see charge_write_lines): do it before mutating `data`. The
        // racing writeback is modelled as having completed, so a file
        // backend journals the pre-store content as a drained batch.
        if let Some(durable) = self.durable.as_ref() {
            let mut raced: Vec<u64> = Vec::new();
            for l in lines_covering(addr, buf.len() as u64) {
                if matches!(self.lines.get(&l), Some(LineState::Inflight { .. })) {
                    durable.copy_from(&self.data, l, CACHELINE);
                    raced.push(l);
                }
            }
            if !raced.is_empty() && self.backend.wants_batches() {
                let images = self.line_images(&raced);
                self.backend
                    .append_batch(BatchKind::Drained, &images, self.clock.now_ns());
            }
        }
        self.charge_write_lines(addr, buf.len() as u64);
        self.data.write(addr, buf);
        if self.cfg.trace {
            self.trace.push(TraceEvent::Write {
                addr,
                len: buf.len() as u64,
            });
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: u64) -> u8 {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b);
        b[0]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.write_bytes(addr, &[v]);
    }

    /// Debug/recovery peek that bypasses the cache model, clock and stats.
    /// Use sparingly: performance-relevant paths must use [`Pmem::read_bytes`].
    pub fn peek_bytes(&self, addr: u64, buf: &mut [u8]) {
        self.data.read(addr, buf);
    }

    /// Debug peek of a `u64`, bypassing the performance model.
    pub fn peek_u64(&self, addr: u64) -> u64 {
        self.data.read_u64(addr)
    }

    // ------------------------------------------------------------------
    // Persistence operations
    // ------------------------------------------------------------------

    /// Whether `line`'s cached content is bit-identical to its
    /// last-fenced (durable) image: flushing such a line cannot change
    /// what persists, under any crash policy, at any point in time.
    /// Bypasses the cache/latency model — this is the software flush
    /// cache's bookkeeping, not a simulated memory access.
    fn line_matches_fenced_image(&self, line: u64) -> bool {
        let Some(durable) = self.durable.as_ref() else {
            return false;
        };
        let len = CACHELINE.min(self.cfg.capacity - line) as usize;
        let mut cached = [0u8; CACHELINE as usize];
        let mut fenced = [0u8; CACHELINE as usize];
        self.data.read(line, &mut cached[..len]);
        durable.read(line, &mut fenced[..len]);
        cached[..len] == fenced[..len]
    }

    /// Issues a `clwb` for the line containing `addr`: a weakly-ordered
    /// writeback that overlaps with other flushes. The line may stay in
    /// the cache (clwb does not evict). The writeback launches as the
    /// instruction issues: its background drain is scheduled on the
    /// line's WPQ lane at the pre-issue timestamp of every timeline, so
    /// compute charged between here and the next `sfence` hides drain
    /// work.
    ///
    /// With [`PmemConfig::coalesce_flushes`] on (the default), requests
    /// pass through a **fence-epoch flush cache** first: a request whose
    /// writeback provably cannot change what persists is elided — no
    /// issue charge, no WPQ slot — and counted in
    /// [`PmStats::flushes_deduped`]. Three cases qualify:
    ///
    /// * the line is already in flight and has not been re-dirtied since
    ///   (the writeback is already scheduled);
    /// * the line is clean (there is nothing to write back);
    /// * the line is dirty but bit-identical to its last-fenced image
    ///   (the steady-state shadow-update case: a recycled block is
    ///   rewritten with mostly-unchanged content, so most of its lines
    ///   carry bytes the medium already holds).
    pub fn clwb(&mut self, addr: u64) {
        let line = line_of(addr);
        if self.volatile.contains(line) {
            // Flush of a volatile node-cache line: the whole point of
            // the hybrid policy is that this writeback never happens.
            // Count what full persistence would have paid.
            self.stats.flushes_issued += 1;
            self.stats.flushes_avoided += 1;
            if let Some(s) = self.lane_stats_mut() {
                s.flushes_issued += 1;
                s.flushes_avoided += 1;
            }
            return;
        }
        self.stats.flushes_issued += 1;
        if let Some(s) = self.lane_stats_mut() {
            s.flushes_issued += 1;
        }
        let coalesce = self.cfg.coalesce_flushes;
        let mut effective = matches!(self.lines.get(&line), Some(LineState::Dirty));
        if effective && coalesce && self.line_matches_fenced_image(line) {
            // The dirty bytes are the bytes the medium already holds
            // (typical of shadow updates into recycled blocks): drop the
            // dirty mark instead of scheduling a no-op writeback. Every
            // later observation is unchanged — a crash that would have
            // kept this line persists the identical durable copy.
            self.lines.remove(&line);
            effective = false;
        }
        if effective {
            let launch = self.cfg.latency.wpq_launch_ns;
            let occupancy = self.cfg.latency.wpq_drain_ns;
            let wpq_lanes = self.cfg.latency.wpq_lanes;
            let done_ns =
                self.drain
                    .schedule(line, self.clock.now_ns(), launch, occupancy, wpq_lanes);
            if let Some(lane) = self.lanes.get(self.active_shard) {
                let lane_now = lane.clock.now_ns();
                self.shard_drain
                    .schedule(line, lane_now, launch, occupancy, wpq_lanes);
            }
            self.lines.insert(line, LineState::Inflight { done_ns });
            self.inflight += 1;
            self.stats.effective_flushes += 1;
            if let Some(s) = self.lane_stats_mut() {
                s.effective_flushes += 1;
            }
        } else {
            self.stats.flushes_deduped += 1;
            if let Some(s) = self.lane_stats_mut() {
                s.flushes_deduped += 1;
            }
        }
        if effective || !coalesce {
            // An elided request never issues, so it pays nothing; with
            // the cache off every request pays the issue charge, exactly
            // the pre-coalescing pipeline.
            self.tick(TimeCategory::Flush, self.cfg.latency.clwb_issue_ns);
        }
        if self.cfg.trace {
            self.trace.push(TraceEvent::Clwb { line });
        }
    }

    /// Flushes every line covering `[addr, addr + len)`.
    pub fn flush_range(&mut self, addr: u64, len: u64) {
        for l in lines_covering(addr, len) {
            self.clwb(l);
        }
    }

    /// Executes an `sfence`: stalls until every in-flight drain
    /// completes, after which their data is durable. The stall is the
    /// **residual** of the background drain calendar — zero extra work
    /// when everything already drained under compute, the full Amdahl
    /// stall of [`LatencyModel::fence_stall_ns`] when the flushes were
    /// issued back-to-back. The difference between those two is recorded
    /// as [`PmStats::overlap_ns`].
    pub fn sfence(&mut self) {
        let n = self.inflight;
        let overhead = self.cfg.latency.fence_overhead_ns;
        // The charge-at-the-fence reference: what this fence would have
        // cost before drains ran in the background.
        let serialized = self.cfg.latency.fence_stall_ns(n);
        let g_stall = if n == 0 {
            overhead
        } else {
            self.drain.residual_at(self.clock.now_ns()).max(overhead)
        };
        self.clock.advance_as(TimeCategory::Flush, g_stall);
        if n > 0 {
            self.stats.residual_stall_ns += g_stall;
            self.stats.overlap_ns += (serialized - g_stall).max(0.0);
        }
        self.drain.reset();
        self.stats.fences += 1;
        self.stats.epoch_hist.record(n as u32);
        if let Some(lane) = self.lanes.get_mut(self.active_shard) {
            // The WPQ is shared hardware: the fencing lane waits for the
            // latest drain *any* lane scheduled (lane clocks are
            // comparable — batch fences synchronize them).
            let l_stall = if n == 0 {
                overhead
            } else {
                self.shard_drain
                    .residual_at(lane.clock.now_ns())
                    .max(overhead)
            };
            lane.clock.advance_as(TimeCategory::Flush, l_stall);
            if n > 0 {
                lane.stats.residual_stall_ns += l_stall;
                lane.stats.overlap_ns += (serialized - l_stall).max(0.0);
            }
            lane.stats.fences += 1;
            lane.stats.epoch_hist.record(n as u32);
            self.shard_drain.reset();
        }
        if n > 0 {
            let mut flushed: Vec<u64> = self
                .lines
                .iter()
                .filter(|&(_, s)| matches!(s, LineState::Inflight { .. }))
                .map(|(&l, _)| l)
                .collect();
            // Copy into the durable image *before* the journal append:
            // compaction (possibly racing from another forked handle)
            // snapshots the durable arena and truncates the journal, so
            // a fence's lines must be in the arena by the time its
            // record can be folded away.
            for &l in &flushed {
                self.lines.remove(&l);
                if let Some(d) = self.durable.as_ref() {
                    d.copy_from(&self.data, l, CACHELINE);
                }
            }
            self.inflight = 0;
            // The backend hook: exactly this fence's lines, as one
            // checksummed batch record — one journal append per ordering
            // point, however many FASEs the batch carried. Sorted for a
            // deterministic journal (HashMap order is not).
            if self.backend.wants_batches() {
                flushed.sort_unstable();
                let images = self.line_images(&flushed);
                self.backend
                    .append_batch(BatchKind::Fence, &images, self.clock.now_ns());
            }
            // Fold a grown journal into a snapshot while the durable
            // image is quiescent (right after its fence updates).
            if self.backend.should_compact() {
                let d = self
                    .durable
                    .as_ref()
                    .expect("file-backed pools always keep a durable image");
                self.backend
                    .compact(d)
                    .expect("pool journal compaction failed");
            }
        }
        if self.cfg.trace {
            self.trace.push(TraceEvent::Fence);
        }
    }

    // ------------------------------------------------------------------
    // Volatile node cache ("Don't Persist All" hybrid roots)
    // ------------------------------------------------------------------

    /// Marks `[addr, addr + len)` as volatile node-cache lines: stores
    /// bypass the cache/latency model, `clwb` is elided (counted in
    /// [`PmStats::flushes_avoided`]) and the data is excluded from
    /// journaling, checkpoints and crash images. The range must cover
    /// whole cachelines — the allocator gives hybrid node blocks
    /// exclusive-line footprints. Marks are shared with every handle of
    /// the pool and die with the process (crash images start empty).
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `len` is not a multiple of 64.
    pub fn mark_volatile(&mut self, addr: u64, len: u64) {
        self.volatile.mark(addr, len);
        self.stats.volatile_node_bytes += len;
        if let Some(s) = self.lane_stats_mut() {
            s.volatile_node_bytes += len;
        }
    }

    /// Clears the volatile marks of `[addr, addr + len)` (block freed:
    /// a recycled block must not inherit volatility).
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `len` is not a multiple of 64.
    pub fn clear_volatile(&mut self, addr: u64, len: u64) {
        self.volatile.clear(addr, len);
    }

    /// Whether `addr` lies on a volatile node-cache line.
    pub fn is_volatile(&self, addr: u64) -> bool {
        self.volatile.contains(addr)
    }

    /// Number of currently volatile node-cache lines.
    pub fn volatile_lines(&self) -> u64 {
        self.volatile.marked_lines()
    }

    /// Number of flushes issued but not yet ordered by a fence.
    pub fn inflight_flushes(&self) -> usize {
        self.inflight
    }

    /// Number of dirty (written, unflushed) lines.
    pub fn dirty_lines(&self) -> usize {
        self.lines.len() - self.inflight
    }

    /// Number of in-flight lines whose background drain has already
    /// completed on the global timeline: *drained-but-unfenced*. Their
    /// data survives any crash; only the ordering guarantee still waits
    /// for the fence.
    pub fn drained_unfenced_lines(&self) -> usize {
        let now = self.clock.now_ns();
        self.lines
            .values()
            .filter(|s| matches!(s, LineState::Inflight { done_ns } if *done_ns <= now))
            .count()
    }

    // ------------------------------------------------------------------
    // Markers, tags and accounting
    // ------------------------------------------------------------------

    /// Marks the start of a commit section in the trace.
    pub fn begin_commit(&mut self) {
        if self.cfg.trace {
            self.trace.push(TraceEvent::CommitBegin);
        }
    }

    /// Marks the end of a commit section in the trace.
    pub fn end_commit(&mut self) {
        if self.cfg.trace {
            self.trace.push(TraceEvent::CommitEnd);
        }
    }

    /// Records a persistent allocation in the trace (allocator hook).
    pub fn trace_alloc(&mut self, addr: u64, len: u64) {
        if self.cfg.trace {
            self.trace.push(TraceEvent::Alloc { addr, len });
        }
    }

    /// Records a deallocation in the trace (allocator hook).
    pub fn trace_free(&mut self, addr: u64, len: u64) {
        if self.cfg.trace {
            self.trace.push(TraceEvent::Free { addr, len });
        }
    }

    /// Pushes a time-attribution tag (see [`TimeCategory`]).
    pub fn push_tag(&mut self, cat: TimeCategory) {
        self.clock.push_tag(cat);
    }

    /// Pops the most recent time-attribution tag.
    pub fn pop_tag(&mut self) {
        self.clock.pop_tag();
    }

    /// Charges `ns` of compute time to the current tag.
    pub fn charge_ns(&mut self, ns: f64) {
        self.tick_tagged(ns);
    }

    /// Charges one DRAM access (volatile-data work in workloads).
    pub fn charge_dram_access(&mut self) {
        let ns = self.cfg.latency.dram_miss_ns;
        self.tick_tagged(ns);
    }

    /// Raw activity counters.
    pub fn stats(&self) -> &PmStats {
        &self.stats
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// L1D counters (Fig 11's miss ratios).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Last-level cache counters.
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Resets counters, clock and cache statistics (not contents) —
    /// used to exclude setup phases from measurements. The WPQ drain
    /// calendars rebase with the clocks: any still-in-flight line is
    /// treated as having drained during setup (its pre-reset completion
    /// time would be meaningless against the zeroed clocks).
    pub fn reset_metrics(&mut self) {
        self.stats = PmStats::new();
        self.clock.reset();
        self.cache.reset_stats();
        self.llc.reset_stats();
        self.drain.reset();
        self.shard_drain.reset();
        for state in self.lines.values_mut() {
            if let LineState::Inflight { done_ns } = state {
                *done_ns = 0.0;
            }
        }
        for lane in &mut self.lanes {
            lane.clock.reset();
            lane.stats = PmStats::new();
        }
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Takes ownership of the recorded trace, leaving it empty.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    // ------------------------------------------------------------------
    // Shard handles (host-parallel staging)
    // ------------------------------------------------------------------

    /// Forks a *shard handle*: a new `Pmem` sharing this pool's storage
    /// (data and durable image) but carrying its own private volatile
    /// simulation state — clock, caches, line table, WPQ calendar, stats
    /// and trace buffer. A worker thread owning a handle can read, write
    /// and `clwb` with **no synchronization against other handles**, as
    /// long as concurrently written ranges stay word-disjoint (each
    /// worker writes only blocks inside its own allocation arena).
    ///
    /// The handle's clock starts at this pool's current time, so times
    /// recorded by the handle are comparable with the parent timeline.
    /// Line states accumulated by the handle are moved back into the
    /// parent with [`Pmem::take_lines`] / [`Pmem::absorb_lines`] when a
    /// staged FASE is handed to the commit stage.
    pub fn fork_handle(&self) -> Pmem {
        let mut clock = SimClock::new();
        clock.sync_to_ns(self.clock.now_ns(), TimeCategory::Other);
        let mut handle = Pmem::from_parts(
            self.cfg.clone(),
            self.data.clone(),
            self.durable.clone(),
            // The backend is the pool's one durable device: handles share
            // it, so a fence on any timeline journals through it.
            Arc::clone(&self.backend),
            None,
        );
        handle.clock = clock;
        // One pool, one volatile-mark set: a worker's hybrid node blocks
        // must look volatile to the commit stage and to every reader.
        handle.volatile = Arc::clone(&self.volatile);
        handle
    }

    /// Whether `other` is a handle onto the same shared storage.
    pub fn same_storage(&self, other: &Pmem) -> bool {
        self.data.same_storage(&other.data)
    }

    /// Advances the clock to at least `t` simulated nanoseconds, charging
    /// the wait (e.g. synchronizing on a batch fence published by another
    /// handle) as flush time.
    pub fn sync_clock_to(&mut self, t: f64) {
        self.clock.sync_to_ns(t, TimeCategory::Flush);
    }

    /// Drains this handle's volatile line states (dirty and in-flight
    /// lines plus the WPQ calendar watermark) into a transferable
    /// [`LineHandoff`], leaving the handle with a clean slate. Called by
    /// a worker when its staged FASE is pushed to the commit stage: the
    /// FASE's blocks — and responsibility for fencing them — travel with
    /// it.
    pub fn take_lines(&mut self) -> LineHandoff {
        let lines: Vec<(u64, LineState)> = self.lines.drain().collect();
        let inflight = std::mem::take(&mut self.inflight);
        let drain_last_done = self.drain.last_done();
        self.drain.reset();
        LineHandoff {
            lines,
            inflight,
            drain_last_done,
        }
    }

    /// Merges a worker handle's [`LineHandoff`] into this pool: the lines
    /// become this timeline's dirty/in-flight lines (the next
    /// [`Pmem::sfence`] drains and persists them), and the handed-off
    /// drain watermark joins the WPQ calendar. Shard arenas are 64-byte
    /// aligned so two handles never hand off the same line; if they ever
    /// do, the later state wins.
    ///
    /// Because the line table is keyed by line address, merging the flush
    /// sets of every FASE in a batch leaves **one entry per unique dirty
    /// line** — the batch's covering fence issues exactly one effective
    /// `clwb` per line no matter how many member FASEs touched it.
    /// Returns the number of handed-off entries that combined with an
    /// entry already present (the cross-FASE duplicates this coalescing
    /// eliminated).
    pub fn absorb_lines(&mut self, handoff: LineHandoff) -> usize {
        let mut combined = 0;
        for (line, state) in handoff.lines {
            if let Some(prior) = self.lines.insert(line, state) {
                combined += 1;
                if matches!(prior, LineState::Inflight { .. }) {
                    self.inflight -= 1;
                }
            }
            if matches!(state, LineState::Inflight { .. }) {
                self.inflight += 1;
            }
        }
        self.drain.note_done(handoff.drain_last_done);
        debug_assert!(self.lines.len() >= self.inflight);
        combined
    }

    /// Appends trace events recorded by a worker handle (in batch order).
    pub fn append_trace(&mut self, mut events: Vec<TraceEvent>) {
        if self.cfg.trace {
            self.trace.append(&mut events);
        }
    }

    // ------------------------------------------------------------------
    // Crash simulation
    // ------------------------------------------------------------------

    /// Produces the post-crash pool: durable data, every
    /// *drained-but-unfenced* line (its background writeback physically
    /// completed before the failure, so it persists no matter what),
    /// plus whichever dirty / *issued-but-undrained* lines `policy`
    /// chooses to persist. The returned pool starts with cold caches, a
    /// zeroed clock and no volatile line state — exactly like a machine
    /// after power loss.
    ///
    /// # Panics
    ///
    /// Panics unless the pool was created with `crash_sim: true`.
    pub fn crash_image(&self, policy: CrashPolicy) -> Pmem {
        assert!(
            self.cfg.crash_sim || self.backend.wants_batches(),
            "crash_image requires PmemConfig::crash_sim = true"
        );
        let durable = self
            .durable
            .as_ref()
            .expect("pools always keep a durable image");
        let image = durable.snapshot();
        let now = self.clock.now_ns();
        for (&line, state) in &self.lines {
            let drained = matches!(state, LineState::Inflight { done_ns } if *done_ns <= now);
            if drained || policy.keeps(line) {
                image.copy_from(&self.data, line, CACHELINE);
            }
        }
        // Crash images are always memory-backed: they are hypothetical
        // post-crash pools (tests take many, under different policies,
        // from one live pool), not the pool file itself. Real-process
        // recovery of a file-backed pool goes through [`Pmem::open_file`].
        let durable_copy = image.snapshot();
        Pmem::from_parts(
            self.cfg.clone(),
            image,
            Some(durable_copy),
            Arc::new(MemBackend),
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testing_pmem() -> Pmem {
        Pmem::new(PmemConfig::testing())
    }

    #[test]
    fn write_then_read() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 42);
        assert_eq!(pm.read_u64(0x100), 42);
    }

    #[test]
    fn unflushed_write_is_lost_on_crash() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 42);
        let crashed = pm.crash_image(CrashPolicy::OnlyFenced);
        assert_eq!(crashed.peek_u64(0x100), 0);
    }

    #[test]
    fn flushed_but_unfenced_write_may_be_lost_or_kept() {
        // Immediately after the clwb the line is issued-but-undrained:
        // whether it persists is the crash policy's choice.
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 42);
        pm.clwb(0x100);
        assert_eq!(pm.drained_unfenced_lines(), 0);
        let lost = pm.crash_image(CrashPolicy::OnlyFenced);
        assert_eq!(lost.peek_u64(0x100), 0);
        let kept = pm.crash_image(CrashPolicy::PersistAll);
        assert_eq!(kept.peek_u64(0x100), 42);
    }

    #[test]
    fn drained_but_unfenced_write_survives_every_policy() {
        // Once the background drain completes, the writeback physically
        // reached the medium: no crash policy can lose it, fence or not.
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 42);
        pm.clwb(0x100);
        pm.charge_ns(1_000.0); // well past launch + drain
        assert_eq!(pm.drained_unfenced_lines(), 1);
        assert_eq!(pm.inflight_flushes(), 1, "still unfenced");
        let img = pm.crash_image(CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(0x100), 42, "drained line persists");
    }

    #[test]
    fn fenced_write_survives_any_crash() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 42);
        pm.clwb(0x100);
        pm.sfence();
        let crashed = pm.crash_image(CrashPolicy::OnlyFenced);
        assert_eq!(crashed.peek_u64(0x100), 42);
    }

    #[test]
    fn dirty_line_may_persist_spontaneously() {
        // Cache evictions can write back unflushed lines.
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 7);
        let evicted = pm.crash_image(CrashPolicy::PersistAll);
        assert_eq!(evicted.peek_u64(0x100), 7);
    }

    #[test]
    fn seeded_policy_is_deterministic() {
        let mut pm = testing_pmem();
        for i in 0..64u64 {
            pm.write_u64(0x1000 + i * 64, i + 1);
        }
        let a = pm.crash_image(CrashPolicy::Seeded(1));
        let b = pm.crash_image(CrashPolicy::Seeded(1));
        let c = pm.crash_image(CrashPolicy::Seeded(2));
        let read =
            |p: &Pmem| -> Vec<u64> { (0..64u64).map(|i| p.peek_u64(0x1000 + i * 64)).collect() };
        assert_eq!(read(&a), read(&b));
        assert_ne!(read(&a), read(&c), "different seeds should differ");
        // And a seeded policy should persist a strict subset.
        assert!(read(&a).contains(&0));
        assert!(read(&a).iter().any(|&v| v != 0));
    }

    #[test]
    fn fence_counts_inflight_epoch() {
        let mut pm = testing_pmem();
        for i in 0..8u64 {
            pm.write_u64(0x100 + i * 64, i + 1);
            pm.clwb(0x100 + i * 64);
        }
        assert_eq!(pm.inflight_flushes(), 8);
        pm.sfence();
        assert_eq!(pm.inflight_flushes(), 0);
        assert_eq!(pm.stats().fences, 1);
        assert_eq!(pm.stats().flushes_issued, 8);
        assert_eq!(pm.stats().epoch_hist.median(), 8);
    }

    #[test]
    fn redundant_clwb_counts_but_is_deduped() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 1);
        pm.clwb(0x100);
        pm.clwb(0x100);
        assert_eq!(pm.stats().flushes_issued, 2);
        assert_eq!(pm.stats().effective_flushes, 1);
        assert_eq!(pm.stats().flushes_deduped, 1, "second request elided");
        assert_eq!(pm.inflight_flushes(), 1);
        assert!(pm.stats().flush_identity_holds());
    }

    #[test]
    fn saturated_fence_reproduces_amdahl_stall() {
        // Back-to-back flushes give the drains nothing to hide under:
        // issue time is absorbed into the background calendar and the
        // total flush timeline lands exactly on the old charge-at-the-
        // fence Amdahl stall (the saturated limit).
        let mut pm = testing_pmem();
        let m = pm.config().latency.clone();
        for i in 0..16u64 {
            pm.write_u64(0x100 + i * 64, i + 1);
        }
        let before = pm.clock().breakdown().flush_ns;
        for i in 0..16u64 {
            pm.clwb(0x100 + i * 64);
        }
        pm.sfence();
        let flush_ns = pm.clock().breakdown().flush_ns - before;
        let expected = m.fence_stall_ns(16);
        assert!(
            (flush_ns - expected).abs() < 1e-9,
            "saturated timeline {flush_ns:.2} != Amdahl stall {expected:.2}"
        );
        // Only the clwb issue time overlapped; the drains all stalled.
        let issue_overlap = 16.0 * m.clwb_issue_ns;
        assert!((pm.stats().overlap_ns - issue_overlap).abs() < 1e-9);
        assert!(pm.stats().residual_stall_ns > 0.0);
    }

    #[test]
    fn single_flush_plus_fence_costs_353ns() {
        // §3's headline number now falls out of the event model exactly:
        // launch + drain = 353 ns from issue, minus nothing.
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 1);
        let before = pm.clock().breakdown().flush_ns;
        pm.clwb(0x100);
        pm.sfence();
        let flush_ns = pm.clock().breakdown().flush_ns - before;
        assert!((flush_ns - 353.0).abs() < 1e-9, "got {flush_ns:.2}");
    }

    #[test]
    fn compute_between_flush_and_fence_hides_drain() {
        let mut pm = testing_pmem();
        let m = pm.config().latency.clone();
        pm.write_u64(0x100, 1);
        pm.clwb(0x100);
        pm.charge_ns(10_000.0); // app compute while the WPQ drains
        let before = pm.clock().breakdown().flush_ns;
        pm.sfence();
        let fence_ns = pm.clock().breakdown().flush_ns - before;
        assert_eq!(
            fence_ns, m.fence_overhead_ns,
            "fully drained backlog: the fence pays only its own overhead"
        );
        assert!(pm.stats().overlap_ns > 0.0);
        assert!(pm.stats().overlap_ratio() > 0.9);
    }

    #[test]
    fn overlapped_fence_never_beats_the_drain_critical_path() {
        // Partial overlap: the fence arrives mid-drain and pays exactly
        // the remainder, so the flush timeline ends at the critical path.
        let mut pm = testing_pmem();
        let m = pm.config().latency.clone();
        let t0 = pm.clock().now_ns();
        for i in 0..4u64 {
            pm.write_u64(0x100 + i * 64, i + 1);
        }
        let issue_at = pm.clock().now_ns();
        for i in 0..4u64 {
            pm.clwb(0x100 + i * 64);
        }
        pm.charge_ns(100.0); // hides some, not all, of the drain
        pm.sfence();
        let end = pm.clock().now_ns();
        let critical_path = issue_at + m.drain_path_ns(4);
        assert!(
            (end - critical_path).abs() < 1e-9,
            "timeline end {end:.2} != drain critical path {critical_path:.2}"
        );
        let _ = t0;
    }

    #[test]
    fn write_after_flush_persists_preflush_content() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 1);
        pm.clwb(0x100);
        pm.write_u64(0x100, 2); // races the in-flight writeback
        let img = pm.crash_image(CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(0x100), 1, "clwb'd content must be durable");
        let img2 = pm.crash_image(CrashPolicy::PersistAll);
        assert_eq!(img2.peek_u64(0x100), 2, "eviction may persist the store");
    }

    #[test]
    fn empty_fence_charges_overhead_only() {
        let mut pm = testing_pmem();
        pm.sfence();
        let b = pm.clock().breakdown();
        assert_eq!(b.flush_ns, pm.config().latency.fence_overhead_ns);
    }

    #[test]
    fn flush_range_covers_all_lines() {
        let mut pm = testing_pmem();
        pm.write_bytes(0x100, &[1u8; 200]);
        pm.flush_range(0x100, 200);
        assert_eq!(pm.inflight_flushes(), 4); // 0x100..0x1c8 → 4 lines
    }

    #[test]
    fn volatile_lines_bypass_the_persistence_pipeline() {
        let mut pm = testing_pmem();
        pm.mark_volatile(0x1000, 64);
        let t0 = pm.clock().now_ns();
        pm.write_u64(0x1000, 77);
        pm.clwb(0x1000);
        assert_eq!(pm.clock().now_ns(), t0, "volatile traffic is uncharged");
        // The request is counted (accounting identity) but classified
        // avoided: no writeback work, no issue charge.
        assert_eq!(pm.stats().flushes_issued, 1);
        assert_eq!(pm.stats().effective_flushes, 0);
        assert_eq!(pm.stats().flushes_avoided, 1);
        assert!(pm.stats().flush_identity_holds());
        assert_eq!(pm.stats().writes, 0);
        assert_eq!(pm.stats().volatile_node_bytes, 64);
        assert_eq!(pm.inflight_flushes(), 0, "never enters the line table");
        pm.sfence();
        assert_eq!(pm.read_u64(0x1000), 77, "reads see the live value");
        assert!(pm.clock().now_ns() > t0, "the fence itself charges");
        let img = pm.crash_image(CrashPolicy::PersistAll);
        assert_eq!(
            img.peek_u64(0x1000),
            0,
            "volatile data never survives a crash"
        );
    }

    #[test]
    fn volatile_marks_are_shared_with_forked_handles() {
        let mut pm = testing_pmem();
        let mut worker = pm.fork_handle();
        worker.mark_volatile(0x2000, 128);
        assert!(
            pm.is_volatile(0x2040),
            "commit stage sees the worker's mark"
        );
        pm.write_u64(0x2040, 9);
        assert_eq!(pm.stats().writes, 0, "uncharged on the parent too");
        assert_eq!(worker.stats().volatile_node_bytes, 128);
        assert_eq!(
            pm.stats().volatile_node_bytes,
            0,
            "charged to the marking handle"
        );
    }

    #[test]
    fn cleared_volatile_line_persists_again() {
        let mut pm = testing_pmem();
        pm.mark_volatile(0x3000, 64);
        pm.clear_volatile(0x3000, 64);
        pm.write_u64(0x3000, 5);
        pm.clwb(0x3000);
        pm.sfence();
        let img = pm.crash_image(CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(0x3000), 5, "unmarked line is ordinary PM");
        assert_eq!(pm.stats().flushes_issued, 1);
        assert_eq!(pm.stats().flushes_avoided, 0);
    }

    #[test]
    fn crash_image_starts_with_an_empty_volatile_set() {
        let mut pm = testing_pmem();
        pm.mark_volatile(0x1000, 64);
        let mut img = pm.crash_image(CrashPolicy::OnlyFenced);
        assert!(!img.is_volatile(0x1000));
        img.write_u64(0x1000, 3);
        assert_eq!(img.stats().writes, 1, "post-crash pool charges normally");
    }

    #[test]
    fn trace_records_all_event_kinds() {
        let mut pm = testing_pmem();
        pm.trace_alloc(0x100, 64);
        pm.write_u64(0x100, 5);
        pm.clwb(0x100);
        pm.begin_commit();
        pm.sfence();
        pm.end_commit();
        pm.trace_free(0x100, 64);
        let t = pm.take_trace();
        assert_eq!(t.len(), 7);
        assert!(matches!(t[0], TraceEvent::Alloc { .. }));
        assert!(matches!(t[6], TraceEvent::Free { .. }));
        assert!(pm.trace().is_empty());
    }

    #[test]
    fn crash_image_resets_volatile_state() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 1);
        pm.clwb(0x100);
        pm.sfence();
        let img = pm.crash_image(CrashPolicy::OnlyFenced);
        assert_eq!(img.dirty_lines(), 0);
        assert_eq!(img.inflight_flushes(), 0);
        assert_eq!(img.clock().now_ns(), 0.0);
        assert_eq!(img.stats().flushes_issued, 0);
    }

    #[test]
    fn reads_hit_after_write() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 1);
        let misses_before = pm.cache_stats().misses;
        pm.read_u64(0x100);
        assert_eq!(pm.cache_stats().misses, misses_before);
    }

    #[test]
    fn log_tag_routes_write_time() {
        let mut pm = testing_pmem();
        pm.push_tag(TimeCategory::Log);
        pm.write_u64(0x100, 1);
        pm.pop_tag();
        assert!(pm.clock().breakdown().log_ns > 0.0);
        assert_eq!(pm.clock().breakdown().other_ns, 0.0);
    }

    #[test]
    fn reset_metrics_zeroes_counters_keeps_data() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 9);
        pm.reset_metrics();
        assert_eq!(pm.stats().writes, 0);
        assert_eq!(pm.clock().now_ns(), 0.0);
        assert_eq!(pm.read_u64(0x100), 9);
    }

    #[test]
    fn shard_lanes_accumulate_in_parallel() {
        let mut pm = testing_pmem();
        pm.configure_shards(2);
        pm.set_active_shard(0);
        pm.write_u64(0x100, 1);
        pm.set_active_shard(1);
        pm.write_u64(0x4100, 2);
        // Each lane saw one write; the global counters saw both.
        assert_eq!(pm.shard_stats(0).writes, 1);
        assert_eq!(pm.shard_stats(1).writes, 1);
        assert_eq!(pm.stats().writes, 2);
        let rolled = pm.rolled_up_shard_stats();
        assert_eq!(rolled.writes, pm.stats().writes);
        assert_eq!(rolled.bytes_written, pm.stats().bytes_written);
        // Wall time is the slowest lane, not the serial sum.
        assert!(pm.lane_ns(0) > 0.0);
        assert!(pm.lane_ns(1) > 0.0);
        assert!(pm.wall_ns() < pm.clock().now_ns());
        assert!((pm.wall_ns() - pm.lane_ns(0).max(pm.lane_ns(1))).abs() < 1e-12);
    }

    #[test]
    fn sync_lane_charges_stall_as_flush() {
        let mut pm = testing_pmem();
        pm.configure_shards(2);
        pm.set_active_shard(0);
        pm.write_u64(0x100, 1);
        let t0 = pm.lane_ns(0);
        pm.sync_lane_to(1, t0 + 100.0);
        assert!((pm.lane_ns(1) - (t0 + 100.0)).abs() < 1e-9);
        assert!((pm.lane_breakdown(1).flush_ns - (t0 + 100.0)).abs() < 1e-9);
        // Syncing backwards is a no-op.
        pm.sync_lane_to(1, 0.0);
        assert!((pm.lane_ns(1) - (t0 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn unsharded_pool_wall_is_global_clock() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 1);
        assert_eq!(pm.wall_ns(), pm.clock().now_ns());
        assert_eq!(pm.shard_count(), 0);
        assert_eq!(pm.active_shard(), 0);
    }

    #[test]
    fn fence_counts_land_on_active_lane() {
        let mut pm = testing_pmem();
        pm.configure_shards(2);
        pm.set_active_shard(1);
        pm.write_u64(0x100, 1);
        pm.clwb(0x100);
        pm.sfence();
        assert_eq!(pm.shard_stats(1).fences, 1);
        assert_eq!(pm.shard_stats(1).flushes_issued, 1);
        assert_eq!(pm.shard_stats(0).fences, 0);
        assert_eq!(pm.stats().fences, 1);
    }

    #[test]
    fn shard_lanes_share_one_wpq() {
        // Both lanes flush one line each "at the same lane-time"; the
        // drains serialize on the shared WPQ, so the fencing lane waits
        // for both — the serial bottleneck survives sharding.
        let mut pm = testing_pmem();
        let m = pm.config().latency.clone();
        pm.configure_shards(2);
        pm.set_active_shard(0);
        pm.write_u64(0x100, 1);
        pm.clwb(0x100);
        let lane0_issue = pm.lane_ns(0);
        pm.set_active_shard(1);
        pm.write_u64(0x4100, 2);
        pm.clwb(0x4100);
        pm.sfence();
        // Two serialized drain occupancies behind one launch, ending no
        // earlier than the first issue plus the 2-line critical path.
        assert!(pm.lane_ns(1) >= lane0_issue + m.drain_path_ns(2) - m.drain_path_ns(1));
        assert!(pm.shard_stats(1).residual_stall_ns > 0.0);
    }

    #[test]
    fn lane_overlap_accrues_to_the_fencing_lane() {
        let mut pm = testing_pmem();
        pm.configure_shards(2);
        pm.set_active_shard(0);
        pm.write_u64(0x100, 1);
        pm.clwb(0x100);
        pm.charge_ns(10_000.0); // lane-0 compute hides the drain
        pm.sfence();
        assert!(pm.shard_stats(0).overlap_ns > 0.0);
        assert!(pm.shard_stats(0).overlap_ratio() > 0.9);
        assert_eq!(pm.shard_stats(1).overlap_ns, 0.0);
    }

    #[test]
    fn reset_metrics_clears_lanes() {
        let mut pm = testing_pmem();
        pm.configure_shards(2);
        pm.write_u64(0x100, 1);
        pm.reset_metrics();
        assert_eq!(pm.shard_stats(0).writes, 0);
        assert_eq!(pm.lane_ns(0), 0.0);
        assert_eq!(pm.shard_count(), 2, "configuration survives reset");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_shard_rejected() {
        let mut pm = testing_pmem();
        pm.configure_shards(2);
        pm.set_active_shard(2);
    }

    #[test]
    fn fork_handle_shares_storage_not_sim_state() {
        let mut pm = testing_pmem();
        pm.write_u64(0x100, 7);
        let mut h = pm.fork_handle();
        assert!(pm.same_storage(&h));
        assert_eq!(h.read_u64(0x100), 7, "handle reads the shared pool");
        h.write_u64(0x4000, 9);
        assert_eq!(pm.peek_u64(0x4000), 9, "parent sees handle writes");
        // Volatile state is private: the parent's counters/lines did not
        // move, and the handle started with the parent's clock.
        assert_eq!(pm.stats().writes, 1);
        assert_eq!(h.stats().writes, 1);
        assert_eq!(pm.dirty_lines(), 1);
        assert_eq!(h.dirty_lines(), 1);
        assert!(h.clock().now_ns() >= pm.clock().now_ns() - 1e-9 || h.clock().now_ns() > 0.0);
    }

    #[test]
    fn line_handoff_moves_persistence_responsibility() {
        let mut pm = testing_pmem();
        let mut h = pm.fork_handle();
        h.write_u64(0x4000, 42);
        h.clwb(0x4000);
        h.write_u64(0x4040, 43); // dirty, unflushed
        let handoff = h.take_lines();
        assert_eq!(handoff.len(), 2);
        assert_eq!(handoff.inflight(), 1);
        assert_eq!(h.inflight_flushes(), 0, "handle slate is clean");
        assert_eq!(h.dirty_lines(), 0);
        pm.absorb_lines(handoff);
        assert_eq!(pm.inflight_flushes(), 1);
        assert_eq!(pm.dirty_lines(), 1);
        // The parent's fence persists the handed-off flushed line.
        pm.sfence();
        let img = pm.crash_image(CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(0x4000), 42);
        assert_eq!(img.peek_u64(0x4040), 0, "dirty line still volatile");
    }

    #[test]
    fn handoff_drain_watermark_reaches_the_fence() {
        // A worker flushes at lane time t; the commit fence (synced past
        // t) pays only the residual of the worker's drain.
        let mut pm = testing_pmem();
        let mut h = pm.fork_handle();
        h.write_u64(0x4000, 1);
        h.clwb(0x4000);
        let stage_end = h.clock().now_ns();
        let handoff = h.take_lines();
        pm.sync_clock_to(stage_end);
        pm.absorb_lines(handoff);
        pm.charge_ns(10_000.0); // commit-side compute hides the drain
        let before = pm.clock().breakdown().flush_ns;
        pm.sfence();
        let fence_ns = pm.clock().breakdown().flush_ns - before;
        assert_eq!(
            fence_ns,
            pm.config().latency.fence_overhead_ns,
            "drain completed in the background before the fence"
        );
        assert!(pm.stats().overlap_ns > 0.0);
    }

    #[test]
    fn crash_image_ignores_unhandled_worker_lines() {
        // Staged-but-not-handed-off lines live only in the worker handle:
        // the parent's crash image must lose them under every policy
        // (legal — they are unreachable shadow blocks).
        let pm = testing_pmem();
        let mut h = pm.fork_handle();
        h.write_u64(0x4000, 5);
        h.clwb(0x4000);
        let img = pm.crash_image(CrashPolicy::PersistAll);
        assert_eq!(img.peek_u64(0x4000), 0);
    }

    #[test]
    #[should_panic(expected = "crash_sim")]
    fn crash_image_requires_crash_sim() {
        let pm = Pmem::new(PmemConfig {
            crash_sim: false,
            ..PmemConfig::testing()
        });
        let _ = pm.crash_image(CrashPolicy::OnlyFenced);
    }

    // ------------------------------------------------------------------
    // File-backed pools
    // ------------------------------------------------------------------

    fn pool_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mod_pmem_{}_{name}.pool", std::process::id()));
        p
    }

    #[test]
    fn mem_pools_use_the_mem_backend() {
        let pm = testing_pmem();
        assert_eq!(pm.backend_kind(), crate::backend::BackendKind::Mem);
        assert_eq!(pm.backend_stats(), crate::backend::BackendStats::default());
        assert!(pm.replay_stats().is_none());
    }

    #[test]
    fn fenced_writes_survive_reopen_in_a_fresh_pool_object() {
        let path = pool_path("reopen");
        let mut pm = Pmem::create_file(&path, PmemConfig::testing()).unwrap();
        assert_eq!(pm.backend_kind(), crate::backend::BackendKind::File);
        pm.write_u64(0x100, 42);
        pm.clwb(0x100);
        pm.sfence();
        pm.write_u64(0x140, 7); // dirty, never flushed: must not persist
        assert_eq!(pm.backend_stats().batches_appended, 1);
        drop(pm); // uncooperative: no checkpoint, like a kill
        let pm2 = Pmem::open_file(&path, PmemConfig::testing()).unwrap();
        assert_eq!(pm2.peek_u64(0x100), 42, "fenced line replayed");
        assert_eq!(pm2.peek_u64(0x140), 0, "unfenced store lost");
        let rs = pm2.replay_stats().unwrap();
        assert_eq!(rs.batches, 1);
        assert_eq!(rs.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn one_fence_is_one_journal_record() {
        let path = pool_path("one_record");
        let mut pm = Pmem::create_file(&path, PmemConfig::testing()).unwrap();
        for i in 0..8u64 {
            pm.write_u64(0x1000 + i * 64, i + 1);
            pm.clwb(0x1000 + i * 64);
        }
        pm.sfence();
        let st = pm.backend_stats();
        assert_eq!(st.batches_appended, 1, "8 lines, one fence, one record");
        // An empty fence appends nothing.
        pm.sfence();
        assert_eq!(pm.backend_stats().batches_appended, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_bytes_are_deterministic_across_runs() {
        // HashMap iteration order must not leak into the journal.
        let run = |name: &str| {
            let path = pool_path(name);
            let mut pm = Pmem::create_file(&path, PmemConfig::testing()).unwrap();
            for i in (0..16u64).rev() {
                pm.write_u64(0x2000 + i * 64, i);
                pm.clwb(0x2000 + i * 64);
            }
            pm.sfence();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).unwrap();
            bytes
        };
        assert_eq!(run("det_a"), run("det_b"));
    }

    #[test]
    fn checkpoint_persists_drained_unfenced_lines() {
        let path = pool_path("drained");
        let mut pm = Pmem::create_file(&path, PmemConfig::testing()).unwrap();
        pm.write_u64(0x100, 42);
        pm.clwb(0x100);
        pm.charge_ns(1_000.0); // drain completes in the background
        assert_eq!(pm.drained_unfenced_lines(), 1);
        pm.checkpoint().unwrap(); // orderly close, no fence ever issued
        drop(pm);
        let pm2 = Pmem::open_file(&path, PmemConfig::testing()).unwrap();
        assert_eq!(pm2.peek_u64(0x100), 42, "drained line reached the file");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_racing_inflight_writeback_journals_preflush_content() {
        let path = pool_path("race");
        let mut pm = Pmem::create_file(&path, PmemConfig::testing()).unwrap();
        pm.write_u64(0x100, 1);
        pm.clwb(0x100);
        pm.write_u64(0x100, 2); // races the in-flight writeback
        drop(pm); // killed before any fence
        let pm2 = Pmem::open_file(&path, PmemConfig::testing()).unwrap();
        assert_eq!(pm2.peek_u64(0x100), 1, "clwb'd content must be durable");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_folds_journal_and_preserves_state() {
        let path = pool_path("compact");
        let mut pm = Pmem::create_file(&path, PmemConfig::testing()).unwrap();
        for i in 0..32u64 {
            pm.write_u64(0x3000 + i * 64, i + 100);
            pm.clwb(0x3000 + i * 64);
            pm.sfence();
        }
        pm.checkpoint().unwrap(); // forces a compaction
        assert!(pm.backend_stats().compactions >= 1);
        // Post-compaction appends still replay on top of the snapshot.
        pm.write_u64(0x100, 5);
        pm.clwb(0x100);
        pm.sfence();
        drop(pm);
        let pm2 = Pmem::open_file(&path, PmemConfig::testing()).unwrap();
        for i in 0..32u64 {
            assert_eq!(pm2.peek_u64(0x3000 + i * 64), i + 100);
        }
        assert_eq!(pm2.peek_u64(0x100), 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_pool_capacity_comes_from_the_header() {
        let path = pool_path("capacity");
        let pm = Pmem::create_file(
            &path,
            PmemConfig {
                capacity: 1 << 22,
                ..PmemConfig::testing()
            },
        )
        .unwrap();
        drop(pm);
        // Caller's capacity is overridden by the file's.
        let pm2 = Pmem::open_file(
            &path,
            PmemConfig {
                capacity: 1 << 30,
                ..PmemConfig::testing()
            },
        )
        .unwrap();
        assert_eq!(pm2.capacity(), 1 << 22);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn forked_handles_share_the_file_backend() {
        let path = pool_path("fork");
        let pm = Pmem::create_file(&path, PmemConfig::testing()).unwrap();
        let mut h = pm.fork_handle();
        h.write_u64(0x4000, 9);
        h.clwb(0x4000);
        h.sfence(); // a fence on any handle journals through the pool file
        assert_eq!(pm.backend_stats().batches_appended, 1);
        drop(h);
        drop(pm);
        let pm2 = Pmem::open_file(&path, PmemConfig::testing()).unwrap();
        assert_eq!(pm2.peek_u64(0x4000), 9);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pool_set_recovery_is_bit_identical_to_a_single_file_pool() {
        // The same simulated workload through a 1-shard pool and a
        // 4-shard set: the recovered pools must agree word for word, and
        // the set must report its parallel replay.
        let run = |name: &str, shards: u16, durability: Durability| {
            let path = pool_path(name);
            let mut pm = Pmem::create_file(
                &path,
                PmemConfig {
                    journal_shards: shards,
                    durability,
                    ..PmemConfig::testing()
                },
            )
            .unwrap();
            // Addresses spanning all four shard ranges of a 64 MiB pool.
            for i in 0..64u64 {
                let addr = (i % 4) * (1 << 24) + (i / 4) * 64;
                pm.write_u64(addr, i + 1);
                pm.clwb(addr);
                if i % 3 == 2 {
                    pm.sfence();
                }
            }
            pm.sfence();
            drop(pm); // uncooperative: no checkpoint, like a kill
            let pm2 = Pmem::open_file(&path, PmemConfig::testing()).unwrap();
            let words: Vec<u64> = (0..64u64)
                .map(|i| pm2.peek_u64((i % 4) * (1 << 24) + (i / 4) * 64))
                .collect();
            let rs = pm2.replay_stats().unwrap().clone();
            std::fs::remove_file(&path).unwrap();
            for s in 0..shards {
                let mut sp = path.as_os_str().to_os_string();
                sp.push(format!(".s{s}"));
                let _ = std::fs::remove_file(sp);
            }
            (words, rs)
        };
        let (single, rs1) = run("set_single", 1, Durability::Buffered);
        let (set, rs4) = run("set_sharded", 4, Durability::Fsync);
        assert_eq!(single, set, "recovered images must be bit-identical");
        assert_eq!(rs1.replay_parallelism, 1);
        assert_eq!(rs4.replay_parallelism, 4);
        assert_eq!(rs1.batches, rs4.batches);
        assert_eq!(rs1.lines, rs4.lines);
        assert_eq!((0..64u64).map(|i| i + 1).sum::<u64>(), single.iter().sum());
    }

    #[test]
    fn fsync_pool_reports_rounds_and_file_bytes() {
        let path = pool_path("fsync_rounds");
        let mut pm = Pmem::create_file(
            &path,
            PmemConfig {
                journal_shards: 2,
                durability: Durability::Fsync,
                ..PmemConfig::testing()
            },
        )
        .unwrap();
        for i in 0..4u64 {
            pm.write_u64(i * 64, i + 1);
            pm.clwb(i * 64);
            pm.sfence();
        }
        let st = pm.backend_stats();
        assert_eq!(st.fsync_rounds, 4, "one fsync round per non-empty fence");
        assert_eq!(st.journal_shards, 2);
        assert!(pm.backend_file_bytes().unwrap() > 0);
        drop(pm);
        std::fs::remove_file(&path).unwrap();
        for s in 0..2 {
            let mut sp = path.as_os_str().to_os_string();
            sp.push(format!(".s{s}"));
            let _ = std::fs::remove_file(sp);
        }
    }

    #[test]
    fn crash_image_of_a_file_pool_is_memory_backed() {
        let path = pool_path("crash_img");
        let mut pm = Pmem::create_file(&path, PmemConfig::testing()).unwrap();
        pm.write_u64(0x100, 3);
        pm.clwb(0x100);
        pm.sfence();
        let img = pm.crash_image(CrashPolicy::OnlyFenced);
        assert_eq!(img.backend_kind(), crate::backend::BackendKind::Mem);
        assert_eq!(img.peek_u64(0x100), 3);
        std::fs::remove_file(&path).unwrap();
    }
}
