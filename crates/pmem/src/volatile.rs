//! The volatile node cache: per-line volatility marks for "Don't
//! Persist All" hybrid roots.
//!
//! A hybrid root keeps its interior CHAMP/RRB index in ordinary pool
//! storage but marks the cachelines of those blocks *volatile*: stores
//! to a volatile line bypass the cache/latency model entirely, `clwb`
//! on one is a counted no-op ([`crate::PmStats::flushes_avoided`]), and
//! — because a volatile line never enters the dirty/in-flight line
//! table — it is never copied to the durable image, never journaled by
//! a fence, and never part of a [`crate::Pmem::crash_image`]. Recovery
//! rebuilds the index from the root's persistent spine and re-marks the
//! fresh blocks.
//!
//! The mark set is shared by every handle forked from a pool
//! ([`crate::Pmem::fork_handle`]): a worker marks the blocks it
//! allocates and the commit stage (or any reader) observes the same
//! marks. Marks are line-granular and only ever cover whole lines —
//! the allocator rounds hybrid node blocks up to exclusive-cacheline
//! footprints so a volatile mark can never swallow a neighboring
//! persistent block's bytes.
//!
//! Crash images and freshly opened pools start with an empty set:
//! volatility is process state, exactly like the simulated cache.

use crate::line::CACHELINE;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared set of volatile cachelines, indexed by line number
/// (`addr / 64`). Lock-free: bits are set/cleared with atomic RMW and
/// read with relaxed loads. The `enabled` flag short-circuits every
/// check on pools that never mark anything (pure `Full`-policy pools
/// pay one relaxed load per access path).
#[derive(Debug)]
pub struct VolatileSet {
    /// One bit per cacheline of the pool.
    bits: Vec<AtomicU64>,
    /// True once any line was ever marked; never cleared (the fast-path
    /// gate, not a count).
    enabled: AtomicBool,
}

impl VolatileSet {
    /// An empty set for a pool of `capacity` bytes.
    pub fn new(capacity: u64) -> VolatileSet {
        let lines = capacity.div_ceil(CACHELINE);
        let words = lines.div_ceil(64) as usize;
        let mut bits = Vec::with_capacity(words);
        bits.resize_with(words, || AtomicU64::new(0));
        VolatileSet {
            bits,
            enabled: AtomicBool::new(false),
        }
    }

    /// Whether any line was ever marked (fast gate for the hot paths).
    #[inline]
    pub fn any(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Whether the line containing `addr` is marked volatile.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        if !self.any() {
            return false;
        }
        let line = addr / CACHELINE;
        let (w, b) = (line / 64, line % 64);
        match self.bits.get(w as usize) {
            Some(word) => word.load(Ordering::Relaxed) & (1 << b) != 0,
            None => false,
        }
    }

    /// Marks every line of `[addr, addr + len)` volatile. The range must
    /// be line-aligned on both ends: volatile blocks own whole lines.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `len` is not a multiple of the cacheline size.
    pub fn mark(&self, addr: u64, len: u64) {
        assert_eq!(addr % CACHELINE, 0, "volatile mark must be line-aligned");
        assert_eq!(len % CACHELINE, 0, "volatile mark must cover whole lines");
        self.enabled.store(true, Ordering::Relaxed);
        for line in addr / CACHELINE..(addr + len) / CACHELINE {
            let (w, b) = (line / 64, line % 64);
            self.bits[w as usize].fetch_or(1 << b, Ordering::Relaxed);
        }
    }

    /// Clears the volatile marks of `[addr, addr + len)` (on free, so a
    /// recycled block never inherits stale volatility).
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `len` is not a multiple of the cacheline size.
    pub fn clear(&self, addr: u64, len: u64) {
        assert_eq!(addr % CACHELINE, 0, "volatile clear must be line-aligned");
        assert_eq!(len % CACHELINE, 0, "volatile clear must cover whole lines");
        for line in addr / CACHELINE..(addr + len) / CACHELINE {
            let (w, b) = (line / 64, line % 64);
            self.bits[w as usize].fetch_and(!(1 << b), Ordering::Relaxed);
        }
    }

    /// Number of currently marked lines (observability; O(pool lines)).
    pub fn marked_lines(&self) -> u64 {
        if !self.any() {
            return 0;
        }
        self.bits
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_contains_nothing() {
        let s = VolatileSet::new(1 << 20);
        assert!(!s.any());
        assert!(!s.contains(0));
        assert!(!s.contains(4096));
        assert_eq!(s.marked_lines(), 0);
    }

    #[test]
    fn mark_covers_every_byte_of_the_range() {
        let s = VolatileSet::new(1 << 20);
        s.mark(256, 128);
        assert!(s.any());
        assert!(s.contains(256));
        assert!(s.contains(300), "mid-line byte");
        assert!(s.contains(383), "last byte of the range");
        assert!(!s.contains(255), "byte before");
        assert!(!s.contains(384), "line after");
        assert_eq!(s.marked_lines(), 2);
    }

    #[test]
    fn clear_removes_marks_but_not_the_gate() {
        let s = VolatileSet::new(1 << 20);
        s.mark(0, 64);
        s.mark(1024, 64);
        s.clear(0, 64);
        assert!(!s.contains(0));
        assert!(s.contains(1024));
        assert!(s.any(), "gate stays up once anything was marked");
        assert_eq!(s.marked_lines(), 1);
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn unaligned_mark_panics() {
        let s = VolatileSet::new(1 << 20);
        s.mark(16, 64);
    }

    #[test]
    #[should_panic(expected = "whole lines")]
    fn partial_line_mark_panics() {
        let s = VolatileSet::new(1 << 20);
        s.mark(64, 48);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = VolatileSet::new(128);
        s.mark(0, 64);
        assert!(!s.contains(1 << 30));
    }
}
