//! # mod-pmem — simulated persistent memory substrate
//!
//! This crate stands in for the Intel Optane DCPMM test machine of the MOD
//! paper (Haria, Hill, Swift — ASPLOS 2020). It provides:
//!
//! * [`Pmem`] — a byte-addressable persistent pool with x86-64 persistence
//!   semantics: stores dirty cachelines in a volatile cache, [`Pmem::clwb`]
//!   starts a weakly-ordered writeback that drains in the background from
//!   issue time ([`WpqDrain`]), [`Pmem::sfence`] is the ordering point
//!   that stalls for the *residual* drain and makes flushed data durable;
//! * [`LatencyModel`] — the paper's measured constants (353 ns flush+fence,
//!   302 ns PM read, Amdahl overlap with f = 0.82) turning event counts
//!   into simulated time, split into *flush*, *log* and *other* buckets
//!   ([`SimClock`]) as in Figs 2 and 9;
//! * [`CacheSim`] — the 32 KB / 8-way L1D model behind Fig 11's miss ratios;
//! * [`trace`] — the §5.4 automated-testing trace and invariant checker;
//! * crash simulation — [`Pmem::crash_image`] builds post-crash pools under
//!   adversarial choices of which unfenced lines persisted;
//! * pluggable persistence backends — [`PoolBackend`] with the volatile
//!   [`MemBackend`] and the file-backed [`FileBackend`] (journaled fence
//!   log + snapshot compaction; [`Pmem::create_file`] / [`Pmem::open_file`]
//!   make pools that survive a real process kill);
//! * [`WpqModel`] — the black-box memory-controller model behind Fig 4's
//!   "observed" curve, plus the Karp–Flatt fit used by the paper.
//!
//! ## Example
//!
//! ```
//! use mod_pmem::{Pmem, PmemConfig, CrashPolicy};
//!
//! let mut pm = Pmem::new(PmemConfig::testing());
//! pm.write_u64(0x100, 7);          // store: volatile
//! pm.clwb(0x100);                  // weakly-ordered writeback
//! pm.sfence();                     // ordering point: now durable
//! let after_crash = pm.crash_image(CrashPolicy::OnlyFenced);
//! assert_eq!(after_crash.peek_u64(0x100), 7);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod backend;
pub mod cache;
pub mod clock;
pub mod drain;
pub mod journal;
pub mod line;
pub mod model;
pub mod pmem;
pub mod stats;
pub mod trace;
pub mod volatile;
pub mod wpq;

pub use arena::SharedArena;
pub use backend::{BackendKind, BackendStats, Durability, FileBackend, MemBackend, PoolBackend};
pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use clock::{SimClock, TimeBreakdown, TimeCategory};
pub use drain::WpqDrain;
pub use journal::{BatchKind, LineImage};
pub use line::{line_of, lines_covering, PmPtr, CACHELINE};
pub use model::{fit_parallel_fraction, karp_flatt_serial_fraction, LatencyModel};
pub use pmem::{CrashPolicy, LineHandoff, Pmem, PmemConfig, ReplayStats};
pub use stats::{EpochHistogram, PmStats};
pub use trace::{check_trace, TraceChecker, TraceEvent, Violation};
pub use volatile::VolatileSet;
pub use wpq::WpqModel;
