//! Latency model of the simulated PM system.
//!
//! Constants come from the paper's test machine (Table 1) and its flush
//! microbenchmark (§3): a single `clwb + sfence` to an L1-resident line
//! costs 353 ns, random 8-byte PM reads cost 302 ns, DRAM reads 80 ns, and
//! overlapped flushes follow Amdahl's law with parallel fraction
//! f ≈ 0.82 (Fig 4).
//!
//! The key modelling identity: flushing `n` lines then fencing costs
//! `stall(n) = fence_base_ns · (f + (1 − f)·n)`, so the *average* latency
//! per flush is `fence_base_ns · (f/n + (1 − f))` — exactly the Amdahl
//! curve the paper fits with the Karp–Flatt metric.
//!
//! Since the overlapped-drain rework, [`crate::Pmem`] no longer charges
//! that whole stall at the fence. Each `clwb` schedules a background
//! drain on its WPQ lane ([`crate::WpqDrain`]): an overlappable *launch*
//! phase of [`LatencyModel::wpq_launch_ns`] (= `fence_base_ns · f`)
//! followed by a serialized per-line *drain* occupancy of
//! [`LatencyModel::wpq_drain_ns`] (= `fence_base_ns · (1 − f)`), and
//! `sfence` stalls only for the **residual** — whatever of that calendar
//! is still in the future. With flushes issued back-to-back (nothing to
//! overlap), the residual equals the Amdahl stall above, so
//! [`LatencyModel::fence_stall_ns`] remains the saturated limit and the
//! charge-at-the-fence reference that [`crate::PmStats`] measures
//! overlap against.

/// Latency parameters of the simulated machine.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyModel {
    /// L1D hit latency per access.
    pub l1_hit_ns: f64,
    /// L1D miss that hits the last-level cache.
    pub llc_hit_ns: f64,
    /// Full miss to PM (random 8-byte read; paper Table 1: 302 ns).
    pub pm_miss_ns: f64,
    /// L1D miss to DRAM (paper Table 1: 80 ns).
    pub dram_miss_ns: f64,
    /// Store into the cache hierarchy (hit path).
    pub store_ns: f64,
    /// Issue cost of one `clwb` (commits instantly per §3; the writeback
    /// itself proceeds in the background).
    pub clwb_issue_ns: f64,
    /// Latency of one un-overlapped `clwb + sfence` pair (§3: 353 ns).
    pub fence_base_ns: f64,
    /// Amdahl parallel fraction of concurrent flushes (Fig 4: 0.82).
    ///
    /// Coupled to [`LatencyModel::wpq_launch_ns`] /
    /// [`LatencyModel::wpq_drain_ns`]: changing `amdahl_f` alone (e.g.
    /// via struct-update syntax) leaves the background-drain calendar on
    /// the old split and the overlap accounting stops balancing. Use
    /// [`LatencyModel::with_parallel_fraction`], which re-derives all
    /// three together.
    pub amdahl_f: f64,
    /// Overlappable launch phase of a writeback: the parallel share of
    /// the base flush latency (`fence_base_ns · amdahl_f`). Starts at
    /// `clwb` issue and overlaps with anything, including other launches.
    pub wpq_launch_ns: f64,
    /// Serialized WPQ drain occupancy per line: the serial share of the
    /// base flush latency (`fence_base_ns · (1 − amdahl_f)`). Lines on
    /// the same WPQ lane drain one after another.
    pub wpq_drain_ns: f64,
    /// Number of independent WPQ drain lanes (line-addressed,
    /// `line % wpq_lanes`). The paper's Optane fit behaves like a single
    /// serialized channel, so the default is 1; more lanes model
    /// hypothetical devices with parallel drain bandwidth (the saturated
    /// limit then falls below the Amdahl curve).
    pub wpq_lanes: usize,
    /// Cost of an `sfence` with no in-flight flushes.
    pub fence_overhead_ns: f64,
    /// CPU bookkeeping per STM log entry (range tracking, object lookup,
    /// entry construction — the tx_add overhead of libpmemobj).
    pub log_entry_overhead_ns: f64,
}

impl LatencyModel {
    /// The paper's test machine: Cascade Lake + Optane DCPMM (Table 1, §3).
    pub fn optane() -> LatencyModel {
        LatencyModel {
            l1_hit_ns: 1.0,
            llc_hit_ns: 40.0,
            pm_miss_ns: 302.0,
            dram_miss_ns: 80.0,
            store_ns: 1.0,
            clwb_issue_ns: 4.0,
            fence_base_ns: 353.0,
            amdahl_f: 0.82,
            wpq_launch_ns: 353.0 * 0.82,
            wpq_drain_ns: 353.0 * (1.0 - 0.82),
            wpq_lanes: 1,
            fence_overhead_ns: 15.0,
            log_entry_overhead_ns: 100.0,
        }
    }

    /// A zero-cost model: every operation is free. Useful for functional
    /// tests where simulated time is irrelevant.
    pub fn zero() -> LatencyModel {
        LatencyModel {
            l1_hit_ns: 0.0,
            llc_hit_ns: 0.0,
            pm_miss_ns: 0.0,
            dram_miss_ns: 0.0,
            store_ns: 0.0,
            clwb_issue_ns: 0.0,
            fence_base_ns: 0.0,
            amdahl_f: 0.82,
            wpq_launch_ns: 0.0,
            wpq_drain_ns: 0.0,
            wpq_lanes: 1,
            fence_overhead_ns: 0.0,
            log_entry_overhead_ns: 0.0,
        }
    }

    /// The Optane model with a different Amdahl parallel fraction `f`,
    /// with the WPQ launch/drain split re-derived so the event model and
    /// the analytical curve stay consistent (used by the ablation's
    /// hypothetical no-overlap device).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ f ≤ 1.0`.
    pub fn with_parallel_fraction(f: f64) -> LatencyModel {
        assert!(
            (0.0..=1.0).contains(&f),
            "parallel fraction must be in [0, 1]"
        );
        let mut m = LatencyModel::optane();
        m.amdahl_f = f;
        m.wpq_launch_ns = m.fence_base_ns * f;
        m.wpq_drain_ns = m.fence_base_ns * (1.0 - f);
        m
    }

    /// Stall time of an `sfence` with `n_inflight` weakly-ordered flushes
    /// outstanding: `fence_base_ns · (f + (1 − f)·n)`; just
    /// `fence_overhead_ns` when nothing is in flight.
    pub fn fence_stall_ns(&self, n_inflight: usize) -> f64 {
        if n_inflight == 0 {
            return self.fence_overhead_ns;
        }
        let n = n_inflight as f64;
        self.fence_base_ns * (self.amdahl_f + (1.0 - self.amdahl_f) * n)
    }

    /// Modelled *average* latency of one flush when `n` flushes share a
    /// fence (the red "amdahl" line of Fig 4).
    pub fn avg_flush_latency_ns(&self, n: usize) -> f64 {
        assert!(n > 0, "flush concurrency must be positive");
        self.fence_stall_ns(n) / n as f64
    }

    /// The amdahl curve over a set of concurrency levels.
    pub fn amdahl_curve(&self, ns: &[usize]) -> Vec<(usize, f64)> {
        ns.iter()
            .map(|&n| (n, self.avg_flush_latency_ns(n)))
            .collect()
    }

    /// Drain critical path of `n` lines issued at one instant on a
    /// single WPQ lane: `wpq_launch_ns + n · wpq_drain_ns`. This is the
    /// floor no timeline can beat — background drain can hide the work
    /// under compute but cannot shrink it — and, with the default
    /// launch/drain split, it equals [`LatencyModel::fence_stall_ns`].
    pub fn drain_path_ns(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.wpq_launch_ns + n as f64 * self.wpq_drain_ns
    }
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::optane()
    }
}

/// Karp–Flatt experimentally determined serial fraction.
///
/// Given measured speedup `s` at concurrency `n`, returns
/// `e = (1/s − 1/n) / (1 − 1/n)`. The parallel fraction is `1 − e`.
///
/// # Panics
///
/// Panics if `n < 2` (the metric is undefined at n = 1).
pub fn karp_flatt_serial_fraction(speedup: f64, n: usize) -> f64 {
    assert!(n >= 2, "Karp-Flatt is undefined for n < 2");
    let n = n as f64;
    (1.0 / speedup - 1.0 / n) / (1.0 - 1.0 / n)
}

/// Fits an Amdahl parallel fraction to an observed flush-latency curve
/// `(n, avg_latency_ns)` using the Karp–Flatt metric at each point with
/// `n ≥ 2`, averaged. The first point with `n == 1` (or the smallest `n`)
/// anchors the serial baseline.
pub fn fit_parallel_fraction(observed: &[(usize, f64)]) -> f64 {
    let base = observed
        .iter()
        .find(|&&(n, _)| n == 1)
        .map(|&(_, l)| l)
        .unwrap_or_else(|| observed.first().expect("empty curve").1);
    let mut acc = 0.0;
    let mut cnt = 0usize;
    for &(n, lat) in observed {
        if n < 2 {
            continue;
        }
        // Speedup of average flush latency relative to un-overlapped.
        let s = base / lat;
        let e = karp_flatt_serial_fraction(s, n);
        acc += 1.0 - e;
        cnt += 1;
    }
    assert!(cnt > 0, "need at least one point with n >= 2");
    acc / cnt as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flush_costs_353ns() {
        // §3: "the latency of one clwb followed by one sfence to be 353 ns".
        let m = LatencyModel::optane();
        assert!((m.fence_stall_ns(1) - 353.0).abs() < 1e-9);
    }

    #[test]
    fn sixteen_flushes_reduce_avg_latency_by_75_percent() {
        // §3: "performing 16 flushes concurrently reduces average flush
        // latency by 75%".
        let m = LatencyModel::optane();
        let reduction = 1.0 - m.avg_flush_latency_ns(16) / m.avg_flush_latency_ns(1);
        assert!(
            (reduction - 0.75).abs() < 0.03,
            "expected ~75% reduction, got {:.1}%",
            reduction * 100.0
        );
    }

    #[test]
    fn thirtytwo_vs_sixteen_is_marginal() {
        // §3: 32 concurrent flushes were only ~3% better than 16 on real
        // hardware. The pure Amdahl model keeps improving a little longer
        // (~11%); both are far below the 75% gained between 1 and 16.
        let m = LatencyModel::optane();
        let improvement = 1.0 - m.avg_flush_latency_ns(32) / m.avg_flush_latency_ns(16);
        assert!(
            improvement < 0.15,
            "expected marginal improvement, got {:.1}%",
            improvement * 100.0
        );
    }

    #[test]
    fn eight_flushes_one_fence_much_faster_than_eight_fences() {
        // §1: 8 clwbs ordered by a single sfence are ~75% faster than each
        // clwb individually ordered.
        let m = LatencyModel::optane();
        let joint = m.fence_stall_ns(8);
        let separate = 8.0 * m.fence_stall_ns(1);
        let saving = 1.0 - joint / separate;
        assert!(
            saving > 0.65 && saving < 0.80,
            "expected ~75% saving, got {:.1}%",
            saving * 100.0
        );
    }

    #[test]
    fn empty_fence_costs_overhead_only() {
        let m = LatencyModel::optane();
        assert_eq!(m.fence_stall_ns(0), m.fence_overhead_ns);
    }

    #[test]
    fn karp_flatt_recovers_fraction_exactly_on_model_data() {
        let m = LatencyModel::optane();
        let ns: Vec<usize> = vec![1, 2, 4, 8, 16, 32];
        let curve = m.amdahl_curve(&ns);
        let f = fit_parallel_fraction(&curve);
        assert!(
            (f - m.amdahl_f).abs() < 1e-9,
            "fit {f} should equal model {}",
            m.amdahl_f
        );
    }

    #[test]
    fn amdahl_curve_monotone_decreasing() {
        let m = LatencyModel::optane();
        let c = m.amdahl_curve(&[1, 2, 4, 8, 16, 32]);
        for w in c.windows(2) {
            assert!(w[1].1 < w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "undefined for n < 2")]
    fn karp_flatt_rejects_n1() {
        karp_flatt_serial_fraction(1.0, 1);
    }

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        assert_eq!(m.fence_stall_ns(10), 0.0);
        assert_eq!(m.fence_stall_ns(0), 0.0);
        assert_eq!(m.drain_path_ns(10), 0.0);
    }

    #[test]
    fn wpq_split_reconstructs_the_amdahl_stall() {
        // launch + n·drain must equal fence_base·(f + (1−f)·n): the
        // event model saturates to the analytical curve.
        let m = LatencyModel::optane();
        for n in [1usize, 2, 8, 32] {
            assert!(
                (m.drain_path_ns(n) - m.fence_stall_ns(n)).abs() < 1e-9,
                "split drifted from the Amdahl stall at n = {n}"
            );
        }
    }

    #[test]
    fn with_parallel_fraction_rederives_the_split() {
        let m = LatencyModel::with_parallel_fraction(0.0);
        assert_eq!(m.wpq_launch_ns, 0.0);
        assert!((m.wpq_drain_ns - m.fence_base_ns).abs() < 1e-9);
        let m = LatencyModel::with_parallel_fraction(1.0);
        assert!((m.wpq_launch_ns - m.fence_base_ns).abs() < 1e-9);
        assert_eq!(m.wpq_drain_ns, 0.0);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn bad_parallel_fraction_rejected() {
        LatencyModel::with_parallel_fraction(1.5);
    }
}
