//! Cacheline arithmetic and the persistent pointer type.

/// Size of a cacheline in bytes (x86-64).
pub const CACHELINE: u64 = 64;

/// Returns the address of the cacheline containing `addr`.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(CACHELINE - 1)
}

/// Iterates over the cacheline base addresses covering `[addr, addr + len)`.
///
/// Yields nothing when `len == 0`.
#[inline]
pub fn lines_covering(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = if len == 0 { 1 } else { line_of(addr) };
    let last = if len == 0 { 0 } else { line_of(addr + len - 1) };
    (0..)
        .map(move |i| first + i * CACHELINE)
        .take_while(move |&l| l <= last)
}

/// A pointer into simulated persistent memory: a byte offset from the pool
/// base. Offset 0 is reserved as the null pointer.
///
/// `PmPtr` is the only currency datastructures use to refer to persistent
/// state; it stays valid across simulated crashes and "process lifetimes"
/// because it is a pool-relative offset, exactly like PMDK's `PMEMoid`
/// offsets or nvm_malloc's relative pointers.
///
/// ```
/// use mod_pmem::PmPtr;
/// let p = PmPtr::from_addr(128);
/// assert!(!p.is_null());
/// assert_eq!(p.addr(), 128);
/// assert!(PmPtr::NULL.is_null());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PmPtr(u64);

impl PmPtr {
    /// The null persistent pointer (offset 0).
    pub const NULL: PmPtr = PmPtr(0);

    /// Creates a pointer from a raw pool offset. Offset 0 yields the null
    /// pointer; use [`PmPtr::NULL`] to make that intent explicit.
    #[inline]
    pub fn from_addr(addr: u64) -> PmPtr {
        PmPtr(addr)
    }

    /// The raw pool offset.
    #[inline]
    pub fn addr(self) -> u64 {
        self.0
    }

    /// Whether this is the null pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Pointer to `self + bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if called on a null pointer (offsetting null
    /// is always a logic error).
    #[inline]
    pub fn offset(self, bytes: u64) -> PmPtr {
        debug_assert!(!self.is_null(), "offsetting a null PmPtr");
        PmPtr(self.0 + bytes)
    }
}

impl std::fmt::Debug for PmPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "PmPtr(null)")
        } else {
            write!(f, "PmPtr({:#x})", self.0)
        }
    }
}

impl std::fmt::Display for PmPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<PmPtr> for u64 {
    fn from(p: PmPtr) -> u64 {
        p.addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_rounds_down() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(130), 128);
    }

    #[test]
    fn lines_covering_single_line() {
        let v: Vec<u64> = lines_covering(10, 8).collect();
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn lines_covering_spanning() {
        let v: Vec<u64> = lines_covering(60, 8).collect();
        assert_eq!(v, vec![0, 64]);
        let v: Vec<u64> = lines_covering(64, 129).collect();
        assert_eq!(v, vec![64, 128, 192]);
    }

    #[test]
    fn lines_covering_empty() {
        assert_eq!(lines_covering(100, 0).count(), 0);
    }

    #[test]
    fn lines_covering_exact_line() {
        let v: Vec<u64> = lines_covering(128, 64).collect();
        assert_eq!(v, vec![128]);
    }

    #[test]
    fn null_ptr_behaviour() {
        assert!(PmPtr::NULL.is_null());
        assert!(PmPtr::default().is_null());
        assert_eq!(PmPtr::from_addr(0), PmPtr::NULL);
        assert!(!PmPtr::from_addr(8).is_null());
    }

    #[test]
    fn ptr_offset() {
        let p = PmPtr::from_addr(64);
        assert_eq!(p.offset(16).addr(), 80);
    }

    #[test]
    fn ptr_debug_format() {
        assert_eq!(format!("{:?}", PmPtr::NULL), "PmPtr(null)");
        assert_eq!(format!("{:?}", PmPtr::from_addr(255)), "PmPtr(0xff)");
    }
}
