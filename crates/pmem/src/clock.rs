//! Simulated execution clock with per-category time attribution.
//!
//! The MOD paper (Fig 2, Fig 9) breaks workload execution time into three
//! buckets: time spent *flushing* (clwb issue plus sfence stalls, including
//! flushes of log entries), time spent *logging* (building log entries),
//! and everything else. [`SimClock`] accumulates simulated nanoseconds into
//! those buckets; the active bucket for non-flush costs is selected by a
//! tag stack so STM code can mark its log-maintenance sections.

/// Attribution bucket for simulated time.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum TimeCategory {
    /// Compute and memory-access time not otherwise attributed.
    Other,
    /// Cacheline flush issue and fence stall time.
    Flush,
    /// Log construction and maintenance time (PM-STM only).
    Log,
}

/// Breakdown of accumulated simulated time, in nanoseconds.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Nanoseconds in [`TimeCategory::Other`].
    pub other_ns: f64,
    /// Nanoseconds in [`TimeCategory::Flush`].
    pub flush_ns: f64,
    /// Nanoseconds in [`TimeCategory::Log`].
    pub log_ns: f64,
}

impl TimeBreakdown {
    /// Total simulated nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.other_ns + self.flush_ns + self.log_ns
    }

    /// Fraction of total time spent in flushing; 0 when total is 0.
    pub fn flush_fraction(&self) -> f64 {
        let t = self.total_ns();
        if t == 0.0 {
            0.0
        } else {
            self.flush_ns / t
        }
    }

    /// Fraction of total time spent in logging; 0 when total is 0.
    pub fn log_fraction(&self) -> f64 {
        let t = self.total_ns();
        if t == 0.0 {
            0.0
        } else {
            self.log_ns / t
        }
    }

    /// Element-wise difference `self - earlier` (for per-span accounting).
    pub fn since(&self, earlier: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            other_ns: self.other_ns - earlier.other_ns,
            flush_ns: self.flush_ns - earlier.flush_ns,
            log_ns: self.log_ns - earlier.log_ns,
        }
    }
}

/// Simulated clock. All latency charges from the PM substrate land here.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    breakdown: TimeBreakdown,
    tags: Vec<TimeCategory>,
}

impl SimClock {
    /// Creates a clock at time zero with an empty tag stack.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.breakdown.total_ns()
    }

    /// The accumulated per-category breakdown.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// The category non-flush charges currently attribute to.
    pub fn current_tag(&self) -> TimeCategory {
        *self.tags.last().unwrap_or(&TimeCategory::Other)
    }

    /// Pushes an attribution tag; non-flush charges go to `cat` until the
    /// matching [`SimClock::pop_tag`].
    pub fn push_tag(&mut self, cat: TimeCategory) {
        self.tags.push(cat);
    }

    /// Pops the most recent attribution tag.
    ///
    /// # Panics
    ///
    /// Panics if the tag stack is empty (unbalanced push/pop is a logic
    /// error in the caller).
    pub fn pop_tag(&mut self) {
        self.tags
            .pop()
            .expect("SimClock::pop_tag on empty tag stack");
    }

    /// Advances the clock by `ns`, attributed to the current tag.
    pub fn advance(&mut self, ns: f64) {
        self.advance_as(self.current_tag(), ns);
    }

    /// Advances the clock by `ns`, attributed explicitly to `cat`
    /// regardless of the tag stack (used for flush/fence charges).
    pub fn advance_as(&mut self, cat: TimeCategory, ns: f64) {
        debug_assert!(ns >= 0.0, "negative time charge");
        match cat {
            TimeCategory::Other => self.breakdown.other_ns += ns,
            TimeCategory::Flush => self.breakdown.flush_ns += ns,
            TimeCategory::Log => self.breakdown.log_ns += ns,
        }
    }

    /// Advances the clock so that [`SimClock::now_ns`] is at least `t`,
    /// charging the gap (if any) to `cat`. Used to synchronize per-shard
    /// lane clocks at shared events like a pipelined batch fence: a lane
    /// that arrives early stalls until the event time.
    pub fn sync_to_ns(&mut self, t: f64, cat: TimeCategory) {
        let gap = t - self.now_ns();
        if gap > 0.0 {
            self.advance_as(cat, gap);
        }
    }

    /// Resets the clock to zero, keeping the tag stack.
    pub fn reset(&mut self) {
        self.breakdown = TimeBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tag_is_other() {
        let mut c = SimClock::new();
        c.advance(10.0);
        assert_eq!(c.breakdown().other_ns, 10.0);
        assert_eq!(c.now_ns(), 10.0);
    }

    #[test]
    fn tags_route_charges() {
        let mut c = SimClock::new();
        c.push_tag(TimeCategory::Log);
        c.advance(5.0);
        c.pop_tag();
        c.advance(2.0);
        assert_eq!(c.breakdown().log_ns, 5.0);
        assert_eq!(c.breakdown().other_ns, 2.0);
    }

    #[test]
    fn nested_tags() {
        let mut c = SimClock::new();
        c.push_tag(TimeCategory::Log);
        c.push_tag(TimeCategory::Other);
        c.advance(1.0);
        c.pop_tag();
        c.advance(1.0);
        c.pop_tag();
        assert_eq!(c.breakdown().other_ns, 1.0);
        assert_eq!(c.breakdown().log_ns, 1.0);
    }

    #[test]
    fn advance_as_ignores_tag() {
        let mut c = SimClock::new();
        c.push_tag(TimeCategory::Log);
        c.advance_as(TimeCategory::Flush, 7.0);
        assert_eq!(c.breakdown().flush_ns, 7.0);
        assert_eq!(c.breakdown().log_ns, 0.0);
    }

    #[test]
    fn fractions() {
        let b = TimeBreakdown {
            other_ns: 27.0,
            flush_ns: 64.0,
            log_ns: 9.0,
        };
        assert!((b.flush_fraction() - 0.64).abs() < 1e-12);
        assert!((b.log_fraction() - 0.09).abs() < 1e-12);
        assert_eq!(TimeBreakdown::default().flush_fraction(), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let a = TimeBreakdown {
            other_ns: 1.0,
            flush_ns: 2.0,
            log_ns: 3.0,
        };
        let b = TimeBreakdown {
            other_ns: 5.0,
            flush_ns: 7.0,
            log_ns: 3.5,
        };
        let d = b.since(&a);
        assert_eq!(d.other_ns, 4.0);
        assert_eq!(d.flush_ns, 5.0);
        assert_eq!(d.log_ns, 0.5);
    }

    #[test]
    #[should_panic(expected = "empty tag stack")]
    fn unbalanced_pop_panics() {
        SimClock::new().pop_tag();
    }
}
