//! Segmented byte storage backing the simulated PM pool.
//!
//! [`SharedArena`] is the storage layer that makes lock-free shard
//! staging possible: it is a handle (cheap [`Clone`]) onto one shared,
//! lazily-allocated byte space, and every access goes through **relaxed
//! atomic `u64` words**. That gives the exact semantics of a real
//! `mmap`ed PM pool shared by several cores:
//!
//! * concurrent accesses to *disjoint* ranges (each worker writes only
//!   blocks inside its own allocation arena) are race-free and scale
//!   across host threads with no lock;
//! * racing accesses to the *same* 8-byte word are defined behavior —
//!   the reader sees some complete 8-byte value, never UB — which is
//!   precisely the publication guarantee MOD relies on for its one
//!   atomic root-pointer store;
//! * accesses spanning multiple words can tear at word granularity,
//!   exactly like real PM, which is why the commit protocol only ever
//!   publishes through single aligned 8-byte stores.
//!
//! Segments are allocated lazily (zero-filled) so a large pool costs
//! memory only where it is touched — important because crash-simulation
//! mode keeps a second arena holding the durable image.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// log2 of the segment size (4 MiB).
const SEG_SHIFT: u32 = 22;
/// Segment size in bytes.
pub const SEGMENT_BYTES: u64 = 1 << SEG_SHIFT;
/// Words per segment.
const SEG_WORDS: usize = (SEGMENT_BYTES / 8) as usize;

type Seg = Box<[AtomicU64]>;

fn zeroed_seg() -> Seg {
    (0..SEG_WORDS).map(|_| AtomicU64::new(0)).collect()
}

#[derive(Debug)]
struct ArenaInner {
    segs: Box<[OnceLock<Seg>]>,
    capacity: u64,
}

/// Lazily-allocated, zero-initialized flat byte space, shareable across
/// threads (see the module docs for the concurrency contract).
#[derive(Clone, Debug)]
pub struct SharedArena {
    inner: Arc<ArenaInner>,
}

impl SharedArena {
    /// Creates an arena addressing `[0, capacity)` bytes.
    pub fn new(capacity: u64) -> SharedArena {
        let n_segs = capacity.div_ceil(SEGMENT_BYTES) as usize;
        SharedArena {
            inner: Arc::new(ArenaInner {
                segs: (0..n_segs).map(|_| OnceLock::new()).collect(),
                capacity,
            }),
        }
    }

    /// Addressable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Bytes of host memory actually committed to segments.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.segs.iter().filter(|s| s.get().is_some()).count() as u64 * SEGMENT_BYTES
    }

    /// Whether `other` is a handle onto the same storage.
    pub fn same_storage(&self, other: &SharedArena) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Whether the segment containing `addr` has been materialized (i.e.
    /// some byte in it was written). Snapshot writers use this to skip
    /// untouched, all-zero segments.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the arena capacity.
    pub fn is_resident(&self, addr: u64) -> bool {
        self.check(addr, 1);
        self.inner.segs[(addr >> SEG_SHIFT) as usize]
            .get()
            .is_some()
    }

    #[inline]
    fn check(&self, addr: u64, len: u64) {
        assert!(
            addr.checked_add(len)
                .is_some_and(|end| end <= self.inner.capacity),
            "PM access out of bounds: [{addr:#x}, +{len}) beyond capacity {:#x}",
            self.inner.capacity
        );
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the arena capacity.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        self.check(addr, buf.len() as u64);
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let seg_idx = (a >> SEG_SHIFT) as usize;
            let in_seg = (a & (SEGMENT_BYTES - 1)) as usize;
            let chunk = usize::min(buf.len() - off, SEGMENT_BYTES as usize - in_seg);
            match self.inner.segs[seg_idx].get() {
                Some(seg) => read_words(seg, in_seg, &mut buf[off..off + chunk]),
                None => buf[off..off + chunk].fill(0),
            }
            off += chunk;
        }
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the arena capacity.
    pub fn write(&self, addr: u64, buf: &[u8]) {
        self.check(addr, buf.len() as u64);
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let seg_idx = (a >> SEG_SHIFT) as usize;
            let in_seg = (a & (SEGMENT_BYTES - 1)) as usize;
            let chunk = usize::min(buf.len() - off, SEGMENT_BYTES as usize - in_seg);
            let seg = self.inner.segs[seg_idx].get_or_init(zeroed_seg);
            write_words(seg, in_seg, &buf[off..off + chunk]);
            off += chunk;
        }
    }

    /// Copies `len` bytes at `addr` from `src` into `self` (used to build
    /// durable images line by line).
    pub fn copy_from(&self, src: &SharedArena, addr: u64, len: u64) {
        let mut buf = [0u8; 64];
        let mut remaining = len;
        let mut a = addr;
        while remaining > 0 {
            let chunk = u64::min(remaining, 64);
            src.read(a, &mut buf[..chunk as usize]);
            self.write(a, &buf[..chunk as usize]);
            a += chunk;
            remaining -= chunk;
        }
    }

    /// Deep copy into fresh, unshared storage (crash images must be
    /// snapshots, not handles).
    pub fn snapshot(&self) -> SharedArena {
        let out = SharedArena::new(self.inner.capacity);
        for (i, slot) in self.inner.segs.iter().enumerate() {
            if let Some(seg) = slot.get() {
                let dst = out.inner.segs[i].get_or_init(zeroed_seg);
                for (d, s) in dst.iter().zip(seg.iter()) {
                    d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
                }
            }
        }
        out
    }

    /// Reads a little-endian `u64` at `addr`. An aligned read is a single
    /// atomic load (the root-pointer publication path).
    pub fn read_u64(&self, addr: u64) -> u64 {
        if addr % 8 == 0 {
            self.check(addr, 8);
            let seg_idx = (addr >> SEG_SHIFT) as usize;
            let word = ((addr & (SEGMENT_BYTES - 1)) / 8) as usize;
            return match self.inner.segs[seg_idx].get() {
                Some(seg) => seg[word].load(Ordering::Relaxed),
                None => 0,
            };
        }
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`. An aligned write is a
    /// single atomic store (the root-pointer publication path).
    pub fn write_u64(&self, addr: u64, v: u64) {
        if addr % 8 == 0 {
            self.check(addr, 8);
            let seg_idx = (addr >> SEG_SHIFT) as usize;
            let word = ((addr & (SEGMENT_BYTES - 1)) / 8) as usize;
            let seg = self.inner.segs[seg_idx].get_or_init(zeroed_seg);
            seg[word].store(v, Ordering::Relaxed);
            return;
        }
        self.write(addr, &v.to_le_bytes());
    }
}

/// Reads `buf.len()` bytes starting at byte offset `start` of `seg`.
fn read_words(seg: &[AtomicU64], start: usize, buf: &mut [u8]) {
    let mut off = 0usize;
    while off < buf.len() {
        let byte = start + off;
        let word = byte / 8;
        let in_word = byte % 8;
        let n = usize::min(8 - in_word, buf.len() - off);
        let w = seg[word].load(Ordering::Relaxed).to_le_bytes();
        buf[off..off + n].copy_from_slice(&w[in_word..in_word + n]);
        off += n;
    }
}

/// Writes `buf` starting at byte offset `start` of `seg`. Partial-word
/// edges read-modify-write their word; callers keep concurrently written
/// ranges word-disjoint (allocation arenas are 64-byte aligned).
fn write_words(seg: &[AtomicU64], start: usize, buf: &[u8]) {
    let mut off = 0usize;
    while off < buf.len() {
        let byte = start + off;
        let word = byte / 8;
        let in_word = byte % 8;
        let n = usize::min(8 - in_word, buf.len() - off);
        if n == 8 {
            let w = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
            seg[word].store(w, Ordering::Relaxed);
        } else {
            let mut w = seg[word].load(Ordering::Relaxed).to_le_bytes();
            w[in_word..in_word + n].copy_from_slice(&buf[off..off + n]);
            seg[word].store(u64::from_le_bytes(w), Ordering::Relaxed);
        }
        off += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let a = SharedArena::new(1 << 24);
        let mut buf = [0xFFu8; 16];
        a.read(12345, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_read_roundtrip() {
        let a = SharedArena::new(1 << 24);
        a.write(100, b"hello world");
        let mut buf = [0u8; 11];
        a.read(100, &mut buf);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn unaligned_spans_roundtrip() {
        let a = SharedArena::new(1 << 22);
        for start in 0u64..16 {
            let data: Vec<u8> = (0..37).map(|i| (start as u8) ^ i).collect();
            a.write(1000 + start * 64 + start, &data);
            let mut buf = vec![0u8; 37];
            a.read(1000 + start * 64 + start, &mut buf);
            assert_eq!(buf, data, "offset {start}");
        }
    }

    #[test]
    fn cross_segment_access() {
        let a = SharedArena::new(3 * SEGMENT_BYTES);
        let addr = SEGMENT_BYTES - 5;
        let data: Vec<u8> = (0..32).collect();
        a.write(addr, &data);
        let mut buf = vec![0u8; 32];
        a.read(addr, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn u64_roundtrip() {
        let a = SharedArena::new(1 << 22);
        a.write_u64(64, 0xDEADBEEF_CAFEBABE);
        assert_eq!(a.read_u64(64), 0xDEADBEEF_CAFEBABE);
        // Unaligned path too.
        a.write_u64(101, 0x0102030405060708);
        assert_eq!(a.read_u64(101), 0x0102030405060708);
    }

    #[test]
    fn lazy_segments() {
        let a = SharedArena::new(64 * SEGMENT_BYTES);
        assert_eq!(a.resident_bytes(), 0);
        a.write_u64(0, 1);
        assert_eq!(a.resident_bytes(), SEGMENT_BYTES);
        a.write_u64(10 * SEGMENT_BYTES, 1);
        assert_eq!(a.resident_bytes(), 2 * SEGMENT_BYTES);
    }

    #[test]
    fn copy_from_moves_lines() {
        let src = SharedArena::new(1 << 22);
        let dst = SharedArena::new(1 << 22);
        src.write(128, b"durable-data");
        dst.copy_from(&src, 128, 12);
        let mut buf = [0u8; 12];
        dst.read(128, &mut buf);
        assert_eq!(&buf, b"durable-data");
    }

    #[test]
    fn clone_is_a_handle_snapshot_is_a_copy() {
        let a = SharedArena::new(1 << 22);
        a.write_u64(0, 7);
        let handle = a.clone();
        let snap = a.snapshot();
        assert!(a.same_storage(&handle));
        assert!(!a.same_storage(&snap));
        a.write_u64(0, 8);
        assert_eq!(handle.read_u64(0), 8, "handle sees later writes");
        assert_eq!(snap.read_u64(0), 7, "snapshot is frozen");
    }

    #[test]
    fn disjoint_concurrent_writes_land() {
        let a = SharedArena::new(1 << 22);
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let a = a.clone();
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        a.write_u64(t * 65536 + i * 8, t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for t in 0..4u64 {
            for i in 0..256u64 {
                assert_eq!(a.read_u64(t * 65536 + i * 8), t * 1000 + i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let a = SharedArena::new(100);
        let mut b = [0u8; 8];
        a.read(96, &mut b);
    }
}
