//! Segmented byte storage backing the simulated PM pool.
//!
//! Segments are allocated lazily (zero-filled) so a large pool costs
//! memory only where it is touched — important because crash-simulation
//! mode keeps a second arena holding the durable image.

/// log2 of the segment size (4 MiB).
const SEG_SHIFT: u32 = 22;
/// Segment size in bytes.
pub const SEGMENT_BYTES: u64 = 1 << SEG_SHIFT;

/// Lazily-allocated, zero-initialized flat byte space.
#[derive(Clone, Debug, Default)]
pub struct Arena {
    segs: Vec<Option<Box<[u8]>>>,
    capacity: u64,
}

impl Arena {
    /// Creates an arena addressing `[0, capacity)` bytes.
    pub fn new(capacity: u64) -> Arena {
        let n_segs = capacity.div_ceil(SEGMENT_BYTES) as usize;
        Arena {
            segs: vec![None; n_segs],
            capacity,
        }
    }

    /// Addressable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes of host memory actually committed to segments.
    pub fn resident_bytes(&self) -> u64 {
        self.segs.iter().filter(|s| s.is_some()).count() as u64 * SEGMENT_BYTES
    }

    #[inline]
    fn check(&self, addr: u64, len: u64) {
        assert!(
            addr.checked_add(len)
                .is_some_and(|end| end <= self.capacity),
            "PM access out of bounds: [{addr:#x}, +{len}) beyond capacity {:#x}",
            self.capacity
        );
    }

    #[inline]
    fn seg_mut(&mut self, idx: usize) -> &mut [u8] {
        self.segs[idx].get_or_insert_with(|| vec![0u8; SEGMENT_BYTES as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the arena capacity.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        self.check(addr, buf.len() as u64);
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let seg_idx = (a >> SEG_SHIFT) as usize;
            let in_seg = (a & (SEGMENT_BYTES - 1)) as usize;
            let chunk = usize::min(buf.len() - off, SEGMENT_BYTES as usize - in_seg);
            match &self.segs[seg_idx] {
                Some(seg) => buf[off..off + chunk].copy_from_slice(&seg[in_seg..in_seg + chunk]),
                None => buf[off..off + chunk].fill(0),
            }
            off += chunk;
        }
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the arena capacity.
    pub fn write(&mut self, addr: u64, buf: &[u8]) {
        self.check(addr, buf.len() as u64);
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let seg_idx = (a >> SEG_SHIFT) as usize;
            let in_seg = (a & (SEGMENT_BYTES - 1)) as usize;
            let chunk = usize::min(buf.len() - off, SEGMENT_BYTES as usize - in_seg);
            let seg = self.seg_mut(seg_idx);
            seg[in_seg..in_seg + chunk].copy_from_slice(&buf[off..off + chunk]);
            off += chunk;
        }
    }

    /// Copies `len` bytes at `addr` from `src` into `self` (used to build
    /// durable images line by line).
    pub fn copy_from(&mut self, src: &Arena, addr: u64, len: u64) {
        let mut buf = [0u8; 64];
        let mut remaining = len;
        let mut a = addr;
        while remaining > 0 {
            let chunk = u64::min(remaining, 64);
            src.read(a, &mut buf[..chunk as usize]);
            self.write(a, &buf[..chunk as usize]);
            a += chunk;
            remaining -= chunk;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let a = Arena::new(1 << 24);
        let mut buf = [0xFFu8; 16];
        a.read(12345, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = Arena::new(1 << 24);
        a.write(100, b"hello world");
        let mut buf = [0u8; 11];
        a.read(100, &mut buf);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn cross_segment_access() {
        let mut a = Arena::new(3 * SEGMENT_BYTES);
        let addr = SEGMENT_BYTES - 5;
        let data: Vec<u8> = (0..32).collect();
        a.write(addr, &data);
        let mut buf = vec![0u8; 32];
        a.read(addr, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn u64_roundtrip() {
        let mut a = Arena::new(1 << 22);
        a.write_u64(64, 0xDEADBEEF_CAFEBABE);
        assert_eq!(a.read_u64(64), 0xDEADBEEF_CAFEBABE);
    }

    #[test]
    fn lazy_segments() {
        let mut a = Arena::new(64 * SEGMENT_BYTES);
        assert_eq!(a.resident_bytes(), 0);
        a.write_u64(0, 1);
        assert_eq!(a.resident_bytes(), SEGMENT_BYTES);
        a.write_u64(10 * SEGMENT_BYTES, 1);
        assert_eq!(a.resident_bytes(), 2 * SEGMENT_BYTES);
    }

    #[test]
    fn copy_from_moves_lines() {
        let mut src = Arena::new(1 << 22);
        let mut dst = Arena::new(1 << 22);
        src.write(128, b"durable-data");
        dst.copy_from(&src, 128, 12);
        let mut buf = [0u8; 12];
        dst.read(128, &mut buf);
        assert_eq!(&buf, b"durable-data");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let a = Arena::new(100);
        let mut b = [0u8; 8];
        a.read(96, &mut b);
    }
}
