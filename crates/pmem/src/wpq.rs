//! Event model of the memory controller's write-pending queue (WPQ).
//!
//! Fig 4 of the paper shows the *observed* average flush latency on Optane
//! DCPMM against flush concurrency, and notes it closely follows Amdahl's
//! law with an ~82 % parallel / ~18 % serial split (the hardware cause of
//! the serialization is unknown — the DIMM is a black box). This module
//! plays the role of that black box: a small event simulation in which
//! each writeback has an overlappable launch phase and a serialized drain
//! phase, plus a serial per-`clwb` issue cost and deterministic
//! pseudo-random drain jitter. Running the paper's 320-line flush
//! microbenchmark against it produces the "observed" curve; fitting the
//! Karp–Flatt metric to that curve recovers the parallel fraction.

use crate::model::LatencyModel;

/// Parameters of the WPQ event model.
#[derive(Clone, Debug)]
pub struct WpqModel {
    /// Pipeline launch latency each writeback incurs; overlaps freely.
    pub launch_ns: f64,
    /// Serialized drain occupancy per line (the ~18 % component).
    pub drain_ns: f64,
    /// Serial issue cost of each `clwb` on the core.
    pub issue_ns: f64,
    /// Relative jitter applied to each drain (0.05 = ±5 %).
    pub jitter: f64,
    /// Seed for deterministic jitter.
    pub seed: u64,
}

impl WpqModel {
    /// Derives the WPQ model matching a [`LatencyModel`]: launch is the
    /// parallel share of the base flush latency and drain the serial
    /// share — the same split [`LatencyModel::wpq_launch_ns`] /
    /// [`LatencyModel::wpq_drain_ns`] that [`crate::Pmem`]'s background
    /// drain calendar uses — so the emergent behaviour matches the
    /// Amdahl fit.
    pub fn from_latency(m: &LatencyModel) -> WpqModel {
        WpqModel {
            launch_ns: m.wpq_launch_ns,
            drain_ns: m.wpq_drain_ns,
            issue_ns: 2.0,
            jitter: 0.04,
            seed: 0xC0FFEE,
        }
    }

    fn jittered(&self, base: f64, k: u64) -> f64 {
        if self.jitter == 0.0 {
            return base;
        }
        let mut z = self.seed ^ k.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        // Uniform in [-1, 1).
        let u = (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        base * (1.0 + self.jitter * u)
    }

    /// Simulates the paper's §3 microbenchmark: `total_flushes` cachelines
    /// flushed with an `sfence` after every `per_fence` flushes. Returns
    /// the average latency per flush in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `per_fence` is zero or `total_flushes` is zero.
    pub fn avg_flush_latency_ns(&self, per_fence: usize, total_flushes: usize) -> f64 {
        assert!(per_fence > 0 && total_flushes > 0);
        let mut now = 0.0f64;
        let mut flush_id = 0u64;
        let mut issued = 0usize;
        let mut drain_free_at = 0.0f64; // the serial drain channel
        let mut last_completion = 0.0f64;
        while issued < total_flushes {
            let batch = usize::min(per_fence, total_flushes - issued);
            for _ in 0..batch {
                now += self.issue_ns; // core issues the clwb
                let launch_done = now + self.launch_ns;
                let drain = self.jittered(self.drain_ns, flush_id);
                let start = f64::max(launch_done, drain_free_at);
                drain_free_at = start + drain;
                last_completion = drain_free_at;
                flush_id += 1;
            }
            // sfence: stall until every in-flight writeback has drained.
            now = f64::max(now, last_completion);
            issued += batch;
        }
        now / total_flushes as f64
    }

    /// The observed curve over a set of concurrency levels, using the
    /// paper's 320-flush microbenchmark.
    pub fn observed_curve(&self, per_fence_levels: &[usize]) -> Vec<(usize, f64)> {
        per_fence_levels
            .iter()
            .map(|&n| (n, self.avg_flush_latency_ns(n, 320)))
            .collect()
    }
}

impl Default for WpqModel {
    fn default() -> WpqModel {
        WpqModel::from_latency(&LatencyModel::optane())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fit_parallel_fraction;

    #[test]
    fn unoverlapped_flush_near_353ns() {
        let w = WpqModel::default();
        let lat = w.avg_flush_latency_ns(1, 320);
        assert!((lat - 353.0).abs() < 25.0, "expected ~353 ns, got {lat:.1}");
    }

    #[test]
    fn overlap_reduces_latency_like_fig4() {
        let w = WpqModel::default();
        let l1 = w.avg_flush_latency_ns(1, 320);
        let l16 = w.avg_flush_latency_ns(16, 320);
        let l32 = w.avg_flush_latency_ns(32, 320);
        let reduction = 1.0 - l16 / l1;
        assert!(
            (0.65..0.85).contains(&reduction),
            "16-way overlap should cut ~75%, got {:.1}%",
            reduction * 100.0
        );
        let marginal = 1.0 - l32 / l16;
        assert!(marginal < 0.15, "beyond 16 gains should be small");
    }

    #[test]
    fn karp_flatt_fit_recovers_f_near_082() {
        let w = WpqModel::default();
        let curve = w.observed_curve(&[1, 2, 4, 8, 16, 24, 32]);
        let f = fit_parallel_fraction(&curve);
        assert!(
            (f - 0.82).abs() < 0.06,
            "fit parallel fraction {f:.3} should be near 0.82"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let w = WpqModel::default();
        assert_eq!(
            w.avg_flush_latency_ns(8, 320),
            w.avg_flush_latency_ns(8, 320)
        );
    }

    #[test]
    fn curve_monotone_nonincreasing_roughly() {
        let w = WpqModel::default();
        let c = w.observed_curve(&[1, 2, 4, 8, 16, 32]);
        for pair in c.windows(2) {
            assert!(pair[1].1 <= pair[0].1 * 1.02);
        }
    }

    #[test]
    #[should_panic]
    fn zero_per_fence_panics() {
        WpqModel::default().avg_flush_latency_ns(0, 10);
    }
}
