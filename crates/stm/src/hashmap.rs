//! In-place chained hashmap — the PMDK **map/set** baseline.
//!
//! This is the WHISPER-suite `hashmap` design the paper compares against
//! (§6.1: "we compare against hashmap which outperformed ctree on Optane
//! DCPMM"): a flat bucket array of entry-chain heads, updated in place
//! inside transactions. Its contiguous bucket array gives it the spatial
//! locality that Fig 11 contrasts with MOD's pointer-based tries.

use crate::tx::TxHeap;
use crate::value::{value_create_tx, value_free_tx, value_mark, value_read};
use mod_pmem::PmPtr;

// Root block: [bucket_count][entry_count][buckets_ptr].
const ROOT_BYTES: u64 = 24;
// Entry node: [key][value_ptr][next].
const ENTRY_BYTES: u64 = 24;

/// A durable chained hashmap updated in place under PM-STM.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StmHashMap {
    root: PmPtr,
}

fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl StmHashMap {
    /// Creates a map with `2^bucket_bits` buckets (fixed; the WHISPER
    /// hashmap does not resize either). Runs in its own transaction.
    pub fn create(h: &mut TxHeap, bucket_bits: u32) -> StmHashMap {
        let buckets = 1u64 << bucket_bits;
        h.begin();
        let root = h.alloc_tx(ROOT_BYTES);
        let arr = h.alloc_tx(buckets * 8);
        let mut img = Vec::with_capacity(24);
        img.extend_from_slice(&buckets.to_le_bytes());
        img.extend_from_slice(&0u64.to_le_bytes());
        img.extend_from_slice(&arr.addr().to_le_bytes());
        h.write_fresh(root.addr(), &img);
        h.write_fresh(arr.addr(), &vec![0u8; (buckets * 8) as usize]);
        h.commit();
        StmHashMap { root }
    }

    /// Rebuilds a handle from a root pointer (after recovery).
    pub fn from_root(root: PmPtr) -> StmHashMap {
        StmHashMap { root }
    }

    /// The root block pointer (to publish in a root slot).
    pub fn root(&self) -> PmPtr {
        self.root
    }

    fn bucket_addr(&self, h: &mut TxHeap, key: u64) -> u64 {
        let buckets = h.read_u64(self.root.addr());
        let arr = h.read_u64(self.root.addr() + 16);
        arr + (mix(key) & (buckets - 1)) * 8
    }

    /// Number of entries.
    pub fn len(&self, h: &mut TxHeap) -> u64 {
        h.read_u64(self.root.addr() + 8)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self, h: &mut TxHeap) -> bool {
        self.len(h) == 0
    }

    /// Looks up `key` without any transaction (reads are free of flushes
    /// and fences in both PMDK and MOD).
    pub fn get(&self, h: &mut TxHeap, key: u64) -> Option<Vec<u8>> {
        let mut cur = PmPtr::from_addr({
            let b = self.bucket_addr(h, key);
            h.read_u64(b)
        });
        while !cur.is_null() {
            let k = h.read_u64(cur.addr());
            if k == key {
                let v = PmPtr::from_addr(h.read_u64(cur.addr() + 8));
                return Some(value_read(h, v));
            }
            cur = PmPtr::from_addr(h.read_u64(cur.addr() + 16));
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, h: &mut TxHeap, key: u64) -> bool {
        self.get(h, key).is_some()
    }

    /// Transactionally inserts or updates `key`; returns whether the key
    /// was new. One failure-atomic transaction per call.
    pub fn insert(&self, h: &mut TxHeap, key: u64, value: &[u8]) -> bool {
        h.begin();
        let bucket = self.bucket_addr(h, key);
        // Find the entry in the chain, if present.
        let mut cur = PmPtr::from_addr(h.read_u64(bucket));
        while !cur.is_null() {
            if h.read_u64(cur.addr()) == key {
                // Replace the value: log the pointer field, swap blobs.
                let old_val = PmPtr::from_addr(h.read_u64(cur.addr() + 8));
                let new_val = value_create_tx(h, value);
                h.tx_add(cur.addr() + 8, 8);
                h.write_u64(cur.addr() + 8, new_val.addr());
                value_free_tx(h, old_val);
                h.commit();
                return false;
            }
            cur = PmPtr::from_addr(h.read_u64(cur.addr() + 16));
        }
        // New entry at chain head.
        let head = h.read_u64(bucket);
        let val = value_create_tx(h, value);
        let entry = h.alloc_tx(ENTRY_BYTES);
        let mut img = Vec::with_capacity(24);
        img.extend_from_slice(&key.to_le_bytes());
        img.extend_from_slice(&val.addr().to_le_bytes());
        img.extend_from_slice(&head.to_le_bytes());
        h.write_fresh(entry.addr(), &img);
        h.tx_add(bucket, 8);
        h.write_u64(bucket, entry.addr());
        let count = h.read_u64(self.root.addr() + 8);
        h.tx_add(self.root.addr() + 8, 8);
        h.write_u64(self.root.addr() + 8, count + 1);
        h.commit();
        true
    }

    /// Transactionally removes `key`; returns whether it was present.
    pub fn remove(&self, h: &mut TxHeap, key: u64) -> bool {
        h.begin();
        let bucket = self.bucket_addr(h, key);
        let mut prev: Option<u64> = None; // addr of the next-field to patch
        let mut cur = PmPtr::from_addr(h.read_u64(bucket));
        while !cur.is_null() {
            if h.read_u64(cur.addr()) == key {
                let next = h.read_u64(cur.addr() + 16);
                let val = PmPtr::from_addr(h.read_u64(cur.addr() + 8));
                let link = prev.unwrap_or(bucket);
                h.tx_add(link, 8);
                h.write_u64(link, next);
                let count = h.read_u64(self.root.addr() + 8);
                h.tx_add(self.root.addr() + 8, 8);
                h.write_u64(self.root.addr() + 8, count - 1);
                value_free_tx(h, val);
                h.free_tx(cur);
                h.commit();
                return true;
            }
            prev = Some(cur.addr() + 16);
            cur = PmPtr::from_addr(h.read_u64(cur.addr() + 16));
        }
        h.abort();
        false
    }

    /// Marks the map's blocks during recovery GC.
    pub fn mark(&self, h: &mut TxHeap) {
        if !h.nv_mut().mark_block(self.root) {
            return;
        }
        let buckets = h.nv_mut().read_u64(self.root.addr());
        let arr = PmPtr::from_addr(h.nv_mut().read_u64(self.root.addr() + 16));
        h.nv_mut().mark_block(arr);
        for i in 0..buckets {
            let mut cur = PmPtr::from_addr(h.nv_mut().read_u64(arr.addr() + i * 8));
            while !cur.is_null() {
                if !h.nv_mut().mark_block(cur) {
                    break;
                }
                let v = PmPtr::from_addr(h.nv_mut().read_u64(cur.addr() + 8));
                value_mark(h, v);
                cur = PmPtr::from_addr(h.nv_mut().read_u64(cur.addr() + 16));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxMode;
    use mod_pmem::{CrashPolicy, Pmem, PmemConfig};
    use std::collections::HashMap;

    fn th(mode: TxMode) -> TxHeap {
        TxHeap::format(Pmem::new(PmemConfig::testing()), mode)
    }

    #[test]
    fn insert_get_remove() {
        let mut h = th(TxMode::Hybrid);
        let m = StmHashMap::create(&mut h, 8);
        assert!(m.insert(&mut h, 1, b"one"));
        assert!(m.insert(&mut h, 2, b"two"));
        assert!(!m.insert(&mut h, 1, b"uno"));
        assert_eq!(m.get(&mut h, 1), Some(b"uno".to_vec()));
        assert_eq!(m.len(&mut h), 2);
        assert!(m.remove(&mut h, 1));
        assert!(!m.remove(&mut h, 1));
        assert_eq!(m.get(&mut h, 1), None);
        assert_eq!(m.len(&mut h), 1);
    }

    #[test]
    fn chains_handle_bucket_collisions() {
        let mut h = th(TxMode::Hybrid);
        // 2 buckets → plenty of chaining.
        let m = StmHashMap::create(&mut h, 1);
        let mut model = HashMap::new();
        for i in 0..60u64 {
            m.insert(&mut h, i, &i.to_le_bytes());
            model.insert(i, i.to_le_bytes().to_vec());
        }
        for i in (0..60u64).step_by(3) {
            m.remove(&mut h, i);
            model.remove(&i);
        }
        assert_eq!(m.len(&mut h) as usize, model.len());
        for i in 0..60u64 {
            assert_eq!(m.get(&mut h, i), model.get(&i).cloned(), "key {i}");
        }
    }

    #[test]
    fn matches_model_both_modes() {
        for mode in [TxMode::Undo, TxMode::Hybrid] {
            let mut h = th(mode);
            let m = StmHashMap::create(&mut h, 6);
            let mut model = HashMap::new();
            let mut x = 99u64;
            for _ in 0..300 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let k = x % 80;
                if x.is_multiple_of(4) {
                    assert_eq!(m.remove(&mut h, k), model.remove(&k).is_some());
                } else {
                    let v = x.to_le_bytes().to_vec();
                    m.insert(&mut h, k, &v);
                    model.insert(k, v);
                }
            }
            for (&k, v) in &model {
                assert_eq!(m.get(&mut h, k).as_ref(), Some(v), "{mode:?} key {k}");
            }
        }
    }

    #[test]
    fn committed_inserts_survive_crash() {
        let mut h = th(TxMode::Hybrid);
        let m = StmHashMap::create(&mut h, 6);
        for i in 0..20u64 {
            m.insert(&mut h, i, &[i as u8; 32]);
        }
        let root = m.root();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let mut h2 = TxHeap::recover(img, TxMode::Hybrid);
        let m2 = StmHashMap::from_root(root);
        m2.mark(&mut h2);
        h2.nv_mut().finish_recovery();
        assert_eq!(m2.len(&mut h2), 20);
        for i in 0..20u64 {
            assert_eq!(m2.get(&mut h2, i), Some(vec![i as u8; 32]));
        }
    }

    #[test]
    fn crash_mid_insert_rolls_back() {
        for seed in 0..10u64 {
            let mut h = th(TxMode::Hybrid);
            let m = StmHashMap::create(&mut h, 4);
            m.insert(&mut h, 1, b"committed");
            let root = m.root();
            // Start an insert but crash before commit: emulate by doing
            // the tx body without commit.
            h.begin();
            let bucket = m.bucket_addr(&mut h, 2);
            let val = value_create_tx(&mut h, b"lost");
            let entry = h.alloc_tx(ENTRY_BYTES);
            let mut img = Vec::new();
            img.extend_from_slice(&2u64.to_le_bytes());
            img.extend_from_slice(&val.addr().to_le_bytes());
            img.extend_from_slice(&0u64.to_le_bytes());
            h.write_fresh(entry.addr(), &img);
            h.tx_add(bucket, 8);
            h.write_u64(bucket, entry.addr());
            let img2 = h.nv().pm().crash_image(CrashPolicy::Seeded(seed));
            let mut h2 = TxHeap::recover(img2, TxMode::Hybrid);
            let m2 = StmHashMap::from_root(root);
            m2.mark(&mut h2);
            h2.nv_mut().finish_recovery();
            assert_eq!(m2.get(&mut h2, 1), Some(b"committed".to_vec()));
            assert_eq!(m2.get(&mut h2, 2), None, "seed {seed}");
        }
    }

    #[test]
    fn fences_per_insert_in_paper_band() {
        let mut h = th(TxMode::Hybrid);
        let m = StmHashMap::create(&mut h, 10);
        // Warm up.
        m.insert(&mut h, 1000, &[0u8; 32]);
        let before = h.nv().pm().stats().fences;
        for i in 0..10u64 {
            m.insert(&mut h, i, &[1u8; 32]);
        }
        let per_op = (h.nv().pm().stats().fences - before) as f64 / 10.0;
        assert!(
            (5.0..=11.0).contains(&per_op),
            "v1.5-style map insert: {per_op} fences/op, expected 5-11 (Fig 10)"
        );
    }
}
