//! Single-owner value blobs for the baseline datastructures.
//!
//! Unlike the refcounted blobs of the functional layer, PMDK-style
//! structures own their values exclusively: an update allocates the new
//! blob inside the transaction, swings one pointer, and frees the old
//! blob at commit.

use crate::tx::TxHeap;
use mod_pmem::PmPtr;

const HEADER: u64 = 8;

/// Allocates and fills a value blob inside the current transaction.
/// Empty input is encoded as null.
pub fn value_create_tx(h: &mut TxHeap, bytes: &[u8]) -> PmPtr {
    if bytes.is_empty() {
        return PmPtr::NULL;
    }
    let ptr = h.alloc_tx(HEADER + bytes.len() as u64);
    let mut buf = Vec::with_capacity(8 + bytes.len());
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(bytes);
    h.write_fresh(ptr.addr(), &buf);
    ptr
}

/// Reads a value blob (null yields empty).
pub fn value_read(h: &mut TxHeap, ptr: PmPtr) -> Vec<u8> {
    if ptr.is_null() {
        return Vec::new();
    }
    let len = u32::from_le_bytes(h.read_vec(ptr.addr(), 4).try_into().unwrap()) as u64;
    h.read_vec(ptr.addr() + HEADER, len)
}

/// Schedules a blob free at commit (no-op for null).
pub fn value_free_tx(h: &mut TxHeap, ptr: PmPtr) {
    if !ptr.is_null() {
        h.free_tx(ptr);
    }
}

/// Marks a blob during recovery GC (no-op for null).
pub fn value_mark(h: &mut TxHeap, ptr: PmPtr) {
    if !ptr.is_null() {
        h.nv_mut().mark_block(ptr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxMode;
    use mod_pmem::{Pmem, PmemConfig};

    #[test]
    fn roundtrip_within_tx() {
        let mut h = TxHeap::format(Pmem::new(PmemConfig::testing()), TxMode::Hybrid);
        h.begin();
        let p = value_create_tx(&mut h, b"hello");
        h.commit();
        assert_eq!(value_read(&mut h, p), b"hello");
        assert_eq!(value_read(&mut h, PmPtr::NULL), Vec::<u8>::new());
    }

    #[test]
    fn empty_is_null() {
        let mut h = TxHeap::format(Pmem::new(PmemConfig::testing()), TxMode::Hybrid);
        h.begin();
        let p = value_create_tx(&mut h, b"");
        h.commit();
        assert!(p.is_null());
    }
}
