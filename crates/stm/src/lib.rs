//! # mod-stm — PMDK-style PM-STM baseline
//!
//! The comparison system of the MOD paper: an emulation of Intel PMDK's
//! `libpmemobj` transactions at the protocol level, in two flavours —
//! undo logging ([`TxMode::Undo`], v1.4-style, a fence per `tx_add`) and
//! hybrid undo-redo ([`TxMode::Hybrid`], v1.5-style, batched log ordering
//! with deferred stores and load interposition). On top of the engine sit
//! the baseline in-place datastructures the paper benchmarks against:
//! the WHISPER-style chained [`StmHashMap`], the flat-array
//! [`StmVector`], and linked [`StmStack`]/[`StmQueue`].
//!
//! ## Example
//!
//! ```
//! use mod_stm::{StmHashMap, TxHeap, TxMode};
//! use mod_pmem::{Pmem, PmemConfig};
//!
//! let mut heap = TxHeap::format(Pmem::new(PmemConfig::testing()), TxMode::Hybrid);
//! let map = StmHashMap::create(&mut heap, 8);
//! map.insert(&mut heap, 7, b"seven");      // one failure-atomic tx
//! assert_eq!(map.get(&mut heap, 7), Some(b"seven".to_vec()));
//! ```

#![warn(missing_docs)]

pub mod hashmap;
pub mod stackqueue;
pub mod tx;
pub mod value;
pub mod vector;

pub use hashmap::StmHashMap;
pub use stackqueue::{StmQueue, StmStack};
pub use tx::{TxHeap, TxMode, TxStats, LOG_SLOT};
pub use vector::StmVector;
