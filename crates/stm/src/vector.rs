//! In-place flat-array vector — the PMDK **vector** baseline.
//!
//! A contiguous `u64` array updated in place inside transactions: one
//! logged 8-byte store per write, two for a swap. This is the layout
//! whose density makes PMDK *win* the vector comparison in the paper
//! (Fig 9: MOD's tree-based vector flushes far more lines — Fig 10 — and
//! misses more in L1D — Fig 11).

use crate::tx::TxHeap;
use mod_pmem::PmPtr;

// Root block: [len][cap][data_ptr].
const ROOT_BYTES: u64 = 24;

/// A durable flat-array vector updated in place under PM-STM.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StmVector {
    root: PmPtr,
}

impl StmVector {
    /// Creates a vector with capacity `cap`, length 0.
    pub fn create(h: &mut TxHeap, cap: u64) -> StmVector {
        assert!(cap > 0, "capacity must be positive");
        h.begin();
        let root = h.alloc_tx(ROOT_BYTES);
        let data = h.alloc_tx(cap * 8);
        let mut img = Vec::with_capacity(24);
        img.extend_from_slice(&0u64.to_le_bytes());
        img.extend_from_slice(&cap.to_le_bytes());
        img.extend_from_slice(&data.addr().to_le_bytes());
        h.write_fresh(root.addr(), &img);
        h.write_fresh(data.addr(), &vec![0u8; (cap * 8) as usize]);
        h.commit();
        StmVector { root }
    }

    /// Creates a vector pre-filled from `elems` (capacity = length).
    pub fn create_from(h: &mut TxHeap, elems: &[u64]) -> StmVector {
        let v = StmVector::create(h, elems.len().max(1) as u64);
        h.begin();
        h.tx_add(v.root.addr(), 8);
        h.write_u64(v.root.addr(), elems.len() as u64);
        h.commit();
        let data = h.read_u64(v.root.addr() + 16);
        // Bulk fill outside a transaction (setup, like pre-faulting in
        // the paper's microbenchmark): direct stores + flush + fence.
        let bytes: Vec<u8> = elems.iter().flat_map(|e| e.to_le_bytes()).collect();
        h.nv_mut().write_bytes(data, &bytes);
        h.nv_mut().flush_range(data, bytes.len() as u64);
        h.nv_mut().sfence();
        v
    }

    /// Rebuilds a handle from a root pointer.
    pub fn from_root(root: PmPtr) -> StmVector {
        StmVector { root }
    }

    /// The root block pointer.
    pub fn root(&self) -> PmPtr {
        self.root
    }

    /// Number of elements.
    pub fn len(&self, h: &mut TxHeap) -> u64 {
        h.read_u64(self.root.addr())
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self, h: &mut TxHeap) -> bool {
        self.len(h) == 0
    }

    fn elem_addr(&self, h: &mut TxHeap, index: u64) -> u64 {
        let len = h.read_u64(self.root.addr());
        assert!(index < len, "index {index} out of bounds ({len})");
        let data = h.read_u64(self.root.addr() + 16);
        data + index * 8
    }

    /// Element at `index` (no transaction needed).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, h: &mut TxHeap, index: u64) -> u64 {
        let a = self.elem_addr(h, index);
        h.read_u64(a)
    }

    /// Transactionally writes `elem` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn update(&self, h: &mut TxHeap, index: u64, elem: u64) {
        let a = self.elem_addr(h, index);
        h.begin();
        h.tx_add(a, 8);
        h.write_u64(a, elem);
        h.commit();
    }

    /// Transactionally appends `elem`.
    ///
    /// # Panics
    ///
    /// Panics if the fixed capacity is exhausted.
    pub fn push_back(&self, h: &mut TxHeap, elem: u64) {
        let len = h.read_u64(self.root.addr());
        let cap = h.read_u64(self.root.addr() + 8);
        assert!(len < cap, "fixed-capacity vector is full");
        let data = h.read_u64(self.root.addr() + 16);
        h.begin();
        h.tx_add(data + len * 8, 8);
        h.write_u64(data + len * 8, elem);
        h.tx_add(self.root.addr(), 8);
        h.write_u64(self.root.addr(), len + 1);
        h.commit();
    }

    /// Transactionally appends `elem`, doubling the backing array when
    /// full (classic dynamic-array growth: allocate, copy, swing the data
    /// pointer, free the old array — all in one transaction).
    pub fn push_back_growing(&self, h: &mut TxHeap, elem: u64) {
        let len = h.read_u64(self.root.addr());
        let cap = h.read_u64(self.root.addr() + 8);
        if len < cap {
            self.push_back(h, elem);
            return;
        }
        let old_data = h.read_u64(self.root.addr() + 16);
        let old_bytes = h.read_vec(old_data, len * 8);
        let new_cap = (cap * 2).max(1);
        h.begin();
        let new_data = h.alloc_tx(new_cap * 8);
        h.write_fresh(new_data.addr(), &old_bytes);
        h.write_fresh(
            new_data.addr() + len * 8,
            &vec![0u8; ((new_cap - len) * 8) as usize],
        );
        h.write_fresh(new_data.addr() + len * 8, &elem.to_le_bytes());
        h.tx_add(self.root.addr(), 24);
        h.write_u64(self.root.addr(), len + 1);
        h.write_u64(self.root.addr() + 8, new_cap);
        h.write_u64(self.root.addr() + 16, new_data.addr());
        h.free_tx(mod_pmem::PmPtr::from_addr(old_data));
        h.commit();
    }

    /// Transactionally swaps elements `i` and `j` — the paper's vec-swap
    /// workload kernel (canneal's main computation).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap(&self, h: &mut TxHeap, i: u64, j: u64) {
        if i == j {
            return;
        }
        let ai = self.elem_addr(h, i);
        let aj = self.elem_addr(h, j);
        let vi = h.read_u64(ai);
        let vj = h.read_u64(aj);
        h.begin();
        h.tx_add(ai, 8);
        h.tx_add(aj, 8);
        h.write_u64(ai, vj);
        h.write_u64(aj, vi);
        h.commit();
    }

    /// Collects all elements (tests).
    pub fn to_vec(&self, h: &mut TxHeap) -> Vec<u64> {
        let len = h.read_u64(self.root.addr());
        let data = h.read_u64(self.root.addr() + 16);
        (0..len).map(|i| h.read_u64(data + i * 8)).collect()
    }

    /// Marks the vector's blocks during recovery GC.
    pub fn mark(&self, h: &mut TxHeap) {
        if !h.nv_mut().mark_block(self.root) {
            return;
        }
        let data = PmPtr::from_addr(h.nv_mut().read_u64(self.root.addr() + 16));
        h.nv_mut().mark_block(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxMode;
    use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

    fn th(mode: TxMode) -> TxHeap {
        TxHeap::format(Pmem::new(PmemConfig::testing()), mode)
    }

    #[test]
    fn create_update_get() {
        let mut h = th(TxMode::Hybrid);
        let v = StmVector::create_from(&mut h, &[1, 2, 3, 4]);
        assert_eq!(v.to_vec(&mut h), vec![1, 2, 3, 4]);
        v.update(&mut h, 2, 99);
        assert_eq!(v.get(&mut h, 2), 99);
        assert_eq!(v.len(&mut h), 4);
    }

    #[test]
    fn push_back_grows_len() {
        let mut h = th(TxMode::Hybrid);
        let v = StmVector::create(&mut h, 8);
        for i in 0..8 {
            v.push_back(&mut h, i * 10);
        }
        assert_eq!(v.len(&mut h), 8);
        assert_eq!(v.get(&mut h, 7), 70);
    }

    #[test]
    fn swap_swaps() {
        for mode in [TxMode::Undo, TxMode::Hybrid] {
            let mut h = th(mode);
            let v = StmVector::create_from(&mut h, &(0..50).collect::<Vec<_>>());
            v.swap(&mut h, 1, 48);
            assert_eq!(v.get(&mut h, 1), 48, "{mode:?}");
            assert_eq!(v.get(&mut h, 48), 1, "{mode:?}");
            v.swap(&mut h, 5, 5);
            assert_eq!(v.get(&mut h, 5), 5);
        }
    }

    #[test]
    fn committed_updates_survive_crash() {
        let mut h = th(TxMode::Hybrid);
        let v = StmVector::create_from(&mut h, &[0; 16]);
        for i in 0..16u64 {
            v.update(&mut h, i, i + 100);
        }
        let root = v.root();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let mut h2 = TxHeap::recover(img, TxMode::Hybrid);
        let v2 = StmVector::from_root(root);
        v2.mark(&mut h2);
        h2.nv_mut().finish_recovery();
        assert_eq!(v2.to_vec(&mut h2), (100..116u64).collect::<Vec<_>>());
    }

    #[test]
    fn crash_mid_swap_leaves_consistent_pair() {
        // A torn swap would violate the canneal invariant (elements are a
        // permutation); the undo/redo log must prevent it.
        for mode in [TxMode::Undo, TxMode::Hybrid] {
            for seed in 0..10u64 {
                let mut h = th(mode);
                let v = StmVector::create_from(&mut h, &[10, 20]);
                let root = v.root();
                // Swap that crashes before commit.
                h.begin();
                let data = h.read_u64(root.addr() + 16);
                h.tx_add(data, 8);
                h.tx_add(data + 8, 8);
                h.write_u64(data, 20);
                h.write_u64(data + 8, 10);
                let img = h.nv().pm().crash_image(CrashPolicy::Seeded(seed));
                let mut h2 = TxHeap::recover(img, mode);
                let v2 = StmVector::from_root(root);
                v2.mark(&mut h2);
                h2.nv_mut().finish_recovery();
                let got = v2.to_vec(&mut h2);
                assert_eq!(got, vec![10, 20], "{mode:?} seed {seed}: rolled back");
            }
        }
    }

    #[test]
    fn growing_push_doubles_capacity() {
        let mut h = th(TxMode::Hybrid);
        let v = StmVector::create(&mut h, 2);
        for i in 0..40 {
            v.push_back_growing(&mut h, i);
        }
        assert_eq!(v.to_vec(&mut h), (0..40).collect::<Vec<_>>());
        let cap = h.read_u64(v.root().addr() + 8);
        assert!((40..=64).contains(&cap));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let mut h = th(TxMode::Hybrid);
        let v = StmVector::create_from(&mut h, &[1]);
        v.get(&mut h, 1);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn push_past_capacity_panics() {
        let mut h = th(TxMode::Hybrid);
        let v = StmVector::create(&mut h, 1);
        v.push_back(&mut h, 1);
        v.push_back(&mut h, 2);
    }
}
