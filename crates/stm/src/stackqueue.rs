//! In-place linked stack and queue — the PMDK baselines.
//!
//! Both PMDK and MOD implement stacks/queues as pointer chains (the paper
//! notes their cache behaviour is comparable, Fig 11); the difference is
//! purely the update discipline: these mutate head/tail pointers in place
//! under transactions, while MOD's are pure.

use crate::tx::TxHeap;
use mod_pmem::PmPtr;

// Node: [elem][next].
const NODE_BYTES: u64 = 16;
// Stack root: [len][head]; queue root: [len][head][tail].
const STACK_ROOT: u64 = 16;
const QUEUE_ROOT: u64 = 24;

/// A durable LIFO stack updated in place under PM-STM.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StmStack {
    root: PmPtr,
}

impl StmStack {
    /// Creates an empty stack.
    pub fn create(h: &mut TxHeap) -> StmStack {
        h.begin();
        let root = h.alloc_tx(STACK_ROOT);
        h.write_fresh(root.addr(), &[0u8; 16]);
        h.commit();
        StmStack { root }
    }

    /// Rebuilds a handle from a root pointer.
    pub fn from_root(root: PmPtr) -> StmStack {
        StmStack { root }
    }

    /// The root block pointer.
    pub fn root(&self) -> PmPtr {
        self.root
    }

    /// Number of elements.
    pub fn len(&self, h: &mut TxHeap) -> u64 {
        h.read_u64(self.root.addr())
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self, h: &mut TxHeap) -> bool {
        self.len(h) == 0
    }

    /// Transactionally pushes `elem`.
    pub fn push(&self, h: &mut TxHeap, elem: u64) {
        h.begin();
        let head = h.read_u64(self.root.addr() + 8);
        let node = h.alloc_tx(NODE_BYTES);
        let mut img = Vec::with_capacity(16);
        img.extend_from_slice(&elem.to_le_bytes());
        img.extend_from_slice(&head.to_le_bytes());
        h.write_fresh(node.addr(), &img);
        let len = h.read_u64(self.root.addr());
        h.tx_add(self.root.addr(), 16);
        h.write_u64(self.root.addr(), len + 1);
        h.write_u64(self.root.addr() + 8, node.addr());
        h.commit();
    }

    /// Transactionally pops the top element.
    pub fn pop(&self, h: &mut TxHeap) -> Option<u64> {
        let head = PmPtr::from_addr(h.read_u64(self.root.addr() + 8));
        if head.is_null() {
            return None;
        }
        let elem = h.read_u64(head.addr());
        let next = h.read_u64(head.addr() + 8);
        h.begin();
        let len = h.read_u64(self.root.addr());
        h.tx_add(self.root.addr(), 16);
        h.write_u64(self.root.addr(), len - 1);
        h.write_u64(self.root.addr() + 8, next);
        h.free_tx(head);
        h.commit();
        Some(elem)
    }

    /// Top element, if any (no transaction).
    pub fn peek(&self, h: &mut TxHeap) -> Option<u64> {
        let head = PmPtr::from_addr(h.read_u64(self.root.addr() + 8));
        if head.is_null() {
            None
        } else {
            Some(h.read_u64(head.addr()))
        }
    }

    /// Marks the stack's blocks during recovery GC.
    pub fn mark(&self, h: &mut TxHeap) {
        if !h.nv_mut().mark_block(self.root) {
            return;
        }
        let mut cur = PmPtr::from_addr(h.nv_mut().read_u64(self.root.addr() + 8));
        while !cur.is_null() {
            if !h.nv_mut().mark_block(cur) {
                break;
            }
            cur = PmPtr::from_addr(h.nv_mut().read_u64(cur.addr() + 8));
        }
    }
}

/// A durable FIFO queue updated in place under PM-STM.
///
/// Singly-linked with head and tail pointers: enqueue links at the tail,
/// dequeue unlinks at the head — each a small transaction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StmQueue {
    root: PmPtr,
}

impl StmQueue {
    /// Creates an empty queue.
    pub fn create(h: &mut TxHeap) -> StmQueue {
        h.begin();
        let root = h.alloc_tx(QUEUE_ROOT);
        h.write_fresh(root.addr(), &[0u8; 24]);
        h.commit();
        StmQueue { root }
    }

    /// Rebuilds a handle from a root pointer.
    pub fn from_root(root: PmPtr) -> StmQueue {
        StmQueue { root }
    }

    /// The root block pointer.
    pub fn root(&self) -> PmPtr {
        self.root
    }

    /// Number of elements.
    pub fn len(&self, h: &mut TxHeap) -> u64 {
        h.read_u64(self.root.addr())
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self, h: &mut TxHeap) -> bool {
        self.len(h) == 0
    }

    /// Transactionally enqueues `elem` at the tail.
    pub fn enqueue(&self, h: &mut TxHeap, elem: u64) {
        h.begin();
        let tail = PmPtr::from_addr(h.read_u64(self.root.addr() + 16));
        let node = h.alloc_tx(NODE_BYTES);
        let mut img = Vec::with_capacity(16);
        img.extend_from_slice(&elem.to_le_bytes());
        img.extend_from_slice(&0u64.to_le_bytes());
        h.write_fresh(node.addr(), &img);
        if tail.is_null() {
            // Empty queue: head and tail both point at the new node.
            let len = h.read_u64(self.root.addr());
            h.tx_add(self.root.addr(), 24);
            h.write_u64(self.root.addr(), len + 1);
            h.write_u64(self.root.addr() + 8, node.addr());
            h.write_u64(self.root.addr() + 16, node.addr());
        } else {
            h.tx_add(tail.addr() + 8, 8);
            h.write_u64(tail.addr() + 8, node.addr());
            let len = h.read_u64(self.root.addr());
            h.tx_add(self.root.addr(), 8);
            h.write_u64(self.root.addr(), len + 1);
            h.tx_add(self.root.addr() + 16, 8);
            h.write_u64(self.root.addr() + 16, node.addr());
        }
        h.commit();
    }

    /// Transactionally dequeues the head element.
    pub fn dequeue(&self, h: &mut TxHeap) -> Option<u64> {
        let head = PmPtr::from_addr(h.read_u64(self.root.addr() + 8));
        if head.is_null() {
            return None;
        }
        let elem = h.read_u64(head.addr());
        let next = h.read_u64(head.addr() + 8);
        h.begin();
        let len = h.read_u64(self.root.addr());
        h.tx_add(self.root.addr(), 24);
        h.write_u64(self.root.addr(), len - 1);
        h.write_u64(self.root.addr() + 8, next);
        if next == 0 {
            h.write_u64(self.root.addr() + 16, 0);
        }
        h.free_tx(head);
        h.commit();
        Some(elem)
    }

    /// Head element, if any (no transaction).
    pub fn peek(&self, h: &mut TxHeap) -> Option<u64> {
        let head = PmPtr::from_addr(h.read_u64(self.root.addr() + 8));
        if head.is_null() {
            None
        } else {
            Some(h.read_u64(head.addr()))
        }
    }

    /// Marks the queue's blocks during recovery GC.
    pub fn mark(&self, h: &mut TxHeap) {
        if !h.nv_mut().mark_block(self.root) {
            return;
        }
        let mut cur = PmPtr::from_addr(h.nv_mut().read_u64(self.root.addr() + 8));
        while !cur.is_null() {
            if !h.nv_mut().mark_block(cur) {
                break;
            }
            cur = PmPtr::from_addr(h.nv_mut().read_u64(cur.addr() + 8));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxMode;
    use mod_pmem::{CrashPolicy, Pmem, PmemConfig};
    use std::collections::VecDeque;

    fn th(mode: TxMode) -> TxHeap {
        TxHeap::format(Pmem::new(PmemConfig::testing()), mode)
    }

    #[test]
    fn stack_lifo() {
        let mut h = th(TxMode::Hybrid);
        let s = StmStack::create(&mut h);
        for i in 0..10 {
            s.push(&mut h, i);
        }
        assert_eq!(s.peek(&mut h), Some(9));
        for i in (0..10).rev() {
            assert_eq!(s.pop(&mut h), Some(i));
        }
        assert_eq!(s.pop(&mut h), None);
        assert!(s.is_empty(&mut h));
    }

    #[test]
    fn queue_fifo_matches_model() {
        for mode in [TxMode::Undo, TxMode::Hybrid] {
            let mut h = th(mode);
            let q = StmQueue::create(&mut h);
            let mut model = VecDeque::new();
            let mut x = 5u64;
            for step in 0..300u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if !x.is_multiple_of(3) {
                    q.enqueue(&mut h, step);
                    model.push_back(step);
                } else {
                    assert_eq!(q.dequeue(&mut h), model.pop_front(), "{mode:?}");
                }
                assert_eq!(q.len(&mut h) as usize, model.len());
            }
        }
    }

    #[test]
    fn stack_survives_crash() {
        let mut h = th(TxMode::Hybrid);
        let s = StmStack::create(&mut h);
        for i in 0..10 {
            s.push(&mut h, i);
        }
        let root = s.root();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let mut h2 = TxHeap::recover(img, TxMode::Hybrid);
        let s2 = StmStack::from_root(root);
        s2.mark(&mut h2);
        h2.nv_mut().finish_recovery();
        assert_eq!(s2.len(&mut h2), 10);
        assert_eq!(s2.pop(&mut h2), Some(9));
    }

    #[test]
    fn crash_mid_enqueue_rolls_back() {
        for seed in 0..8u64 {
            let mut h = th(TxMode::Hybrid);
            let q = StmQueue::create(&mut h);
            q.enqueue(&mut h, 1);
            let root = q.root();
            // Enqueue that crashes before commit.
            h.begin();
            let tail = PmPtr::from_addr(h.read_u64(root.addr() + 16));
            let node = h.alloc_tx(NODE_BYTES);
            h.write_fresh(node.addr(), &[9u8; 16]);
            h.tx_add(tail.addr() + 8, 8);
            h.write_u64(tail.addr() + 8, node.addr());
            h.tx_add(root.addr(), 8);
            h.write_u64(root.addr(), 2);
            let img = h.nv().pm().crash_image(CrashPolicy::Seeded(seed));
            let mut h2 = TxHeap::recover(img, TxMode::Hybrid);
            let q2 = StmQueue::from_root(root);
            q2.mark(&mut h2);
            h2.nv_mut().finish_recovery();
            assert_eq!(q2.len(&mut h2), 1, "seed {seed}");
            assert_eq!(q2.dequeue(&mut h2), Some(1));
            assert_eq!(q2.dequeue(&mut h2), None);
        }
    }
}
