//! PMDK-style PM-STM transaction engine.
//!
//! Reproduces the *protocol-level* behaviour and cost structure of Intel
//! PMDK's `libpmemobj` transactions, the paper's baseline:
//!
//! * **Undo mode (v1.4-style):** every `tx_add` snapshots the old bytes
//!   into a persistent undo log, flushes the entry and **fences** before
//!   the in-place store proceeds — ordering points scale with the number
//!   of annotated ranges (§7.1: undo logging can need ~50 per tx). The
//!   v1.4 allocator publishes each reservation with its own two ordering
//!   points (reserve + publish).
//! * **Hybrid mode (v1.5-style):** small updates go through a **redo**
//!   discipline — new values are appended to the log with unordered
//!   flushes, the in-place stores are deferred to commit, and the commit
//!   point is a single fence guarded by a whole-log checksum (PMDK v1.5
//!   checksums its ulog entries for exactly this reason). Allocator
//!   metadata costs one ordering point. This lands transactions in the
//!   paper's 5–11 fences/op band and reproduces v1.5's ~23 % win over
//!   v1.4 (Fig 9). The price is **load interposition**: transactional
//!   reads consult the store buffer — the redo cost the paper calls out
//!   in §7.1.
//!
//! Both modes flush log entries *and* modified data lines; the `Log` time
//! tag captures entry-construction work (Fig 2's ~9 %).
//!
//! ## Crash soundness (verified by adversarial tests)
//!
//! The simulated device may persist *any* subset of unfenced lines at a
//! crash. Undo entries carry per-entry checksums so a torn tail entry
//! (whose guarded data write never executed) is skipped during rollback;
//! the hybrid commit point validates a checksum across all entries, so a
//! commit flag that persisted ahead of some entry is recognised and the
//! transaction discarded; fresh-block contents are flushed *before* the
//! commit point so replayed pointers never expose uninitialised nodes.

use mod_alloc::{class_size, NvHeap};
use mod_pmem::trace::IntervalSet;
use mod_pmem::{lines_covering, PmPtr, Pmem, TimeCategory};
use std::collections::{BTreeSet, HashMap};

/// Logging discipline of the transaction engine.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TxMode {
    /// Undo logging with a fence per `tx_add` (PMDK v1.4-style).
    Undo,
    /// Hybrid undo-redo with batched log ordering (PMDK v1.5-style).
    Hybrid,
}

/// Root slot reserved for the transaction log block.
pub const LOG_SLOT: usize = 63;
/// Log block payload size.
const LOG_BYTES: u64 = 64 * 1024;
/// Log header: `[state][count][log_csum][alloc_publish][lane_stage]`.
const LOG_HDR: u64 = 40;
/// Per-entry header: `[addr][len][entry_csum]`.
const ENTRY_HEADER: u64 = 24;
/// `len` marker for allocator-metadata records.
const ALLOC_RECORD: u64 = u64::MAX;
/// Extra read cost of consulting the store buffer (load interposition).
const INTERPOSE_NS: f64 = 2.0;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn entry_checksum(addr: u64, len: u64, data: &[u8]) -> u64 {
    let mut acc = mix64(addr ^ len.rotate_left(17) ^ 0xC5A1_7101);
    for chunk in data.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        acc = mix64(acc ^ u64::from_le_bytes(w));
    }
    acc
}

/// A persistent-memory heap with PMDK-style transactions.
///
/// All datastructure updates happen (logically) in place inside
/// `begin`/`commit` pairs, with [`TxHeap::tx_add`] annotations before each
/// modified range — the programming model (and annotation-bug surface,
/// §1) of `libpmemobj`.
#[derive(Debug)]
pub struct TxHeap {
    nv: NvHeap,
    mode: TxMode,
    log: PmPtr,
    in_tx: bool,
    /// Bytes appended to the log so far this tx.
    log_tail: u64,
    /// Entries appended this tx.
    entry_count: u64,
    /// Running xor-fold of entry checksums (hybrid commit guard).
    running_csum: u64,
    /// Undo snapshots recorded this tx (volatile mirror for abort).
    undo_entries: Vec<(u64, Vec<u8>)>,
    /// Hybrid: deferred stores in program order.
    redo: Vec<(u64, u64)>,
    /// Hybrid: store buffer for load interposition.
    store_buf: HashMap<u64, u64>,
    /// Ranges covered by tx_add (writes outside them are rejected).
    added: IntervalSet,
    /// Fresh allocations of this tx (writable without snapshots).
    fresh: IntervalSet,
    /// Modified in-place/fresh data lines to flush before the fence that
    /// precedes the commit point.
    dirty_lines: BTreeSet<u64>,
    /// Blocks allocated in this tx (freed on abort, GC'd after a crash).
    tx_allocs: Vec<PmPtr>,
    /// Blocks to free if the tx commits.
    tx_frees: Vec<PmPtr>,
    /// Alternating allocator-publish token (gives the v1.4 publish fence
    /// real work to order).
    publish_token: u64,
    /// Lane stage counter persisted at each tx begin, as libpmemobj
    /// persists its lane state transitions.
    lane_token: u64,
    stats: TxStats,
}

/// Counters of transaction activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Log entries written (undo snapshots, redo records, alloc records).
    pub log_entries: u64,
    /// Bytes of data copied through the log.
    pub log_bytes: u64,
}

impl TxHeap {
    /// Formats a fresh pool: persistent heap plus the transaction log
    /// block (published durably in [`LOG_SLOT`]).
    pub fn format(pm: Pmem, mode: TxMode) -> TxHeap {
        let mut nv = NvHeap::format(pm);
        let log = nv.alloc(LOG_BYTES);
        nv.write_bytes(log.addr(), &[0u8; LOG_HDR as usize]);
        nv.flush_range(log.addr(), LOG_HDR);
        let slot = nv.root_slot_addr(LOG_SLOT);
        nv.write_u64(slot, log.addr());
        nv.clwb(slot);
        nv.sfence();
        TxHeap::from_parts(nv, mode, log)
    }

    fn from_parts(nv: NvHeap, mode: TxMode, log: PmPtr) -> TxHeap {
        TxHeap {
            nv,
            mode,
            log,
            in_tx: false,
            log_tail: LOG_HDR,
            entry_count: 0,
            running_csum: 0,
            undo_entries: Vec::new(),
            redo: Vec::new(),
            store_buf: HashMap::new(),
            added: IntervalSet::new(),
            fresh: IntervalSet::new(),
            dirty_lines: BTreeSet::new(),
            tx_allocs: Vec::new(),
            tx_frees: Vec::new(),
            publish_token: 0,
            lane_token: 0,
            stats: TxStats::default(),
        }
    }

    /// Reopens a crashed pool: rolls back (undo) or re-applies (redo) any
    /// interrupted transaction, validating entry checksums against torn
    /// writes. The heap stays in recovery mode — the caller marks live
    /// datastructures and finishes recovery through [`TxHeap::nv_mut`];
    /// the log block itself is already marked.
    ///
    /// # Panics
    ///
    /// Panics if the pool was not formatted by [`TxHeap::format`].
    pub fn recover(pm: Pmem, mode: TxMode) -> TxHeap {
        let mut nv = NvHeap::open(pm);
        let log = nv.read_root(LOG_SLOT);
        assert!(!log.is_null(), "pool has no transaction log");
        let state = nv.read_u64(log.addr());
        match (mode, state) {
            (TxMode::Undo, 1) => Self::rollback_undo(&mut nv, log),
            (TxMode::Hybrid, 1) => Self::replay_redo(&mut nv, log),
            _ => {}
        }
        nv.mark_block(log);
        TxHeap::from_parts(nv, mode, log)
    }

    /// Parses entries, returning `(offset, addr, len, csum_ok)` tuples.
    fn parse_entries(nv: &mut NvHeap, log: PmPtr) -> Vec<(u64, u64, u64, bool)> {
        let count = nv.read_u64(log.addr() + 8).min(LOG_BYTES / ENTRY_HEADER);
        let mut out = Vec::new();
        let mut off = LOG_HDR;
        for _ in 0..count {
            if off + ENTRY_HEADER > LOG_BYTES {
                break; // torn count pointing past the log
            }
            let addr = nv.read_u64(log.addr() + off);
            let len = nv.read_u64(log.addr() + off + 8);
            let csum = nv.read_u64(log.addr() + off + 16);
            let data_len = if len == ALLOC_RECORD {
                0
            } else {
                len.min(LOG_BYTES) // bound torn lengths
            };
            if off + ENTRY_HEADER + data_len.div_ceil(8) * 8 > LOG_BYTES {
                break;
            }
            let data = nv.read_vec(log.addr() + off + ENTRY_HEADER, data_len);
            let ok = entry_checksum(addr, len, &data) == csum;
            out.push((off, addr, len, ok));
            off += ENTRY_HEADER + data_len.div_ceil(8) * 8;
            if !ok {
                break; // later entries are untrustworthy
            }
        }
        out
    }

    fn rollback_undo(nv: &mut NvHeap, log: PmPtr) {
        // Restore intact snapshots in reverse order (undo semantics). A
        // torn tail entry is skipped: its fence never retired, so the
        // guarded data write never executed.
        let entries = Self::parse_entries(nv, log);
        for &(off, addr, len, ok) in entries.iter().rev() {
            if !ok || len == ALLOC_RECORD {
                continue;
            }
            let old = nv.read_vec(log.addr() + off + ENTRY_HEADER, len);
            nv.write_bytes(addr, &old);
            nv.flush_range(addr, len);
        }
        nv.sfence();
        nv.write_u64(log.addr(), 0);
        nv.clwb(log.addr());
        nv.sfence();
    }

    fn replay_redo(nv: &mut NvHeap, log: PmPtr) {
        // state == 1: the commit flag persisted. Only replay if the whole
        // log checksum validates — otherwise the flag raced ahead of some
        // entry and the transaction never reached its commit point.
        let count = nv.read_u64(log.addr() + 8);
        let expect = nv.read_u64(log.addr() + 16);
        let entries = Self::parse_entries(nv, log);
        let all_ok = entries.len() as u64 == count && entries.iter().all(|&(_, _, _, ok)| ok);
        let mut fold = mix64(count ^ 0xFEED_F00D);
        if all_ok {
            for &(off, addr, len, _) in &entries {
                let data_len = if len == ALLOC_RECORD { 0 } else { len };
                let data = nv.read_vec(log.addr() + off + ENTRY_HEADER, data_len);
                fold ^= entry_checksum(addr, len, &data);
            }
        }
        if all_ok && fold == expect {
            for &(off, addr, len, _) in &entries {
                if len == ALLOC_RECORD {
                    continue;
                }
                let new = nv.read_vec(log.addr() + off + ENTRY_HEADER, len);
                nv.write_bytes(addr, &new);
                nv.flush_range(addr, len);
            }
            nv.sfence();
        }
        nv.write_u64(log.addr(), 0);
        nv.clwb(log.addr());
        nv.sfence();
    }

    /// The logging mode.
    pub fn mode(&self) -> TxMode {
        self.mode
    }

    /// The underlying heap.
    pub fn nv(&self) -> &NvHeap {
        &self.nv
    }

    /// Mutable access to the underlying heap (reads outside txs, recovery
    /// marking).
    pub fn nv_mut(&mut self) -> &mut NvHeap {
        &mut self.nv
    }

    /// Consumes the heap, returning the raw pool.
    pub fn into_pm(self) -> Pmem {
        self.nv.into_pm()
    }

    /// Engine counters.
    pub fn stats(&self) -> &TxStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    /// Begins a transaction.
    ///
    /// # Panics
    ///
    /// Panics on nested transactions (flatten them, as PMDK does).
    pub fn begin(&mut self) {
        assert!(!self.in_tx, "nested transaction");
        self.in_tx = true;
        // Persist the lane stage transition (libpmemobj marks its lane
        // TX_STAGE_WORK durably before user code runs).
        self.lane_token += 1;
        let token = self.lane_token;
        self.nv.pm_mut().push_tag(TimeCategory::Log);
        self.nv.write_u64(self.log.addr() + 32, token);
        self.nv.pm_mut().pop_tag();
        self.nv.clwb(self.log.addr() + 32);
        self.nv.sfence();
        self.log_tail = LOG_HDR;
        self.entry_count = 0;
        self.running_csum = 0;
        self.undo_entries.clear();
        self.redo.clear();
        self.store_buf.clear();
        self.added.clear();
        self.fresh.clear();
        self.dirty_lines.clear();
        self.tx_allocs.clear();
        self.tx_frees.clear();
    }

    fn append_log_entry(&mut self, addr: u64, len: u64, bytes: &[u8], set_state: bool) -> u64 {
        let data = if len == ALLOC_RECORD { 0u64 } else { len };
        let entry_len = ENTRY_HEADER + data.div_ceil(8) * 8;
        assert!(
            self.log_tail + entry_len <= LOG_BYTES,
            "transaction log overflow"
        );
        let csum = entry_checksum(addr, len, bytes);
        let pm_log = self.log.addr() + self.log_tail;
        self.nv.pm_mut().push_tag(TimeCategory::Log);
        let overhead = self.nv.pm().config().latency.log_entry_overhead_ns;
        self.nv.pm_mut().charge_ns(overhead);
        self.nv.write_u64(pm_log, addr);
        self.nv.write_u64(pm_log + 8, len);
        self.nv.write_u64(pm_log + 16, csum);
        if !bytes.is_empty() {
            self.nv.write_bytes(pm_log + ENTRY_HEADER, bytes);
        }
        if set_state {
            self.nv.write_u64(self.log.addr(), 1);
        }
        self.nv.write_u64(self.log.addr() + 8, self.entry_count + 1);
        self.nv.pm_mut().pop_tag();
        self.nv.flush_range(self.log.addr(), 16);
        self.nv.flush_range(pm_log, entry_len);
        self.log_tail += entry_len;
        self.entry_count += 1;
        self.running_csum ^= csum;
        self.stats.log_entries += 1;
        self.stats.log_bytes += data;
        csum
    }

    /// Annotates `[addr, addr+len)` as modifiable (PMDK's `TX_ADD`). In
    /// undo mode this snapshots the old bytes, flushes the entry and
    /// fences; in hybrid mode annotation is cheap and the log is written
    /// at store time (redo records).
    ///
    /// # Panics
    ///
    /// Panics outside a transaction or on log overflow.
    pub fn tx_add(&mut self, addr: u64, len: u64) {
        assert!(self.in_tx, "tx_add outside transaction");
        if self.added.contains_range(addr, addr + len) {
            return; // already annotated
        }
        if self.mode == TxMode::Undo {
            let old = self.nv.read_vec(addr, len);
            self.append_log_entry(addr, len, &old, self.undo_entries.is_empty());
            // v1.4: the snapshot must be durable before the in-place
            // store — one fence per annotated range.
            self.nv.sfence();
            self.undo_entries.push((addr, old));
        }
        self.added.insert(addr, addr + len);
    }

    fn check_writable(&self, addr: u64, len: u64) {
        assert!(
            self.added.contains_range(addr, addr + len)
                || self.fresh.contains_range(addr, addr + len),
            "tx write to {addr:#x}+{len} without tx_add — the PMDK bug class of §1"
        );
    }

    /// Transactional store of a `u64` to annotated (existing) memory.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction or if the range was neither
    /// `tx_add`ed nor freshly allocated in this transaction.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        assert!(self.in_tx, "tx write outside transaction");
        self.check_writable(addr, 8);
        match self.mode {
            TxMode::Undo => {
                self.nv.write_u64(addr, v);
                self.note_dirty(addr, 8);
            }
            TxMode::Hybrid => {
                if self.fresh.contains_range(addr, addr + 8) {
                    // Fresh memory: direct store, no redo needed.
                    self.nv.write_u64(addr, v);
                    self.note_dirty(addr, 8);
                    return;
                }
                // Redo: log the new value, defer the in-place store.
                self.append_log_entry(addr, 8, &v.to_le_bytes(), false);
                self.redo.push((addr, v));
                self.store_buf.insert(addr, v);
            }
        }
    }

    /// Transactional read of a `u64`. In hybrid mode this interposes on
    /// the store buffer (the redo-logging read penalty of §7.1); outside
    /// a transaction it is a plain read.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        if self.in_tx && self.mode == TxMode::Hybrid {
            self.nv.pm_mut().charge_ns(INTERPOSE_NS);
            if let Some(&v) = self.store_buf.get(&addr) {
                return v;
            }
        }
        self.nv.read_u64(addr)
    }

    /// Reads bytes (plain; large reads are not interposed because the
    /// baseline structures only redo-log word stores).
    pub fn read_vec(&mut self, addr: u64, len: u64) -> Vec<u8> {
        self.nv.read_vec(addr, len)
    }

    fn note_dirty(&mut self, addr: u64, len: u64) {
        for l in lines_covering(addr, len) {
            self.dirty_lines.insert(l);
        }
    }

    /// Allocates inside the transaction. The allocator's metadata update
    /// is logged; the v1.4 allocator publishes each reservation with two
    /// ordering points (reserve + publish), the v1.5 allocator with one —
    /// the allocator-path improvement Intel shipped with the hybrid
    /// engine. Fresh blocks are writable without snapshots.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn alloc_tx(&mut self, len: u64) -> PmPtr {
        assert!(self.in_tx, "alloc outside transaction");
        let ptr = self.nv.alloc(len);
        self.append_log_entry(ptr.addr(), ALLOC_RECORD, &[], false);
        self.nv.sfence();
        if self.mode == TxMode::Undo {
            // Publish step: a second persistent metadata update + fence.
            self.publish_token += 1;
            let token = self.publish_token;
            self.nv.pm_mut().push_tag(TimeCategory::Log);
            self.nv.write_u64(self.log.addr() + 24, token);
            self.nv.pm_mut().pop_tag();
            self.nv.clwb(self.log.addr() + 24);
            self.nv.sfence();
        }
        self.tx_allocs.push(ptr);
        self.fresh.insert(ptr.addr(), ptr.addr() + class_size(len));
        // Flush span includes the block header (recovery validates it).
        self.note_dirty(
            ptr.addr() - mod_alloc::HEADER_BYTES,
            class_size(len) + mod_alloc::HEADER_BYTES,
        );
        ptr
    }

    /// Writes into a block allocated earlier in this transaction (fresh
    /// memory needs no log entries; it is flushed before the commit
    /// point).
    ///
    /// # Panics
    ///
    /// Panics if the range is not freshly allocated in this transaction.
    pub fn write_fresh(&mut self, addr: u64, bytes: &[u8]) {
        assert!(self.in_tx, "write outside transaction");
        assert!(
            self.fresh.contains_range(addr, addr + bytes.len() as u64),
            "write_fresh outside this tx's allocations"
        );
        self.nv.write_bytes(addr, bytes);
        self.note_dirty(addr, bytes.len() as u64);
    }

    /// Schedules a free for commit time (PMDK frees take effect on
    /// commit).
    pub fn free_tx(&mut self, ptr: PmPtr) {
        assert!(self.in_tx, "free outside transaction");
        self.tx_frees.push(ptr);
    }

    fn flush_dirty(&mut self) {
        let lines: Vec<u64> = self.dirty_lines.iter().copied().collect();
        self.dirty_lines.clear();
        for l in lines {
            self.nv.clwb(l);
        }
    }

    /// Commits the transaction.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn commit(&mut self) {
        assert!(self.in_tx, "commit outside transaction");
        match self.mode {
            TxMode::Undo => {
                // Data went in place under per-add log fences; flush the
                // modified lines, order them, then retire the log.
                self.flush_dirty();
                self.nv.sfence();
                self.nv.write_u64(self.log.addr(), 0);
                self.nv.clwb(self.log.addr());
                self.nv.sfence();
            }
            TxMode::Hybrid => {
                // Fresh-block contents must be durable at the commit
                // point: flush them along with the redo entries, then one
                // checksum-guarded fence is the commit point.
                self.flush_dirty();
                let fold = mix64(self.entry_count ^ 0xFEED_F00D) ^ self.running_csum;
                self.nv.pm_mut().push_tag(TimeCategory::Log);
                self.nv.write_u64(self.log.addr(), 1);
                self.nv.write_u64(self.log.addr() + 8, self.entry_count);
                self.nv.write_u64(self.log.addr() + 16, fold);
                self.nv.pm_mut().pop_tag();
                self.nv.flush_range(self.log.addr(), 24);
                self.nv.sfence(); // commit point
                                  // Apply deferred stores in place and flush them.
                let redo = std::mem::take(&mut self.redo);
                for (addr, v) in redo {
                    self.nv.write_u64(addr, v);
                    self.note_dirty(addr, 8);
                }
                self.flush_dirty();
                self.nv.sfence();
                // Retire the log, fenced: otherwise the next tx's redo
                // entries could persist while this retire store does not,
                // and recovery would replay uncommitted entries.
                self.nv.write_u64(self.log.addr(), 0);
                self.nv.clwb(self.log.addr());
                self.nv.sfence();
            }
        }
        let frees = std::mem::take(&mut self.tx_frees);
        for p in frees {
            self.nv.free(p);
        }
        self.store_buf.clear();
        self.in_tx = false;
        self.stats.commits += 1;
    }

    /// Aborts: undo mode restores every snapshot; hybrid mode simply
    /// discards the deferred stores. Allocations are freed, frees
    /// cancelled.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn abort(&mut self) {
        assert!(self.in_tx, "abort outside transaction");
        if self.mode == TxMode::Undo {
            for (addr, old) in self.undo_entries.clone().iter().rev() {
                self.nv.write_bytes(*addr, old);
                self.nv.flush_range(*addr, old.len() as u64);
            }
            self.nv.sfence();
        }
        self.nv.write_u64(self.log.addr(), 0);
        self.nv.clwb(self.log.addr());
        self.nv.sfence();
        let allocs = std::mem::take(&mut self.tx_allocs);
        for p in allocs {
            self.nv.free(p);
        }
        self.redo.clear();
        self.store_buf.clear();
        self.tx_frees.clear();
        self.in_tx = false;
        self.stats.aborts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{CrashPolicy, PmemConfig};

    fn th(mode: TxMode) -> TxHeap {
        TxHeap::format(Pmem::new(PmemConfig::testing()), mode)
    }

    fn durable_block(h: &mut TxHeap, len: u64, init: u64) -> PmPtr {
        let b = h.nv_mut().alloc(len);
        h.nv_mut().write_u64(b.addr(), init);
        h.nv_mut().flush_range(b.addr() - 16, len + 16);
        h.nv_mut().sfence();
        b
    }

    #[test]
    fn committed_tx_is_durable_both_modes() {
        for mode in [TxMode::Undo, TxMode::Hybrid] {
            let mut h = th(mode);
            let blk = durable_block(&mut h, 64, 0);
            h.begin();
            h.tx_add(blk.addr(), 8);
            h.write_u64(blk.addr(), 777);
            h.commit();
            let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
            assert_eq!(img.peek_u64(blk.addr()), 777, "{mode:?}");
        }
    }

    #[test]
    fn uncommitted_tx_invisible_after_any_crash() {
        for mode in [TxMode::Undo, TxMode::Hybrid] {
            for seed in 0..10u64 {
                let mut h = th(mode);
                let blk = durable_block(&mut h, 64, 1);
                h.begin();
                h.tx_add(blk.addr(), 8);
                h.write_u64(blk.addr(), 2);
                let img = h.into_pm().crash_image(CrashPolicy::Seeded(seed));
                let mut h2 = TxHeap::recover(img, mode);
                h2.nv_mut().finish_recovery();
                assert_eq!(
                    h2.read_u64(blk.addr()),
                    1,
                    "{mode:?} seed {seed}: old value must survive"
                );
            }
        }
    }

    #[test]
    fn hybrid_reads_see_own_writes() {
        let mut h = th(TxMode::Hybrid);
        let blk = durable_block(&mut h, 64, 5);
        h.begin();
        h.tx_add(blk.addr(), 8);
        h.write_u64(blk.addr(), 6);
        assert_eq!(h.read_u64(blk.addr()), 6, "store buffer interposition");
        h.commit();
        assert_eq!(h.read_u64(blk.addr()), 6);
    }

    #[test]
    fn undo_mode_fences_per_tx_add() {
        let mut h = th(TxMode::Undo);
        let blk = durable_block(&mut h, 256, 0);
        let before = h.nv().pm().stats().fences;
        h.begin();
        for i in 0..4 {
            h.tx_add(blk.addr() + i * 64, 8);
            h.write_u64(blk.addr() + i * 64, i);
        }
        h.commit();
        let fences = h.nv().pm().stats().fences - before;
        // Lane fence + 4 per-add fences + data fence + log-retire fence.
        assert_eq!(fences, 7);
    }

    #[test]
    fn hybrid_mode_batches_log_fences() {
        let mut h = th(TxMode::Hybrid);
        let blk = durable_block(&mut h, 256, 0);
        let before = h.nv().pm().stats().fences;
        h.begin();
        for i in 0..4 {
            h.tx_add(blk.addr() + i * 64, 8);
            h.write_u64(blk.addr() + i * 64, i);
        }
        h.commit();
        let fences = h.nv().pm().stats().fences - before;
        // Lane fence + commit-point fence + data fence + retire fence,
        // regardless of the number of annotated ranges.
        assert_eq!(fences, 4);
    }

    #[test]
    fn undo_allocs_cost_more_fences_than_hybrid() {
        let mut counts = Vec::new();
        for mode in [TxMode::Undo, TxMode::Hybrid] {
            let mut h = th(mode);
            let before = h.nv().pm().stats().fences;
            h.begin();
            for _ in 0..3 {
                let a = h.alloc_tx(64);
                h.write_fresh(a.addr(), &[1u8; 64]);
            }
            h.commit();
            counts.push(h.nv().pm().stats().fences - before);
        }
        // Undo: 2 fences per alloc (reserve + publish) + 2 at commit;
        // hybrid: 1 per alloc + 3 at commit.
        assert!(
            counts[0] > counts[1],
            "v1.4 alloc path must fence more: {counts:?}"
        );
    }

    #[test]
    fn hybrid_commit_point_replays_redo() {
        let mut h = th(TxMode::Hybrid);
        let blk = durable_block(&mut h, 64, 1);
        h.begin();
        h.tx_add(blk.addr(), 8);
        h.write_u64(blk.addr(), 2);
        // Drive the engine to its commit point by hand, then "crash"
        // before the in-place stores: recovery must replay to 2.
        let fold = mix64(h.entry_count ^ 0xFEED_F00D) ^ h.running_csum;
        let log = h.log;
        let count = h.entry_count;
        h.nv_mut().write_u64(log.addr(), 1);
        h.nv_mut().write_u64(log.addr() + 8, count);
        h.nv_mut().write_u64(log.addr() + 16, fold);
        h.nv_mut().flush_range(log.addr(), 24);
        h.nv_mut().sfence();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let mut h2 = TxHeap::recover(img, TxMode::Hybrid);
        h2.nv_mut().finish_recovery();
        assert_eq!(h2.read_u64(blk.addr()), 2, "redo replay applies stores");
    }

    #[test]
    fn hybrid_commit_flag_without_entries_is_discarded() {
        // Adversary: commit flag persists but a redo entry does not. The
        // checksum must reject the replay.
        let mut h = th(TxMode::Hybrid);
        let blk = durable_block(&mut h, 64, 1);
        h.begin();
        h.tx_add(blk.addr(), 8);
        h.write_u64(blk.addr(), 2);
        // Force ONLY the header line durable: write flag, flush header,
        // fence — while entry lines remain unfenced, then drop them.
        let log = h.log;
        let count = h.entry_count;
        h.nv_mut().write_u64(log.addr(), 1);
        h.nv_mut().write_u64(log.addr() + 8, count);
        h.nv_mut().write_u64(log.addr() + 16, 0xBAD); // wrong checksum
        h.nv_mut().flush_range(log.addr(), 24);
        h.nv_mut().sfence();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let mut h2 = TxHeap::recover(img, TxMode::Hybrid);
        h2.nv_mut().finish_recovery();
        assert_eq!(h2.read_u64(blk.addr()), 1, "bad checksum must discard");
    }

    #[test]
    fn duplicate_tx_add_is_coalesced() {
        let mut h = th(TxMode::Undo);
        let blk = durable_block(&mut h, 64, 0);
        h.begin();
        h.tx_add(blk.addr(), 8);
        h.tx_add(blk.addr(), 8);
        assert_eq!(h.stats().log_entries, 1);
        h.write_u64(blk.addr(), 5);
        h.commit();
    }

    #[test]
    fn abort_restores_and_reclaims() {
        for mode in [TxMode::Undo, TxMode::Hybrid] {
            let mut h = th(mode);
            let blk = durable_block(&mut h, 64, 10);
            let live = h.nv().stats().live_blocks;
            h.begin();
            h.tx_add(blk.addr(), 8);
            h.write_u64(blk.addr(), 20);
            let extra = h.alloc_tx(32);
            h.write_fresh(extra.addr(), &[1u8; 32]);
            h.abort();
            assert_eq!(h.read_u64(blk.addr()), 10, "{mode:?}");
            assert_eq!(h.nv().stats().live_blocks, live, "{mode:?} alloc undone");
        }
    }

    #[test]
    #[should_panic(expected = "without tx_add")]
    fn unannotated_write_rejected() {
        let mut h = th(TxMode::Hybrid);
        let blk = durable_block(&mut h, 64, 0);
        h.begin();
        h.write_u64(blk.addr(), 1);
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn nested_tx_rejected() {
        let mut h = th(TxMode::Hybrid);
        h.begin();
        h.begin();
    }

    #[test]
    fn log_time_is_attributed() {
        let mut h = th(TxMode::Undo);
        let blk = durable_block(&mut h, 64, 0);
        h.begin();
        h.tx_add(blk.addr(), 32);
        for i in 0..4 {
            h.write_u64(blk.addr() + i * 8, i);
        }
        h.commit();
        let b = h.nv().pm().clock().breakdown();
        assert!(b.log_ns > 0.0, "snapshot work must appear as Log time");
        assert!(b.flush_ns > 0.0);
    }

    #[test]
    fn multi_tx_sequence_recovers_last_committed() {
        for mode in [TxMode::Undo, TxMode::Hybrid] {
            let mut h = th(mode);
            let blk = durable_block(&mut h, 64, 0);
            for v in 1..=5u64 {
                h.begin();
                h.tx_add(blk.addr(), 8);
                h.write_u64(blk.addr(), v);
                h.commit();
            }
            // Sixth tx crashes mid-flight under various adversaries.
            h.begin();
            h.tx_add(blk.addr(), 8);
            h.write_u64(blk.addr(), 6);
            for seed in 0..8u64 {
                let img = h.nv().pm().crash_image(CrashPolicy::Seeded(seed));
                let mut h2 = TxHeap::recover(img, mode);
                h2.nv_mut().finish_recovery();
                assert_eq!(h2.read_u64(blk.addr()), 5, "{mode:?} seed {seed}");
            }
        }
    }

    #[test]
    fn fresh_block_contents_durable_at_commit_point() {
        // Crash right after the hybrid commit point: replay publishes a
        // pointer to a fresh block, whose contents must already be in PM.
        let mut h = th(TxMode::Hybrid);
        let slot = durable_block(&mut h, 64, 0);
        h.begin();
        let node = h.alloc_tx(64);
        h.write_fresh(node.addr(), &[0xCDu8; 64]);
        h.tx_add(slot.addr(), 8);
        h.write_u64(slot.addr(), node.addr());
        // Reach the commit point exactly as commit() does.
        h.flush_dirty();
        let fold = mix64(h.entry_count ^ 0xFEED_F00D) ^ h.running_csum;
        let log = h.log;
        let count = h.entry_count;
        h.nv_mut().write_u64(log.addr(), 1);
        h.nv_mut().write_u64(log.addr() + 8, count);
        h.nv_mut().write_u64(log.addr() + 16, fold);
        h.nv_mut().flush_range(log.addr(), 24);
        h.nv_mut().sfence();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let mut h2 = TxHeap::recover(img, TxMode::Hybrid);
        h2.nv_mut().finish_recovery();
        let ptr = h2.read_u64(slot.addr());
        assert_eq!(ptr, node.addr(), "pointer replayed");
        let bytes = h2.read_vec(node.addr(), 64);
        assert_eq!(bytes, vec![0xCDu8; 64], "fresh contents durable");
    }
}
