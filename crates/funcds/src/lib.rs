//! # mod-funcds — purely functional PM datastructures
//!
//! The functional-datastructure layer the MOD paper converts into durable
//! datastructures (§4.2's recipe): every structure lives in the persistent
//! heap, every update is a *pure* path copy that flushes its freshly
//! written cachelines with unordered `clwb`s and returns a new version
//! handle, and structural sharing keeps per-update allocation tiny.
//! No fences are issued here — ordering is the commit layer's job
//! (`mod-core`), giving the paper's one-fence-per-FASE property.
//!
//! | Type | Substrate | Paper reference |
//! |------|-----------|-----------------|
//! | [`PmMap`]/[`PmSet`] | CHAMP trie | §4.2 (Steindorfer & Vinju) |
//! | [`PmVector`] | RRB tree + tail | §4.2 (Stucki et al., Puente) |
//! | [`PmStack`] | cons list | Fig 1 |
//! | [`PmQueue`] | two-list banker's queue | §6.4 |
//!
//! Reclamation uses the heap's volatile reference counts (§5.3): handles
//! expose `release` (drop one version) and `mark` (recovery GC walk).
//!
//! ## Example
//!
//! ```
//! use mod_alloc::NvHeap;
//! use mod_funcds::PmMap;
//! use mod_pmem::{Pmem, PmemConfig};
//!
//! let mut heap = NvHeap::format(Pmem::new(PmemConfig::testing()));
//! let v1 = PmMap::empty(&mut heap);
//! let v2 = v1.insert(&mut heap, 7, b"seven");   // pure: v1 unchanged
//! assert_eq!(v2.get(&mut heap, 7), Some(b"seven".to_vec()));
//! assert_eq!(v1.get(&mut heap, 7), None);
//! ```

#![warn(missing_docs)]

pub mod blob;
pub mod champ;
pub mod list;
pub mod node;
pub mod queue;
pub mod rrb;
pub mod set;

pub use champ::{HashKind, PmMap};
pub use list::PmStack;
pub use queue::PmQueue;
pub use rrb::PmVector;
pub use set::PmSet;

// Send/Sync audit: version handles are plain `(PmPtr, …)` values — pool
// offsets, no interior mutability, no thread affinity — so they must be
// freely sendable/shareable for the concurrent front end (`mod-core`'s
// `SharedModHeap`) and its multi-threaded drivers. A compile error here
// means a handle type grew non-`Send` state (e.g. an `Rc` or a raw
// pointer), which would silently forbid sharded use.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PmMap>();
    assert_send_sync::<PmSet>();
    assert_send_sync::<PmVector>();
    assert_send_sync::<PmStack>();
    assert_send_sync::<PmQueue>();
    assert_send_sync::<HashKind>();
};
