//! Persistent cons list — the MOD **stack** substrate (Fig 1 of the
//! paper generalized), and the building block of the two-list queue.
//!
//! A stack is a root object `[len][head]` pointing at an immutable chain
//! of cons cells `[kind][elem][next]`. `push`/`pop` are pure: they return
//! a new root object; cells are shared between versions and reference
//! counted (volatile counts, §5.3).

use crate::node::{check_kind, NodeBuf, KIND_CONS};
use mod_alloc::{HeapRead, NvHeap};
use mod_pmem::PmPtr;

const ROOT_WORDS: usize = 2; // [len][head]
const CELL_WORDS: usize = 3; // [kind][elem][next]

/// Handle to one immutable version of a persistent stack.
///
/// The handle is a pointer to the version's root object in PM; copying the
/// handle does not copy the structure. Updates return new handles; commit
/// and reclamation of old versions are the concern of `mod-core`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct PmStack {
    root: PmPtr,
}

/// A cons cell pointer, exposed for the queue's reversal logic.
pub(crate) fn cons(heap: &mut NvHeap, elem: u64, next: PmPtr) -> PmPtr {
    // Ownership: `next`'s refcount must already account for this new
    // reference (callers retain before consing).
    let mut b = NodeBuf::with_words(CELL_WORDS);
    b.push_u64(KIND_CONS).push_u64(elem).push_ptr(next);
    b.store(heap)
}

pub(crate) fn cell_elem(heap: &mut NvHeap, cell: PmPtr) -> u64 {
    check_kind(heap, cell, KIND_CONS);
    heap.read_u64(cell.addr() + 8)
}

pub(crate) fn cell_next(heap: &mut NvHeap, cell: PmPtr) -> PmPtr {
    PmPtr::from_addr(heap.read_u64(cell.addr() + 16))
}

pub(crate) fn cell_elem_r(heap: &mut HeapRead<'_>, cell: PmPtr) -> u64 {
    let k = heap.u64(cell.addr());
    assert_eq!(k, KIND_CONS, "cell {cell} has kind {k} — corrupt traversal");
    heap.u64(cell.addr() + 8)
}

pub(crate) fn cell_next_r(heap: &mut HeapRead<'_>, cell: PmPtr) -> PmPtr {
    PmPtr::from_addr(heap.u64(cell.addr() + 16))
}

/// Releases one reference to a chain starting at `head`, freeing cells
/// whose count reaches zero. Iterative: chains can be millions long.
pub(crate) fn release_chain(heap: &mut NvHeap, head: PmPtr) {
    let mut cur = head;
    while !cur.is_null() {
        if heap.rc_dec(cur) > 0 {
            break; // rest of the chain is still shared
        }
        let next = cell_next(heap, cur);
        heap.free(cur);
        cur = next;
    }
}

/// Marks a chain during recovery GC, stopping at already-marked cells.
pub(crate) fn mark_chain(heap: &mut NvHeap, head: PmPtr) {
    let mut cur = head;
    while !cur.is_null() {
        if !heap.mark_block(cur) {
            break; // shared suffix already walked
        }
        cur = PmPtr::from_addr(heap.pm_mut().read_u64(cur.addr() + 16));
    }
}

impl PmStack {
    /// Creates an empty stack (allocates and flushes its root object).
    pub fn empty(heap: &mut NvHeap) -> PmStack {
        let mut b = NodeBuf::with_words(ROOT_WORDS);
        b.push_u64(0).push_ptr(PmPtr::NULL);
        PmStack {
            root: b.store(heap),
        }
    }

    /// Rebuilds a handle from a raw root pointer (e.g. a root slot after
    /// recovery).
    pub fn from_root(root: PmPtr) -> PmStack {
        PmStack { root }
    }

    /// The version's root object pointer (what commit stores in a slot).
    pub fn root(&self) -> PmPtr {
        self.root
    }

    /// Number of elements.
    pub fn len(&self, heap: &mut NvHeap) -> u64 {
        heap.read_u64(self.root.addr())
    }

    /// Number of elements, without charging the cache/time model.
    pub fn peek_len(&self, heap: &NvHeap) -> u64 {
        heap.peek_u64(self.root.addr())
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self, heap: &mut NvHeap) -> bool {
        self.len(heap) == 0
    }

    /// Whether the stack is empty, without charging the cache/time model.
    pub fn peek_is_empty(&self, heap: &NvHeap) -> bool {
        self.peek_len(heap) == 0
    }

    fn head(&self, heap: &mut NvHeap) -> PmPtr {
        PmPtr::from_addr(heap.read_u64(self.root.addr() + 8))
    }

    /// Pure push: returns a new version with `elem` on top. The original
    /// version is untouched (Fig 1c). All new data is flushed, unordered.
    pub fn push(&self, heap: &mut NvHeap, elem: u64) -> PmStack {
        let len = self.len(heap);
        let head = self.head(heap);
        if !head.is_null() {
            heap.rc_inc(head); // new cell shares the old chain
        }
        let cell = cons(heap, elem, head);
        let mut b = NodeBuf::with_words(ROOT_WORDS);
        b.push_u64(len + 1).push_ptr(cell);
        PmStack {
            root: b.store(heap),
        }
    }

    /// Top element, if any.
    pub fn peek(&self, heap: &mut NvHeap) -> Option<u64> {
        let head = self.head(heap);
        if head.is_null() {
            None
        } else {
            Some(cell_elem(heap, head))
        }
    }

    /// Top element without charging the cache/time model.
    pub fn peek_top(&self, heap: &NvHeap) -> Option<u64> {
        let mut r = HeapRead::from(heap);
        let head = PmPtr::from_addr(r.u64(self.root.addr() + 8));
        if head.is_null() {
            None
        } else {
            Some(cell_elem_r(&mut r, head))
        }
    }

    /// Pure pop: returns the new version and the popped element, or
    /// `None` if empty.
    pub fn pop(&self, heap: &mut NvHeap) -> Option<(PmStack, u64)> {
        let len = self.len(heap);
        let head = self.head(heap);
        if head.is_null() {
            return None;
        }
        let elem = cell_elem(heap, head);
        let next = cell_next(heap, head);
        if !next.is_null() {
            heap.rc_inc(next); // new root shares the tail
        }
        let mut b = NodeBuf::with_words(ROOT_WORDS);
        b.push_u64(len - 1).push_ptr(next);
        Some((
            PmStack {
                root: b.store(heap),
            },
            elem,
        ))
    }

    /// Collects the stack top-to-bottom (diagnostics and tests).
    pub fn to_vec(&self, heap: &mut NvHeap) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = self.head(heap);
        while !cur.is_null() {
            out.push(cell_elem(heap, cur));
            cur = cell_next(heap, cur);
        }
        out
    }

    /// Collects the stack top-to-bottom on `&NvHeap` (read-only).
    pub fn peek_to_vec(&self, heap: &NvHeap) -> Vec<u64> {
        let mut r = HeapRead::from(heap);
        let mut out = Vec::new();
        let mut cur = PmPtr::from_addr(r.u64(self.root.addr() + 8));
        while !cur.is_null() {
            out.push(cell_elem_r(&mut r, cur));
            cur = cell_next_r(&mut r, cur);
        }
        out
    }

    /// Releases this version's reference to its data (used by commit to
    /// reclaim superseded versions).
    pub fn release(self, heap: &mut NvHeap) {
        if heap.rc_dec(self.root) == 0 {
            let head = self.head(heap);
            heap.free(self.root);
            if !head.is_null() {
                release_chain(heap, head);
            }
        }
    }

    /// Marks this version's blocks during recovery GC.
    pub fn mark(&self, heap: &mut NvHeap) {
        if !heap.mark_block(self.root) {
            return;
        }
        let head = PmPtr::from_addr(heap.pm_mut().read_u64(self.root.addr() + 8));
        if !head.is_null() {
            mark_chain(heap, head);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn push_pop_lifo() {
        let mut h = heap();
        let s0 = PmStack::empty(&mut h);
        let s1 = s0.push(&mut h, 1);
        let s2 = s1.push(&mut h, 2);
        let s3 = s2.push(&mut h, 3);
        assert_eq!(s3.len(&mut h), 3);
        let (s4, e) = s3.pop(&mut h).unwrap();
        assert_eq!(e, 3);
        assert_eq!(s4.to_vec(&mut h), vec![2, 1]);
    }

    #[test]
    fn old_version_untouched_by_push() {
        let mut h = heap();
        let s0 = PmStack::empty(&mut h);
        let s1 = s0.push(&mut h, 1);
        let _s2 = s1.push(&mut h, 2);
        assert_eq!(s1.to_vec(&mut h), vec![1]);
        assert_eq!(s0.to_vec(&mut h), Vec::<u64>::new());
    }

    #[test]
    fn pop_empty_is_none() {
        let mut h = heap();
        let s0 = PmStack::empty(&mut h);
        assert!(s0.pop(&mut h).is_none());
        assert!(s0.peek(&mut h).is_none());
        assert!(s0.is_empty(&mut h));
    }

    #[test]
    fn structural_sharing_on_push() {
        let mut h = heap();
        let s0 = PmStack::empty(&mut h);
        let mut s = s0;
        for i in 0..100 {
            s = s.push(&mut h, i);
        }
        let before = h.stats().cumulative_alloc_bytes;
        let _s2 = s.push(&mut h, 100);
        let delta = h.stats().cumulative_alloc_bytes - before;
        // One cell + one root object, regardless of stack depth.
        assert!(delta <= 64, "push allocated {delta} bytes");
    }

    #[test]
    fn release_frees_exclusive_version() {
        let mut h = heap();
        let s0 = PmStack::empty(&mut h);
        let s1 = s0.push(&mut h, 1);
        let s2 = s1.push(&mut h, 2);
        // Release superseded versions like commit would.
        let live_before = h.stats().live_blocks;
        s0.release(&mut h);
        s1.release(&mut h);
        // s2 still owns its chain: both cells + 1 root left.
        assert!(h.stats().live_blocks < live_before);
        assert_eq!(s2.to_vec(&mut h), vec![2, 1]);
        s2.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0, "all blocks reclaimed");
    }

    #[test]
    fn release_respects_sharing() {
        let mut h = heap();
        let s0 = PmStack::empty(&mut h);
        let s1 = s0.push(&mut h, 1);
        let s2a = s1.push(&mut h, 2);
        let s2b = s1.push(&mut h, 3);
        s1.release(&mut h);
        // Cell "1" is still shared by both branches.
        assert_eq!(s2a.to_vec(&mut h), vec![2, 1]);
        assert_eq!(s2b.to_vec(&mut h), vec![3, 1]);
        s2a.release(&mut h);
        assert_eq!(s2b.to_vec(&mut h), vec![3, 1]);
        s2b.release(&mut h);
        s0.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn deep_stack_release_is_iterative() {
        // Would overflow the call stack if release recursed.
        let mut h = heap();
        let mut s = PmStack::empty(&mut h);
        for i in 0..100_000 {
            let next = s.push(&mut h, i);
            s.release(&mut h);
            s = next;
        }
        s.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn push_flushes_everything_before_fence() {
        let mut h = heap();
        let s0 = PmStack::empty(&mut h);
        let _s1 = s0.push(&mut h, 7);
        h.sfence();
        assert_eq!(h.pm().dirty_lines(), 0);
    }
}
