//! Variable-size persistent byte blobs.
//!
//! Map values (and any other variable-size payloads) are stored out of
//! line as immutable blobs: `[len: u32][pad: u32][bytes...]`. Blobs are
//! reference counted like nodes because structural sharing makes multiple
//! node versions point at the same value.

use mod_alloc::{HeapRead, NvHeap};
use mod_pmem::PmPtr;

const BLOB_HEADER: u64 = 8;

/// Creates an immutable blob holding `bytes`, flushed (not fenced).
/// Returns [`PmPtr::NULL`] for empty input — the canonical encoding of
/// "no value" used by sets.
pub fn blob_create(heap: &mut NvHeap, bytes: &[u8]) -> PmPtr {
    if bytes.is_empty() {
        return PmPtr::NULL;
    }
    let len = BLOB_HEADER + bytes.len() as u64;
    let ptr = heap.alloc(len);
    heap.write_u32(ptr.addr(), bytes.len() as u32);
    heap.write_u32(ptr.addr() + 4, 0);
    heap.write_bytes(ptr.addr() + BLOB_HEADER, bytes);
    heap.flush_range(
        ptr.addr() - mod_alloc::HEADER_BYTES,
        mod_alloc::HEADER_BYTES + len,
    );
    ptr
}

/// Reads a blob's contents. Null yields the empty vector.
pub fn blob_read(heap: &mut NvHeap, ptr: PmPtr) -> Vec<u8> {
    blob_read_r(&mut heap.into(), ptr)
}

/// Reads a blob's contents through a [`HeapRead`] (charged or peek).
pub fn blob_read_r(heap: &mut HeapRead<'_>, ptr: PmPtr) -> Vec<u8> {
    if ptr.is_null() {
        return Vec::new();
    }
    let len = heap.u32(ptr.addr()) as u64;
    heap.vec(ptr.addr() + BLOB_HEADER, len)
}

/// Length in bytes of a blob (0 for null).
pub fn blob_len(heap: &mut NvHeap, ptr: PmPtr) -> u32 {
    if ptr.is_null() {
        return 0;
    }
    heap.read_u32(ptr.addr())
}

/// Adds a reference to a blob (no-op for null).
pub fn blob_retain(heap: &mut NvHeap, ptr: PmPtr) {
    if !ptr.is_null() {
        heap.rc_inc(ptr);
    }
}

/// Drops a reference to a blob, freeing it at zero (no-op for null).
pub fn blob_release(heap: &mut NvHeap, ptr: PmPtr) {
    if !ptr.is_null() && heap.rc_dec(ptr) == 0 {
        heap.free(ptr);
    }
}

/// Marks a blob during recovery GC (no-op for null).
pub fn blob_mark(heap: &mut NvHeap, ptr: PmPtr) {
    if !ptr.is_null() {
        heap.mark_block(ptr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn roundtrip() {
        let mut h = heap();
        let p = blob_create(&mut h, b"persistent value");
        assert_eq!(blob_read(&mut h, p), b"persistent value");
        assert_eq!(blob_len(&mut h, p), 16);
    }

    #[test]
    fn empty_is_null() {
        let mut h = heap();
        let p = blob_create(&mut h, b"");
        assert!(p.is_null());
        assert_eq!(blob_read(&mut h, p), Vec::<u8>::new());
        assert_eq!(blob_len(&mut h, p), 0);
    }

    #[test]
    fn refcounting_frees_at_zero() {
        let mut h = heap();
        let p = blob_create(&mut h, &[9u8; 100]);
        blob_retain(&mut h, p);
        assert_eq!(h.rc_get(p), 2);
        blob_release(&mut h, p);
        assert_eq!(h.stats().frees, 0);
        blob_release(&mut h, p);
        assert_eq!(h.stats().frees, 1);
    }

    #[test]
    fn null_ops_are_noops() {
        let mut h = heap();
        blob_retain(&mut h, PmPtr::NULL);
        blob_release(&mut h, PmPtr::NULL);
        blob_mark(&mut h, PmPtr::NULL);
    }

    #[test]
    fn large_blob_512b() {
        // The memcached workload's 512-byte values.
        let mut h = heap();
        let data = vec![0xABu8; 512];
        let p = blob_create(&mut h, &data);
        assert_eq!(blob_read(&mut h, p), data);
        // 8 + 512 rounds to the 768 class.
        assert_eq!(h.block_len(p), 768);
    }

    #[test]
    fn blob_is_durable_after_fence() {
        let mut h = heap();
        let p = blob_create(&mut h, b"abc");
        h.sfence();
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(p.addr()) as u32, 3);
    }
}
