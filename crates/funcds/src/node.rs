//! Shared node plumbing for the functional datastructures.
//!
//! Every persistent node starts with a kind word so that traversal bugs
//! surface as assertion failures instead of silent corruption, and so that
//! debugging tools can identify blocks. Nodes are written once (out of
//! place), flushed with unordered `clwb`s, and never modified afterwards —
//! the Functional Shadowing discipline of §4.1.

use mod_alloc::NvHeap;
use mod_pmem::PmPtr;

/// Kind tag: CHAMP bitmap node.
pub const KIND_BITMAP: u64 = 1;
/// Kind tag: CHAMP hash-collision node.
pub const KIND_COLLISION: u64 = 2;
/// Kind tag: RRB leaf node.
pub const KIND_LEAF: u64 = 3;
/// Kind tag: RRB internal node.
pub const KIND_INNER: u64 = 4;
/// Kind tag: cons-list cell.
pub const KIND_CONS: u64 = 5;

/// A little-endian `u64` writer used to assemble node images before the
/// single `write_bytes` that stores them.
#[derive(Debug, Default)]
pub struct NodeBuf {
    bytes: Vec<u8>,
}

impl NodeBuf {
    /// Creates a buffer with capacity for `words` u64s.
    pub fn with_words(words: usize) -> NodeBuf {
        NodeBuf {
            bytes: Vec::with_capacity(words * 8),
        }
    }

    /// Appends a `u64`.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a pointer.
    pub fn push_ptr(&mut self, p: PmPtr) -> &mut Self {
        self.push_u64(p.addr())
    }

    /// Appends raw bytes.
    pub fn push_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(b);
        self
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Allocates a block, stores the buffer into it, and flushes exactly
    /// the written extent (block header + payload bytes) with unordered
    /// `clwb`s — not the rounded-up size class, so flush counts reflect
    /// data actually produced. The block's refcount starts at 1 (owned by
    /// the caller).
    pub fn store(self, heap: &mut NvHeap) -> PmPtr {
        let len = self.bytes.len() as u64;
        let ptr = heap.alloc(len);
        heap.write_bytes(ptr.addr(), &self.bytes);
        heap.flush_range(
            ptr.addr() - mod_alloc::HEADER_BYTES,
            mod_alloc::HEADER_BYTES + len,
        );
        ptr
    }
}

/// Reads the kind word of a node and asserts it matches `expect`.
///
/// # Panics
///
/// Panics on a kind mismatch — a traversal reached a block of the wrong
/// type, which indicates a datastructure bug.
pub fn check_kind(heap: &mut NvHeap, node: PmPtr, expect: u64) -> u64 {
    let k = heap.read_u64(node.addr());
    assert_eq!(
        k, expect,
        "node {node} has kind {k}, expected {expect} — corrupt traversal"
    );
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn nodebuf_roundtrip() {
        let mut h = heap();
        let mut b = NodeBuf::with_words(3);
        b.push_u64(KIND_CONS).push_u64(42).push_ptr(PmPtr::NULL);
        assert_eq!(b.len(), 24);
        let p = b.store(&mut h);
        assert_eq!(h.read_u64(p.addr()), KIND_CONS);
        assert_eq!(h.read_u64(p.addr() + 8), 42);
        assert_eq!(h.read_u64(p.addr() + 16), 0);
        assert_eq!(h.rc_get(p), 1);
    }

    #[test]
    fn stored_node_is_fully_flushed() {
        let mut h = heap();
        let mut b = NodeBuf::with_words(40);
        for i in 0..40u64 {
            b.push_u64(i);
        }
        let p = b.store(&mut h);
        h.sfence();
        assert_eq!(h.pm().dirty_lines(), 0);
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(p.addr() + 39 * 8), 39);
    }

    #[test]
    fn check_kind_accepts_match() {
        let mut h = heap();
        let mut b = NodeBuf::with_words(1);
        b.push_u64(KIND_LEAF);
        let p = b.store(&mut h);
        assert_eq!(check_kind(&mut h, p, KIND_LEAF), KIND_LEAF);
    }

    #[test]
    #[should_panic(expected = "corrupt traversal")]
    fn check_kind_rejects_mismatch() {
        let mut h = heap();
        let mut b = NodeBuf::with_words(1);
        b.push_u64(KIND_LEAF);
        let p = b.store(&mut h);
        check_kind(&mut h, p, KIND_BITMAP);
    }
}
