//! CHAMP trie — the MOD **map** and **set** substrate.
//!
//! A Compressed Hash-Array Mapped Prefix-tree (Steindorfer & Vinju,
//! OOPSLA '15), the functional map implementation the paper converts into
//! a durable datastructure (§4.2). Keys are `u64`; values are immutable
//! byte blobs. The trie consumes the key hash five bits per level; each
//! bitmap node packs data entries and sub-node pointers into one compact
//! block; full 64-bit hash collisions overflow into collision nodes.
//!
//! All updates are pure path copies: the handful of nodes on the root-to-
//! leaf path are rewritten out of place (flushed with unordered `clwb`s)
//! while every untouched subtree is shared with the previous version —
//! the structural sharing that keeps shadow overheads below 0.01 %/update
//! (§4.1, Table 3).

use crate::blob::{blob_create, blob_mark, blob_read_r, blob_release};
use crate::node::{NodeBuf, KIND_BITMAP, KIND_COLLISION};
use mod_alloc::{HeapRead, NvHeap};
use mod_pmem::PmPtr;

/// Hash chunking: 5 bits per level.
const BITS: u32 = 5;
/// Levels before full-hash collisions overflow into collision nodes.
const MAX_DEPTH: u32 = 13;
/// Root object size: `[count][root node][hash kind]`.
const ROOT_WORDS: usize = 3;

/// Key-hashing discipline of a map instance (stored persistently in the
/// root object so recovery rebuilds identical tries).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum HashKind {
    /// SplitMix64 mixing — the production hash.
    #[default]
    SplitMix,
    /// `key & 0xF` — pathological on purpose, to exercise deep tries and
    /// collision nodes in tests.
    WeakLow4,
}

impl HashKind {
    fn to_u64(self) -> u64 {
        match self {
            HashKind::SplitMix => 0,
            HashKind::WeakLow4 => 1,
        }
    }

    fn from_u64(v: u64) -> HashKind {
        match v {
            0 => HashKind::SplitMix,
            1 => HashKind::WeakLow4,
            _ => panic!("corrupt hash kind {v}"),
        }
    }

    fn hash(self, key: u64) -> u64 {
        match self {
            HashKind::SplitMix => {
                let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            }
            HashKind::WeakLow4 => key & 0xF,
        }
    }
}

#[inline]
fn chunk(hash: u64, depth: u32) -> u32 {
    ((hash >> (BITS * depth)) & 0x1F) as u32
}

/// Handle to one immutable version of a persistent hash map.
///
/// The handle points at the version's root object; updates return new
/// handles and never modify existing versions (Functional Shadowing).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct PmMap {
    root: PmPtr,
}

// ---------------------------------------------------------------------
// Volatile node images
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct BitmapImg {
    datamap: u32,
    nodemap: u32,
    data: Vec<(u64, PmPtr)>,
    children: Vec<PmPtr>,
}

#[derive(Debug, Clone, Default)]
struct CollisionImg {
    entries: Vec<(u64, PmPtr)>,
}

#[derive(Debug, Clone)]
enum NodeImg {
    Bitmap(BitmapImg),
    Collision(CollisionImg),
}

fn read_node(heap: &mut NvHeap, node: PmPtr) -> NodeImg {
    read_node_r(&mut heap.into(), node)
}

fn read_node_r(heap: &mut HeapRead<'_>, node: PmPtr) -> NodeImg {
    let a = node.addr();
    let kind = heap.u64(a);
    match kind {
        KIND_BITMAP => {
            let maps = heap.u64(a + 8);
            let datamap = (maps & 0xFFFF_FFFF) as u32;
            let nodemap = (maps >> 32) as u32;
            let d = datamap.count_ones() as usize;
            let n = nodemap.count_ones() as usize;
            let body = heap.vec(a + 16, (16 * d + 8 * n) as u64);
            let mut data = Vec::with_capacity(d);
            for i in 0..d {
                let k = u64::from_le_bytes(body[16 * i..16 * i + 8].try_into().unwrap());
                let v = u64::from_le_bytes(body[16 * i + 8..16 * i + 16].try_into().unwrap());
                data.push((k, PmPtr::from_addr(v)));
            }
            let base = 16 * d;
            let mut children = Vec::with_capacity(n);
            for i in 0..n {
                let p =
                    u64::from_le_bytes(body[base + 8 * i..base + 8 * i + 8].try_into().unwrap());
                children.push(PmPtr::from_addr(p));
            }
            NodeImg::Bitmap(BitmapImg {
                datamap,
                nodemap,
                data,
                children,
            })
        }
        KIND_COLLISION => {
            let count = heap.u64(a + 8) as usize;
            let body = heap.vec(a + 16, (16 * count) as u64);
            let mut entries = Vec::with_capacity(count);
            for i in 0..count {
                let k = u64::from_le_bytes(body[16 * i..16 * i + 8].try_into().unwrap());
                let v = u64::from_le_bytes(body[16 * i + 8..16 * i + 16].try_into().unwrap());
                entries.push((k, PmPtr::from_addr(v)));
            }
            NodeImg::Collision(CollisionImg { entries })
        }
        k => panic!("corrupt CHAMP node kind {k} at {node}"),
    }
}

/// Stores a bitmap node. Ownership rule: the stored node *owns* every
/// pointer written into it, so this increments the refcount of each
/// non-null child and value; callers drop their own temporary ownership
/// of freshly created pointers afterwards.
fn store_bitmap(heap: &mut NvHeap, img: &BitmapImg) -> PmPtr {
    debug_assert_eq!(img.datamap.count_ones() as usize, img.data.len());
    debug_assert_eq!(img.nodemap.count_ones() as usize, img.children.len());
    let mut b = NodeBuf::with_words(2 + 2 * img.data.len() + img.children.len());
    b.push_u64(KIND_BITMAP)
        .push_u64(img.datamap as u64 | ((img.nodemap as u64) << 32));
    for &(k, v) in &img.data {
        b.push_u64(k).push_ptr(v);
    }
    for &c in &img.children {
        b.push_ptr(c);
    }
    let ptr = b.store(heap);
    for &(_, v) in &img.data {
        if !v.is_null() {
            heap.rc_inc(v);
        }
    }
    for &c in &img.children {
        heap.rc_inc(c);
    }
    ptr
}

/// Stores a collision node; same ownership rule as [`store_bitmap`].
fn store_collision(heap: &mut NvHeap, img: &CollisionImg) -> PmPtr {
    let mut b = NodeBuf::with_words(2 + 2 * img.entries.len());
    b.push_u64(KIND_COLLISION)
        .push_u64(img.entries.len() as u64);
    for &(k, v) in &img.entries {
        b.push_u64(k).push_ptr(v);
    }
    let ptr = b.store(heap);
    for &(_, v) in &img.entries {
        if !v.is_null() {
            heap.rc_inc(v);
        }
    }
    ptr
}

/// Drops one temporary ownership reference on a freshly stored node.
fn drop_temp(heap: &mut NvHeap, ptr: PmPtr) {
    debug_assert!(heap.rc_get(ptr) >= 2, "temp node should be co-owned");
    heap.rc_dec(ptr);
}

enum RemoveResult {
    NotFound,
    /// New (fresh) node; null if the subtree vanished entirely.
    Removed(PmPtr),
    /// The subtree shrank to a single entry: inline it into the parent.
    Inlined(u64, PmPtr),
}

impl PmMap {
    // ------------------------------------------------------------------
    // Construction and handle plumbing
    // ------------------------------------------------------------------

    /// Creates an empty map with the production hash.
    pub fn empty(heap: &mut NvHeap) -> PmMap {
        PmMap::empty_with_hash(heap, HashKind::SplitMix)
    }

    /// Creates an empty map with an explicit [`HashKind`].
    pub fn empty_with_hash(heap: &mut NvHeap, hk: HashKind) -> PmMap {
        let mut b = NodeBuf::with_words(ROOT_WORDS);
        b.push_u64(0).push_ptr(PmPtr::NULL).push_u64(hk.to_u64());
        PmMap {
            root: b.store(heap),
        }
    }

    /// Rebuilds a handle from a raw root pointer (root slot contents).
    pub fn from_root(root: PmPtr) -> PmMap {
        PmMap { root }
    }

    /// The version's root object pointer (what commit stores in a slot).
    pub fn root(&self) -> PmPtr {
        self.root
    }

    fn read_root_obj(&self, heap: &mut NvHeap) -> (u64, PmPtr, HashKind) {
        self.read_root_obj_r(&mut heap.into())
    }

    fn read_root_obj_r(&self, heap: &mut HeapRead<'_>) -> (u64, PmPtr, HashKind) {
        let a = self.root.addr();
        let count = heap.u64(a);
        let node = PmPtr::from_addr(heap.u64(a + 8));
        let hk = HashKind::from_u64(heap.u64(a + 16));
        (count, node, hk)
    }

    fn store_root_obj(heap: &mut NvHeap, count: u64, node: PmPtr, hk: HashKind) -> PmMap {
        let mut b = NodeBuf::with_words(ROOT_WORDS);
        b.push_u64(count).push_ptr(node).push_u64(hk.to_u64());
        let root = b.store(heap);
        if !node.is_null() {
            heap.rc_inc(node);
        }
        PmMap { root }
    }

    /// Number of entries.
    pub fn len(&self, heap: &mut NvHeap) -> u64 {
        heap.read_u64(self.root.addr())
    }

    /// Number of entries, without charging the cache/time model.
    pub fn peek_len(&self, heap: &NvHeap) -> u64 {
        heap.peek_u64(self.root.addr())
    }

    /// Whether the map is empty.
    pub fn is_empty(&self, heap: &mut NvHeap) -> bool {
        self.len(heap) == 0
    }

    /// Whether the map is empty, without charging the cache/time model.
    pub fn peek_is_empty(&self, heap: &NvHeap) -> bool {
        self.peek_len(heap) == 0
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Looks up `key`, returning its value bytes. A present key with an
    /// empty value (set membership) yields `Some(vec![])`.
    pub fn get(&self, heap: &mut NvHeap, key: u64) -> Option<Vec<u8>> {
        self.get_r(&mut heap.into(), key)
    }

    /// Read-only lookup on `&NvHeap`: no exclusive access, no simulated
    /// cache/time charges — the substrate of the typed API's shared read
    /// path.
    pub fn peek_get(&self, heap: &NvHeap, key: u64) -> Option<Vec<u8>> {
        self.get_r(&mut heap.into(), key)
    }

    fn get_r(&self, heap: &mut HeapRead<'_>, key: u64) -> Option<Vec<u8>> {
        self.get_ptr_r(heap, key).map(|v| blob_read_r(heap, v))
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, heap: &mut NvHeap, key: u64) -> bool {
        self.get_ptr_r(&mut heap.into(), key).is_some()
    }

    /// Read-only membership test on `&NvHeap`.
    pub fn peek_contains_key(&self, heap: &NvHeap, key: u64) -> bool {
        self.get_ptr_r(&mut heap.into(), key).is_some()
    }

    fn get_ptr_r(&self, heap: &mut HeapRead<'_>, key: u64) -> Option<PmPtr> {
        let (_, mut node, hk) = self.read_root_obj_r(heap);
        let hash = hk.hash(key);
        let mut depth = 0u32;
        while !node.is_null() {
            match read_node_r(heap, node) {
                NodeImg::Bitmap(img) => {
                    let bit = 1u32 << chunk(hash, depth);
                    if img.datamap & bit != 0 {
                        let pos = (img.datamap & (bit - 1)).count_ones() as usize;
                        let (k, v) = img.data[pos];
                        return (k == key).then_some(v);
                    }
                    if img.nodemap & bit != 0 {
                        let pos = (img.nodemap & (bit - 1)).count_ones() as usize;
                        node = img.children[pos];
                        depth += 1;
                        continue;
                    }
                    return None;
                }
                NodeImg::Collision(img) => {
                    return img
                        .entries
                        .iter()
                        .find(|&&(k, _)| k == key)
                        .map(|&(_, v)| v);
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Pure insert/update: returns the new version. See
    /// [`PmMap::insert_query`] to learn whether the key was new.
    pub fn insert(&self, heap: &mut NvHeap, key: u64, value: &[u8]) -> PmMap {
        self.insert_query(heap, key, value).0
    }

    /// Pure insert/update returning `(new_version, was_new_key)`.
    pub fn insert_query(&self, heap: &mut NvHeap, key: u64, value: &[u8]) -> (PmMap, bool) {
        let (count, node, hk) = self.read_root_obj(heap);
        let hash = hk.hash(key);
        let val = blob_create(heap, value); // temp-owned by this op
        let (new_node, added) = insert_node(heap, node, 0, hash, hk, key, val);
        blob_release(heap, val); // node(s) now own it
        let map = Self::store_root_obj(heap, count + added as u64, new_node, hk);
        drop_temp(heap, new_node);
        (map, added)
    }

    // ------------------------------------------------------------------
    // Remove
    // ------------------------------------------------------------------

    /// Pure removal: returns `(new_version, removed)`. When the key is
    /// absent, the *same* handle is returned with `removed == false`; the
    /// caller must not release the old version in that case (they are the
    /// same version).
    pub fn remove(&self, heap: &mut NvHeap, key: u64) -> (PmMap, bool) {
        let (count, node, hk) = self.read_root_obj(heap);
        if node.is_null() {
            return (*self, false);
        }
        let hash = hk.hash(key);
        match remove_node(heap, node, 0, hash, key) {
            RemoveResult::NotFound => (*self, false),
            RemoveResult::Removed(new_node) => {
                let map = Self::store_root_obj(heap, count - 1, new_node, hk);
                if !new_node.is_null() {
                    drop_temp(heap, new_node);
                }
                (map, true)
            }
            RemoveResult::Inlined(k, v) => {
                // The whole trie shrank to one entry: root becomes a
                // single-entry bitmap node.
                let img = BitmapImg {
                    datamap: 1 << chunk(hk.hash(k), 0),
                    nodemap: 0,
                    data: vec![(k, v)],
                    children: Vec::new(),
                };
                let n = store_bitmap(heap, &img);
                let map = Self::store_root_obj(heap, count - 1, n, hk);
                drop_temp(heap, n);
                (map, true)
            }
        }
    }

    // ------------------------------------------------------------------
    // Iteration
    // ------------------------------------------------------------------

    /// Collects all entries (unordered). Intended for tests, recovery
    /// audits and small maps.
    pub fn to_vec(&self, heap: &mut NvHeap) -> Vec<(u64, Vec<u8>)> {
        self.collect_entries_r(&mut heap.into())
    }

    /// Read-only collection of all entries on `&NvHeap` (unordered).
    pub fn peek_to_vec(&self, heap: &NvHeap) -> Vec<(u64, Vec<u8>)> {
        self.collect_entries_r(&mut heap.into())
    }

    fn collect_entries_r(&self, heap: &mut HeapRead<'_>) -> Vec<(u64, Vec<u8>)> {
        let (_, node, _) = self.read_root_obj_r(heap);
        let mut out = Vec::new();
        if node.is_null() {
            return out;
        }
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            match read_node_r(heap, n) {
                NodeImg::Bitmap(img) => {
                    for (k, v) in img.data {
                        let bytes = blob_read_r(heap, v);
                        out.push((k, bytes));
                    }
                    stack.extend(img.children);
                }
                NodeImg::Collision(img) => {
                    for (k, v) in img.entries {
                        let bytes = blob_read_r(heap, v);
                        out.push((k, bytes));
                    }
                }
            }
        }
        out
    }

    /// Collects all keys (unordered).
    pub fn keys(&self, heap: &mut NvHeap) -> Vec<u64> {
        self.to_vec(heap).into_iter().map(|(k, _)| k).collect()
    }

    // ------------------------------------------------------------------
    // Reclamation and recovery
    // ------------------------------------------------------------------

    /// Releases this version's reference to its data (commit-time reclaim
    /// of superseded versions, §5.3).
    pub fn release(self, heap: &mut NvHeap) {
        if heap.rc_dec(self.root) == 0 {
            let (_, node, _) = self.read_root_obj(heap);
            heap.free(self.root);
            if !node.is_null() {
                release_node(heap, node);
            }
        }
    }

    /// Marks this version's blocks during recovery GC.
    pub fn mark(&self, heap: &mut NvHeap) {
        if !heap.mark_block(self.root) {
            return;
        }
        let node = PmPtr::from_addr(heap.pm_mut().read_u64(self.root.addr() + 8));
        if !node.is_null() {
            mark_node(heap, node);
        }
    }
}

fn insert_node(
    heap: &mut NvHeap,
    node: PmPtr,
    depth: u32,
    hash: u64,
    hk: HashKind,
    key: u64,
    val: PmPtr,
) -> (PmPtr, bool) {
    if node.is_null() {
        let img = BitmapImg {
            datamap: 1 << chunk(hash, depth),
            nodemap: 0,
            data: vec![(key, val)],
            children: Vec::new(),
        };
        return (store_bitmap(heap, &img), true);
    }
    match read_node(heap, node) {
        NodeImg::Bitmap(mut img) => {
            let idx = chunk(hash, depth);
            let bit = 1u32 << idx;
            if img.datamap & bit != 0 {
                let pos = (img.datamap & (bit - 1)).count_ones() as usize;
                let (ekey, eval) = img.data[pos];
                if ekey == key {
                    // Replace value in place (path copy).
                    img.data[pos] = (key, val);
                    return (store_bitmap(heap, &img), false);
                }
                // Split: push both entries one level down.
                let ehash = hk.hash(ekey);
                let sub = make_subnode(heap, depth + 1, ehash, ekey, eval, hash, key, val);
                img.datamap &= !bit;
                img.data.remove(pos);
                let npos = (img.nodemap & (bit - 1)).count_ones() as usize;
                img.nodemap |= bit;
                img.children.insert(npos, sub);
                let fresh = store_bitmap(heap, &img);
                drop_temp(heap, sub);
                (fresh, true)
            } else if img.nodemap & bit != 0 {
                let pos = (img.nodemap & (bit - 1)).count_ones() as usize;
                let child = img.children[pos];
                let (new_child, added) = insert_node(heap, child, depth + 1, hash, hk, key, val);
                img.children[pos] = new_child;
                let fresh = store_bitmap(heap, &img);
                drop_temp(heap, new_child);
                (fresh, added)
            } else {
                let pos = (img.datamap & (bit - 1)).count_ones() as usize;
                img.datamap |= bit;
                img.data.insert(pos, (key, val));
                (store_bitmap(heap, &img), true)
            }
        }
        NodeImg::Collision(mut img) => {
            if let Some(e) = img.entries.iter_mut().find(|e| e.0 == key) {
                e.1 = val;
                (store_collision(heap, &img), false)
            } else {
                img.entries.push((key, val));
                (store_collision(heap, &img), true)
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn make_subnode(
    heap: &mut NvHeap,
    depth: u32,
    h1: u64,
    k1: u64,
    v1: PmPtr,
    h2: u64,
    k2: u64,
    v2: PmPtr,
) -> PmPtr {
    if depth >= MAX_DEPTH {
        let img = CollisionImg {
            entries: vec![(k1, v1), (k2, v2)],
        };
        return store_collision(heap, &img);
    }
    let c1 = chunk(h1, depth);
    let c2 = chunk(h2, depth);
    if c1 != c2 {
        let (data, datamap) = if c1 < c2 {
            (vec![(k1, v1), (k2, v2)], (1 << c1) | (1 << c2))
        } else {
            (vec![(k2, v2), (k1, v1)], (1 << c1) | (1 << c2))
        };
        let img = BitmapImg {
            datamap,
            nodemap: 0,
            data,
            children: Vec::new(),
        };
        store_bitmap(heap, &img)
    } else {
        let sub = make_subnode(heap, depth + 1, h1, k1, v1, h2, k2, v2);
        let img = BitmapImg {
            datamap: 0,
            nodemap: 1 << c1,
            data: Vec::new(),
            children: vec![sub],
        };
        let fresh = store_bitmap(heap, &img);
        drop_temp(heap, sub);
        fresh
    }
}

fn remove_node(heap: &mut NvHeap, node: PmPtr, depth: u32, hash: u64, key: u64) -> RemoveResult {
    match read_node(heap, node) {
        NodeImg::Bitmap(mut img) => {
            let idx = chunk(hash, depth);
            let bit = 1u32 << idx;
            if img.datamap & bit != 0 {
                let pos = (img.datamap & (bit - 1)).count_ones() as usize;
                if img.data[pos].0 != key {
                    return RemoveResult::NotFound;
                }
                img.datamap &= !bit;
                img.data.remove(pos);
                finalize_removed(heap, img, depth)
            } else if img.nodemap & bit != 0 {
                let pos = (img.nodemap & (bit - 1)).count_ones() as usize;
                let child = img.children[pos];
                match remove_node(heap, child, depth + 1, hash, key) {
                    RemoveResult::NotFound => RemoveResult::NotFound,
                    RemoveResult::Removed(new_child) => {
                        if new_child.is_null() {
                            img.nodemap &= !bit;
                            img.children.remove(pos);
                            finalize_removed(heap, img, depth)
                        } else {
                            img.children[pos] = new_child;
                            let fresh = store_bitmap(heap, &img);
                            drop_temp(heap, new_child);
                            RemoveResult::Removed(fresh)
                        }
                    }
                    RemoveResult::Inlined(k, v) => {
                        // Pull the surviving entry up into this node.
                        img.nodemap &= !bit;
                        img.children.remove(pos);
                        let dpos = (img.datamap & (bit - 1)).count_ones() as usize;
                        img.datamap |= bit;
                        img.data.insert(dpos, (k, v));
                        finalize_removed(heap, img, depth)
                    }
                }
            } else {
                RemoveResult::NotFound
            }
        }
        NodeImg::Collision(mut img) => {
            let Some(pos) = img.entries.iter().position(|&(k, _)| k == key) else {
                return RemoveResult::NotFound;
            };
            img.entries.remove(pos);
            match img.entries.len() {
                0 => RemoveResult::Removed(PmPtr::NULL),
                1 => {
                    let (k, v) = img.entries[0];
                    RemoveResult::Inlined(k, v)
                }
                _ => RemoveResult::Removed(store_collision(heap, &img)),
            }
        }
    }
}

/// Canonicalizes a mutated bitmap image: empty → vanish; a single data
/// entry below the root → inline into the parent; otherwise store.
fn finalize_removed(heap: &mut NvHeap, img: BitmapImg, depth: u32) -> RemoveResult {
    if img.data.is_empty() && img.children.is_empty() {
        return RemoveResult::Removed(PmPtr::NULL);
    }
    if depth > 0 && img.children.is_empty() && img.data.len() == 1 {
        let (k, v) = img.data[0];
        return RemoveResult::Inlined(k, v);
    }
    RemoveResult::Removed(store_bitmap(heap, &img))
}

fn release_node(heap: &mut NvHeap, node: PmPtr) {
    if heap.rc_dec(node) > 0 {
        return;
    }
    match read_node(heap, node) {
        NodeImg::Bitmap(img) => {
            heap.free(node);
            for (_, v) in img.data {
                blob_release(heap, v);
            }
            for c in img.children {
                release_node(heap, c);
            }
        }
        NodeImg::Collision(img) => {
            heap.free(node);
            for (_, v) in img.entries {
                blob_release(heap, v);
            }
        }
    }
}

fn mark_node(heap: &mut NvHeap, node: PmPtr) {
    if !heap.mark_block(node) {
        return;
    }
    match read_node(heap, node) {
        NodeImg::Bitmap(img) => {
            for (_, v) in img.data {
                blob_mark(heap, v);
            }
            for c in img.children {
                mark_node(heap, c);
            }
        }
        NodeImg::Collision(img) => {
            for (_, v) in img.entries {
                blob_mark(heap, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};
    use std::collections::HashMap;

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    /// Insert committing like the Basic interface: keep only the newest
    /// version.
    fn step_insert(heap: &mut NvHeap, m: PmMap, k: u64, v: &[u8]) -> PmMap {
        let next = m.insert(heap, k, v);
        m.release(heap);
        next
    }

    fn step_remove(heap: &mut NvHeap, m: PmMap, k: u64) -> (PmMap, bool) {
        let (next, removed) = m.remove(heap, k);
        if removed {
            m.release(heap);
        }
        (next, removed)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut h = heap();
        let m0 = PmMap::empty(&mut h);
        let m1 = m0.insert(&mut h, 1, b"one");
        let m2 = m1.insert(&mut h, 2, b"two");
        assert_eq!(m2.get(&mut h, 1), Some(b"one".to_vec()));
        assert_eq!(m2.get(&mut h, 2), Some(b"two".to_vec()));
        assert_eq!(m2.get(&mut h, 3), None);
        assert_eq!(m2.len(&mut h), 2);
        // Old versions unchanged.
        assert_eq!(m1.get(&mut h, 2), None);
        assert!(m0.is_empty(&mut h));
    }

    #[test]
    fn update_replaces_value() {
        let mut h = heap();
        let m = PmMap::empty(&mut h);
        let m = step_insert(&mut h, m, 7, b"a");
        let (m2, added) = m.insert_query(&mut h, 7, b"b");
        assert!(!added);
        assert_eq!(m2.get(&mut h, 7), Some(b"b".to_vec()));
        assert_eq!(m.get(&mut h, 7), Some(b"a".to_vec()));
        assert_eq!(m2.len(&mut h), 1);
    }

    #[test]
    fn empty_value_is_present() {
        let mut h = heap();
        let m = PmMap::empty(&mut h);
        let m = m.insert(&mut h, 5, b"");
        assert_eq!(m.get(&mut h, 5), Some(Vec::new()));
        assert!(m.contains_key(&mut h, 5));
        assert!(!m.contains_key(&mut h, 6));
    }

    #[test]
    fn thousand_inserts_match_hashmap() {
        let mut h = heap();
        let mut m = PmMap::empty(&mut h);
        let mut model = HashMap::new();
        for i in 0..1000u64 {
            let key = i.wrapping_mul(2654435761) % 500; // forces updates
            let val = key.to_le_bytes().to_vec();
            m = step_insert(&mut h, m, key, &val);
            model.insert(key, val);
        }
        assert_eq!(m.len(&mut h) as usize, model.len());
        for (&k, v) in &model {
            assert_eq!(m.get(&mut h, k).as_ref(), Some(v));
        }
        let mut got = m.to_vec(&mut h);
        got.sort();
        let mut want: Vec<_> = model.into_iter().collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_roundtrip() {
        let mut h = heap();
        let mut m = PmMap::empty(&mut h);
        for i in 0..100u64 {
            m = step_insert(&mut h, m, i, &i.to_le_bytes());
        }
        for i in (0..100u64).step_by(2) {
            let (next, removed) = step_remove(&mut h, m, i);
            assert!(removed);
            m = next;
        }
        assert_eq!(m.len(&mut h), 50);
        for i in 0..100u64 {
            assert_eq!(m.contains_key(&mut h, i), i % 2 == 1, "key {i}");
        }
        let (same, removed) = m.remove(&mut h, 0);
        assert!(!removed);
        assert_eq!(same, m, "absent-key removal returns the same version");
    }

    #[test]
    fn remove_to_empty_and_reuse() {
        let mut h = heap();
        let mut m = PmMap::empty(&mut h);
        m = step_insert(&mut h, m, 1, b"x");
        let (m2, removed) = step_remove(&mut h, m, 1);
        assert!(removed);
        assert!(m2.is_empty(&mut h));
        let m3 = step_insert(&mut h, m2, 2, b"y");
        assert_eq!(m3.get(&mut h, 2), Some(b"y".to_vec()));
    }

    #[test]
    fn weak_hash_exercises_collision_nodes() {
        let mut h = heap();
        let mut m = PmMap::empty_with_hash(&mut h, HashKind::WeakLow4);
        // Keys 0x10, 0x20, ... all hash to 0 → full-hash collisions.
        let keys: Vec<u64> = (1..=20u64).map(|i| i << 4).collect();
        for &k in &keys {
            m = step_insert(&mut h, m, k, &k.to_le_bytes());
        }
        assert_eq!(m.len(&mut h), 20);
        for &k in &keys {
            assert_eq!(m.get(&mut h, k), Some(k.to_le_bytes().to_vec()));
        }
        // Update inside a collision node.
        m = step_insert(&mut h, m, keys[3], b"updated");
        assert_eq!(m.get(&mut h, keys[3]), Some(b"updated".to_vec()));
        assert_eq!(m.len(&mut h), 20);
        // Remove down to one entry (exercises collision→inline).
        for &k in &keys[..19] {
            let (next, removed) = step_remove(&mut h, m, k);
            assert!(removed, "key {k:#x}");
            m = next;
        }
        assert_eq!(m.len(&mut h), 1);
        assert!(m.contains_key(&mut h, keys[19]));
    }

    #[test]
    fn no_leaks_when_releasing_all_versions() {
        let mut h = heap();
        let mut m = PmMap::empty(&mut h);
        for i in 0..200u64 {
            m = step_insert(&mut h, m, i, &[i as u8; 32]);
        }
        for i in 0..200u64 {
            let (next, removed) = step_remove(&mut h, m, i);
            assert!(removed);
            m = next;
        }
        m.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0, "every block reclaimed");
    }

    #[test]
    fn structural_sharing_keeps_update_allocations_tiny() {
        // Table 3's point: one update allocates a few path nodes,
        // independent of map size.
        let mut h = heap();
        let mut m = PmMap::empty(&mut h);
        for i in 0..10_000u64 {
            m = step_insert(&mut h, m, i, &i.to_le_bytes());
        }
        let live = h.stats().live_bytes;
        let before = h.stats().cumulative_alloc_bytes;
        let m2 = m.insert(&mut h, 999_999, b"shadow");
        let delta = h.stats().cumulative_alloc_bytes - before;
        // The shadow is a constant few path nodes; at the paper's 1M scale
        // this lands below 0.01% (verified by the table3 bench). At this
        // test's 10k scale, 0.5% is the same constant cost.
        assert!(
            (delta as f64) < 0.005 * live as f64,
            "shadow cost {delta}B vs {live}B live (>0.5%)"
        );
        assert_eq!(m2.len(&mut h), 10_001);
        assert_eq!(m.len(&mut h), 10_000);
    }

    #[test]
    fn everything_flushed_before_fence() {
        let mut h = heap();
        let m = PmMap::empty(&mut h);
        let _m2 = m.insert(&mut h, 42, &[1u8; 32]);
        h.sfence();
        assert_eq!(h.pm().dirty_lines(), 0);
    }

    #[test]
    fn deep_split_chain() {
        // SplitMix keys whose hashes share leading chunks force multi-level
        // make_subnode chains; verify a bunch of random keys anyway.
        let mut h = heap();
        let mut m = PmMap::empty(&mut h);
        let mut model = HashMap::new();
        let mut x = 0x12345678u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            m = step_insert(&mut h, m, x, &x.to_le_bytes());
            model.insert(x, x.to_le_bytes().to_vec());
        }
        for (&k, v) in &model {
            assert_eq!(m.get(&mut h, k).as_ref(), Some(v));
        }
    }

    #[test]
    fn durable_after_fence_survives_crash() {
        let mut h = heap();
        let m = PmMap::empty(&mut h);
        let m = m.insert(&mut h, 11, b"hello");
        h.sfence();
        let root = m.root();
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        let mut h2 = NvHeap::open(img);
        let m2 = PmMap::from_root(root);
        m2.mark(&mut h2);
        h2.finish_recovery();
        assert_eq!(m2.get(&mut h2, 11), Some(b"hello".to_vec()));
    }
}
