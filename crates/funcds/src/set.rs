//! Persistent set — a thin wrapper over the CHAMP map with empty values.

use crate::champ::{HashKind, PmMap};
use mod_alloc::NvHeap;
use mod_pmem::PmPtr;

/// Handle to one immutable version of a persistent set of `u64` keys.
///
/// Internally a [`PmMap`] whose entries carry no value blobs, exactly as
/// CHAMP-based set implementations share their map's node structure.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct PmSet {
    map: PmMap,
}

impl PmSet {
    /// Creates an empty set.
    pub fn empty(heap: &mut NvHeap) -> PmSet {
        PmSet {
            map: PmMap::empty(heap),
        }
    }

    /// Creates an empty set with an explicit hash discipline (testing).
    pub fn empty_with_hash(heap: &mut NvHeap, hk: HashKind) -> PmSet {
        PmSet {
            map: PmMap::empty_with_hash(heap, hk),
        }
    }

    /// Rebuilds a handle from a raw root pointer.
    pub fn from_root(root: PmPtr) -> PmSet {
        PmSet {
            map: PmMap::from_root(root),
        }
    }

    /// The version's root object pointer.
    pub fn root(&self) -> PmPtr {
        self.map.root()
    }

    /// Number of elements.
    pub fn len(&self, heap: &mut NvHeap) -> u64 {
        self.map.len(heap)
    }

    /// Number of elements, without charging the cache/time model.
    pub fn peek_len(&self, heap: &NvHeap) -> u64 {
        self.map.peek_len(heap)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self, heap: &mut NvHeap) -> bool {
        self.map.is_empty(heap)
    }

    /// Whether the set is empty, without charging the cache/time model.
    pub fn peek_is_empty(&self, heap: &NvHeap) -> bool {
        self.map.peek_is_empty(heap)
    }

    /// Pure insert: returns `(new_version, was_new)`.
    pub fn insert(&self, heap: &mut NvHeap, key: u64) -> (PmSet, bool) {
        let (map, added) = self.map.insert_query(heap, key, b"");
        (PmSet { map }, added)
    }

    /// Membership test.
    pub fn contains(&self, heap: &mut NvHeap, key: u64) -> bool {
        self.map.contains_key(heap, key)
    }

    /// Read-only membership test on `&NvHeap`.
    pub fn peek_contains(&self, heap: &NvHeap, key: u64) -> bool {
        self.map.peek_contains_key(heap, key)
    }

    /// Pure removal: `(new_version, removed)`. Absent keys return the same
    /// version (do not release the old handle in that case).
    pub fn remove(&self, heap: &mut NvHeap, key: u64) -> (PmSet, bool) {
        let (map, removed) = self.map.remove(heap, key);
        (PmSet { map }, removed)
    }

    /// Collects all elements (unordered).
    pub fn to_vec(&self, heap: &mut NvHeap) -> Vec<u64> {
        self.map.keys(heap)
    }

    /// Read-only collection of all elements on `&NvHeap` (unordered).
    pub fn peek_to_vec(&self, heap: &NvHeap) -> Vec<u64> {
        self.map
            .peek_to_vec(heap)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    /// Releases this version's reference to its data.
    pub fn release(self, heap: &mut NvHeap) {
        self.map.release(heap)
    }

    /// Marks this version's blocks during recovery GC.
    pub fn mark(&self, heap: &mut NvHeap) {
        self.map.mark(heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};
    use std::collections::HashSet;

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn insert_contains() {
        let mut h = heap();
        let s = PmSet::empty(&mut h);
        let (s, new) = s.insert(&mut h, 10);
        assert!(new);
        let (s, new) = s.insert(&mut h, 10);
        assert!(!new);
        assert!(s.contains(&mut h, 10));
        assert!(!s.contains(&mut h, 11));
        assert_eq!(s.len(&mut h), 1);
    }

    #[test]
    fn matches_hashset_model() {
        let mut h = heap();
        let mut s = PmSet::empty(&mut h);
        let mut model = HashSet::new();
        let mut x = 7u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = x % 100;
            if x.is_multiple_of(3) {
                let (next, removed) = s.remove(&mut h, key);
                assert_eq!(removed, model.remove(&key));
                if removed {
                    s.release(&mut h);
                }
                s = next;
            } else {
                let (next, added) = s.insert(&mut h, key);
                assert_eq!(added, model.insert(key));
                s.release(&mut h);
                s = next;
            }
            assert_eq!(s.len(&mut h) as usize, model.len());
        }
        let mut got = s.to_vec(&mut h);
        got.sort_unstable();
        let mut want: Vec<u64> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn set_entries_allocate_no_value_blobs() {
        let mut h = heap();
        let s = PmSet::empty(&mut h);
        let before = h.stats().allocs;
        let (_s2, _) = s.insert(&mut h, 42);
        let delta = h.stats().allocs - before;
        // One trie node + one root object — no blob.
        assert_eq!(delta, 2);
    }

    #[test]
    fn no_leaks() {
        let mut h = heap();
        let mut s = PmSet::empty(&mut h);
        for i in 0..100 {
            let (next, _) = s.insert(&mut h, i);
            s.release(&mut h);
            s = next;
        }
        s.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0);
    }
}
