//! Persistent two-list (banker's) queue — the MOD **queue** substrate.
//!
//! The classic functional queue: enqueue conses onto a *rear* list; dequeue
//! pops the *front* list, and when the front is exhausted the rear is
//! reversed to become the new front. The paper notes exactly this cost
//! profile: "Pop operations in the MOD queue occasionally require a
//! reversal of one of the internal linked lists resulting in greater
//! flushing activity" (§6.4) — the reversal allocates and flushes a fresh
//! chain, all with unordered `clwb`s.

use crate::list::{
    cell_elem, cell_elem_r, cell_next, cell_next_r, cons, mark_chain, release_chain,
};
use crate::node::NodeBuf;
use mod_alloc::{HeapRead, NvHeap};
use mod_pmem::PmPtr;

const ROOT_WORDS: usize = 5; // [len][front][front_len][rear][rear_len]

/// Handle to one immutable version of a persistent FIFO queue.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct PmQueue {
    root: PmPtr,
}

struct RootImage {
    len: u64,
    front: PmPtr,
    front_len: u64,
    rear: PmPtr,
    rear_len: u64,
}

impl PmQueue {
    /// Creates an empty queue.
    pub fn empty(heap: &mut NvHeap) -> PmQueue {
        let mut b = NodeBuf::with_words(ROOT_WORDS);
        b.push_u64(0)
            .push_ptr(PmPtr::NULL)
            .push_u64(0)
            .push_ptr(PmPtr::NULL)
            .push_u64(0);
        PmQueue {
            root: b.store(heap),
        }
    }

    /// Rebuilds a handle from a raw root pointer.
    pub fn from_root(root: PmPtr) -> PmQueue {
        PmQueue { root }
    }

    /// The version's root object pointer.
    pub fn root(&self) -> PmPtr {
        self.root
    }

    fn read_root(&self, heap: &mut NvHeap) -> RootImage {
        self.read_root_r(&mut heap.into())
    }

    fn read_root_r(&self, heap: &mut HeapRead<'_>) -> RootImage {
        let a = self.root.addr();
        RootImage {
            len: heap.u64(a),
            front: PmPtr::from_addr(heap.u64(a + 8)),
            front_len: heap.u64(a + 16),
            rear: PmPtr::from_addr(heap.u64(a + 24)),
            rear_len: heap.u64(a + 32),
        }
    }

    fn store_root(heap: &mut NvHeap, img: &RootImage) -> PmQueue {
        let mut b = NodeBuf::with_words(ROOT_WORDS);
        b.push_u64(img.len)
            .push_ptr(img.front)
            .push_u64(img.front_len)
            .push_ptr(img.rear)
            .push_u64(img.rear_len);
        PmQueue {
            root: b.store(heap),
        }
    }

    /// Number of elements.
    pub fn len(&self, heap: &mut NvHeap) -> u64 {
        heap.read_u64(self.root.addr())
    }

    /// Number of elements, without charging the cache/time model.
    pub fn peek_len(&self, heap: &NvHeap) -> u64 {
        heap.peek_u64(self.root.addr())
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self, heap: &mut NvHeap) -> bool {
        self.len(heap) == 0
    }

    /// Whether the queue is empty, without charging the cache/time model.
    pub fn peek_is_empty(&self, heap: &NvHeap) -> bool {
        self.peek_len(heap) == 0
    }

    /// Pure enqueue: new version with `elem` at the back.
    pub fn enqueue(&self, heap: &mut NvHeap, elem: u64) -> PmQueue {
        let mut img = self.read_root(heap);
        if !img.rear.is_null() {
            heap.rc_inc(img.rear);
        }
        if !img.front.is_null() {
            heap.rc_inc(img.front);
        }
        img.rear = cons(heap, elem, img.rear);
        img.rear_len += 1;
        img.len += 1;
        Self::store_root(heap, &img)
    }

    /// Pure dequeue: new version and the removed element, or `None` if
    /// empty. May reverse the rear list into a fresh front chain.
    pub fn dequeue(&self, heap: &mut NvHeap) -> Option<(PmQueue, u64)> {
        let mut img = self.read_root(heap);
        if img.len == 0 {
            return None;
        }
        // When the head cell is freshly built by a reversal, this op owns
        // it and must release it after the pop; when it belongs to the old
        // version's front chain, the old version keeps owning it.
        let mut owned_head = PmPtr::NULL;
        if img.front.is_null() {
            // Reverse the rear into a new front chain. Every new cell is
            // fresh (flushed, unordered); the old rear chain is untouched
            // and remains owned by the previous version.
            let mut reversed = PmPtr::NULL;
            let mut cur = img.rear;
            while !cur.is_null() {
                let e = cell_elem(heap, cur);
                reversed = cons(heap, e, reversed);
                cur = cell_next(heap, cur);
            }
            img.front = reversed;
            img.front_len = img.rear_len;
            img.rear = PmPtr::NULL;
            img.rear_len = 0;
            owned_head = reversed;
        } else if !img.rear.is_null() {
            heap.rc_inc(img.rear);
        }
        let elem = cell_elem(heap, img.front);
        let next = cell_next(heap, img.front);
        if !next.is_null() {
            heap.rc_inc(next);
        }
        img.front = next;
        img.front_len -= 1;
        img.len -= 1;
        if !owned_head.is_null() {
            // Drop this op's temporary ownership of the reversed head; its
            // tail keeps the reference the new root just took.
            release_chain(heap, owned_head);
        }
        Some((Self::store_root(heap, &img), elem))
    }

    /// The element at the head, if any.
    pub fn peek(&self, heap: &mut NvHeap) -> Option<u64> {
        self.peek_r(&mut heap.into())
    }

    /// Head element without charging the cache/time model.
    pub fn peek_front(&self, heap: &NvHeap) -> Option<u64> {
        self.peek_r(&mut heap.into())
    }

    fn peek_r(&self, heap: &mut HeapRead<'_>) -> Option<u64> {
        let img = self.read_root_r(heap);
        if img.len == 0 {
            return None;
        }
        if !img.front.is_null() {
            return Some(cell_elem_r(heap, img.front));
        }
        // Head is the last cell of the rear chain.
        let mut cur = img.rear;
        let mut last = 0;
        while !cur.is_null() {
            last = cell_elem_r(heap, cur);
            cur = cell_next_r(heap, cur);
        }
        Some(last)
    }

    /// Collects front-to-back (diagnostics and tests).
    pub fn to_vec(&self, heap: &mut NvHeap) -> Vec<u64> {
        self.collect_entries_r(&mut heap.into())
    }

    /// Collects front-to-back on `&NvHeap` (read-only).
    pub fn peek_to_vec(&self, heap: &NvHeap) -> Vec<u64> {
        self.collect_entries_r(&mut heap.into())
    }

    fn collect_entries_r(&self, heap: &mut HeapRead<'_>) -> Vec<u64> {
        let img = self.read_root_r(heap);
        let mut out = Vec::new();
        let mut cur = img.front;
        while !cur.is_null() {
            out.push(cell_elem_r(heap, cur));
            cur = cell_next_r(heap, cur);
        }
        let mut rear = Vec::new();
        let mut cur = img.rear;
        while !cur.is_null() {
            rear.push(cell_elem_r(heap, cur));
            cur = cell_next_r(heap, cur);
        }
        rear.reverse();
        out.extend(rear);
        out
    }

    /// Releases this version's reference to its data.
    pub fn release(self, heap: &mut NvHeap) {
        if heap.rc_dec(self.root) == 0 {
            let img = self.read_root(heap);
            heap.free(self.root);
            if !img.front.is_null() {
                release_chain(heap, img.front);
            }
            if !img.rear.is_null() {
                release_chain(heap, img.rear);
            }
        }
    }

    /// Marks this version's blocks during recovery GC.
    pub fn mark(&self, heap: &mut NvHeap) {
        if !heap.mark_block(self.root) {
            return;
        }
        let front = PmPtr::from_addr(heap.pm_mut().read_u64(self.root.addr() + 8));
        let rear = PmPtr::from_addr(heap.pm_mut().read_u64(self.root.addr() + 24));
        if !front.is_null() {
            mark_chain(heap, front);
        }
        if !rear.is_null() {
            mark_chain(heap, rear);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};
    use std::collections::VecDeque;

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn fifo_order() {
        let mut h = heap();
        let mut q = PmQueue::empty(&mut h);
        for i in 0..10 {
            q = q.enqueue(&mut h, i);
        }
        for i in 0..10 {
            let (nq, e) = q.dequeue(&mut h).unwrap();
            assert_eq!(e, i);
            q = nq;
        }
        assert!(q.dequeue(&mut h).is_none());
    }

    #[test]
    fn old_version_untouched() {
        let mut h = heap();
        let q0 = PmQueue::empty(&mut h);
        let q1 = q0.enqueue(&mut h, 1).enqueue(&mut h, 2);
        let (q2, _) = q1.dequeue(&mut h).unwrap();
        assert_eq!(q1.to_vec(&mut h), vec![1, 2]);
        assert_eq!(q2.to_vec(&mut h), vec![2]);
    }

    #[test]
    fn peek_sees_head_in_both_lists() {
        let mut h = heap();
        let q = PmQueue::empty(&mut h).enqueue(&mut h, 5).enqueue(&mut h, 6);
        // Head is in the rear (never dequeued yet).
        assert_eq!(q.peek(&mut h), Some(5));
        let (q2, _) = q.dequeue(&mut h).unwrap();
        // Now the front chain exists.
        assert_eq!(q2.peek(&mut h), Some(6));
    }

    #[test]
    fn reversal_happens_and_preserves_order() {
        let mut h = heap();
        let mut q = PmQueue::empty(&mut h);
        for i in 0..5 {
            q = q.enqueue(&mut h, i);
        }
        let flushes_before = h.pm().stats().flushes_issued;
        let (q2, e) = q.dequeue(&mut h).unwrap();
        let flushes_after = h.pm().stats().flushes_issued;
        assert_eq!(e, 0);
        // The reversal allocated 5 fresh cells → extra flushing, as §6.4
        // describes for MOD queue pops.
        assert!(flushes_after - flushes_before > 5);
        assert_eq!(q2.to_vec(&mut h), vec![1, 2, 3, 4]);
    }

    #[test]
    fn matches_vecdeque_model() {
        let mut h = heap();
        let mut q = PmQueue::empty(&mut h);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut seed = 42u64;
        for step in 0..500 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !seed.is_multiple_of(3) {
                q = q.enqueue(&mut h, step);
                model.push_back(step);
            } else if let Some((nq, e)) = q.dequeue(&mut h) {
                assert_eq!(Some(e), model.pop_front());
                q = nq;
            } else {
                assert!(model.is_empty());
            }
            assert_eq!(q.len(&mut h) as usize, model.len());
        }
        assert_eq!(q.to_vec(&mut h), Vec::from(model));
    }

    #[test]
    fn release_reclaims_everything() {
        let mut h = heap();
        let mut q = PmQueue::empty(&mut h);
        for i in 0..50 {
            let nq = q.enqueue(&mut h, i);
            q.release(&mut h);
            q = nq;
        }
        while let Some((nq, _)) = q.dequeue(&mut h) {
            q.release(&mut h);
            q = nq;
        }
        q.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn everything_flushed_before_fence() {
        let mut h = heap();
        let mut q = PmQueue::empty(&mut h);
        for i in 0..20 {
            q = q.enqueue(&mut h, i);
        }
        let (_q2, _) = q.dequeue(&mut h).unwrap(); // includes a reversal
        h.sfence();
        assert_eq!(h.pm().dirty_lines(), 0);
    }
}
