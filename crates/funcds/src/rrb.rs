//! RRB-tree vector — the MOD **vector** substrate.
//!
//! A persistent vector in the Relaxed-Radix-Balanced family (Stucki et
//! al., ICFP '15; Puente, which the paper cites as its vector
//! implementation): a 32-way branching tree of `u64` elements with a tail
//! buffer. Regular nodes use pure radix indexing; nodes produced by
//! `concat` carry cumulative *size tables* ("relaxed" nodes) that lookups
//! traverse with a prefix scan.
//!
//! Every update is a pure path copy, so a `push_back`/`update` rewrites
//! O(log₃₂ n) nodes while sharing the rest — this is exactly why the
//! paper's Fig 10 shows vector writes flushing many more cachelines than
//! PMDK's flat array, and why Fig 9 shows vector as MOD's losing case.

use crate::node::{NodeBuf, KIND_INNER, KIND_LEAF};
use mod_alloc::{HeapRead, NvHeap};
use mod_pmem::PmPtr;

/// Branching factor.
const B: usize = 32;
/// Bits consumed per level.
const BITS: u64 = 5;
/// Root object: `[len][shift][root][tail][tail_len]`.
const ROOT_WORDS: usize = 5;

/// Handle to one immutable version of a persistent vector of `u64`s.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct PmVector {
    root: PmPtr,
}

#[derive(Clone, Debug)]
struct RootImg {
    len: u64,
    shift: u64,
    root: PmPtr,
    tail: PmPtr,
    tail_len: u64,
}

#[derive(Clone, Debug)]
struct LeafImg {
    elems: Vec<u64>,
}

#[derive(Clone, Debug)]
struct InnerImg {
    children: Vec<PmPtr>,
    /// Cumulative element counts per child; present on relaxed nodes.
    sizes: Option<Vec<u64>>,
}

fn read_leaf(heap: &mut NvHeap, node: PmPtr) -> LeafImg {
    read_leaf_r(&mut heap.into(), node)
}

fn read_leaf_r(heap: &mut HeapRead<'_>, node: PmPtr) -> LeafImg {
    let kind = heap.u64(node.addr());
    assert_eq!(kind, KIND_LEAF, "expected leaf at {node}, kind {kind}");
    let count = heap.u64(node.addr() + 8) as usize;
    let body = heap.vec(node.addr() + 16, (8 * count) as u64);
    let elems = body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    LeafImg { elems }
}

fn read_inner(heap: &mut NvHeap, node: PmPtr) -> InnerImg {
    read_inner_r(&mut heap.into(), node)
}

fn read_inner_r(heap: &mut HeapRead<'_>, node: PmPtr) -> InnerImg {
    let kind = heap.u64(node.addr());
    assert_eq!(kind, KIND_INNER, "expected inner at {node}, kind {kind}");
    let meta = heap.u64(node.addr() + 8);
    let count = (meta & 0xFFFF_FFFF) as usize;
    let has_sizes = (meta >> 32) != 0;
    let words = count + if has_sizes { count } else { 0 };
    let body = heap.vec(node.addr() + 16, (8 * words) as u64);
    let children = body[..8 * count]
        .chunks_exact(8)
        .map(|c| PmPtr::from_addr(u64::from_le_bytes(c.try_into().unwrap())))
        .collect();
    let sizes = has_sizes.then(|| {
        body[8 * count..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    });
    InnerImg { children, sizes }
}

fn store_leaf(heap: &mut NvHeap, img: &LeafImg) -> PmPtr {
    debug_assert!(!img.elems.is_empty() && img.elems.len() <= B);
    let mut b = NodeBuf::with_words(2 + img.elems.len());
    b.push_u64(KIND_LEAF).push_u64(img.elems.len() as u64);
    for &e in &img.elems {
        b.push_u64(e);
    }
    b.store(heap)
}

/// Stores an inner node; owns (increments) every child pointer.
fn store_inner(heap: &mut NvHeap, img: &InnerImg) -> PmPtr {
    let count = img.children.len();
    debug_assert!((1..=B).contains(&count));
    if let Some(s) = &img.sizes {
        debug_assert_eq!(s.len(), count);
    }
    let words = 2 + count + img.sizes.as_ref().map_or(0, |s| s.len());
    let mut b = NodeBuf::with_words(words);
    b.push_u64(KIND_INNER)
        .push_u64(count as u64 | ((img.sizes.is_some() as u64) << 32));
    for &c in &img.children {
        b.push_ptr(c);
    }
    if let Some(s) = &img.sizes {
        for &v in s {
            b.push_u64(v);
        }
    }
    let ptr = b.store(heap);
    for &c in &img.children {
        heap.rc_inc(c);
    }
    ptr
}

fn drop_temp(heap: &mut NvHeap, ptr: PmPtr) {
    debug_assert!(heap.rc_get(ptr) >= 2, "temp node should be co-owned");
    heap.rc_dec(ptr);
}

/// Total elements in the subtree rooted at `node` (shift 0 = leaf).
fn subtree_count(heap: &mut NvHeap, node: PmPtr, shift: u64) -> u64 {
    if shift == 0 {
        return heap.read_u64(node.addr() + 8);
    }
    let img = read_inner(heap, node);
    if let Some(sizes) = &img.sizes {
        return *sizes.last().unwrap();
    }
    let full = (img.children.len() as u64 - 1) << shift;
    full + subtree_count(heap, *img.children.last().unwrap(), shift - BITS)
}

/// Cumulative sizes a regular node would have, for relaxation.
fn implied_sizes(heap: &mut NvHeap, img: &InnerImg, shift: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(img.children.len());
    let mut acc = 0u64;
    for (i, &c) in img.children.iter().enumerate() {
        acc += if i + 1 < img.children.len() {
            1 << shift
        } else {
            subtree_count(heap, c, shift - BITS)
        };
        out.push(acc);
    }
    out
}

/// Builds a left spine of single-child inner nodes bringing `leaf` up to
/// `shift`. Returns a temp-owned pointer.
fn make_spine(heap: &mut NvHeap, shift: u64, leaf: PmPtr) -> PmPtr {
    if shift == 0 {
        heap.rc_inc(leaf);
        return leaf;
    }
    let child = make_spine(heap, shift - BITS, leaf);
    let fresh = store_inner(
        heap,
        &InnerImg {
            children: vec![child],
            sizes: None,
        },
    );
    drop_temp(heap, child);
    fresh
}

/// Appends `leaf` to the rightmost edge of `node` (an inner at `shift`).
/// Returns the fresh temp-owned copy, or `None` if the edge is full.
fn push_leaf_rec(heap: &mut NvHeap, node: PmPtr, shift: u64, leaf: PmPtr) -> Option<PmPtr> {
    let mut img = read_inner(heap, node);
    let leaf_count = heap.read_u64(leaf.addr() + 8);
    if shift == BITS {
        if img.children.len() == B {
            return None;
        }
        // Regularity: appending after a partial sibling, or appending a
        // partial leaf that later gains a sibling, needs size tables.
        let last_full = {
            let last = *img.children.last().unwrap();
            subtree_count(heap, last, 0) == B as u64
        };
        if img.sizes.is_none() && !last_full {
            img.sizes = Some(implied_sizes(heap, &img, shift));
        }
        if let Some(sizes) = &mut img.sizes {
            let total = *sizes.last().unwrap();
            sizes.push(total + leaf_count);
        }
        img.children.push(leaf);
        return Some(store_inner(heap, &img));
    }
    let last_idx = img.children.len() - 1;
    let last = img.children[last_idx];
    if let Some(new_last) = push_leaf_rec(heap, last, shift - BITS, leaf) {
        img.children[last_idx] = new_last;
        if let Some(sizes) = &mut img.sizes {
            sizes[last_idx] += leaf_count;
        }
        let fresh = store_inner(heap, &img);
        drop_temp(heap, new_last);
        return Some(fresh);
    }
    if img.children.len() == B {
        return None;
    }
    // The rightmost edge of `last` is full; start a new spine. If `last`
    // is not a completely full subtree (relaxed history), sizes are
    // needed for correct radix math on the new sibling.
    if img.sizes.is_none() {
        let last_total = subtree_count(heap, last, shift - BITS);
        if last_total != 1 << shift {
            img.sizes = Some(implied_sizes(heap, &img, shift));
        }
    }
    let spine = make_spine(heap, shift - BITS, leaf);
    if let Some(sizes) = &mut img.sizes {
        let total = *sizes.last().unwrap();
        sizes.push(total + leaf_count);
    }
    img.children.push(spine);
    let fresh = store_inner(heap, &img);
    drop_temp(heap, spine);
    Some(fresh)
}

/// Pushes a (possibly partial) leaf into the tree, growing the root if
/// needed. Returns a temp-owned new root and the new shift.
fn push_tail(heap: &mut NvHeap, root: PmPtr, shift: u64, leaf: PmPtr) -> (PmPtr, u64) {
    if root.is_null() {
        heap.rc_inc(leaf);
        return (leaf, 0);
    }
    if shift == 0 {
        // Root is a single leaf; grow to one inner level.
        let root_count = heap.read_u64(root.addr() + 8);
        let sizes = (root_count != B as u64).then(|| {
            let leaf_count = heap.read_u64(leaf.addr() + 8);
            vec![root_count, root_count + leaf_count]
        });
        let fresh = store_inner(
            heap,
            &InnerImg {
                children: vec![root, leaf],
                sizes,
            },
        );
        return (fresh, BITS);
    }
    if let Some(fresh) = push_leaf_rec(heap, root, shift, leaf) {
        return (fresh, shift);
    }
    // Root full along its right edge: grow a level.
    let root_total = subtree_count(heap, root, shift);
    let leaf_count = heap.read_u64(leaf.addr() + 8);
    let sizes =
        (root_total != 1 << (shift + BITS)).then(|| vec![root_total, root_total + leaf_count]);
    let spine = make_spine(heap, shift, leaf);
    let fresh = store_inner(
        heap,
        &InnerImg {
            children: vec![root, spine],
            sizes,
        },
    );
    drop_temp(heap, spine);
    (fresh, shift + BITS)
}

/// Removes the rightmost leaf. Returns `(new_node_or_none, leaf)` with the
/// extracted leaf temp-owned by the caller.
fn pop_leaf_rec(heap: &mut NvHeap, node: PmPtr, shift: u64) -> (Option<PmPtr>, PmPtr) {
    let mut img = read_inner(heap, node);
    let last_idx = img.children.len() - 1;
    let last = img.children[last_idx];
    if shift == BITS {
        heap.rc_inc(last); // caller's temp ownership of the leaf
        if last_idx == 0 {
            return (None, last);
        }
        img.children.pop();
        if let Some(s) = &mut img.sizes {
            s.pop();
        }
        return (Some(store_inner(heap, &img)), last);
    }
    let (new_last, leaf) = pop_leaf_rec(heap, last, shift - BITS);
    let leaf_count = heap.read_u64(leaf.addr() + 8);
    match new_last {
        None => {
            if last_idx == 0 {
                (None, leaf)
            } else {
                img.children.pop();
                if let Some(s) = &mut img.sizes {
                    s.pop();
                }
                (Some(store_inner(heap, &img)), leaf)
            }
        }
        Some(nl) => {
            img.children[last_idx] = nl;
            if let Some(s) = &mut img.sizes {
                s[last_idx] -= leaf_count;
            }
            let fresh = store_inner(heap, &img);
            drop_temp(heap, nl);
            (Some(fresh), leaf)
        }
    }
}

/// Collapses single-child root chains. Takes and returns temp ownership.
fn shrink_root(heap: &mut NvHeap, mut node: PmPtr, mut shift: u64) -> (PmPtr, u64) {
    while shift > 0 {
        let img = read_inner(heap, node);
        if img.children.len() != 1 {
            break;
        }
        let child = img.children[0];
        heap.rc_inc(child);
        release_vec_node(heap, node, shift); // drops our temp ownership
        node = child;
        shift -= BITS;
    }
    (node, shift)
}

fn release_vec_node(heap: &mut NvHeap, node: PmPtr, shift: u64) {
    if heap.rc_dec(node) > 0 {
        return;
    }
    if shift == 0 {
        heap.free(node);
        return;
    }
    let img = read_inner(heap, node);
    heap.free(node);
    for c in img.children {
        release_vec_node(heap, c, shift - BITS);
    }
}

fn mark_vec_node(heap: &mut NvHeap, node: PmPtr, shift: u64) {
    if !heap.mark_block(node) {
        return;
    }
    if shift == 0 {
        return;
    }
    let img = read_inner(heap, node);
    for c in img.children {
        mark_vec_node(heap, c, shift - BITS);
    }
}

impl PmVector {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates an empty vector.
    pub fn empty(heap: &mut NvHeap) -> PmVector {
        Self::store_root_obj(
            heap,
            &RootImg {
                len: 0,
                shift: 0,
                root: PmPtr::NULL,
                tail: PmPtr::NULL,
                tail_len: 0,
            },
        )
    }

    /// Bulk-loads a vector from a slice (used to set up the paper's
    /// 1 M-element workloads without a million push_back versions).
    pub fn from_slice(heap: &mut NvHeap, elems: &[u64]) -> PmVector {
        if elems.is_empty() {
            return Self::empty(heap);
        }
        let mut tail_len = elems.len() % B;
        if tail_len == 0 {
            tail_len = B;
        }
        let (tree_elems, tail_elems) = elems.split_at(elems.len() - tail_len);
        let tail = store_leaf(
            heap,
            &LeafImg {
                elems: tail_elems.to_vec(),
            },
        );
        // Build full leaves, then parent levels bottom-up.
        let mut level: Vec<PmPtr> = tree_elems
            .chunks(B)
            .map(|c| store_leaf(heap, &LeafImg { elems: c.to_vec() }))
            .collect();
        let mut shift = 0u64;
        while level.len() > 1 {
            shift += BITS;
            level = level
                .chunks(B)
                .map(|group| {
                    let fresh = store_inner(
                        heap,
                        &InnerImg {
                            children: group.to_vec(),
                            sizes: None,
                        },
                    );
                    for &c in group {
                        drop_temp(heap, c);
                    }
                    fresh
                })
                .collect();
        }
        let (root, shift) = match level.len() {
            0 => (PmPtr::NULL, 0),
            _ => (level[0], shift),
        };
        let img = RootImg {
            len: elems.len() as u64,
            shift,
            root,
            tail,
            tail_len: tail_len as u64,
        };
        let v = Self::store_root_obj(heap, &img);
        if !root.is_null() {
            drop_temp(heap, root);
        }
        drop_temp(heap, tail);
        v
    }

    /// Rebuilds a handle from a raw root pointer.
    pub fn from_root(root: PmPtr) -> PmVector {
        PmVector { root }
    }

    /// The version's root object pointer.
    pub fn root(&self) -> PmPtr {
        self.root
    }

    fn read_root_obj(&self, heap: &mut NvHeap) -> RootImg {
        self.read_root_obj_r(&mut heap.into())
    }

    fn read_root_obj_r(&self, heap: &mut HeapRead<'_>) -> RootImg {
        let a = self.root.addr();
        RootImg {
            len: heap.u64(a),
            shift: heap.u64(a + 8),
            root: PmPtr::from_addr(heap.u64(a + 16)),
            tail: PmPtr::from_addr(heap.u64(a + 24)),
            tail_len: heap.u64(a + 32),
        }
    }

    /// Stores a root object; owns root and tail pointers.
    fn store_root_obj(heap: &mut NvHeap, img: &RootImg) -> PmVector {
        let mut b = NodeBuf::with_words(ROOT_WORDS);
        b.push_u64(img.len)
            .push_u64(img.shift)
            .push_ptr(img.root)
            .push_ptr(img.tail)
            .push_u64(img.tail_len);
        let root = b.store(heap);
        if !img.root.is_null() {
            heap.rc_inc(img.root);
        }
        if !img.tail.is_null() {
            heap.rc_inc(img.tail);
        }
        PmVector { root }
    }

    /// Number of elements.
    pub fn len(&self, heap: &mut NvHeap) -> u64 {
        heap.read_u64(self.root.addr())
    }

    /// Number of elements, without charging the cache/time model.
    pub fn peek_len(&self, heap: &NvHeap) -> u64 {
        heap.peek_u64(self.root.addr())
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self, heap: &mut NvHeap) -> bool {
        self.len(heap) == 0
    }

    /// Whether the vector is empty, without charging the cache/time model.
    pub fn peek_is_empty(&self, heap: &NvHeap) -> bool {
        self.peek_len(heap) == 0
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Element at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, heap: &mut NvHeap, index: u64) -> u64 {
        self.get_r(&mut heap.into(), index)
    }

    /// Read-only indexing on `&NvHeap`: no exclusive access, no simulated
    /// cache/time charges.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn peek_get(&self, heap: &NvHeap, index: u64) -> u64 {
        self.get_r(&mut heap.into(), index)
    }

    fn get_r(&self, heap: &mut HeapRead<'_>, index: u64) -> u64 {
        let img = self.read_root_obj_r(heap);
        assert!(index < img.len, "index {index} out of bounds ({})", img.len);
        let tail_offset = img.len - img.tail_len;
        if index >= tail_offset {
            return heap.u64(img.tail.addr() + 16 + 8 * (index - tail_offset));
        }
        let mut node = img.root;
        let mut shift = img.shift;
        let mut i = index;
        while shift > 0 {
            let inner = read_inner_r(heap, node);
            let j = match &inner.sizes {
                Some(sizes) => {
                    let j = sizes.partition_point(|&s| s <= i);
                    if j > 0 {
                        i -= sizes[j - 1];
                    }
                    j
                }
                None => {
                    let j = ((i >> shift) & (B as u64 - 1)) as usize;
                    i -= (j as u64) << shift;
                    j
                }
            };
            node = inner.children[j];
            shift -= BITS;
        }
        heap.u64(node.addr() + 16 + 8 * i)
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Pure append: new version with `elem` at the end.
    pub fn push_back(&self, heap: &mut NvHeap, elem: u64) -> PmVector {
        let img = self.read_root_obj(heap);
        if img.tail_len < B as u64 && img.len > 0 {
            let mut tail = read_leaf(heap, img.tail);
            tail.elems.push(elem);
            let new_tail = store_leaf(heap, &tail);
            let v = Self::store_root_obj(
                heap,
                &RootImg {
                    len: img.len + 1,
                    tail: new_tail,
                    tail_len: img.tail_len + 1,
                    ..img
                },
            );
            drop_temp(heap, new_tail);
            return v;
        }
        if img.len == 0 {
            let new_tail = store_leaf(heap, &LeafImg { elems: vec![elem] });
            let v = Self::store_root_obj(
                heap,
                &RootImg {
                    len: 1,
                    shift: 0,
                    root: PmPtr::NULL,
                    tail: new_tail,
                    tail_len: 1,
                },
            );
            drop_temp(heap, new_tail);
            return v;
        }
        // Tail full: migrate it into the tree, start a fresh tail.
        let (new_root, new_shift) = push_tail(heap, img.root, img.shift, img.tail);
        let new_tail = store_leaf(heap, &LeafImg { elems: vec![elem] });
        let v = Self::store_root_obj(
            heap,
            &RootImg {
                len: img.len + 1,
                shift: new_shift,
                root: new_root,
                tail: new_tail,
                tail_len: 1,
            },
        );
        drop_temp(heap, new_root);
        drop_temp(heap, new_tail);
        v
    }

    /// Pure point update: new version with `elem` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn update(&self, heap: &mut NvHeap, index: u64, elem: u64) -> PmVector {
        let img = self.read_root_obj(heap);
        assert!(index < img.len, "index {index} out of bounds ({})", img.len);
        let tail_offset = img.len - img.tail_len;
        if index >= tail_offset {
            let mut tail = read_leaf(heap, img.tail);
            tail.elems[(index - tail_offset) as usize] = elem;
            let new_tail = store_leaf(heap, &tail);
            let v = Self::store_root_obj(
                heap,
                &RootImg {
                    tail: new_tail,
                    ..img
                },
            );
            drop_temp(heap, new_tail);
            return v;
        }
        let new_root = update_rec(heap, img.root, img.shift, index, elem);
        let v = Self::store_root_obj(
            heap,
            &RootImg {
                root: new_root,
                ..img
            },
        );
        drop_temp(heap, new_root);
        v
    }

    /// Pure removal of the last element: `(new_version, elem)`, or `None`
    /// if empty.
    pub fn pop_back(&self, heap: &mut NvHeap) -> Option<(PmVector, u64)> {
        let img = self.read_root_obj(heap);
        if img.len == 0 {
            return None;
        }
        let last = self.get(heap, img.len - 1);
        if img.tail_len > 1 {
            let mut tail = read_leaf(heap, img.tail);
            tail.elems.pop();
            let new_tail = store_leaf(heap, &tail);
            let v = Self::store_root_obj(
                heap,
                &RootImg {
                    len: img.len - 1,
                    tail: new_tail,
                    tail_len: img.tail_len - 1,
                    ..img
                },
            );
            drop_temp(heap, new_tail);
            return Some((v, last));
        }
        if img.root.is_null() {
            return Some((Self::empty(heap), last));
        }
        // Tail exhausted: pull the rightmost tree leaf out as the new tail.
        let (new_root_opt, leaf) = if img.shift == 0 {
            heap.rc_inc(img.root);
            (None, img.root)
        } else {
            pop_leaf_rec(heap, img.root, img.shift)
        };
        let leaf_count = heap.read_u64(leaf.addr() + 8);
        let (root, shift) = match new_root_opt {
            None => (PmPtr::NULL, 0),
            Some(r) => shrink_root(heap, r, img.shift),
        };
        let v = Self::store_root_obj(
            heap,
            &RootImg {
                len: img.len - 1,
                shift,
                root,
                tail: leaf,
                tail_len: leaf_count,
            },
        );
        if !root.is_null() {
            drop_temp(heap, root);
        }
        drop_temp(heap, leaf);
        Some((v, last))
    }

    /// Pure concatenation: `self ++ other` as a new version, in
    /// O(log n) by joining the two trees under a relaxed root.
    pub fn concat(&self, heap: &mut NvHeap, other: &PmVector) -> PmVector {
        let a = self.read_root_obj(heap);
        let b = other.read_root_obj(heap);
        if a.len == 0 {
            return Self::store_root_obj(heap, &b);
        }
        if b.len == 0 {
            return Self::store_root_obj(heap, &a);
        }
        // Flush a's tail into a's tree so concatenation is tree ++ tree.
        let (ra, sa) = push_tail(heap, a.root, a.shift, a.tail);
        let (root, shift) = if b.root.is_null() {
            (ra, sa)
        } else {
            // Equalize heights, then join under a relaxed 2-ary root.
            let hi = sa.max(b.shift);
            let wa = wrap_to(heap, ra, sa, hi); // consumes temp ra
            heap.rc_inc(b.root);
            let wb = wrap_to(heap, b.root, b.shift, hi);
            let ca = subtree_count(heap, wa, hi);
            let cb = subtree_count(heap, wb, hi);
            let joined = store_inner(
                heap,
                &InnerImg {
                    children: vec![wa, wb],
                    sizes: Some(vec![ca, ca + cb]),
                },
            );
            drop_temp(heap, wa);
            drop_temp(heap, wb);
            (joined, hi + BITS)
        };
        let v = Self::store_root_obj(
            heap,
            &RootImg {
                len: a.len + b.len,
                shift,
                root,
                tail: b.tail,
                tail_len: b.tail_len,
            },
        );
        drop_temp(heap, root);
        v
    }

    /// Collects all elements in order (tests and small vectors).
    pub fn to_vec(&self, heap: &mut NvHeap) -> Vec<u64> {
        self.collect_entries_r(&mut heap.into())
    }

    /// Collects all elements in order on `&NvHeap` (read-only).
    pub fn peek_to_vec(&self, heap: &NvHeap) -> Vec<u64> {
        self.collect_entries_r(&mut heap.into())
    }

    fn collect_entries_r(&self, heap: &mut HeapRead<'_>) -> Vec<u64> {
        let img = self.read_root_obj_r(heap);
        let mut out = Vec::with_capacity(img.len as usize);
        if !img.root.is_null() {
            collect_rec(heap, img.root, img.shift, &mut out);
        }
        if !img.tail.is_null() {
            let tail = read_leaf_r(heap, img.tail);
            out.extend(tail.elems);
        }
        out
    }

    // ------------------------------------------------------------------
    // Reclamation and recovery
    // ------------------------------------------------------------------

    /// Releases this version's reference to its data.
    pub fn release(self, heap: &mut NvHeap) {
        if heap.rc_dec(self.root) == 0 {
            let img = self.read_root_obj(heap);
            heap.free(self.root);
            if !img.root.is_null() {
                release_vec_node(heap, img.root, img.shift);
            }
            if !img.tail.is_null() {
                release_vec_node(heap, img.tail, 0);
            }
        }
    }

    /// Marks this version's blocks during recovery GC.
    pub fn mark(&self, heap: &mut NvHeap) {
        if !heap.mark_block(self.root) {
            return;
        }
        let a = self.root.addr();
        let shift = heap.pm_mut().read_u64(a + 8);
        let root = PmPtr::from_addr(heap.pm_mut().read_u64(a + 16));
        let tail = PmPtr::from_addr(heap.pm_mut().read_u64(a + 24));
        if !root.is_null() {
            mark_vec_node(heap, root, shift);
        }
        if !tail.is_null() {
            mark_vec_node(heap, tail, 0);
        }
    }
}

fn update_rec(heap: &mut NvHeap, node: PmPtr, shift: u64, index: u64, elem: u64) -> PmPtr {
    if shift == 0 {
        let mut leaf = read_leaf(heap, node);
        leaf.elems[index as usize] = elem;
        return store_leaf(heap, &leaf);
    }
    let mut img = read_inner(heap, node);
    let (j, sub_index) = match &img.sizes {
        Some(sizes) => {
            let j = sizes.partition_point(|&s| s <= index);
            let prefix = if j > 0 { sizes[j - 1] } else { 0 };
            (j, index - prefix)
        }
        None => {
            let j = ((index >> shift) & (B as u64 - 1)) as usize;
            (j, index - ((j as u64) << shift))
        }
    };
    let new_child = update_rec(heap, img.children[j], shift - BITS, sub_index, elem);
    img.children[j] = new_child;
    let fresh = store_inner(heap, &img);
    drop_temp(heap, new_child);
    fresh
}

/// Wraps `node` (temp-owned, at `from` shift) in single-child spines up to
/// `to` shift. Returns temp ownership of the result.
fn wrap_to(heap: &mut NvHeap, node: PmPtr, from: u64, to: u64) -> PmPtr {
    let mut cur = node;
    let mut s = from;
    while s < to {
        let fresh = store_inner(
            heap,
            &InnerImg {
                children: vec![cur],
                sizes: None,
            },
        );
        drop_temp(heap, cur);
        cur = fresh;
        s += BITS;
    }
    cur
}

fn collect_rec(heap: &mut HeapRead<'_>, node: PmPtr, shift: u64, out: &mut Vec<u64>) {
    if shift == 0 {
        let leaf = read_leaf_r(heap, node);
        out.extend(leaf.elems);
        return;
    }
    let img = read_inner_r(heap, node);
    for c in img.children {
        collect_rec(heap, c, shift - BITS, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    fn step_push(heap: &mut NvHeap, v: PmVector, e: u64) -> PmVector {
        let next = v.push_back(heap, e);
        v.release(heap);
        next
    }

    #[test]
    fn push_and_get_small() {
        let mut h = heap();
        let mut v = PmVector::empty(&mut h);
        for i in 0..10 {
            v = v.push_back(&mut h, i * 100);
        }
        assert_eq!(v.len(&mut h), 10);
        for i in 0..10 {
            assert_eq!(v.get(&mut h, i), i * 100);
        }
    }

    #[test]
    fn push_past_tail_and_levels() {
        // Crosses the 32 (tail→tree), 1024+32 (root grow) boundaries.
        let mut h = heap();
        let mut v = PmVector::empty(&mut h);
        let n = 2500u64;
        for i in 0..n {
            v = step_push(&mut h, v, i);
        }
        assert_eq!(v.len(&mut h), n);
        for i in (0..n).step_by(97) {
            assert_eq!(v.get(&mut h, i), i);
        }
        assert_eq!(v.get(&mut h, n - 1), n - 1);
    }

    #[test]
    fn from_slice_matches_pushes() {
        let mut h = heap();
        let elems: Vec<u64> = (0..1500).map(|i| i * 7).collect();
        let v = PmVector::from_slice(&mut h, &elems);
        assert_eq!(v.to_vec(&mut h), elems);
        assert_eq!(v.len(&mut h), 1500);
        assert_eq!(v.get(&mut h, 1040), 1040 * 7);
    }

    #[test]
    fn from_slice_exact_multiple_of_32() {
        let mut h = heap();
        let elems: Vec<u64> = (0..1024).collect();
        let v = PmVector::from_slice(&mut h, &elems);
        assert_eq!(v.to_vec(&mut h), elems);
    }

    #[test]
    fn update_is_pure() {
        let mut h = heap();
        let elems: Vec<u64> = (0..200).collect();
        let v1 = PmVector::from_slice(&mut h, &elems);
        let v2 = v1.update(&mut h, 50, 9999);
        let v3 = v2.update(&mut h, 199, 8888); // tail position
        assert_eq!(v1.get(&mut h, 50), 50);
        assert_eq!(v2.get(&mut h, 50), 9999);
        assert_eq!(v2.get(&mut h, 199), 199);
        assert_eq!(v3.get(&mut h, 199), 8888);
        assert_eq!(v3.get(&mut h, 50), 9999);
    }

    #[test]
    fn pop_back_reverses_pushes() {
        let mut h = heap();
        let mut v = PmVector::empty(&mut h);
        let n = 100u64;
        for i in 0..n {
            v = step_push(&mut h, v, i);
        }
        for i in (0..n).rev() {
            let (nv, e) = v.pop_back(&mut h).unwrap();
            assert_eq!(e, i, "popping index {i}");
            v.release(&mut h);
            v = nv;
        }
        assert!(v.is_empty(&mut h));
        assert!(v.pop_back(&mut h).is_none());
    }

    #[test]
    fn pop_across_tail_boundary() {
        let mut h = heap();
        let elems: Vec<u64> = (0..65).collect(); // tree: 2 leaves, tail: 1
        let mut v = PmVector::from_slice(&mut h, &elems);
        for i in (0..65u64).rev() {
            let (nv, e) = v.pop_back(&mut h).unwrap();
            assert_eq!(e, i);
            v.release(&mut h);
            v = nv;
        }
        assert_eq!(v.len(&mut h), 0);
        assert_eq!(h.stats().live_blocks, 1, "only the empty root object");
    }

    #[test]
    fn concat_small_and_large() {
        let mut h = heap();
        let a: Vec<u64> = (0..100).collect();
        let b: Vec<u64> = (1000..1077).collect();
        let va = PmVector::from_slice(&mut h, &a);
        let vb = PmVector::from_slice(&mut h, &b);
        let vc = va.concat(&mut h, &vb);
        let mut want = a.clone();
        want.extend(&b);
        assert_eq!(vc.to_vec(&mut h), want);
        assert_eq!(vc.len(&mut h), 177);
        // Indexing through the relaxed root.
        assert_eq!(vc.get(&mut h, 99), 99);
        assert_eq!(vc.get(&mut h, 100), 1000);
        assert_eq!(vc.get(&mut h, 176), 1076);
        // Originals untouched.
        assert_eq!(va.to_vec(&mut h), a);
        assert_eq!(vb.to_vec(&mut h), b);
    }

    #[test]
    fn concat_then_push_and_update() {
        let mut h = heap();
        let va = PmVector::from_slice(&mut h, &(0..40).collect::<Vec<_>>());
        let vb = PmVector::from_slice(&mut h, &(100..140).collect::<Vec<_>>());
        let mut vc = va.concat(&mut h, &vb);
        for i in 0..80u64 {
            vc = step_push(&mut h, vc, 5000 + i);
        }
        assert_eq!(vc.len(&mut h), 160);
        assert_eq!(vc.get(&mut h, 39), 39);
        assert_eq!(vc.get(&mut h, 40), 100);
        assert_eq!(vc.get(&mut h, 80), 5000);
        assert_eq!(vc.get(&mut h, 159), 5079);
        let vd = vc.update(&mut h, 40, 7);
        assert_eq!(vd.get(&mut h, 40), 7);
        assert_eq!(vc.get(&mut h, 40), 100);
    }

    #[test]
    fn concat_with_empty() {
        let mut h = heap();
        let ve = PmVector::empty(&mut h);
        let va = PmVector::from_slice(&mut h, &[1, 2, 3]);
        let r1 = ve.concat(&mut h, &va);
        let r2 = va.concat(&mut h, &ve);
        assert_eq!(r1.to_vec(&mut h), vec![1, 2, 3]);
        assert_eq!(r2.to_vec(&mut h), vec![1, 2, 3]);
    }

    #[test]
    fn no_leaks_through_mixed_ops() {
        let mut h = heap();
        let mut v = PmVector::empty(&mut h);
        for i in 0..300u64 {
            v = step_push(&mut h, v, i);
        }
        for i in (0..300u64).step_by(3) {
            let nv = v.update(&mut h, i, i + 1_000_000);
            v.release(&mut h);
            v = nv;
        }
        for _ in 0..300 {
            let (nv, _) = v.pop_back(&mut h).unwrap();
            v.release(&mut h);
            v = nv;
        }
        v.release(&mut h);
        assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn structural_sharing_on_update() {
        let mut h = heap();
        let elems: Vec<u64> = (0..100_000).collect();
        let v = PmVector::from_slice(&mut h, &elems);
        let live = h.stats().live_bytes;
        let before = h.stats().cumulative_alloc_bytes;
        let v2 = v.update(&mut h, 12345, 0);
        let delta = h.stats().cumulative_alloc_bytes - before;
        // A path copy of ~4 nodes; the ratio shrinks as the vector grows
        // (the paper's <0.01% holds at 1M elements — see the table3 bench).
        assert!(
            (delta as f64) < 0.002 * live as f64,
            "update shadow {delta}B vs {live}B live"
        );
        assert_eq!(v2.get(&mut h, 12345), 0);
    }

    #[test]
    fn everything_flushed_before_fence() {
        let mut h = heap();
        let elems: Vec<u64> = (0..2000).collect();
        let v = PmVector::from_slice(&mut h, &elems);
        let _v2 = v.update(&mut h, 1234, 9);
        let _v3 = v.push_back(&mut h, 1);
        h.sfence();
        assert_eq!(h.pm().dirty_lines(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let mut h = heap();
        let v = PmVector::from_slice(&mut h, &[1, 2, 3]);
        v.get(&mut h, 3);
    }

    #[test]
    fn get_update_through_deep_relaxed_tree() {
        // Repeated concat creates nested relaxed nodes.
        let mut h = heap();
        let mut acc = PmVector::from_slice(&mut h, &(0..50).collect::<Vec<_>>());
        let mut want: Vec<u64> = (0..50).collect();
        for round in 0..6 {
            let chunk: Vec<u64> = (0..37).map(|i| 1000 * (round + 1) + i).collect();
            let vb = PmVector::from_slice(&mut h, &chunk);
            acc = acc.concat(&mut h, &vb);
            want.extend(&chunk);
        }
        assert_eq!(acc.to_vec(&mut h), want);
        for idx in [0usize, 49, 50, 87, 123, 200, want.len() - 1] {
            assert_eq!(acc.get(&mut h, idx as u64), want[idx], "index {idx}");
        }
        let upd = acc.update(&mut h, 123, 42);
        assert_eq!(upd.get(&mut h, 123), 42);
    }
}
