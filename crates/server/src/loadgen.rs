//! Open-loop load generator: pipelined clients with bounded in-flight
//! windows, measuring host-time throughput and latency percentiles.
//!
//! Each client connection keeps up to `window` requests in flight —
//! writes never stall behind replies until the window fills, which is
//! exactly the regime where group commit amortizes fences — and stamps
//! every request at send time, so a reply's latency covers queueing,
//! staging, the batch fence wait, and the socket round trip.

use crate::proto::{Command, Reply, ReplyDecoder};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Load-generator tunables.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub conns: usize,
    /// Per-connection in-flight window.
    pub window: usize,
    /// Requests per connection.
    pub ops_per_conn: u64,
    /// Percentage of SETs (the rest are GETs).
    pub set_percent: u32,
    /// Value payload bytes for SETs.
    pub value_bytes: usize,
    /// Key-space size (keys are `k<small int>`).
    pub key_space: u64,
    /// Deterministic op-mix seed.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            conns: 4,
            window: 16,
            ops_per_conn: 500,
            set_percent: 90,
            value_bytes: 64,
            key_space: 1024,
            seed: 0x10AD_5EED,
        }
    }
}

/// What a load-generator run measured (host time, not simulated time).
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Connections driven.
    pub conns: usize,
    /// Per-connection in-flight window.
    pub window: usize,
    /// Requests acknowledged.
    pub reqs: u64,
    /// Replies that were errors (`-BUSY` backpressure included).
    pub errors: u64,
    /// Wall-clock span of the whole run.
    pub elapsed: Duration,
    /// Per-request latencies, sorted ascending (ns).
    latencies_ns: Vec<u64>,
}

impl LoadgenReport {
    /// Acknowledged requests per wall-clock second.
    pub fn req_per_s(&self) -> f64 {
        self.reqs as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Latency percentile in ns (`q` in 0..=1).
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_ns.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies_ns[idx]
    }

    /// Median latency (ns).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(0.50)
    }

    /// Tail latency (ns).
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(0.99)
    }
}

/// xorshift64* — deterministic, dependency-free op mix.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Runs the load against a server at `addr` and aggregates all
/// connections' measurements.
///
/// # Errors
///
/// Returns the first connection or socket error.
pub fn run_loadgen(addr: impl ToSocketAddrs, cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..cfg.conns {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || drive_conn(addr, &cfg, c as u64)));
    }
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        let (mut lat, errs) = h.join().expect("loadgen thread panicked")?;
        latencies.append(&mut lat);
        errors += errs;
    }
    let elapsed = t0.elapsed();
    latencies.sort_unstable();
    Ok(LoadgenReport {
        conns: cfg.conns,
        window: cfg.window,
        reqs: latencies.len() as u64,
        errors,
        elapsed,
        latencies_ns: latencies,
    })
}

/// One pipelined client: fill the window, reap replies, repeat.
fn drive_conn(
    addr: std::net::SocketAddr,
    cfg: &LoadgenConfig,
    conn_id: u64,
) -> io::Result<(Vec<u64>, u64)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut rng = Rng::new(cfg.seed ^ (conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let mut dec = ReplyDecoder::new();
    let mut latencies = Vec::with_capacity(cfg.ops_per_conn as usize);
    let mut errors = 0u64;
    let mut send_times: VecDeque<Instant> = VecDeque::with_capacity(cfg.window);
    let mut sent = 0u64;
    let mut recvd = 0u64;
    let mut wire = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let window = cfg.window.max(1) as u64;
    while recvd < cfg.ops_per_conn {
        // Fill the in-flight window.
        wire.clear();
        let now = Instant::now();
        while sent < cfg.ops_per_conn && sent - recvd < window {
            let key = format!("k{}", rng.next() % cfg.key_space.max(1)).into_bytes();
            let cmd = if rng.next() % 100 < u64::from(cfg.set_percent) {
                let mut value = vec![0u8; cfg.value_bytes];
                let fill = rng.next().to_le_bytes();
                for (i, b) in value.iter_mut().enumerate() {
                    *b = fill[i % 8];
                }
                Command::Set { key, value }
            } else {
                Command::Get { key }
            };
            wire.extend_from_slice(&cmd.encode());
            send_times.push_back(now);
            sent += 1;
        }
        if !wire.is_empty() {
            stream.write_all(&wire)?;
        }
        // Reap at least one reply before refilling.
        let before = recvd;
        while recvd == before {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-run",
                ));
            }
            dec.feed(&chunk[..n]);
            loop {
                match dec.next_reply() {
                    Ok(Some(reply)) => {
                        let t = send_times.pop_front().expect("reply without a request");
                        latencies.push(t.elapsed().as_nanos() as u64);
                        recvd += 1;
                        if matches!(reply, Reply::Err(_)) {
                            errors += 1;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("reply stream: {e}"),
                        ))
                    }
                }
            }
        }
    }
    Ok((latencies, errors))
}
