//! # mod-server — a durable network front end over `SharedModHeap`
//!
//! The repo's workloads are closed-loop in-process simulations; this
//! crate puts real bytes on real sockets in front of the MOD heap, with
//! the two guarantees a durable store owes its clients:
//!
//! * **Reply-after-fence.** A worker FASE's reply is queued until the
//!   batch carrying that FASE publishes — one `sfence`, one root
//!   directory swing — and only then flushed to the socket
//!   ([`mod_core::CommitTicket`] + [`mod_core::SharedModHeap::wait_durable`]).
//!   A client that reads `+OK` knows the operation survives a crash:
//!   MOD's single commit point makes the durability boundary exactly
//!   one fence wait wide.
//! * **Exactly-once sessions.** `SESSION <client> <seq>`-prefixed
//!   requests record `(seq, reply)` in the same FASE as the application
//!   update, so a retry after reconnect or crash replays the memoized
//!   reply instead of re-executing (see [`engine`]).
//!
//! The pieces: [`proto`] (the RESP-style wire codec, shared with the
//! closed-loop memcached simulation), [`engine`] (typed durable state +
//! command execution), [`serve`] (threaded TCP listener multiplexing
//! connections onto worker shards), and [`loadgen`] (open-loop client
//! with bounded in-flight windows).
//!
//! ## Example
//!
//! ```
//! use mod_core::{CommitMode, SharedModHeap};
//! use mod_pmem::{Pmem, PmemConfig};
//! use mod_server::{serve, Command, Reply, ServerRoots};
//! use std::time::Duration;
//!
//! let mut heap = mod_core::ModHeap::create(Pmem::new(PmemConfig::testing()));
//! let roots = ServerRoots::create(&mut heap, mod_core::PersistPolicy::Full);
//! let shared = SharedModHeap::from_heap_with(
//!     heap,
//!     2,
//!     CommitMode::Group { max_batch: 8, timeout: Duration::from_millis(2) },
//! );
//! let handle = serve(shared, roots, "127.0.0.1:0").unwrap();
//!
//! // Any RESP client works; here: raw sockets.
//! use std::io::{Read, Write};
//! let mut c = std::net::TcpStream::connect(handle.addr()).unwrap();
//! c.write_all(&Command::Set { key: b"k".to_vec(), value: b"v".to_vec() }.encode())
//!     .unwrap();
//! let mut dec = mod_server::ReplyDecoder::new();
//! let mut buf = [0u8; 512];
//! let reply = loop {
//!     let n = c.read(&mut buf).unwrap();
//!     dec.feed(&buf[..n]);
//!     if let Some(r) = dec.next_reply().unwrap() {
//!         break r;
//!     }
//! };
//! assert_eq!(reply, Reply::Ok); // and the SET is already fenced
//! handle.stop();
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod loadgen;
pub mod pool;
pub mod proto;

mod conn;
mod listener;

pub use engine::ServerRoots;
pub use listener::{serve, serve_with, ServerConfig, ServerHandle};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use proto::{
    encode_tokens, Command, FrameDecoder, ProtoError, Reply, ReplyDecoder, MAX_ARGS, MAX_BULK,
};
