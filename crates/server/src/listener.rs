//! The TCP listener: accepts connections and multiplexes them onto the
//! shared heap's worker shards.
//!
//! Each accepted connection is pinned to the least-loaded worker slot
//! for its lifetime (connections may share a slot — staging serializes
//! on the shard mutex). A slot joins the batch-completion quorum
//! ([`SharedModHeap::register`]) only while it carries at least one
//! connection, so idle shards never stall group commits, and the last
//! connection leaving a slot deregisters it — which also drains any
//! batch the quorum was waiting on.

use crate::conn::{serve_conn, ConnCtx};
use crate::engine::ServerRoots;
use mod_core::SharedModHeap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Per-connection pipelining window: max frames staged before a
    /// durability wait and reply flush.
    pub window: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { window: 16 }
    }
}

/// Starts the server on `addr` (use port 0 for an ephemeral port) with
/// the default config. Returns once the listener is bound; connections
/// are served on background threads until [`ServerHandle::stop`].
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(
    heap: SharedModHeap,
    roots: ServerRoots,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle> {
    serve_with(heap, roots, addr, ServerConfig::default())
}

/// [`serve`] with explicit tunables.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_with(
    heap: SharedModHeap,
    roots: ServerRoots,
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    // No connections yet: take every shard out of the quorum so the
    // first connection's FASEs don't wait on idle workers.
    let workers = heap.workers();
    for w in 0..workers {
        heap.deregister(w);
    }
    // Per-slot connection counts; guarded by one mutex so the count
    // transition and the (de)registration it implies stay atomic.
    let slots: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(vec![0; workers]));
    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let window = cfg.window.max(1);
        std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let worker = {
                            let mut s = slots.lock().unwrap();
                            let w = (0..s.len()).min_by_key(|&w| s[w]).unwrap_or(0);
                            s[w] += 1;
                            if s[w] == 1 {
                                heap.register(w);
                            }
                            w
                        };
                        let ctx = ConnCtx {
                            heap: heap.clone(),
                            roots,
                            worker,
                            window,
                            shutdown: Arc::clone(&shutdown),
                        };
                        let slots = Arc::clone(&slots);
                        conns.push(std::thread::spawn(move || {
                            serve_conn(&ctx, stream);
                            let mut s = slots.lock().unwrap();
                            s[worker] -= 1;
                            if s[worker] == 0 {
                                // Last connection off this slot: leave
                                // the quorum (drains a waiting batch).
                                ctx.heap.deregister(worker);
                            }
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                        conns.retain(|h| !h.is_finished());
                    }
                    Err(_) => break,
                }
            }
            for h in conns {
                let _ = h.join();
            }
        })
    };
    Ok(ServerHandle {
        addr: local,
        shutdown,
        accept: Some(accept),
    })
}

/// A running server. Dropping it (or calling [`ServerHandle::stop`])
/// shuts the listener down and joins every connection thread, so the
/// caller's `SharedModHeap` clone is the only one left afterwards.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, disconnects idle connections, and joins all
    /// server threads.
    pub fn stop(mut self) {
        self.shutdown_join();
    }

    fn shutdown_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_join();
    }
}
