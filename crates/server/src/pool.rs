//! File-backed pool lifecycle for the server: atomic creation, recovery
//! on reopen, and sharding onto worker slots.

use crate::engine::ServerRoots;
use mod_core::{CommitMode, ModHeap, PersistPolicy, SharedModHeap};
use mod_pmem::{Durability, PmemConfig};
use std::io;
use std::path::Path;

/// The server's pool configuration: a real file journal, no crash
/// simulation (crashes here are real process kills).
pub fn pool_config() -> PmemConfig {
    PmemConfig {
        capacity: 1 << 26,
        crash_sim: false,
        trace: false,
        ..PmemConfig::default()
    }
}

/// Opens (recovering) or creates the server pool at `path` and shards
/// it for `workers` connection slots in the given commit mode, with
/// kill-grade (buffered, single-journal) durability. See
/// [`open_or_create_with`] for power-loss-grade pool sets.
///
/// Initialization is atomic against kills: a fresh pool is built and
/// closed under a temporary `.init` name and renamed into place, so a
/// recovery only ever sees "no pool yet" or a fully formed one.
///
/// # Errors
///
/// Returns file I/O or recovery errors; an existing pool whose roots
/// are not the server's five panics (it is some other application's).
pub fn open_or_create(
    path: &Path,
    workers: usize,
    mode: CommitMode,
) -> io::Result<(SharedModHeap, ServerRoots)> {
    open_or_create_with(
        path,
        workers,
        mode,
        Durability::Buffered,
        1,
        PersistPolicy::Full,
    )
}

/// [`open_or_create`] with an explicit durability grade and journal
/// shard count. `Durability::Fsync` makes an acked `SESSION` op durable
/// across power loss, not just SIGKILL — the group-commit fence
/// amortizes the fsync round over the whole batch — and
/// `journal_shards > 1` splits the journal into a pool set replayed by
/// parallel threads at recovery.
///
/// The shard count is a property of the *file set*: it applies when
/// this call creates the pool, while reopening an existing pool keeps
/// the on-disk layout (the header is authoritative). Durability applies
/// either way.
///
/// `policy` selects the persistence mode the roots are created under —
/// [`PersistPolicy::Hybrid`] keeps interior index nodes volatile and
/// journals only compact op records, rebuilding the index at recovery.
/// The policy is recorded durably in the root directory, so reopening
/// an existing pool under the other policy fails rather than corrupt.
///
/// # Errors
///
/// Same contract as [`open_or_create`].
pub fn open_or_create_with(
    path: &Path,
    workers: usize,
    mode: CommitMode,
    durability: Durability,
    journal_shards: u16,
    policy: PersistPolicy,
) -> io::Result<(SharedModHeap, ServerRoots)> {
    let cfg = PmemConfig {
        durability,
        journal_shards,
        ..pool_config()
    };
    if !path.exists() {
        let init = path.with_extension("init");
        let _ = std::fs::remove_file(&init); // stale half-init from a kill
                                             // Stale shard journals from a killed init: the rename below
                                             // only moves the base file, so sweep the set members too.
        for s in 0..journal_shards {
            let mut sp = init.as_os_str().to_os_string();
            sp.push(format!(".s{s}"));
            let _ = std::fs::remove_file(sp);
        }
        let mut heap = ModHeap::create_file(&init, cfg.clone())?;
        let _ = ServerRoots::create(&mut heap, policy);
        drop(heap.close()?);
        // Move the shard journals first, the base last: recovery keys
        // off the base file, so a kill mid-rename still reads as
        // "no pool yet" until the base lands.
        for s in 0..journal_shards {
            let mut from = init.as_os_str().to_os_string();
            from.push(format!(".s{s}"));
            let mut to = path.as_os_str().to_os_string();
            to.push(format!(".s{s}"));
            if std::path::Path::new(&from).exists() {
                std::fs::rename(&from, &to)?;
            }
        }
        std::fs::rename(&init, path)?;
    }
    let (mut heap, _report) = ModHeap::open_file(path, cfg)?;
    let roots = ServerRoots::open(&mut heap, policy).map_err(io::Error::other)?;
    Ok((SharedModHeap::from_heap_with(heap, workers, mode), roots))
}
