//! File-backed pool lifecycle for the server: atomic creation, recovery
//! on reopen, and sharding onto worker slots.

use crate::engine::ServerRoots;
use mod_core::{CommitMode, ModHeap, SharedModHeap};
use mod_pmem::PmemConfig;
use std::io;
use std::path::Path;

/// The server's pool configuration: a real file journal, no crash
/// simulation (crashes here are real process kills).
pub fn pool_config() -> PmemConfig {
    PmemConfig {
        capacity: 1 << 26,
        crash_sim: false,
        trace: false,
        ..PmemConfig::default()
    }
}

/// Opens (recovering) or creates the server pool at `path` and shards
/// it for `workers` connection slots in the given commit mode.
///
/// Initialization is atomic against kills: a fresh pool is built and
/// closed under a temporary `.init` name and renamed into place, so a
/// recovery only ever sees "no pool yet" or a fully formed one.
///
/// # Errors
///
/// Returns file I/O or recovery errors; an existing pool whose roots
/// are not the server's five panics (it is some other application's).
pub fn open_or_create(
    path: &Path,
    workers: usize,
    mode: CommitMode,
) -> io::Result<(SharedModHeap, ServerRoots)> {
    if !path.exists() {
        let init = path.with_extension("init");
        let _ = std::fs::remove_file(&init); // stale half-init from a kill
        let mut heap = ModHeap::create_file(&init, pool_config())?;
        let _ = ServerRoots::create(&mut heap);
        drop(heap.close()?);
        std::fs::rename(&init, path)?;
    }
    let (heap, _report) = ModHeap::open_file(path, pool_config())?;
    let roots = ServerRoots::open(&heap).map_err(io::Error::other)?;
    Ok((SharedModHeap::from_heap_with(heap, workers, mode), roots))
}
