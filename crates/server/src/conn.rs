//! Per-connection loop: windowed pipelining with reply-after-fence.
//!
//! Each connection is pinned to a `SharedModHeap` worker slot and
//! processes requests in windows of up to `window` frames: every decoded
//! command stages one ticketed FASE, and the whole window's replies are
//! flushed **only after** [`mod_core::SharedModHeap::wait_durable`] on
//! the *last* ticket returns. Batches drain the handoff queue in FIFO
//! order, so the last FASE durable implies every earlier FASE of the
//! window is durable too — one wait covers the window.
//!
//! Backpressure is explicit: a FASE that loses its staging-lane retry
//! budget is not buffered or blocked on — the client gets a `-BUSY`
//! reply (queue-full) and decides when to retry. `PING` never touches
//! the heap but its reply still rides the window, preserving
//! per-connection reply order.

use crate::engine::ServerRoots;
use crate::proto::{Command, FrameDecoder, Reply};
use mod_core::{CommitTicket, EngineError, SharedModHeap};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a blocked read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

pub(crate) struct ConnCtx {
    pub heap: SharedModHeap,
    pub roots: ServerRoots,
    /// The worker slot this connection stages on (possibly shared).
    pub worker: usize,
    /// Max frames staged before a durability wait + reply flush.
    pub window: usize,
    pub shutdown: Arc<AtomicBool>,
}

pub(crate) fn serve_conn(ctx: &ConnCtx, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut dec = FrameDecoder::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut out = Vec::new();
    'conn: while !ctx.shutdown.load(Ordering::SeqCst) {
        match stream.read(&mut chunk) {
            Ok(0) => break, // orderly EOF
            Ok(n) => dec.feed(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
        // Drain everything decodable, one reply window at a time.
        loop {
            out.clear();
            let mut batch = 0usize;
            let mut last_ticket: Option<CommitTicket> = None;
            while batch < ctx.window {
                let tokens = match dec.next_frame() {
                    Ok(Some(t)) => t,
                    Ok(None) => break,
                    Err(e) => {
                        // Unframeable stream: report and hang up.
                        let _ = stream.write_all(&Reply::Err(format!("ERR {e}")).encode());
                        break 'conn;
                    }
                };
                batch += 1;
                let reply = match Command::parse(&tokens) {
                    Err(msg) => Reply::Err(msg),
                    Ok(Command::Ping) => Reply::Pong,
                    // Plain reads with no write in flight in this window
                    // are served from the latest published snapshot:
                    // wait-free, off the commit pipeline entirely (no
                    // lane, no handoff push, no fence). Once a write has
                    // staged, reads rejoin the pipeline so the window
                    // keeps read-your-writes; sessioned reads always take
                    // the pipeline (their reply must be memoized in a
                    // FASE). Writes of *earlier* windows are covered:
                    // their snapshot published before their reply was
                    // flushed, so a client that saw an ack sees its write
                    // in every later snapshot.
                    Ok(Command::Get { ref key }) if last_ticket.is_none() => {
                        ctx.roots.get_from_snapshot(&ctx.heap.snapshot(), key)
                    }
                    Ok(Command::RPeek) if last_ticket.is_none() => {
                        ctx.roots.rpeek_from_snapshot(&ctx.heap.snapshot())
                    }
                    Ok(cmd) => {
                        match ctx
                            .heap
                            .try_fase_ticketed(ctx.worker, |tx| ctx.roots.execute_in(tx, &cmd))
                        {
                            Ok((reply, ticket)) => {
                                last_ticket = Some(ticket);
                                reply
                            }
                            // Queue-full backpressure, not buffering.
                            Err(EngineError::Contention(_)) => {
                                Reply::Err("BUSY staging lanes contended; retry the request".into())
                            }
                            // Engine-fatal: another thread panicked
                            // mid-commit. Earlier replies in this window
                            // were never acked (their fence can't run),
                            // so drop them — flushing would promise
                            // durability the journal no longer has —
                            // answer with the typed error, and hang up.
                            Err(EngineError::Poisoned(e)) => {
                                let _ = stream.write_all(&Reply::Err(format!("ERR {e}")).encode());
                                break 'conn;
                            }
                        }
                    }
                };
                reply.encode_into(&mut out);
            }
            if batch == 0 {
                break;
            }
            // Reply-after-fence: nothing reaches the socket until the
            // window's last FASE — and, by drain order, all before it —
            // has been published by a batch fence. A poisoned engine
            // fails the wait: the window's replies are unackable, so
            // they are dropped and the connection closes with a typed
            // error instead of a worker-thread panic cascade.
            if let Some(t) = &last_ticket {
                if let Err(e) = ctx.heap.try_wait_durable(t) {
                    let _ = stream.write_all(&Reply::Err(format!("ERR {e}")).encode());
                    break 'conn;
                }
            }
            if stream.write_all(&out).is_err() || stream.flush().is_err() {
                break 'conn;
            }
        }
    }
}
