//! The `mod-server` binary: serve a file-backed durable pool over TCP,
//! or drive a running server with the open-loop load generator.
//!
//! ```text
//! mod_server serve <pool-file> [--addr A] [--workers N] [--window W] [--timeout-ms T]
//!                              [--durability fsync|buffered] [--journal-shards N]
//!                              [--persist-policy full|hybrid]
//! mod_server loadgen <addr> [--conns N] [--window W] [--ops N] [--set-pct P]
//! ```
//!
//! `serve` prints `LISTENING <addr>` once the socket is bound and runs
//! until killed; a `SIGKILL` at any point leaves the pool recoverable
//! (that is the point). `loadgen` prints a one-line throughput/latency
//! summary.

use mod_core::{CommitMode, PersistPolicy};
use mod_pmem::Durability;
use mod_server::{pool, run_loadgen, serve_with, LoadgenConfig, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         mod_server serve <pool-file> [--addr A] [--workers N] [--window W] [--timeout-ms T]\n  \
         \x20                         [--durability fsync|buffered] [--journal-shards N]\n  \
         \x20                         [--persist-policy full|hybrid]\n  \
         mod_server loadgen <addr> [--conns N] [--window W] [--ops N] [--set-pct P]\n\n\
         --persist-policy hybrid keeps interior index nodes volatile (journaling only\n\
         compact op records; the index is rebuilt from them at recovery). The policy is\n\
         recorded in the pool: reopening under the other policy fails with a typed error."
    );
    std::process::exit(2);
}

/// Pulls `--flag value` pairs out of `args`, returning leftover
/// positional arguments.
fn split_flags(args: &[String]) -> (Vec<String>, Vec<(String, String)>) {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            match it.next() {
                Some(v) => flags.push((name.to_string(), v.clone())),
                None => usage(),
            }
        } else {
            pos.push(a.clone());
        }
    }
    (pos, flags)
}

fn flag<T: std::str::FromStr>(flags: &[(String, String)], name: &str, default: T) -> T {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else { usage() };
    let (pos, flags) = split_flags(&args[1..]);
    match mode.as_str() {
        "serve" => {
            let [pool_path] = pos.as_slice() else { usage() };
            let addr: String = flag(&flags, "addr", "127.0.0.1:0".to_string());
            let workers: usize = flag(&flags, "workers", 4).max(1);
            let window: usize = flag(&flags, "window", 16).max(1);
            let timeout_ms: u64 = flag(&flags, "timeout-ms", 2);
            // Power-loss-grade by default: an acked op must survive a
            // power cut, not just a SIGKILL. The group-commit fence
            // amortizes the fsync round over the batch.
            let durability = match flag(&flags, "durability", "fsync".to_string()).as_str() {
                "fsync" => Durability::Fsync,
                "buffered" => Durability::Buffered,
                _ => usage(),
            };
            let journal_shards: u16 = flag(&flags, "journal-shards", workers as u16).max(1);
            let policy = match flag(&flags, "persist-policy", "full".to_string()).as_str() {
                "full" => PersistPolicy::Full,
                "hybrid" => PersistPolicy::Hybrid,
                _ => usage(),
            };
            let mode = CommitMode::Group {
                max_batch: workers.max(4),
                timeout: Duration::from_millis(timeout_ms.max(1)),
            };
            let (heap, roots) = pool::open_or_create_with(
                pool_path.as_ref(),
                workers,
                mode,
                durability,
                journal_shards,
                policy,
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot open pool {pool_path}: {e}");
                std::process::exit(1);
            });
            let handle = serve_with(heap, roots, addr.as_str(), ServerConfig { window })
                .unwrap_or_else(|e| {
                    eprintln!("cannot bind {addr}: {e}");
                    std::process::exit(1);
                });
            // Parsable by scripts and the kill -9 battery.
            println!("LISTENING {}", handle.addr());
            use std::io::Write;
            let _ = std::io::stdout().flush();
            loop {
                std::thread::park();
            }
        }
        "loadgen" => {
            let [addr] = pos.as_slice() else { usage() };
            let cfg = LoadgenConfig {
                conns: flag(&flags, "conns", 4),
                window: flag(&flags, "window", 16),
                ops_per_conn: flag(&flags, "ops", 500),
                set_percent: flag(&flags, "set-pct", 90),
                ..LoadgenConfig::default()
            };
            let report = run_loadgen(addr.as_str(), &cfg).unwrap_or_else(|e| {
                eprintln!("loadgen against {addr} failed: {e}");
                std::process::exit(1);
            });
            println!(
                "conns={} window={} reqs={} errors={} req_per_s={:.0} p50_us={:.1} p99_us={:.1}",
                report.conns,
                report.window,
                report.reqs,
                report.errors,
                report.req_per_s(),
                report.p50_ns() as f64 / 1e3,
                report.p99_ns() as f64 / 1e3,
            );
        }
        _ => usage(),
    }
}
