//! The durable command engine: typed server state over a `ModHeap` and
//! the exactly-once session discipline.
//!
//! All server state lives in five typed roots, created (and reopened) in
//! a fixed directory order chosen so that **every command acquires its
//! staging lanes in ascending root order** — the deadlock-free fast path
//! of the concurrent staging layer — whatever mix of sessioned and plain
//! commands the connections throw at it:
//!
//! | root | structure | role |
//! |------|-----------|------|
//! | 0 | `DurableMap<u64, Vec<u8>>` | sessions: client → seq ‖ memoized reply |
//! | 1 | `DurableMap<Vec<u8>, Vec<u8>>` | the KV store (GET/SET/DEL/INCR) |
//! | 2 | `DurableVector<u64>` | next list-element id (one slot) |
//! | 3 | `DurableQueue<u64>` | list order: element ids FIFO |
//! | 4 | `DurableMap<u64, Vec<u8>>` | list payloads: id → bytes |
//!
//! (The list is id-indirected because the queue substrate carries `u64`
//! words; LPUSH allocates an id from root 2, stores the payload in root
//! 4 and enqueues the id in root 3 — one FASE, one ordering point.)
//!
//! ## Exactly-once sessions
//!
//! A [`Command::Session`] wraps an inner command with `(client, seq)`.
//! The session record — `seq` (8 bytes LE) followed by the wire-encoded
//! reply — is written **in the same FASE as the application update**, so
//! the root-directory swing that makes the update durable also makes the
//! "already applied" marker durable: there is no window where one is
//! persistent without the other. A retried `seq` therefore returns the
//! memoized reply without re-executing (and without staging anything —
//! the replay FASE is a free no-op), and an out-of-order `seq` is
//! rejected.
//!
//! Read-modify-write commands take the root's staging lane *before*
//! reading (`touch_in`): plain in-FASE reads are lock-free, so without
//! the hold two workers could interleave read→write on the same root
//! and lose an update or double-apply a session.

use crate::proto::{Command, Reply};
use mod_core::{
    DurableMap, DurableQueue, DurableVector, Fase, ModHeap, OpenError, PersistPolicy, SnapshotView,
};

/// Handles to the five typed server roots (cheap to copy; all state is
/// in the heap).
#[derive(Clone, Copy, Debug)]
pub struct ServerRoots {
    /// Root 0 — session records: client id → `seq ‖ encoded reply`.
    pub sessions: DurableMap<u64, Vec<u8>>,
    /// Root 1 — the KV store.
    pub kv: DurableMap<Vec<u8>, Vec<u8>>,
    /// Root 2 — next list-element id (single slot).
    pub next_id: DurableVector<u64>,
    /// Root 3 — list element ids, FIFO.
    pub list_ids: DurableQueue<u64>,
    /// Root 4 — list element payloads by id.
    pub list_blobs: DurableMap<u64, Vec<u8>>,
}

impl ServerRoots {
    /// Publishes the five roots into a fresh heap (directory indices
    /// 0–4, in lane order).
    pub fn create(heap: &mut ModHeap, policy: PersistPolicy) -> ServerRoots {
        let sessions = heap.root(0).policy(policy).create();
        let kv = heap.root(1).policy(policy).create();
        let next_id: DurableVector<u64> = heap.root(2).policy(policy).create();
        next_id.push_back(heap, &0);
        let list_ids = heap.root(3).policy(policy).create();
        let list_blobs = heap.root(4).policy(policy).create();
        ServerRoots {
            sessions,
            kv,
            next_id,
            list_ids,
            list_blobs,
        }
    }

    /// Reattaches to the roots of a reopened pool, verifying kinds,
    /// codecs, and persistence policy against the persistent directory.
    ///
    /// # Errors
    ///
    /// Returns the first root that is missing or of the wrong shape —
    /// including a pool created under the other [`PersistPolicy`].
    pub fn open(heap: &mut ModHeap, policy: PersistPolicy) -> Result<ServerRoots, OpenError> {
        Ok(ServerRoots {
            sessions: heap.root(0).policy(policy).open()?,
            kv: heap.root(1).policy(policy).open()?,
            next_id: heap.root(2).policy(policy).open()?,
            list_ids: heap.root(3).policy(policy).open()?,
            list_blobs: heap.root(4).policy(policy).open()?,
        })
    }

    /// Opens the roots if the pool has them, creates them otherwise.
    pub fn ensure(heap: &mut ModHeap, policy: PersistPolicy) -> ServerRoots {
        match ServerRoots::open(heap, policy) {
            Ok(r) => r,
            Err(OpenError::NoSuchRoot { .. }) if heap.root_count() == 0 => {
                ServerRoots::create(heap, policy)
            }
            Err(e) => panic!("pool holds incompatible roots: {e}"),
        }
    }

    /// Executes one command inside an in-progress FASE and returns its
    /// reply. The staged updates — application state *and* session
    /// record — publish together at the FASE's single ordering point;
    /// the caller must not flush the reply to a client before that fence
    /// has executed (reply-after-fence).
    pub fn execute_in(&self, tx: &mut Fase<'_>, cmd: &Command) -> Reply {
        match cmd {
            Command::Session { client, seq, inner } => {
                self.execute_session(tx, *client, *seq, inner)
            }
            plain => self.execute_plain(tx, plain),
        }
    }

    fn execute_plain(&self, tx: &mut Fase<'_>, cmd: &Command) -> Reply {
        match cmd {
            Command::Ping => Reply::Pong,
            Command::Get { key } => {
                // Lane-held read: serializes against in-flight same-batch
                // writers, so a GET pipelined behind a SET sees it.
                self.kv.touch_in(tx);
                Reply::Value(self.kv.get_in(tx, key))
            }
            Command::Set { key, value } => {
                self.kv.insert_in(tx, key, value);
                Reply::Ok
            }
            Command::Del { key } => Reply::Int(i64::from(self.kv.remove_in(tx, key))),
            Command::Incr { key } => {
                self.kv.touch_in(tx); // hold the lane across read → write
                let cur = match self.kv.get_in(tx, key) {
                    None => 0,
                    Some(bytes) => match std::str::from_utf8(&bytes)
                        .ok()
                        .and_then(|s| s.parse::<i64>().ok())
                    {
                        Some(v) => v,
                        None => {
                            return Reply::Err("ERR value is not an integer or out of range".into())
                        }
                    },
                };
                let next = cur.wrapping_add(1);
                self.kv.insert_in(tx, key, &next.to_string().into_bytes());
                Reply::Int(next)
            }
            Command::LPush { value } => {
                self.next_id.touch_in(tx); // id allocation is read-modify-write
                let id = self.next_id.get_in(tx, 0);
                self.next_id.update_in(tx, 0, &(id + 1));
                self.list_ids.enqueue_in(tx, &id);
                self.list_blobs.insert_in(tx, &id, value);
                Reply::Int(id as i64)
            }
            Command::RPeek => {
                // Lane-held read pair: the front id and its payload must
                // come from one list state, so both lanes are taken in
                // root order before either read.
                self.list_ids.touch_in(tx);
                match self.list_ids.front_in(tx) {
                    None => Reply::Value(None),
                    Some(id) => {
                        self.list_blobs.touch_in(tx);
                        match self.list_blobs.get_in(tx, &id) {
                            Some(b) => Reply::Value(Some(b)),
                            None => Reply::Err("ERR list id without payload".into()),
                        }
                    }
                }
            }
            Command::RPop => match self.list_ids.dequeue_in(tx) {
                None => Reply::Value(None),
                Some(id) => {
                    self.list_blobs.touch_in(tx); // lane before lock-free read
                    let blob = self.list_blobs.get_in(tx, &id);
                    self.list_blobs.remove_in(tx, &id);
                    match blob {
                        Some(b) => Reply::Value(Some(b)),
                        None => Reply::Err("ERR list id without payload".into()),
                    }
                }
            },
            Command::Session { .. } => Reply::Err("ERR SESSION cannot nest".into()),
        }
    }

    /// Answers a `GET` from a pinned snapshot view — wait-free: no
    /// staging lanes, no handoff push, no fence. The view is one
    /// batch-atomic image, so the reply can never mix commits.
    pub fn get_from_snapshot(&self, view: &SnapshotView<'_>, key: &Vec<u8>) -> Reply {
        Reply::Value(view.map_get(&self.kv, key))
    }

    /// Answers an `RPEEK` from a pinned snapshot view. The front id and
    /// its payload come from the same epoch by construction — the
    /// cross-root consistency the pipelined path needs two lane holds
    /// for is free here.
    pub fn rpeek_from_snapshot(&self, view: &SnapshotView<'_>) -> Reply {
        match view.queue_front(&self.list_ids) {
            None => Reply::Value(None),
            Some(id) => match view.map_get(&self.list_blobs, &id) {
                Some(b) => Reply::Value(Some(b)),
                None => Reply::Err("ERR list id without payload".into()),
            },
        }
    }

    fn execute_session(&self, tx: &mut Fase<'_>, client: u64, seq: u64, inner: &Command) -> Reply {
        if matches!(inner, Command::Session { .. }) {
            return Reply::Err("ERR SESSION cannot nest".into());
        }
        if seq == 0 {
            return Reply::Err("ERR session seq starts at 1".into());
        }
        // Hold the session lane before reading the record: two workers
        // racing on the same client must serialize here, or both could
        // observe `last` and double-apply seq = last + 1.
        self.sessions.touch_in(tx);
        let record = self.sessions.get_in(tx, &client);
        let last = match &record {
            None => 0,
            Some(r) if r.len() >= 8 => u64::from_le_bytes(r[..8].try_into().unwrap()),
            Some(_) => return Reply::Err("ERR corrupt session record".into()),
        };
        if seq == last {
            // Retry of the last applied request: replay the memoized
            // reply. Nothing is staged — the FASE stays a free no-op.
            let rec = record.unwrap();
            return Reply::decode_exact(&rec[8..])
                .unwrap_or_else(|| Reply::Err("ERR corrupt session record".into()));
        }
        if seq != last + 1 {
            return Reply::Err(format!("ERR seq {seq} out of order (session at {last})"));
        }
        // First delivery: execute, then record (seq, reply) in the SAME
        // FASE — the one directory swing commits both or neither.
        let reply = self.execute_plain(tx, inner);
        let mut rec = seq.to_le_bytes().to_vec();
        reply.encode_into(&mut rec);
        self.sessions.insert_in(tx, &client, &rec);
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};

    fn heap() -> (ModHeap, ServerRoots) {
        let mut h = ModHeap::create(Pmem::new(PmemConfig::testing()));
        let roots = ServerRoots::create(&mut h, PersistPolicy::Full);
        (h, roots)
    }

    fn run(h: &mut ModHeap, roots: &ServerRoots, cmd: Command) -> Reply {
        h.fase(|tx| roots.execute_in(tx, &cmd))
    }

    #[test]
    fn kv_commands() {
        let (mut h, r) = heap();
        let key = b"k".to_vec();
        assert_eq!(
            run(&mut h, &r, Command::Get { key: key.clone() }),
            Reply::Value(None)
        );
        assert_eq!(
            run(
                &mut h,
                &r,
                Command::Set {
                    key: key.clone(),
                    value: b"v".to_vec()
                }
            ),
            Reply::Ok
        );
        assert_eq!(
            run(&mut h, &r, Command::Get { key: key.clone() }),
            Reply::Value(Some(b"v".to_vec()))
        );
        assert_eq!(
            run(&mut h, &r, Command::Del { key: key.clone() }),
            Reply::Int(1)
        );
        assert_eq!(run(&mut h, &r, Command::Del { key }), Reply::Int(0));
    }

    #[test]
    fn incr_is_ascii_decimal() {
        let (mut h, r) = heap();
        let key = b"c".to_vec();
        assert_eq!(
            run(&mut h, &r, Command::Incr { key: key.clone() }),
            Reply::Int(1)
        );
        assert_eq!(
            run(&mut h, &r, Command::Incr { key: key.clone() }),
            Reply::Int(2)
        );
        assert_eq!(
            run(&mut h, &r, Command::Get { key: key.clone() }),
            Reply::Value(Some(b"2".to_vec()))
        );
        run(
            &mut h,
            &r,
            Command::Set {
                key: key.clone(),
                value: b"not a number".to_vec(),
            },
        );
        assert!(matches!(
            run(&mut h, &r, Command::Incr { key }),
            Reply::Err(_)
        ));
    }

    #[test]
    fn list_is_fifo_with_ids() {
        let (mut h, r) = heap();
        assert_eq!(
            run(
                &mut h,
                &r,
                Command::LPush {
                    value: b"a".to_vec()
                }
            ),
            Reply::Int(0)
        );
        assert_eq!(
            run(
                &mut h,
                &r,
                Command::LPush {
                    value: b"b".to_vec()
                }
            ),
            Reply::Int(1)
        );
        assert_eq!(
            run(&mut h, &r, Command::RPop),
            Reply::Value(Some(b"a".to_vec()))
        );
        assert_eq!(
            run(&mut h, &r, Command::RPop),
            Reply::Value(Some(b"b".to_vec()))
        );
        assert_eq!(run(&mut h, &r, Command::RPop), Reply::Value(None));
        // Ids keep advancing — they are allocation order, not list length.
        assert_eq!(
            run(
                &mut h,
                &r,
                Command::LPush {
                    value: b"c".to_vec()
                }
            ),
            Reply::Int(2)
        );
    }

    #[test]
    fn rpeek_reads_without_removing() {
        let (mut h, r) = heap();
        run(
            &mut h,
            &r,
            Command::LPush {
                value: b"a".to_vec(),
            },
        );
        run(
            &mut h,
            &r,
            Command::LPush {
                value: b"b".to_vec(),
            },
        );
        let fences = h.nv().pm().stats().fences;
        assert_eq!(
            run(&mut h, &r, Command::RPeek),
            Reply::Value(Some(b"a".to_vec()))
        );
        assert_eq!(
            run(&mut h, &r, Command::RPeek),
            Reply::Value(Some(b"a".to_vec())),
            "peek does not consume"
        );
        assert_eq!(
            h.nv().pm().stats().fences,
            fences,
            "RPEEK stages nothing and pays no ordering point"
        );
        assert_eq!(
            run(&mut h, &r, Command::RPop),
            Reply::Value(Some(b"a".to_vec()))
        );
        assert_eq!(
            run(&mut h, &r, Command::RPeek),
            Reply::Value(Some(b"b".to_vec()))
        );
        run(&mut h, &r, Command::RPop);
        assert_eq!(run(&mut h, &r, Command::RPeek), Reply::Value(None));
    }

    #[test]
    fn snapshot_helpers_serve_published_state() {
        use mod_core::SharedModHeap;
        let sh = SharedModHeap::create(Pmem::new(PmemConfig::testing()), 1);
        let r = sh.setup(|h| ServerRoots::create(h, PersistPolicy::Full));
        sh.fase(0, |tx| {
            r.execute_in(
                tx,
                &Command::Set {
                    key: b"k".to_vec(),
                    value: b"v".to_vec(),
                },
            );
            r.execute_in(
                tx,
                &Command::LPush {
                    value: b"job".to_vec(),
                },
            )
        });
        sh.flush();
        let view = sh.snapshot();
        assert_eq!(
            r.get_from_snapshot(&view, &b"k".to_vec()),
            Reply::Value(Some(b"v".to_vec()))
        );
        assert_eq!(
            r.get_from_snapshot(&view, &b"absent".to_vec()),
            Reply::Value(None)
        );
        assert_eq!(
            r.rpeek_from_snapshot(&view),
            Reply::Value(Some(b"job".to_vec()))
        );
    }

    #[test]
    fn session_applies_exactly_once() {
        let (mut h, r) = heap();
        let incr = |seq| Command::Session {
            client: 9,
            seq,
            inner: Box::new(Command::Incr { key: b"n".to_vec() }),
        };
        assert_eq!(run(&mut h, &r, incr(1)), Reply::Int(1));
        // Retry of seq 1: memoized, not re-executed.
        assert_eq!(run(&mut h, &r, incr(1)), Reply::Int(1));
        assert_eq!(run(&mut h, &r, incr(2)), Reply::Int(2));
        assert_eq!(run(&mut h, &r, incr(2)), Reply::Int(2));
        // Stale and gapped seqs are rejected without executing.
        assert!(matches!(run(&mut h, &r, incr(1)), Reply::Err(_)));
        assert!(matches!(run(&mut h, &r, incr(5)), Reply::Err(_)));
        assert_eq!(
            run(&mut h, &r, Command::Get { key: b"n".to_vec() }),
            Reply::Value(Some(b"2".to_vec())),
            "the counter equals the last applied seq: no double-apply"
        );
        // Sessions are independent per client.
        let other = Command::Session {
            client: 10,
            seq: 1,
            inner: Box::new(Command::Incr { key: b"n".to_vec() }),
        };
        assert_eq!(run(&mut h, &r, other), Reply::Int(3));
    }

    #[test]
    fn session_retry_of_lpush_does_not_double_apply() {
        let (mut h, r) = heap();
        let push = |seq| Command::Session {
            client: 1,
            seq,
            inner: Box::new(Command::LPush {
                value: b"job".to_vec(),
            }),
        };
        assert_eq!(run(&mut h, &r, push(1)), Reply::Int(0));
        assert_eq!(run(&mut h, &r, push(1)), Reply::Int(0), "memoized id");
        assert_eq!(run(&mut h, &r, push(2)), Reply::Int(1));
        assert_eq!(
            run(&mut h, &r, Command::RPop),
            Reply::Value(Some(b"job".to_vec()))
        );
        assert_eq!(
            run(&mut h, &r, Command::RPop),
            Reply::Value(Some(b"job".to_vec()))
        );
        assert_eq!(
            run(&mut h, &r, Command::RPop),
            Reply::Value(None),
            "exactly two"
        );
    }

    #[test]
    fn memoized_replay_is_a_free_noop_fase() {
        let (mut h, r) = heap();
        let cmd = Command::Session {
            client: 2,
            seq: 1,
            inner: Box::new(Command::Set {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }),
        };
        run(&mut h, &r, cmd.clone());
        let fences = h.nv().pm().stats().fences;
        assert_eq!(run(&mut h, &r, cmd), Reply::Ok);
        assert_eq!(
            h.nv().pm().stats().fences,
            fences,
            "replaying a memoized reply stages nothing and pays no fence"
        );
    }

    #[test]
    fn roots_survive_reopen() {
        let (mut h, r) = heap();
        run(
            &mut h,
            &r,
            Command::Set {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        );
        run(
            &mut h,
            &r,
            Command::LPush {
                value: b"x".to_vec(),
            },
        );
        h.quiesce();
        let img = h.nv().pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        let (mut h2, _) = ModHeap::open(img);
        let r2 = ServerRoots::open(&mut h2, PersistPolicy::Full).unwrap();
        assert_eq!(r2.kv.get(&h2, &b"k".to_vec()), Some(b"v".to_vec()));
        assert_eq!(r2.list_ids.len(&h2), 1);
    }
}
