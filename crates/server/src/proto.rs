//! The wire protocol: a small RESP-style framing plus the typed command
//! and reply enums shared between the network server and the closed-loop
//! simulations.
//!
//! Requests are arrays of bulk strings, exactly like RESP:
//!
//! ```text
//! *<argc>\r\n  then argc × ( $<len>\r\n <len bytes> \r\n )
//! ```
//!
//! and replies use the classic five shapes: `+OK`/`+PONG`, `:<int>`,
//! `$<len>`-prefixed bulk values, `$-1` for nil, and `-<message>` for
//! errors — all CRLF-terminated.
//!
//! Decoding is **resumable at every byte boundary**: [`FrameDecoder`]
//! and [`ReplyDecoder`] buffer partial input and return `Ok(None)` until
//! a complete frame is available, never consuming a partial one. Frames
//! that cannot be valid — oversized bulk strings or counts, malformed
//! headers, missing terminators — surface as a typed [`ProtoError`]
//! (connection-fatal), while *well-formed* frames carrying a bad command
//! (unknown verb, wrong arity) decode fine and fail at
//! [`Command::parse`] with an error string the server returns as a
//! normal `-ERR` reply, keeping the connection alive.

/// Largest bulk string (key or value) a frame may carry.
pub const MAX_BULK: usize = 1 << 20;
/// Largest argument count a request array may carry (`SESSION c s SET
/// k v` is 6).
pub const MAX_ARGS: usize = 16;
/// Longest `*…`/`$…`/`:…` header line (excluding CRLF) before the frame
/// is declared corrupt: 1 marker byte + 20 digits fits every valid case.
const MAX_LINE: usize = 32;

/// Error replies carry a whole human-readable message on the header
/// line, so they get a larger (but still bounded) line budget.
const MAX_ERR_LINE: usize = 256;

/// Typed decode failure: the byte stream cannot be a valid frame. These
/// are connection-fatal — resynchronizing inside a corrupt RESP stream
/// is guesswork, so the server replies once and hangs up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// A length field exceeds the protocol limit.
    Oversized {
        /// Which limit was exceeded ("bulk string", "argument count").
        what: &'static str,
        /// The length the frame claimed.
        len: usize,
        /// The limit it exceeded.
        max: usize,
    },
    /// The stream is structurally invalid (bad marker byte, non-decimal
    /// length, missing CRLF terminator, header line too long).
    Corrupt {
        /// Which element was malformed.
        what: &'static str,
        /// What was wrong with it.
        detail: &'static str,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversized { what, len, max } => {
                write!(f, "{what} of {len} exceeds the limit of {max}")
            }
            ProtoError::Corrupt { what, detail } => write!(f, "corrupt {what}: {detail}"),
        }
    }
}

impl std::error::Error for ProtoError {}

fn corrupt(what: &'static str, detail: &'static str) -> ProtoError {
    ProtoError::Corrupt { what, detail }
}

/// One client request, decoded. This is the *single* command vocabulary
/// of the system: the TCP server executes it against the durable engine
/// and the closed-loop memcached simulation generates and executes the
/// very same enum (through the same wire codec), so the two paths cannot
/// drift.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Liveness probe; replies `+PONG` without touching the heap.
    Ping,
    /// KV lookup; replies the value or nil.
    Get {
        /// The key to look up.
        key: Vec<u8>,
    },
    /// KV insert/overwrite; replies `+OK`.
    Set {
        /// The key to write.
        key: Vec<u8>,
        /// The value to store.
        value: Vec<u8>,
    },
    /// KV removal; replies `:1` if the key existed, `:0` otherwise.
    Del {
        /// The key to remove.
        key: Vec<u8>,
    },
    /// Atomic counter increment over an ASCII-decimal value (absent
    /// counts as 0); replies the new value as `:<int>`.
    Incr {
        /// The counter key.
        key: Vec<u8>,
    },
    /// Pushes a value onto the durable list; replies `:<id>` with the
    /// monotone id assigned to the element.
    LPush {
        /// The element payload.
        value: Vec<u8>,
    },
    /// Pops the oldest list element; replies the value or nil.
    RPop,
    /// Reads the oldest list element without removing it; replies the
    /// value or nil. Read-only: eligible for snapshot serving.
    RPeek,
    /// Exactly-once envelope: `(client, seq)` must be the session's next
    /// sequence number. A retry of the last applied `seq` returns the
    /// memoized reply without re-executing `inner`.
    Session {
        /// Durable session (client) identifier.
        client: u64,
        /// This request's sequence number (sessions start at 1).
        seq: u64,
        /// The command to execute exactly once.
        inner: Box<Command>,
    },
}

impl Command {
    /// The command as wire tokens (the inverse of [`Command::parse`]).
    pub fn tokens(&self) -> Vec<Vec<u8>> {
        match self {
            Command::Ping => vec![b"PING".to_vec()],
            Command::Get { key } => vec![b"GET".to_vec(), key.clone()],
            Command::Set { key, value } => vec![b"SET".to_vec(), key.clone(), value.clone()],
            Command::Del { key } => vec![b"DEL".to_vec(), key.clone()],
            Command::Incr { key } => vec![b"INCR".to_vec(), key.clone()],
            Command::LPush { value } => vec![b"LPUSH".to_vec(), value.clone()],
            Command::RPop => vec![b"RPOP".to_vec()],
            Command::RPeek => vec![b"RPEEK".to_vec()],
            Command::Session { client, seq, inner } => {
                let mut t = vec![
                    b"SESSION".to_vec(),
                    client.to_string().into_bytes(),
                    seq.to_string().into_bytes(),
                ];
                t.extend(inner.tokens());
                t
            }
        }
    }

    /// Encodes the command as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        encode_tokens(&self.tokens())
    }

    /// Parses a decoded frame's tokens into a command. Errors are plain
    /// strings the server returns as `-ERR` replies (the frame itself
    /// was well-formed, so the connection survives).
    ///
    /// # Errors
    ///
    /// Returns the error message for unknown verbs, wrong arity, a
    /// non-decimal `SESSION` client/seq, or a nested `SESSION`.
    pub fn parse(tokens: &[Vec<u8>]) -> Result<Command, String> {
        let Some(verb) = tokens.first() else {
            return Err("ERR empty command".into());
        };
        let verb = verb.to_ascii_uppercase();
        let arity = |n: usize| -> Result<(), String> {
            if tokens.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "ERR wrong number of arguments for '{}'",
                    String::from_utf8_lossy(&verb[..verb.len().min(32)])
                ))
            }
        };
        match verb.as_slice() {
            b"PING" => arity(1).map(|()| Command::Ping),
            b"GET" => arity(2).map(|()| Command::Get {
                key: tokens[1].clone(),
            }),
            b"SET" => arity(3).map(|()| Command::Set {
                key: tokens[1].clone(),
                value: tokens[2].clone(),
            }),
            b"DEL" => arity(2).map(|()| Command::Del {
                key: tokens[1].clone(),
            }),
            b"INCR" => arity(2).map(|()| Command::Incr {
                key: tokens[1].clone(),
            }),
            b"LPUSH" => arity(2).map(|()| Command::LPush {
                value: tokens[1].clone(),
            }),
            b"RPOP" => arity(1).map(|()| Command::RPop),
            b"RPEEK" => arity(1).map(|()| Command::RPeek),
            b"SESSION" => {
                if tokens.len() < 4 {
                    return Err("ERR SESSION needs <client> <seq> <command...>".into());
                }
                let client = parse_decimal_u64(&tokens[1])
                    .ok_or("ERR SESSION client must be a decimal u64")?;
                let seq =
                    parse_decimal_u64(&tokens[2]).ok_or("ERR SESSION seq must be a decimal u64")?;
                let inner = Command::parse(&tokens[3..])?;
                if matches!(inner, Command::Session { .. }) {
                    return Err("ERR SESSION cannot nest".into());
                }
                Ok(Command::Session {
                    client,
                    seq,
                    inner: Box::new(inner),
                })
            }
            _ => Err(format!(
                "ERR unknown command '{}'",
                String::from_utf8_lossy(&verb[..verb.len().min(32)])
            )),
        }
    }
}

/// Encodes raw tokens as one `*argc` + bulk-string frame.
pub fn encode_tokens(tokens: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + tokens.iter().map(|t| t.len() + 16).sum::<usize>());
    out.extend_from_slice(format!("*{}\r\n", tokens.len()).as_bytes());
    for t in tokens {
        out.extend_from_slice(format!("${}\r\n", t.len()).as_bytes());
        out.extend_from_slice(t);
        out.extend_from_slice(b"\r\n");
    }
    out
}

/// One server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `+OK` — the write was accepted (and, by the time the bytes reach
    /// the socket, fenced).
    Ok,
    /// `+PONG`.
    Pong,
    /// `:<int>` — counter values, removal counts, list ids.
    Int(i64),
    /// `$<len>`-prefixed bulk value, or `$-1` nil.
    Value(Option<Vec<u8>>),
    /// `-<message>` — command-level failure (`ERR …`) or backpressure
    /// (`BUSY …`). CR/LF in the message are replaced on encode.
    Err(String),
}

impl Reply {
    /// Appends the wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Reply::Ok => out.extend_from_slice(b"+OK\r\n"),
            Reply::Pong => out.extend_from_slice(b"+PONG\r\n"),
            Reply::Int(i) => out.extend_from_slice(format!(":{i}\r\n").as_bytes()),
            Reply::Value(None) => out.extend_from_slice(b"$-1\r\n"),
            Reply::Value(Some(v)) => {
                out.extend_from_slice(format!("${}\r\n", v.len()).as_bytes());
                out.extend_from_slice(v);
                out.extend_from_slice(b"\r\n");
            }
            Reply::Err(msg) => {
                out.push(b'-');
                // Bound the header line so a message that quotes client
                // input can never exceed the decoder's line budget.
                let mut cut = msg.len().min(MAX_ERR_LINE - 1);
                while !msg.is_char_boundary(cut) {
                    cut -= 1;
                }
                out.extend(
                    msg[..cut]
                        .bytes()
                        .map(|b| if b == b'\r' || b == b'\n' { b' ' } else { b }),
                );
                out.extend_from_slice(b"\r\n");
            }
        }
    }

    /// The wire encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes exactly one reply spanning all of `bytes` (used to replay
    /// memoized session replies). `None` if the bytes are not one
    /// complete reply.
    pub fn decode_exact(bytes: &[u8]) -> Option<Reply> {
        let mut dec = ReplyDecoder::new();
        dec.feed(bytes);
        match dec.next_reply() {
            Ok(Some(r)) if dec.is_empty() => Some(r),
            _ => None,
        }
    }
}

/// Strict decimal u64: non-empty, digits only, no sign, ≤ 20 chars.
fn parse_decimal_u64(bytes: &[u8]) -> Option<u64> {
    if bytes.is_empty() || bytes.len() > 20 || !bytes.iter().all(u8::is_ascii_digit) {
        return None;
    }
    std::str::from_utf8(bytes).ok()?.parse().ok()
}

/// Shared scan state for both decoders: a byte buffer plus a consumed
/// offset, compacted lazily.
#[derive(Debug, Default)]
struct ScanBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl ScanBuf {
    fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn rest(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
        if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Finds the CRLF-terminated header line starting at `from` in `buf`.
/// Returns the line body (CRLF excluded) and the cursor past the CRLF;
/// `None` if more bytes are needed.
fn scan_line(
    buf: &[u8],
    from: usize,
    what: &'static str,
    max: usize,
) -> Result<Option<(std::ops::Range<usize>, usize)>, ProtoError> {
    let window = &buf[from.min(buf.len())..];
    for (i, pair) in window.windows(2).enumerate() {
        if i > max {
            return Err(corrupt(what, "header line too long"));
        }
        if pair == b"\r\n" {
            return Ok(Some((from..from + i, from + i + 2)));
        }
    }
    if window.len() > max + 1 {
        return Err(corrupt(what, "header line too long"));
    }
    Ok(None)
}

/// Resumable request-frame decoder (server side). Feed bytes as they
/// arrive; [`FrameDecoder::next_frame`] yields one complete token array
/// at a time and never consumes a partial frame.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    scan: ScanBuf,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Buffers newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.scan.feed(bytes);
    }

    /// Whether every fed byte has been consumed by decoded frames.
    pub fn is_empty(&self) -> bool {
        self.scan.is_empty()
    }

    /// Decodes the next complete request frame, or `Ok(None)` if the
    /// buffered bytes end mid-frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] if the stream cannot be a valid frame;
    /// the decoder is then poisoned garbage and the connection should
    /// close.
    pub fn next_frame(&mut self) -> Result<Option<Vec<Vec<u8>>>, ProtoError> {
        let buf = self.scan.rest();
        let Some((line, mut cur)) = scan_line(buf, 0, "frame header", MAX_LINE)? else {
            return Ok(None);
        };
        let line = &buf[line];
        if line.first() != Some(&b'*') {
            return Err(corrupt("frame header", "expected '*<count>'"));
        }
        let argc = parse_decimal_u64(&line[1..])
            .ok_or_else(|| corrupt("frame header", "argument count is not a decimal"))?
            as usize;
        if argc == 0 {
            return Err(corrupt("frame header", "empty command array"));
        }
        if argc > MAX_ARGS {
            return Err(ProtoError::Oversized {
                what: "argument count",
                len: argc,
                max: MAX_ARGS,
            });
        }
        let mut tokens = Vec::with_capacity(argc);
        for _ in 0..argc {
            let Some((line, body_start)) = scan_line(buf, cur, "bulk header", MAX_LINE)? else {
                return Ok(None);
            };
            let line = &buf[line];
            if line.first() != Some(&b'$') {
                return Err(corrupt("bulk header", "expected '$<len>'"));
            }
            let len = parse_decimal_u64(&line[1..])
                .ok_or_else(|| corrupt("bulk header", "length is not a decimal"))?
                as usize;
            if len > MAX_BULK {
                return Err(ProtoError::Oversized {
                    what: "bulk string",
                    len,
                    max: MAX_BULK,
                });
            }
            if buf.len() < body_start + len + 2 {
                return Ok(None);
            }
            if &buf[body_start + len..body_start + len + 2] != b"\r\n" {
                return Err(corrupt("bulk string", "missing CRLF terminator"));
            }
            tokens.push(buf[body_start..body_start + len].to_vec());
            cur = body_start + len + 2;
        }
        self.scan.consume(cur);
        Ok(Some(tokens))
    }
}

/// Resumable reply decoder (client side: the load generator, tests and
/// the kill-replay battery).
#[derive(Debug, Default)]
pub struct ReplyDecoder {
    scan: ScanBuf,
}

impl ReplyDecoder {
    /// An empty decoder.
    pub fn new() -> ReplyDecoder {
        ReplyDecoder::default()
    }

    /// Buffers newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.scan.feed(bytes);
    }

    /// Whether every fed byte has been consumed by decoded replies.
    pub fn is_empty(&self) -> bool {
        self.scan.is_empty()
    }

    /// Decodes the next complete reply, or `Ok(None)` mid-reply.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] if the stream cannot be a valid reply.
    pub fn next_reply(&mut self) -> Result<Option<Reply>, ProtoError> {
        let buf = self.scan.rest();
        // Error replies put the whole message on the header line, so
        // reply headers get the error-line budget.
        let Some((line, cur)) = scan_line(buf, 0, "reply header", MAX_ERR_LINE)? else {
            return Ok(None);
        };
        let line = &buf[line];
        let (marker, body) = match line.split_first() {
            Some(p) => p,
            None => return Err(corrupt("reply header", "empty line")),
        };
        let reply = match marker {
            b'+' => match body {
                b"OK" => Reply::Ok,
                b"PONG" => Reply::Pong,
                _ => return Err(corrupt("simple string", "unknown status")),
            },
            b'-' => Reply::Err(String::from_utf8_lossy(body).into_owned()),
            b':' => {
                let (neg, digits) = match body.split_first() {
                    Some((b'-', rest)) => (true, rest),
                    _ => (false, body),
                };
                let mag = parse_decimal_u64(digits)
                    .filter(|&m| m <= i64::MAX as u64 + u64::from(neg))
                    .ok_or_else(|| corrupt("integer reply", "not a decimal"))?;
                Reply::Int(if neg {
                    (mag as i64).wrapping_neg()
                } else {
                    mag as i64
                })
            }
            b'$' => {
                if body == b"-1" {
                    Reply::Value(None)
                } else {
                    let len = parse_decimal_u64(body)
                        .ok_or_else(|| corrupt("bulk reply", "length is not a decimal"))?
                        as usize;
                    if len > MAX_BULK {
                        return Err(ProtoError::Oversized {
                            what: "bulk string",
                            len,
                            max: MAX_BULK,
                        });
                    }
                    if buf.len() < cur + len + 2 {
                        return Ok(None);
                    }
                    if &buf[cur + len..cur + len + 2] != b"\r\n" {
                        return Err(corrupt("bulk reply", "missing CRLF terminator"));
                    }
                    let v = buf[cur..cur + len].to_vec();
                    self.scan.consume(cur + len + 2);
                    return Ok(Some(Reply::Value(Some(v))));
                }
            }
            _ => return Err(corrupt("reply header", "unknown marker byte")),
        };
        self.scan.consume(cur);
        Ok(Some(reply))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cmd: Command) {
        let wire = cmd.encode();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let tokens = dec.next_frame().unwrap().unwrap();
        assert!(dec.is_empty());
        assert_eq!(Command::parse(&tokens).unwrap(), cmd);
    }

    #[test]
    fn commands_roundtrip() {
        roundtrip(Command::Ping);
        roundtrip(Command::Get { key: b"k".to_vec() });
        roundtrip(Command::Set {
            key: b"k\r\n$9".to_vec(), // framing survives protocol bytes
            value: vec![0u8; 300],
        });
        roundtrip(Command::Del { key: vec![] });
        roundtrip(Command::Incr {
            key: b"counter".to_vec(),
        });
        roundtrip(Command::LPush {
            value: b"job".to_vec(),
        });
        roundtrip(Command::RPop);
        roundtrip(Command::RPeek);
        roundtrip(Command::Session {
            client: u64::MAX,
            seq: 1,
            inner: Box::new(Command::Set {
                key: b"a".to_vec(),
                value: b"b".to_vec(),
            }),
        });
    }

    #[test]
    fn replies_roundtrip() {
        for r in [
            Reply::Ok,
            Reply::Pong,
            Reply::Int(0),
            Reply::Int(-7),
            Reply::Int(i64::MAX),
            Reply::Int(i64::MIN),
            Reply::Value(None),
            Reply::Value(Some(vec![1, 2, 3])),
            Reply::Err("ERR boom".into()),
        ] {
            assert_eq!(Reply::decode_exact(&r.encode()), Some(r));
        }
    }

    #[test]
    fn error_reply_sanitizes_crlf() {
        let r = Reply::Err("a\r\nb".into());
        assert_eq!(r.encode(), b"-a  b\r\n");
    }

    #[test]
    fn command_level_failures_keep_the_frame_valid() {
        for tokens in [
            vec![b"NOPE".to_vec()],
            vec![b"GET".to_vec()],
            vec![b"SET".to_vec(), b"k".to_vec()],
            vec![b"SESSION".to_vec(), b"x".to_vec()],
            vec![
                b"SESSION".to_vec(),
                b"1".to_vec(),
                b"nope".to_vec(),
                b"PING".to_vec(),
            ],
        ] {
            let wire = encode_tokens(&tokens);
            let mut dec = FrameDecoder::new();
            dec.feed(&wire);
            let decoded = dec.next_frame().unwrap().unwrap();
            assert!(Command::parse(&decoded).is_err());
        }
    }

    #[test]
    fn nested_session_rejected() {
        let inner = Command::Session {
            client: 1,
            seq: 1,
            inner: Box::new(Command::Ping),
        };
        let mut tokens = vec![b"SESSION".to_vec(), b"2".to_vec(), b"1".to_vec()];
        tokens.extend(inner.tokens());
        assert!(Command::parse(&tokens).unwrap_err().contains("nest"));
    }
}
