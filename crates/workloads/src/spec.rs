//! Workload identities and configurations (paper Table 2).

use std::fmt;

/// The nine workloads of Table 2.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Workload {
    /// Insert/lookup random keys in a map (8 B key, 32 B value).
    Map,
    /// Insert/lookup random keys in a set (8 B key).
    Set,
    /// Push/pop elements from the top of a stack (8 B elements).
    Stack,
    /// Enqueue/dequeue elements (8 B elements).
    Queue,
    /// Update/read random indices in a vector (8 B elements).
    Vector,
    /// Swap two random elements of a vector (canneal's kernel).
    VecSwap,
    /// Breadth-first search with a recoverable queue on a synthetic
    /// scale-free graph (stands in for the paper's Flickr crawl).
    Bfs,
    /// Travel reservation system over four recoverable maps.
    Vacation,
    /// In-memory KV store, one recoverable map, 95 % sets / 5 % gets,
    /// 16 B keys, 512 B values.
    Memcached,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub fn all() -> [Workload; 9] {
        [
            Workload::Map,
            Workload::Set,
            Workload::Queue,
            Workload::Stack,
            Workload::Vector,
            Workload::VecSwap,
            Workload::Bfs,
            Workload::Vacation,
            Workload::Memcached,
        ]
    }

    /// The figure label.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Map => "map",
            Workload::Set => "set",
            Workload::Stack => "stack",
            Workload::Queue => "queue",
            Workload::Vector => "vector",
            Workload::VecSwap => "vec-swap",
            Workload::Bfs => "bfs",
            Workload::Vacation => "vacation",
            Workload::Memcached => "memcached",
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The three systems under comparison (Fig 9's bars).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum System {
    /// MOD datastructures (this paper).
    Mod,
    /// PMDK v1.4-style undo-logging STM.
    Pmdk14,
    /// PMDK v1.5-style hybrid STM.
    Pmdk15,
}

impl System {
    /// All systems in Fig 9's bar order.
    pub fn all() -> [System; 3] {
        [System::Pmdk14, System::Pmdk15, System::Mod]
    }

    /// The figure label.
    pub fn name(&self) -> &'static str {
        match self {
            System::Mod => "MOD",
            System::Pmdk14 => "PMDK-1.4",
            System::Pmdk15 => "PMDK-1.5",
        }
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Scale parameters. The paper runs 1 M iterations on 1 M-element
/// structures; the default here is scaled down so the full figure suite
/// regenerates in minutes, and `MOD_OPS`/`MOD_PRELOAD` environment
/// variables restore paper scale (`MOD_OPS=1000000`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Measured operations per workload.
    pub ops: u64,
    /// Elements preloaded before measurement.
    pub preload: u64,
    /// Deterministic RNG seed.
    pub seed: u64,
    /// Pool capacity in bytes.
    pub capacity: u64,
}

impl ScaleConfig {
    /// The default scaled-down configuration (overridable by env).
    pub fn from_env() -> ScaleConfig {
        let ops = std::env::var("MOD_OPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20_000);
        let preload = std::env::var("MOD_PRELOAD")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(ops);
        ScaleConfig {
            ops,
            preload,
            seed: 0x5EED_CAFE,
            capacity: ScaleConfig::capacity_for(ops, preload),
        }
    }

    /// A small fixed configuration for tests.
    pub fn testing() -> ScaleConfig {
        ScaleConfig {
            ops: 300,
            preload: 300,
            seed: 42,
            capacity: 1 << 26,
        }
    }

    fn capacity_for(ops: u64, preload: u64) -> u64 {
        // Generous: ~1 KiB per op/element, floor 256 MiB.
        ((ops + preload) * 1024).max(256 << 20).next_power_of_two()
    }

    /// Bucket bits for baseline hashmaps: ~1 entry/bucket at preload.
    pub fn bucket_bits(&self) -> u32 {
        (64 - (self.preload.max(16) - 1).leading_zeros()).max(4)
    }
}

/// Deterministic xorshift* RNG for workload generation (no external
/// state, reproducible across systems so MOD and PMDK see identical
/// operation streams).
#[derive(Clone, Debug)]
pub struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> WorkloadRng {
        WorkloadRng { state: seed.max(1) }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Bernoulli trial with probability `percent`/100.
    pub fn percent(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_match_figures() {
        assert_eq!(Workload::VecSwap.name(), "vec-swap");
        assert_eq!(Workload::all().len(), 9);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = WorkloadRng::new(7);
        let mut b = WorkloadRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_below_in_range() {
        let mut r = WorkloadRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn bucket_bits_reasonable() {
        let mut c = ScaleConfig::testing();
        c.preload = 1 << 15;
        assert_eq!(c.bucket_bits(), 15);
    }

    #[test]
    fn percent_extremes() {
        let mut r = WorkloadRng::new(9);
        for _ in 0..100 {
            assert!(!r.percent(0));
            assert!(r.percent(100));
        }
    }
}
