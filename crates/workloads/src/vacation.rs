//! Vacation — the travel-reservation application kernel (WHISPER/STAMP).
//!
//! A manager object owns four recoverable maps (cars, flights, rooms,
//! customers). Each transaction either makes a reservation (reads tables,
//! writes the customer record), updates table capacity, or deletes a
//! customer — §6.2: "vacation's logic required composing failure-atomic
//! updates to multiple distinct maps that were members of the same
//! object, for which we used our Composition interface with
//! CommitSiblings". The PMDK version wraps the same updates in one
//! transaction. Mix follows Table 2: ~80 % of the key range queried,
//! 55 % user (reservation) transactions.

use crate::micro::value32;
use crate::report::{OpProfile, RunReport, Snapshot};
use crate::spec::{ScaleConfig, System, Workload, WorkloadRng};
use mod_core::{DurableDs, ErasedDs, ModHeap};
use mod_funcds::PmMap;
use mod_pmem::{Pmem, PmemConfig, PmPtr};
use mod_stm::{StmHashMap, TxHeap, TxMode};

/// Parent-object slot holding the manager's four maps.
pub const MANAGER_SLOT: usize = 0;

const N_TABLES: usize = 3; // cars, flights, rooms

/// Runs the vacation kernel.
pub fn run_vacation(sys: System, scale: &ScaleConfig) -> RunReport {
    match sys {
        System::Mod => vacation_mod(scale),
        System::Pmdk14 => vacation_stm(scale, TxMode::Undo, sys),
        System::Pmdk15 => vacation_stm(scale, TxMode::Hybrid, sys),
    }
}

struct Action {
    kind: u8, // 0 = reserve, 1 = add capacity, 2 = delete customer
    table: usize,
    item: u64,
    customer: u64,
}

fn plan(rng: &mut WorkloadRng, relations: u64) -> Action {
    // Query 80% of the key range (Table 2's query range).
    let range = (relations * 80 / 100).max(1);
    let kind = if rng.percent(55) {
        0
    } else if rng.percent(50) {
        1
    } else {
        2
    };
    Action {
        kind,
        table: rng.below(N_TABLES as u64) as usize,
        item: rng.below(range),
        customer: rng.below(relations),
    }
}

fn vacation_mod(scale: &ScaleConfig) -> RunReport {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(scale.capacity)));
    let relations = (scale.preload / 4).max(64);
    // Manager: [cars, flights, rooms, customers] under one parent.
    let mut tables: Vec<PmMap> = Vec::new();
    for t in 0..N_TABLES {
        let mut m = PmMap::empty(heap.nv_mut());
        for i in 0..relations {
            let next = m.insert(heap.nv_mut(), i, &value32(100 + t as u64));
            m.release(heap.nv_mut());
            m = next;
        }
        tables.push(m);
    }
    let mut customers = PmMap::empty(heap.nv_mut());
    let kids: Vec<ErasedDs> = tables
        .iter()
        .map(|t| t.erase())
        .chain([customers.erase()])
        .collect();
    heap.commit_siblings(MANAGER_SLOT, PmPtr::NULL, &kids, &kids);
    let mut rng = WorkloadRng::new(scale.seed);
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut profile = OpProfile {
        op: "vacation-txn".into(),
        ..OpProfile::default()
    };
    for op in 0..scale.ops {
        let a = plan(&mut rng, relations);
        let before = crate::report::OpCounters::read(heap.nv().pm());
        let old_parent = heap.read_root(MANAGER_SLOT);
        match a.kind {
            0 => {
                // Reservation: read the three tables, record the booking.
                for t in &tables {
                    let _ = t.get(heap.nv_mut(), a.item);
                }
                let mut record = Vec::with_capacity(32);
                record.extend_from_slice(&a.item.to_le_bytes());
                record.extend_from_slice(&(a.table as u64).to_le_bytes());
                record.extend_from_slice(&op.to_le_bytes());
                record.extend_from_slice(&[0u8; 8]);
                let new_customers = customers.insert(heap.nv_mut(), a.customer, &record);
                let kids: Vec<ErasedDs> = tables
                    .iter()
                    .map(|t| t.erase())
                    .chain([new_customers.erase()])
                    .collect();
                heap.commit_siblings(MANAGER_SLOT, old_parent, &kids, &[new_customers.erase()]);
                customers = new_customers;
            }
            1 => {
                // Capacity update on one table.
                let new_table =
                    tables[a.table].insert(heap.nv_mut(), a.item, &value32(op));
                let mut new_tables = tables.clone();
                new_tables[a.table] = new_table;
                let kids: Vec<ErasedDs> = new_tables
                    .iter()
                    .map(|t| t.erase())
                    .chain([customers.erase()])
                    .collect();
                heap.commit_siblings(MANAGER_SLOT, old_parent, &kids, &[new_table.erase()]);
                tables = new_tables;
            }
            _ => {
                // Delete customer (skip commit when absent: no-op FASE).
                let (new_customers, removed) =
                    customers.remove(heap.nv_mut(), a.customer);
                if removed {
                    let kids: Vec<ErasedDs> = tables
                        .iter()
                        .map(|t| t.erase())
                        .chain([new_customers.erase()])
                        .collect();
                    heap.commit_siblings(
                        MANAGER_SLOT,
                        old_parent,
                        &kids,
                        &[new_customers.erase()],
                    );
                    customers = new_customers;
                }
            }
        }
        let (f, s) = crate::report::OpCounters::read(heap.nv().pm()).since(&before);
        profile.record(f, s);
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Vacation,
        System::Mod,
        scale.ops,
        vec![profile],
    )
}

fn vacation_stm(scale: &ScaleConfig, mode: TxMode, sys: System) -> RunReport {
    let mut heap = TxHeap::format(Pmem::new(PmemConfig::benchmarking(scale.capacity)), mode);
    let relations = (scale.preload / 4).max(64);
    let bits = scale.bucket_bits().saturating_sub(2).max(4);
    let tables: Vec<StmHashMap> = (0..N_TABLES)
        .map(|t| {
            let m = StmHashMap::create(&mut heap, bits);
            for i in 0..relations {
                m.insert(&mut heap, i, &value32(100 + t as u64));
            }
            m
        })
        .collect();
    let customers = StmHashMap::create(&mut heap, bits);
    let mut rng = WorkloadRng::new(scale.seed);
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut profile = OpProfile {
        op: "vacation-txn".into(),
        ..OpProfile::default()
    };
    for op in 0..scale.ops {
        let a = plan(&mut rng, relations);
        let before = crate::report::OpCounters::read(heap.nv().pm());
        match a.kind {
            0 => {
                for t in &tables {
                    let _ = t.get(&mut heap, a.item);
                }
                let mut record = Vec::with_capacity(32);
                record.extend_from_slice(&a.item.to_le_bytes());
                record.extend_from_slice(&(a.table as u64).to_le_bytes());
                record.extend_from_slice(&op.to_le_bytes());
                record.extend_from_slice(&[0u8; 8]);
                customers.insert(&mut heap, a.customer, &record);
            }
            1 => {
                tables[a.table].insert(&mut heap, a.item, &value32(op));
            }
            _ => {
                customers.remove(&mut heap, a.customer);
            }
        }
        let (f, s) = crate::report::OpCounters::read(heap.nv().pm()).since(&before);
        profile.record(f, s);
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Vacation,
        sys,
        scale.ops,
        vec![profile],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_core::recovery::{parent_children, recover, RootSpec};
    use mod_core::RootKind;
    use mod_pmem::CrashPolicy;

    #[test]
    fn runs_all_systems() {
        let scale = ScaleConfig::testing();
        for sys in System::all() {
            let r = run_vacation(sys, &scale);
            assert_eq!(r.ops, scale.ops);
            assert!(r.fences > 0);
        }
    }

    #[test]
    fn mod_vacation_single_fence_per_committed_txn() {
        let scale = ScaleConfig::testing();
        let r = run_vacation(System::Mod, &scale);
        // Delete-of-absent-customer FASEs commit nothing, so the mean is
        // at most 1 fence/op — and well under PMDK's 5+.
        assert!(r.profiles[0].fences_per_op() <= 1.0);
        assert!(r.profiles[0].fences_per_op() > 0.5);
    }

    #[test]
    fn mod_vacation_faster_than_pmdk() {
        let scale = ScaleConfig::testing();
        let m = run_vacation(System::Mod, &scale);
        let p = run_vacation(System::Pmdk15, &scale);
        assert!(
            m.total_ns() < p.total_ns(),
            "Fig 9: vacation favours MOD ({:.0} vs {:.0})",
            m.total_ns(),
            p.total_ns()
        );
    }

    #[test]
    fn manager_recovers_with_four_children() {
        // Crash-and-recover the MOD manager mid-run.
        let scale = ScaleConfig::testing();
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
        let m1 = PmMap::empty(heap.nv_mut()).insert(heap.nv_mut(), 1, b"cars");
        let m2 = PmMap::empty(heap.nv_mut());
        let m3 = PmMap::empty(heap.nv_mut());
        let m4 = PmMap::empty(heap.nv_mut()).insert(heap.nv_mut(), 9, b"cust");
        heap.commit_siblings(
            MANAGER_SLOT,
            PmPtr::NULL,
            &[m1.erase(), m2.erase(), m3.erase(), m4.erase()],
            &[m1.erase(), m2.erase(), m3.erase(), m4.erase()],
        );
        heap.quiesce();
        let pm = heap.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let (mut h2, _) = recover(pm, &[RootSpec::new(MANAGER_SLOT, RootKind::Parent)]);
        let kids = parent_children(&mut h2, MANAGER_SLOT);
        assert_eq!(kids.len(), 4);
        let cars = PmMap::from_root(kids[0].root);
        let cust = PmMap::from_root(kids[3].root);
        assert_eq!(cars.get(h2.nv_mut(), 1), Some(b"cars".to_vec()));
        assert_eq!(cust.get(h2.nv_mut(), 9), Some(b"cust".to_vec()));
        let _ = scale;
    }
}
