//! Vacation — the travel-reservation application kernel (WHISPER/STAMP).
//!
//! A manager owns four recoverable maps (cars, flights, rooms,
//! customers). Each transaction either makes a reservation (reads tables,
//! writes the customer record), updates table capacity, or deletes a
//! customer — §6.2: "vacation's logic required composing failure-atomic
//! updates to multiple distinct maps that were members of the same
//! object". The four maps are typed roots — siblings under the root
//! directory — so each transaction is one `heap.fase(..)` with exactly
//! one ordering point. The PMDK version wraps the same updates in one
//! transaction. Mix follows Table 2: ~80 % of the key range queried,
//! 55 % user (reservation) transactions.

use crate::micro::value32;
use crate::report::{OpProfile, RunReport, Snapshot};
use crate::spec::{ScaleConfig, System, Workload, WorkloadRng};
use mod_core::{ModHeap, Root};
use mod_funcds::PmMap;
use mod_pmem::{Pmem, PmemConfig};
use mod_stm::{StmHashMap, TxHeap, TxMode};

const N_TABLES: usize = 3; // cars, flights, rooms

/// Runs the vacation kernel.
pub fn run_vacation(sys: System, scale: &ScaleConfig) -> RunReport {
    match sys {
        System::Mod => vacation_mod(scale),
        System::Pmdk14 => vacation_stm(scale, TxMode::Undo, sys),
        System::Pmdk15 => vacation_stm(scale, TxMode::Hybrid, sys),
    }
}

struct Action {
    kind: u8, // 0 = reserve, 1 = add capacity, 2 = delete customer
    table: usize,
    item: u64,
    customer: u64,
}

fn plan(rng: &mut WorkloadRng, relations: u64) -> Action {
    // Query 80% of the key range (Table 2's query range).
    let range = (relations * 80 / 100).max(1);
    let kind = if rng.percent(55) {
        0
    } else if rng.percent(50) {
        1
    } else {
        2
    };
    Action {
        kind,
        table: rng.below(N_TABLES as u64) as usize,
        item: rng.below(range),
        customer: rng.below(relations),
    }
}

/// The manager's typed roots: three capacity tables plus the customer
/// book, all siblings under the root directory.
struct Manager {
    tables: [Root<PmMap>; N_TABLES],
    customers: Root<PmMap>,
}

impl Manager {
    fn create(heap: &mut ModHeap, relations: u64) -> Manager {
        let tables = std::array::from_fn(|t| {
            let mut m = PmMap::empty(heap.nv_mut());
            for i in 0..relations {
                let next = m.insert(heap.nv_mut(), i, &value32(100 + t as u64));
                m.release(heap.nv_mut());
                m = next;
            }
            heap.publish(m)
        });
        let c0 = PmMap::empty(heap.nv_mut());
        Manager {
            tables,
            customers: heap.publish(c0),
        }
    }
}

fn vacation_mod(scale: &ScaleConfig) -> RunReport {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(scale.capacity)));
    let relations = (scale.preload / 4).max(64);
    let mgr = Manager::create(&mut heap, relations);
    let mut rng = WorkloadRng::new(scale.seed);
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut profile = OpProfile {
        op: "vacation-txn".into(),
        ..OpProfile::default()
    };
    for op in 0..scale.ops {
        let a = plan(&mut rng, relations);
        let before = crate::report::OpCounters::read(heap.nv().pm());
        match a.kind {
            0 => {
                // Reservation: read the three tables, record the booking —
                // one FASE, one ordering point.
                heap.fase(|tx| {
                    for &t in &mgr.tables {
                        let table = tx.current(t);
                        let _ = table.get(tx.nv_mut(), a.item);
                    }
                    let mut record = Vec::with_capacity(32);
                    record.extend_from_slice(&a.item.to_le_bytes());
                    record.extend_from_slice(&(a.table as u64).to_le_bytes());
                    record.extend_from_slice(&op.to_le_bytes());
                    record.extend_from_slice(&[0u8; 8]);
                    tx.update(mgr.customers, |nv, c| c.insert(nv, a.customer, &record));
                });
            }
            1 => {
                // Capacity update on one table.
                heap.fase(|tx| {
                    tx.update(mgr.tables[a.table], |nv, t| {
                        t.insert(nv, a.item, &value32(op))
                    });
                });
            }
            _ => {
                // Delete customer: absent keys make this a no-op FASE.
                heap.fase(|tx| tx.update_with(mgr.customers, |nv, c| c.remove(nv, a.customer)));
            }
        }
        let (f, s) = crate::report::OpCounters::read(heap.nv().pm()).since(&before);
        profile.record(f, s);
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Vacation,
        System::Mod,
        scale.ops,
        vec![profile],
    )
}

fn vacation_stm(scale: &ScaleConfig, mode: TxMode, sys: System) -> RunReport {
    let mut heap = TxHeap::format(Pmem::new(PmemConfig::benchmarking(scale.capacity)), mode);
    let relations = (scale.preload / 4).max(64);
    let bits = scale.bucket_bits().saturating_sub(2).max(4);
    let tables: Vec<StmHashMap> = (0..N_TABLES)
        .map(|t| {
            let m = StmHashMap::create(&mut heap, bits);
            for i in 0..relations {
                m.insert(&mut heap, i, &value32(100 + t as u64));
            }
            m
        })
        .collect();
    let customers = StmHashMap::create(&mut heap, bits);
    let mut rng = WorkloadRng::new(scale.seed);
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut profile = OpProfile {
        op: "vacation-txn".into(),
        ..OpProfile::default()
    };
    for op in 0..scale.ops {
        let a = plan(&mut rng, relations);
        let before = crate::report::OpCounters::read(heap.nv().pm());
        match a.kind {
            0 => {
                for t in &tables {
                    let _ = t.get(&mut heap, a.item);
                }
                let mut record = Vec::with_capacity(32);
                record.extend_from_slice(&a.item.to_le_bytes());
                record.extend_from_slice(&(a.table as u64).to_le_bytes());
                record.extend_from_slice(&op.to_le_bytes());
                record.extend_from_slice(&[0u8; 8]);
                customers.insert(&mut heap, a.customer, &record);
            }
            1 => {
                tables[a.table].insert(&mut heap, a.item, &value32(op));
            }
            _ => {
                customers.remove(&mut heap, a.customer);
            }
        }
        let (f, s) = crate::report::OpCounters::read(heap.nv().pm()).since(&before);
        profile.record(f, s);
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Vacation,
        sys,
        scale.ops,
        vec![profile],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::CrashPolicy;

    #[test]
    fn runs_all_systems() {
        let scale = ScaleConfig::testing();
        for sys in System::all() {
            let r = run_vacation(sys, &scale);
            assert_eq!(r.ops, scale.ops);
            assert!(r.fences > 0);
        }
    }

    #[test]
    fn mod_vacation_single_fence_per_committed_txn() {
        let scale = ScaleConfig::testing();
        let r = run_vacation(System::Mod, &scale);
        // Delete-of-absent-customer FASEs commit nothing, so the mean is
        // at most 1 fence/op — and well under PMDK's 5+.
        assert!(r.profiles[0].fences_per_op() <= 1.0);
        assert!(r.profiles[0].fences_per_op() > 0.5);
    }

    #[test]
    fn mod_vacation_faster_than_pmdk() {
        let scale = ScaleConfig::testing();
        let m = run_vacation(System::Mod, &scale);
        let p = run_vacation(System::Pmdk15, &scale);
        assert!(
            m.total_ns() < p.total_ns(),
            "Fig 9: vacation favours MOD ({:.0} vs {:.0})",
            m.total_ns(),
            p.total_ns()
        );
    }

    #[test]
    fn manager_recovers_with_four_roots() {
        // Crash-and-recover the MOD manager mid-run: the four maps come
        // back as typed roots with their kinds checked, no specs needed.
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
        let mgr = Manager::create(&mut heap, 8);
        heap.fase(|tx| {
            tx.update(mgr.tables[0], |nv, t| t.insert(nv, 1, b"cars"));
            tx.update(mgr.customers, |nv, c| c.insert(nv, 9, b"cust"));
        });
        heap.quiesce();
        let pm = heap.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let (h2, _) = ModHeap::open(pm);
        assert_eq!(h2.root_count(), 4);
        let cars: Root<PmMap> = h2.open_root(0);
        let cust: Root<PmMap> = h2.open_root(3);
        assert_eq!(
            h2.current(cars).peek_get(h2.nv(), 1),
            Some(b"cars".to_vec())
        );
        assert_eq!(
            h2.current(cust).peek_get(h2.nv(), 9),
            Some(b"cust".to_vec())
        );
    }
}
