//! # mod-workloads — the paper's workloads (Table 2)
//!
//! Drivers for the six microbenchmarks (map, set, stack, queue, vector,
//! vec-swap) and three applications (bfs, vacation, memcached) of the MOD
//! paper, each runnable on three systems: MOD datastructures, and the
//! PMDK v1.4-/v1.5-style STM baselines. Every run returns a [`RunReport`]
//! with the measurements behind the paper's figures: the time breakdown
//! (Figs 2, 9), flush/fence profiles per operation (Fig 10), L1D miss
//! counters (Fig 11) and allocator statistics (Table 3).
//!
//! ## Example
//!
//! ```
//! use mod_workloads::{run_workload, ScaleConfig, System, Workload};
//!
//! let scale = ScaleConfig::testing();
//! let report = run_workload(Workload::Map, System::Mod, &scale);
//! assert_eq!(report.profiles[0].fences_per_op(), 1.0); // Fig 10: MOD = 1
//! ```

#![warn(missing_docs)]

pub mod concurrent;
pub mod graph;
pub mod memcached;
pub mod micro;
pub mod read_heavy;
pub mod report;
pub mod session;
pub mod spec;
pub mod vacation;

pub use concurrent::{run_host, run_pipelined, ConcurrencyConfig, ConcurrencyReport, HostReport};
pub use micro::{run_map_coalesce, run_map_hybrid};
pub use read_heavy::{
    run_host_readers, run_sim as run_read_heavy, ReadHeavyConfig, ReadHeavyReport, ReadHostReport,
};
pub use report::{OpProfile, RunReport};
pub use session::{open_session, run_ops, verify_session, Session, SessionRoots};
pub use spec::{ScaleConfig, System, Workload, WorkloadRng};

/// Runs any Table 2 workload on any system.
pub fn run_workload(w: Workload, sys: System, scale: &ScaleConfig) -> RunReport {
    match w {
        Workload::Bfs => graph::run_bfs(sys, scale),
        Workload::Vacation => vacation::run_vacation(sys, scale),
        Workload::Memcached => memcached::run_memcached(sys, scale),
        _ => micro::run_micro(w, sys, scale),
    }
}
