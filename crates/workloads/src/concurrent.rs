//! Multi-threaded producer/consumer driver over the pipelined
//! [`SharedModHeap`].
//!
//! `N` worker threads share one `DurableQueue<u64>` (the work channel)
//! and one `DurableMap<u64, u64>` (the ledger). Producers move a token
//! into both structures in one FASE; consumers take a token off the
//! queue and settle its ledger entry in one FASE. Every thread runs a
//! deterministic seeded op stream and the threads are interleaved by a
//! [`SeededRoundRobin`] turnstile, so a run is a pure function of
//! `(threads, ops, seed)` — the same property the concurrent crash tests
//! rely on.
//!
//! The interesting output is *simulated* time: per-worker shard lanes
//! overlap shadow-building work, and the pipelined commit batches all
//! concurrently staged FASEs under one `sfence`, so throughput in
//! FASEs per simulated millisecond scales with threads — the
//! structure-level version of Fig 4's flush-overlap curve
//! (`crates/bench/benches/flush_concurrency.rs` prints it).

use crate::spec::WorkloadRng;
use mod_core::{CommitMode, DurableMap, DurableQueue, SeededRoundRobin, SharedModHeap, Turn};
use mod_pmem::{PmStats, Pmem, PmemConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of one pipelined concurrency run.
#[derive(Clone, Debug)]
pub struct ConcurrencyConfig {
    /// Worker threads (= shards).
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Ledger entries preloaded before measurement. A realistic working
    /// set makes traversal reads miss the caches — that read work is
    /// per-thread parallel work, as in the paper's workloads (Table 2
    /// preloads 1 M elements).
    pub preload: u64,
    /// Simulated application compute per operation, charged to the
    /// worker's own lane (DRAM-side work: request parsing, hashing,
    /// business logic). The paper's applications all carry such work —
    /// Fig 2 shows flushing is a *fraction* of execution time, not all
    /// of it — and it is exactly the component that overlaps across
    /// threads while the shared flush drain does not. Set 0 for a pure
    /// PM-stress profile (which is drain-bandwidth-bound and cannot
    /// scale past the WPQ bandwidth on any system).
    pub app_ns_per_op: f64,
    /// Seed for both the op streams and the scheduler interleaving.
    pub seed: u64,
    /// Pool capacity in bytes.
    pub capacity: u64,
}

impl ConcurrencyConfig {
    /// A CI-friendly configuration: ~memcached-shaped ops (request
    /// parse + key hash before the update, response assembly after,
    /// ≈ 45 DRAM accesses of app work per op) over a preloaded ledger.
    pub fn testing(threads: usize) -> ConcurrencyConfig {
        ConcurrencyConfig {
            threads,
            ops_per_thread: 300,
            preload: 4_000,
            app_ns_per_op: 3_600.0,
            seed: 42,
            capacity: 1 << 27,
        }
    }
}

/// Measurements of one pipelined concurrency run.
#[derive(Clone, Debug)]
pub struct ConcurrencyReport {
    /// Worker threads.
    pub threads: usize,
    /// FASEs staged (including no-op consumes of an empty queue).
    pub fases: u64,
    /// Batches committed — each cost exactly one ordering point.
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: usize,
    /// PM activity during the measured phase (global, all shards).
    pub pm: PmStats,
    /// Worker-lane PM counters rolled up (per-lane overlap accounting).
    pub lanes: PmStats,
    /// Simulated wall-clock nanoseconds (slowest shard lane).
    pub sim_wall_ns: f64,
    /// Queue/map state after the run (consistency checks).
    pub queue_len: u64,
    /// Entries left in the ledger map.
    pub map_len: u64,
}

impl ConcurrencyReport {
    /// Structure-level FASE throughput in FASEs per simulated
    /// millisecond.
    pub fn fases_per_sim_ms(&self) -> f64 {
        self.fases as f64 / (self.sim_wall_ns / 1e6)
    }

    /// Mean FASEs per committed batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.fases as f64 / self.batches as f64
        }
    }

    /// Mean fences per FASE (< 1 once batching amortizes the commit).
    pub fn fences_per_fase(&self) -> f64 {
        if self.fases == 0 {
            0.0
        } else {
            self.pm.fences as f64 / self.fases as f64
        }
    }

    /// Fraction of the workers' WPQ drain workload hidden under staging
    /// compute instead of stalled on at batch fences.
    pub fn overlap_ratio(&self) -> f64 {
        self.lanes.overlap_ratio()
    }

    /// Simulated wall nanoseconds per FASE.
    pub fn sim_ns_per_fase(&self) -> f64 {
        if self.fases == 0 {
            0.0
        } else {
            self.sim_wall_ns / self.fases as f64
        }
    }
}

/// Runs the producer/consumer workload at `cfg` and reports simulated
/// throughput. Deterministic in `cfg` (threads, ops, seed).
pub fn run_pipelined(cfg: &ConcurrencyConfig) -> ConcurrencyReport {
    let pm = Pmem::new(PmemConfig::benchmarking(cfg.capacity));
    let shared = SharedModHeap::create(pm, cfg.threads);
    let queue: DurableQueue<u64> = shared.setup(DurableQueue::create);
    let map: DurableMap<u64, u64> = shared.setup(DurableMap::create);
    // Preload the ledger so measured inserts traverse a populated trie
    // (cold lines, real read misses). Chunked FASEs keep setup cheap.
    shared.setup(|h| {
        for chunk in (0..cfg.preload).collect::<Vec<_>>().chunks(64) {
            h.fase(|tx| {
                for &i in chunk {
                    let k = 0x8000_0000_0000_0000 | i;
                    map.insert_in(tx, &k, &i);
                }
            });
        }
    });
    // Exclude setup (formatting, publishes, preload) from measurement.
    shared.setup(|h| h.nv_mut().pm_mut().reset_metrics());

    let sched = Arc::new(SeededRoundRobin::new(cfg.seed, cfg.threads));
    let mut handles = Vec::new();
    for w in 0..cfg.threads {
        let shared = shared.clone();
        let sched = Arc::clone(&sched);
        let ops = cfg.ops_per_thread;
        let cfg_app_ns = cfg.app_ns_per_op;
        let mut rng =
            WorkloadRng::new(cfg.seed ^ (w as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407));
        handles.push(std::thread::spawn(move || {
            for i in 0..ops {
                if sched.step(w) == Turn::Halt {
                    break;
                }
                let produce = rng.percent(60);
                // App compute brackets the durable update: request
                // parsing/hashing before, response assembly after. The
                // post-update half runs while this FASE's clwbs drain in
                // the background — the interleaving that lets the batch
                // fence pay only a residual stall.
                let pre_ns = cfg_app_ns / 2.0;
                let post_ns = cfg_app_ns - pre_ns;
                if produce {
                    // Producer FASE: move a token into queue + ledger.
                    let token = (w as u64) << 32 | i;
                    shared.fase(w, |tx| {
                        tx.nv_mut().pm_mut().charge_ns(pre_ns);
                        queue.enqueue_in(tx, &token);
                        map.insert_in(tx, &token, &(token ^ 0xFFFF));
                        tx.nv_mut().pm_mut().charge_ns(post_ns);
                    });
                } else {
                    // Consumer FASE: take a token and settle its entry.
                    shared.fase(w, |tx| {
                        tx.nv_mut().pm_mut().charge_ns(pre_ns);
                        if let Some(t) = queue.dequeue_in(tx) {
                            map.remove_in(tx, &t);
                        }
                        tx.nv_mut().pm_mut().charge_ns(post_ns);
                    });
                }
            }
            sched.finish(w);
            shared.deregister(w);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    shared.flush();

    let stats = shared.stats();
    // All timelines rolled up: worker staging activity + commit fences.
    let lanes = shared.lane_stats();
    let pm_stats = lanes.clone();
    let sim_wall_ns = shared.sim_wall_ns();
    let (queue_len, map_len) = shared.with(|h| (queue.len(h), map.len(h)));
    ConcurrencyReport {
        threads: cfg.threads,
        fases: stats.fases,
        batches: stats.batches,
        max_batch: stats.max_batch,
        pm: pm_stats,
        lanes,
        sim_wall_ns,
        queue_len,
        map_len,
    }
}

/// Measurements of one free-running host-throughput run (wall-clock
/// time on the machine actually running the simulation — the number
/// that shows the lock-free staging path scales on real cores, which
/// simulated time cannot).
#[derive(Clone, Debug)]
pub struct HostReport {
    /// Worker threads.
    pub threads: usize,
    /// FASEs staged.
    pub fases: u64,
    /// Batches committed.
    pub batches: u64,
    /// Host wall-clock nanoseconds for the op phase.
    pub host_ns: u64,
    /// Fences paid (from the commit stage's PM counters).
    pub fences: u64,
}

impl HostReport {
    /// Host nanoseconds per FASE.
    pub fn host_ns_per_op(&self) -> f64 {
        if self.fases == 0 {
            0.0
        } else {
            self.host_ns as f64 / self.fases as f64
        }
    }

    /// FASE throughput in FASEs per host millisecond.
    pub fn fases_per_host_ms(&self) -> f64 {
        self.fases as f64 / (self.host_ns as f64 / 1e6)
    }

    /// Mean FASEs per committed batch (group-commit occupancy).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.fases as f64 / self.batches as f64
        }
    }

    /// Mean fences per FASE.
    pub fn fences_per_fase(&self) -> f64 {
        if self.fases == 0 {
            0.0
        } else {
            self.fences as f64 / self.fases as f64
        }
    }
}

/// Runs the *host-throughput* workload: `threads` free-running OS
/// threads (no turnstile), each owning its own `DurableQueue` +
/// `DurableMap` pair (a sharded keyspace, as a sharded KV service would
/// run), over a [`SharedModHeap`] in blocking group-commit mode
/// (`CommitMode::Group { max_batch: threads, timeout: 5 ms }`).
///
/// Because every FASE touches only its worker's own roots, staging takes
/// no shared lock at all: the run measures the real host-side
/// parallelism of the lock-free staging path, serialized only by the
/// per-batch publish. Wall-clock numbers are machine-dependent;
/// correctness (queue/ledger consistency) is still asserted
/// deterministically.
pub fn run_host(cfg: &ConcurrencyConfig) -> HostReport {
    let pm = Pmem::new(PmemConfig::benchmarking(cfg.capacity));
    let shared = SharedModHeap::create_with(
        pm,
        cfg.threads,
        CommitMode::Group {
            max_batch: cfg.threads,
            timeout: Duration::from_millis(5),
        },
    );
    let pairs: Vec<(DurableQueue<u64>, DurableMap<u64, u64>)> = (0..cfg.threads)
        .map(|_| {
            (
                shared.setup(DurableQueue::create),
                shared.setup(DurableMap::create),
            )
        })
        .collect();
    let preload_per = cfg.preload / cfg.threads.max(1) as u64;
    shared.setup(|h| {
        for (_, map) in &pairs {
            for chunk in (0..preload_per).collect::<Vec<_>>().chunks(64) {
                h.fase(|tx| {
                    for &i in chunk {
                        let k = 0x8000_0000_0000_0000 | i;
                        map.insert_in(tx, &k, &i);
                    }
                });
            }
        }
        h.nv_mut().pm_mut().reset_metrics();
    });

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for (w, (queue, map)) in pairs.into_iter().enumerate() {
        let shared = shared.clone();
        let ops = cfg.ops_per_thread;
        let app_ns = cfg.app_ns_per_op;
        let mut rng =
            WorkloadRng::new(cfg.seed ^ (w as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407));
        handles.push(std::thread::spawn(move || {
            for i in 0..ops {
                let produce = rng.percent(60);
                let pre_ns = app_ns / 2.0;
                let post_ns = app_ns - pre_ns;
                if produce {
                    let token = (w as u64) << 32 | i;
                    shared.fase(w, |tx| {
                        tx.nv_mut().pm_mut().charge_ns(pre_ns);
                        queue.enqueue_in(tx, &token);
                        map.insert_in(tx, &token, &(token ^ 0xFFFF));
                        tx.nv_mut().pm_mut().charge_ns(post_ns);
                    });
                } else {
                    shared.fase(w, |tx| {
                        tx.nv_mut().pm_mut().charge_ns(pre_ns);
                        if let Some(t) = queue.dequeue_in(tx) {
                            map.remove_in(tx, &t);
                        }
                        tx.nv_mut().pm_mut().charge_ns(post_ns);
                    });
                }
            }
            shared.deregister(w);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    shared.flush();
    let host_ns = t0.elapsed().as_nanos() as u64;

    let stats = shared.stats();
    let fences = shared.with(|h| h.nv().pm().stats().fences);
    HostReport {
        threads: cfg.threads,
        fases: stats.fases,
        batches: stats.batches,
        host_ns,
        fences,
    }
}

/// Thread counts for the scaling curve, overridable by the
/// `MOD_TEST_THREADS` environment variable (a single count, e.g.
/// `MOD_TEST_THREADS=8`; unset runs the full `1,2,4,8` sweep). CI runs
/// the test suite once per count.
pub fn test_thread_counts() -> Vec<usize> {
    match std::env::var("MOD_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => vec![n],
        _ => vec![1, 2, 4, 8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_is_deterministic() {
        let cfg = ConcurrencyConfig {
            threads: 4,
            ops_per_thread: 50,
            preload: 500,
            app_ns_per_op: 2_400.0,
            seed: 7,
            capacity: 1 << 26,
        };
        let a = run_pipelined(&cfg);
        let b = run_pipelined(&cfg);
        assert_eq!(a.fases, b.fases);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.queue_len, b.queue_len);
        assert_eq!(a.map_len, b.map_len);
        assert_eq!(a.pm, b.pm);
        assert!((a.sim_wall_ns - b.sim_wall_ns).abs() < 1e-9);
    }

    #[test]
    fn queue_and_ledger_stay_consistent() {
        for threads in test_thread_counts() {
            let cfg = ConcurrencyConfig::testing(threads);
            let r = run_pipelined(&cfg);
            assert_eq!(
                r.map_len,
                r.queue_len + cfg.preload,
                "{threads} threads: every queued token has a ledger entry \
                 (plus the untouched preload)"
            );
            assert!(r.fases > 0);
            assert!(r.batches > 0);
            assert!(r.sim_wall_ns > 0.0);
        }
    }

    #[test]
    fn batches_fill_up_under_concurrency() {
        let r = run_pipelined(&ConcurrencyConfig::testing(8));
        assert!(
            r.mean_batch() > 4.0,
            "8 threads should batch well, got mean {:.2}",
            r.mean_batch()
        );
        assert_eq!(r.max_batch, 8);
    }

    #[test]
    fn simulated_throughput_scales_with_threads() {
        // The acceptance bar: ≥ 2.0× simulated-time speedup at 8 threads
        // vs 1. (PR 3's bar was 2.3× against a model where all simulated
        // cores shared one L1/LLC; since the lock-free staging split,
        // every worker shard has its own private cache hierarchy — as
        // real cores do — so the 8-thread run pays honest per-core
        // misses on the shared structures and the curve sits lower.)
        let base = run_pipelined(&ConcurrencyConfig::testing(1));
        let eight = run_pipelined(&ConcurrencyConfig::testing(8));
        let speedup = eight.fases_per_sim_ms() / base.fases_per_sim_ms();
        assert!(
            speedup >= 2.0,
            "expected ≥ 2.0x simulated speedup at 8 threads, got {speedup:.2}x \
             (1t: {:.0} fases/ms, 8t: {:.0} fases/ms)",
            base.fases_per_sim_ms(),
            eight.fases_per_sim_ms()
        );
    }

    #[test]
    fn host_run_group_commit_amortizes_fences() {
        // 8 free-running threads in group-commit mode: fences per FASE
        // must stay at ~1/max_batch — the ROADMAP's blocking mode, not
        // the force-drain degradation to ~1.
        let cfg = ConcurrencyConfig {
            ops_per_thread: 150,
            ..ConcurrencyConfig::testing(8)
        };
        let r = run_host(&cfg);
        assert_eq!(r.fases, 8 * 150);
        assert!(r.batches > 0);
        assert!(
            r.fences_per_fase() <= 0.2,
            "group commit must amortize fences, got {:.3}/FASE (mean batch {:.2})",
            r.fences_per_fase(),
            r.mean_batch()
        );
        assert!(r.mean_batch() >= 5.0, "batches should run nearly full");
        assert!(r.host_ns > 0);
    }

    #[test]
    fn host_throughput_scales_with_threads() {
        // Wall-clock speedup of the lock-free staging path. The hard
        // ≥2x acceptance bar is enforced by the CI host-throughput gate
        // (bench_smoke vs bench/baseline.json) on a quiet runner; here
        // we assert a conservative floor, and only when the machine
        // actually has cores to scale on.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 4 {
            eprintln!("host_throughput_scales_with_threads: skipped ({cores} cores)");
            return;
        }
        let cfg = |threads| ConcurrencyConfig {
            ops_per_thread: 400,
            ..ConcurrencyConfig::testing(threads)
        };
        let solo = run_host(&cfg(1));
        let eight = run_host(&cfg(8));
        let speedup = solo.host_ns_per_op() / eight.host_ns_per_op();
        assert!(
            speedup >= 1.3,
            "8-thread host throughput should beat 1 thread, got {speedup:.2}x \
             (1t {:.0} ns/op, 8t {:.0} ns/op)",
            solo.host_ns_per_op(),
            eight.host_ns_per_op()
        );
    }

    #[test]
    fn batched_commits_overlap_drain_with_staging() {
        // The other half of the acceptance bar: group commits must show
        // drain work genuinely hidden under staging compute.
        let r = run_pipelined(&ConcurrencyConfig::testing(8));
        assert!(
            r.overlap_ratio() > 0.0,
            "8-thread pipelined run reports no drain overlap"
        );
        assert!(r.lanes.overlap_ns > 0.0);
        assert!(
            r.fences_per_fase() < 0.5,
            "batching should amortize fences, got {:.3}/FASE",
            r.fences_per_fase()
        );
        // A single worker still overlaps drain with its own app compute.
        let solo = run_pipelined(&ConcurrencyConfig::testing(1));
        assert!(solo.overlap_ratio() > 0.0);
    }
}
