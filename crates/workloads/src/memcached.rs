//! Memcached — the KV-store application kernel.
//!
//! The paper ports memcached to keep its cache in one recoverable map
//! (§4.3.1: "memcached relies on a single recoverable map to implement
//! its cache and FASEs involve a single set operation"). Table 2's mix:
//! 95 % sets, 5 % gets, 16-byte keys, 512-byte values.
//!
//! The MOD side stores the 16-byte keys directly in a typed
//! [`DurableMap<[u8; 16], Vec<u8>>`]: the codec layer hashes the key to
//! the substrate's 64-bit key and frames the key bytes for verification —
//! the collision check a real KV store performs, which this module used
//! to hand-roll. The STM baselines keep the manual hash-and-embed scheme
//! (they model PMDK applications, which have no such codec layer).
//!
//! The MOD op stream is the **same command enum the network server
//! executes**: every simulated op is a [`mod_server::Command`] round-
//! tripped through the shared wire codec (encode → [`FrameDecoder`] →
//! parse) before it touches the heap, so the closed-loop sim and
//! `mod-server` cannot drift apart in what GET/SET mean. The roundtrip
//! is host-time only — it never touches the simulated Pmem, so the
//! gated simulated metrics are bit-identical to executing directly.

use crate::report::{OpCounters, OpProfile, RunReport, Snapshot};
use crate::spec::{ScaleConfig, System, Workload, WorkloadRng};
use mod_core::{DurableMap, ModHeap};
use mod_pmem::{Pmem, PmemConfig};
use mod_server::{Command, FrameDecoder};
use mod_stm::{StmHashMap, TxHeap, TxMode};

/// Value payload size (Table 2).
pub const VALUE_BYTES: usize = 512;

/// A 16-byte key and its 64-bit map key.
fn gen_key(rng: &mut WorkloadRng, key_space: u64) -> ([u8; 16], u64) {
    let a = rng.below(key_space);
    let b = a.wrapping_mul(0x9E3779B97F4A7C15); // second half derived
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&a.to_le_bytes());
    key[8..].copy_from_slice(&b.to_le_bytes());
    // 64-bit map key: mix of both halves.
    let mut z = a ^ b.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    (key, z ^ (z >> 31))
}

/// Value for the STM paths: the key is embedded at the head so their
/// hand-rolled `verify_get` can check it.
fn build_value(key: &[u8; 16], payload_seed: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE_BYTES];
    v[..16].copy_from_slice(key);
    v[16..24].copy_from_slice(&payload_seed.to_le_bytes());
    v
}

/// Value for the MOD path: the codec layer already frames and verifies
/// the key, so embedding it again would double-store it and inflate
/// MOD's write traffic relative to the baselines.
fn build_payload(payload_seed: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE_BYTES];
    v[..8].copy_from_slice(&payload_seed.to_le_bytes());
    v
}

/// Round-trips a command through the server's wire codec: encode to the
/// RESP-style frame, feed it to the resumable decoder, parse the tokens
/// back. What comes out is what a real connection would execute.
fn wire_roundtrip(cmd: &Command) -> Command {
    let mut dec = FrameDecoder::new();
    dec.feed(&cmd.encode());
    let tokens = dec
        .next_frame()
        .expect("sim-generated frame is well formed")
        .expect("one complete frame");
    assert!(dec.is_empty(), "one command encodes to exactly one frame");
    Command::parse(&tokens).expect("sim-generated command parses")
}

fn verify_get(key: &[u8; 16], stored: Option<&[u8]>) -> bool {
    match stored {
        Some(bytes) => &bytes[..16] == key,
        None => false,
    }
}

/// Runs the memcached kernel: 95 % sets / 5 % gets.
pub fn run_memcached(sys: System, scale: &ScaleConfig) -> RunReport {
    match sys {
        System::Mod => memcached_mod(scale),
        System::Pmdk14 => memcached_stm(scale, TxMode::Undo, sys),
        System::Pmdk15 => memcached_stm(scale, TxMode::Hybrid, sys),
    }
}

fn memcached_mod(scale: &ScaleConfig) -> RunReport {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(scale.capacity)));
    let map: DurableMap<[u8; 16], Vec<u8>> = DurableMap::create(&mut heap);
    let mut rng = WorkloadRng::new(scale.seed);
    let key_space = scale.preload.max(16);
    for _ in 0..scale.preload {
        let (key, _) = gen_key(&mut rng, key_space);
        let cmd = wire_roundtrip(&Command::Set {
            key: key.to_vec(),
            value: build_payload(0),
        });
        let Command::Set { key, value } = cmd else {
            unreachable!("SET round-trips as SET")
        };
        let key: [u8; 16] = key.try_into().expect("16-byte keys");
        map.insert(&mut heap, &key, &value);
    }
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut set = OpProfile {
        op: "memcached-set".into(),
        ..OpProfile::default()
    };
    let mut hits = 0u64;
    for op in 0..scale.ops {
        let (key, _) = gen_key(&mut rng, key_space);
        if rng.percent(95) {
            let cmd = wire_roundtrip(&Command::Set {
                key: key.to_vec(),
                value: build_payload(op),
            });
            let Command::Set { key, value } = cmd else {
                unreachable!("SET round-trips as SET")
            };
            let key: [u8; 16] = key.try_into().expect("16-byte keys");
            let before = OpCounters::read(heap.nv().pm());
            map.insert(&mut heap, &key, &value);
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            set.record(f, s);
        } else {
            let cmd = wire_roundtrip(&Command::Get { key: key.to_vec() });
            let Command::Get { key } = cmd else {
                unreachable!("GET round-trips as GET")
            };
            let key: [u8; 16] = key.try_into().expect("16-byte keys");
            // Charged read path so MOD gets pay the same simulated
            // cache/time costs the STM baselines pay (Fig 9 fidelity);
            // the codec layer already verified the framed key bytes.
            #[allow(deprecated)]
            let got = map.get_mut(&mut heap, &key);
            if got.is_some() {
                hits += 1;
            }
        }
    }
    let mut report = snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Memcached,
        System::Mod,
        scale.ops,
        vec![set],
    );
    report.ops = scale.ops.max(hits); // hits folded in; ops dominates
    report
}

fn memcached_stm(scale: &ScaleConfig, mode: TxMode, sys: System) -> RunReport {
    let mut heap = TxHeap::format(Pmem::new(PmemConfig::benchmarking(scale.capacity)), mode);
    let map = StmHashMap::create(&mut heap, scale.bucket_bits());
    let mut rng = WorkloadRng::new(scale.seed);
    let key_space = scale.preload.max(16);
    for _ in 0..scale.preload {
        let (key, mk) = gen_key(&mut rng, key_space);
        map.insert(&mut heap, mk, &build_value(&key, 0));
    }
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut set = OpProfile {
        op: "memcached-set".into(),
        ..OpProfile::default()
    };
    for op in 0..scale.ops {
        let (key, mk) = gen_key(&mut rng, key_space);
        if rng.percent(95) {
            let before = OpCounters::read(heap.nv().pm());
            map.insert(&mut heap, mk, &build_value(&key, op));
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            set.record(f, s);
        } else {
            let got = map.get(&mut heap, mk);
            let _ = verify_get(&key, got.as_deref());
        }
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Memcached,
        sys,
        scale.ops,
        vec![set],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_generation_is_stable() {
        let mut a = WorkloadRng::new(5);
        let mut b = WorkloadRng::new(5);
        for _ in 0..50 {
            assert_eq!(gen_key(&mut a, 100), gen_key(&mut b, 100));
        }
    }

    #[test]
    fn value_embeds_key() {
        let key = [7u8; 16];
        let v = build_value(&key, 9);
        assert!(verify_get(&key, Some(&v)));
        assert!(!verify_get(&[8u8; 16], Some(&v)));
        assert!(!verify_get(&key, None));
        assert_eq!(v.len(), VALUE_BYTES);
    }

    #[test]
    fn wire_roundtrip_is_identity_for_sim_ops() {
        let mut rng = WorkloadRng::new(42);
        for op in 0..200u64 {
            let (key, _) = gen_key(&mut rng, 64);
            let cmds = [
                Command::Set {
                    key: key.to_vec(),
                    value: build_payload(op),
                },
                Command::Get { key: key.to_vec() },
            ];
            for cmd in cmds {
                assert_eq!(wire_roundtrip(&cmd), cmd);
            }
        }
    }

    #[test]
    fn runs_all_systems() {
        let scale = ScaleConfig::testing();
        for sys in System::all() {
            let r = run_memcached(sys, &scale);
            assert!(r.total_ns() > 0.0, "{sys}");
            assert!(r.profiles[0].count > 0);
        }
    }

    #[test]
    fn mod_memcached_faster_and_single_fence() {
        let scale = ScaleConfig::testing();
        let m = run_memcached(System::Mod, &scale);
        let p = run_memcached(System::Pmdk15, &scale);
        assert!((m.profiles[0].fences_per_op() - 1.0).abs() < 1e-9);
        assert!(
            m.total_ns() < p.total_ns(),
            "Fig 9: memcached favours MOD ({:.0} vs {:.0})",
            m.total_ns(),
            p.total_ns()
        );
    }
}
