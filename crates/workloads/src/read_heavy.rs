//! Read-heavy (95/5) driver over MVCC snapshot reads.
//!
//! The workload models a read-mostly KV service on the pipelined
//! [`SharedModHeap`]: writer threads push puts through the commit
//! pipeline while reader threads serve gets from **epoch-stamped
//! snapshots** ([`SharedModHeap::snapshot`]) — wait-free, off the commit
//! pipeline entirely (no staging lane, no handoff push, no fence).
//!
//! Two modes, mirroring `concurrent.rs`:
//!
//! * [`run_sim`] — deterministic: writers and one reader interleave
//!   under a [`SeededRoundRobin`] turnstile, so every reported number
//!   (including how often the reader's held view lagged the published
//!   epoch) is a pure function of the config. These feed the
//!   bit-identical `read95.*` CI gate keys.
//! * [`run_host_readers`] — free-running: `readers` OS threads traverse
//!   snapshots at full speed while writers keep committing. Because
//!   readers never touch a lock or fence, read throughput scales with
//!   reader count — the `host_read95.*` gate keys and the CI
//!   read-scaling step assert it.

use crate::spec::WorkloadRng;
use mod_core::{CommitMode, DurableMap, SeededRoundRobin, SharedModHeap, Turn};
use mod_pmem::{Pmem, PmemConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of one read-heavy run.
#[derive(Clone, Debug)]
pub struct ReadHeavyConfig {
    /// Writer threads (= heap worker shards).
    pub writers: usize,
    /// Put FASEs per writer (sim mode) or total put budget (host mode
    /// writers loop until the readers finish, so this is a floor).
    pub writer_ops: u64,
    /// Snapshot-read turns the reader takes (sim mode) / gets per reader
    /// thread (host mode).
    pub reader_reads: u64,
    /// Gets per reader turn — with the 1 put per writer turn this sets
    /// the read/write mix (19 ≈ 95/5 at one writer).
    pub reads_per_turn: u64,
    /// Working-set keys, preloaded before measurement.
    pub keys: u64,
    /// The sim-mode reader re-pins a fresh snapshot every this many
    /// turns; in between it deliberately reads a stale view, which is
    /// what the `epochs_lagged` metric counts.
    pub refresh_every: u64,
    /// Seed for op streams and the turnstile interleaving.
    pub seed: u64,
    /// Pool capacity in bytes.
    pub capacity: u64,
}

impl ReadHeavyConfig {
    /// A CI-friendly configuration: 95/5 get/put over a preloaded map.
    pub fn testing() -> ReadHeavyConfig {
        ReadHeavyConfig {
            writers: 2,
            writer_ops: 150,
            reader_reads: 300,
            reads_per_turn: 19,
            keys: 2_000,
            refresh_every: 4,
            seed: 42,
            capacity: 1 << 27,
        }
    }
}

/// Measurements of one deterministic (turnstile) read-heavy run.
#[derive(Clone, Debug)]
pub struct ReadHeavyReport {
    /// Put FASEs staged by the writers.
    pub fases: u64,
    /// Gets served from snapshot views.
    pub reads: u64,
    /// Reader turns served from a view whose epoch lagged the published
    /// epoch (the reader held it across writer commits). Deterministic:
    /// a pure function of the config.
    pub epochs_lagged: u64,
    /// Epoch published when the run finished.
    pub final_epoch: u64,
    /// Simulated wall-clock nanoseconds (writer timelines; snapshot
    /// reads charge nothing).
    pub sim_wall_ns: f64,
}

impl ReadHeavyReport {
    /// Simulated wall nanoseconds per operation (puts + gets). Readers
    /// are free in simulated time, so this falls as the read share
    /// grows — the point of serving reads off the pipeline.
    pub fn sim_ns_per_op(&self) -> f64 {
        let ops = self.fases + self.reads;
        if ops == 0 {
            0.0
        } else {
            self.sim_wall_ns / ops as f64
        }
    }
}

/// Runs the deterministic 95/5 workload: `cfg.writers` writer threads
/// and one snapshot reader interleaved by a seeded turnstile. Every
/// field of the report is a pure function of `cfg`.
pub fn run_sim(cfg: &ReadHeavyConfig) -> ReadHeavyReport {
    let pm = Pmem::new(PmemConfig::benchmarking(cfg.capacity));
    let shared = SharedModHeap::create(pm, cfg.writers);
    let map: DurableMap<u64, u64> = shared.setup(DurableMap::create);
    preload(&shared, &map, cfg.keys);
    shared.setup(|h| h.nv_mut().pm_mut().reset_metrics());

    // Participants: writers 0..writers, reader = writers.
    let sched = Arc::new(SeededRoundRobin::new(cfg.seed, cfg.writers + 1));
    let reads = Arc::new(AtomicU64::new(0));
    let lagged = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for w in 0..cfg.writers {
            let shared = shared.clone();
            let sched = Arc::clone(&sched);
            let mut rng = WorkloadRng::new(writer_seed(cfg.seed, w));
            let (ops, keys) = (cfg.writer_ops, cfg.keys);
            s.spawn(move || {
                for i in 0..ops {
                    if sched.step(w) == Turn::Halt {
                        break;
                    }
                    let k = rng.next_u64() % keys;
                    shared.fase(w, |tx| map.insert_in(tx, &k, &i));
                }
                sched.finish(w);
                shared.deregister(w);
            });
        }
        {
            let shared = shared.clone();
            let sched = Arc::clone(&sched);
            let (reads, lagged) = (Arc::clone(&reads), Arc::clone(&lagged));
            let mut rng = WorkloadRng::new(writer_seed(cfg.seed, cfg.writers));
            let cfg = cfg.clone();
            s.spawn(move || {
                let mut view = shared.snapshot();
                for turn in 0..cfg.reader_reads {
                    if sched.step(cfg.writers) == Turn::Halt {
                        break;
                    }
                    if turn % cfg.refresh_every == 0 {
                        drop(view);
                        view = shared.snapshot();
                    }
                    // The turnstile token freezes the commit stage while
                    // the reader runs, so this comparison is exact and
                    // deterministic: the view lags iff writers published
                    // since it was pinned.
                    if shared.snapshot_epoch() > view.epoch() {
                        lagged.fetch_add(1, Ordering::Relaxed);
                    }
                    for _ in 0..cfg.reads_per_turn {
                        let k = rng.next_u64() % cfg.keys;
                        std::hint::black_box(view.map_get(&map, &k));
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                }
                sched.finish(cfg.writers);
            });
        }
    });
    shared.flush();

    ReadHeavyReport {
        fases: shared.stats().fases,
        reads: reads.load(Ordering::Relaxed),
        epochs_lagged: lagged.load(Ordering::Relaxed),
        final_epoch: shared.snapshot_epoch(),
        sim_wall_ns: shared.sim_wall_ns(),
    }
}

/// Measurements of one free-running host run at a given reader count.
#[derive(Clone, Debug)]
pub struct ReadHostReport {
    /// Snapshot-reader threads.
    pub readers: usize,
    /// Gets served from snapshots (all readers).
    pub reads: u64,
    /// Put FASEs the writers committed while the readers ran.
    pub writer_fases: u64,
    /// Host wall-clock nanoseconds until the last reader finished.
    pub host_ns: u64,
}

impl ReadHostReport {
    /// Host nanoseconds per snapshot get.
    pub fn ns_per_read(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.host_ns as f64 / self.reads as f64
        }
    }

    /// Aggregate read throughput in gets per host millisecond.
    pub fn reads_per_host_ms(&self) -> f64 {
        self.reads as f64 / (self.host_ns as f64 / 1e6)
    }
}

/// Runs the free-running host workload: `readers` snapshot-reader
/// threads each serving `cfg.reader_reads` gets while `cfg.writers`
/// writer threads keep committing puts (group commit) until the readers
/// finish. Wall-clock numbers are machine-dependent; the scaling claim
/// (readers never serialize) is what the CI gate asserts.
pub fn run_host_readers(cfg: &ReadHeavyConfig, readers: usize) -> ReadHostReport {
    let pm = Pmem::new(PmemConfig::benchmarking(cfg.capacity));
    let shared = SharedModHeap::create_with(
        pm,
        cfg.writers,
        CommitMode::Group {
            max_batch: cfg.writers,
            timeout: Duration::from_millis(1),
        },
    );
    let map: DurableMap<u64, u64> = shared.setup(DurableMap::create);
    preload(&shared, &map, cfg.keys);
    shared.setup(|h| h.nv_mut().pm_mut().reset_metrics());

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let mut host_ns = 0u64;
    std::thread::scope(|s| {
        for w in 0..cfg.writers {
            let shared = shared.clone();
            let stop = Arc::clone(&stop);
            let mut rng = WorkloadRng::new(writer_seed(cfg.seed, w));
            let keys = cfg.keys;
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.next_u64() % keys;
                    shared.fase(w, |tx| map.insert_in(tx, &k, &i));
                    i += 1;
                }
                shared.deregister(w);
            });
        }
        let mut handles = Vec::new();
        for r in 0..readers {
            let shared = shared.clone();
            let reads = Arc::clone(&reads);
            let mut rng = WorkloadRng::new(writer_seed(cfg.seed ^ 0x5EED, r));
            let cfg = cfg.clone();
            handles.push(s.spawn(move || {
                let mut done = 0u64;
                while done < cfg.reader_reads {
                    let view = shared.snapshot();
                    for _ in 0..cfg.reads_per_turn.min(cfg.reader_reads - done) {
                        let k = rng.next_u64() % cfg.keys;
                        std::hint::black_box(view.map_get(&map, &k));
                        done += 1;
                    }
                }
                reads.fetch_add(done, Ordering::Relaxed);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        host_ns = t0.elapsed().as_nanos() as u64;
        stop.store(true, Ordering::Relaxed);
    });
    shared.flush();

    ReadHostReport {
        readers,
        reads: reads.load(Ordering::Relaxed),
        writer_fases: shared.stats().fases,
        host_ns: host_ns.max(1),
    }
}

fn preload(shared: &SharedModHeap, map: &DurableMap<u64, u64>, keys: u64) {
    shared.setup(|h| {
        for chunk in (0..keys).collect::<Vec<_>>().chunks(64) {
            h.fase(|tx| {
                for &k in chunk {
                    map.insert_in(tx, &k, &k);
                }
            });
        }
    });
}

fn writer_seed(seed: u64, w: usize) -> u64 {
    seed ^ (w as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_run_is_deterministic() {
        let cfg = ReadHeavyConfig::testing();
        let a = run_sim(&cfg);
        let b = run_sim(&cfg);
        assert_eq!(a.fases, b.fases);
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.epochs_lagged, b.epochs_lagged);
        assert_eq!(a.final_epoch, b.final_epoch);
        assert!((a.sim_wall_ns - b.sim_wall_ns).abs() < 1e-9);
    }

    #[test]
    fn reader_lags_and_refreshes() {
        let r = run_sim(&ReadHeavyConfig::testing());
        assert!(r.reads > 0);
        assert!(
            r.epochs_lagged > 0,
            "a view held across {} writer turns never lagged",
            ReadHeavyConfig::testing().refresh_every
        );
        assert!(
            r.epochs_lagged < r.reader_turns_upper_bound(),
            "every turn lagged — refresh is not re-pinning"
        );
        assert!(r.final_epoch > 0);
    }

    impl ReadHeavyReport {
        fn reader_turns_upper_bound(&self) -> u64 {
            // reads / reads_per_turn of the testing config.
            self.reads / ReadHeavyConfig::testing().reads_per_turn + 1
        }
    }

    #[test]
    fn host_run_reports_reads() {
        let cfg = ReadHeavyConfig {
            writer_ops: 50,
            reader_reads: 200,
            ..ReadHeavyConfig::testing()
        };
        let r = run_host_readers(&cfg, 2);
        assert_eq!(r.reads, 2 * 200);
        assert!(r.writer_fases > 0, "writers never committed");
        assert!(r.ns_per_read() > 0.0);
    }

    /// The CI read-scaling step (thread-matrix job, threads == 8) runs
    /// exactly this test in release mode: aggregate snapshot-read
    /// throughput must at least double from 1 to 8 reader threads, since
    /// readers share no lock, no lane, and no fence. Skipped on small
    /// machines, like the host_* gate keys.
    #[test]
    fn reader_throughput_scales_1_to_8() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 4 {
            eprintln!("reader_throughput_scales_1_to_8: skipped ({cores} cores)");
            return;
        }
        let cfg = ReadHeavyConfig {
            reader_reads: 40_000,
            keys: 4_000,
            ..ReadHeavyConfig::testing()
        };
        let solo = run_host_readers(&cfg, 1);
        let eight = run_host_readers(&cfg, 8);
        let speedup = eight.reads_per_host_ms() / solo.reads_per_host_ms();
        assert!(
            speedup >= 2.0,
            "8 wait-free readers should at least double 1, got {speedup:.2}x \
             (1r {:.0} ns/read, 8r {:.0} ns/read)",
            solo.ns_per_read(),
            eight.ns_per_read()
        );
    }
}
