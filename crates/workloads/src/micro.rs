//! Microbenchmark drivers (Table 2: map, set, stack, queue, vector,
//! vec-swap) for MOD and the two PMDK-style baselines.
//!
//! Every run preloads the structure (excluded from measurement), then
//! executes the operation mix while profiling flushes/fences per
//! operation kind (Fig 10) and the time/cache counters (Figs 2, 9, 11).

use crate::report::{OpCounters, OpProfile, RunReport, Snapshot};
use crate::spec::{ScaleConfig, System, Workload, WorkloadRng};
use mod_core::{ModHeap, Root};
use mod_funcds::{PmMap, PmQueue, PmSet, PmStack, PmVector};
use mod_pmem::{Pmem, PmemConfig};
use mod_stm::{StmHashMap, StmQueue, StmStack, StmVector, TxHeap, TxMode};

/// Minimum vector size: the paper's vector has 1 M elements, deep enough
/// (4 radix levels) that path copies and cache misses dominate — tiny
/// vectors would hide the tree-vs-array contrast of Figs 9–11.
pub const VECTOR_MIN_PRELOAD: u64 = 65_536;

/// 32-byte map/set value embedding the key (Table 2's 8 B key + 32 B
/// value configuration).
pub fn value32(key: u64) -> [u8; 32] {
    let mut v = [0xA5u8; 32];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v
}

fn tx_mode(sys: System) -> TxMode {
    match sys {
        System::Pmdk14 => TxMode::Undo,
        System::Pmdk15 => TxMode::Hybrid,
        System::Mod => unreachable!("MOD runs do not use the STM engine"),
    }
}

fn bench_pm(scale: &ScaleConfig) -> Pmem {
    Pmem::new(PmemConfig::benchmarking(scale.capacity))
}

/// Runs one of the six microbenchmarks.
///
/// # Panics
///
/// Panics if `w` is not a microbenchmark (bfs/vacation/memcached live in
/// their own modules).
pub fn run_micro(w: Workload, sys: System, scale: &ScaleConfig) -> RunReport {
    match (w, sys) {
        (Workload::Map, System::Mod) => mod_map(scale, false),
        (Workload::Map, _) => stm_map(scale, tx_mode(sys), sys, false),
        (Workload::Set, System::Mod) => mod_map(scale, true),
        (Workload::Set, _) => stm_map(scale, tx_mode(sys), sys, true),
        (Workload::Stack, System::Mod) => mod_stack(scale),
        (Workload::Stack, _) => stm_stack(scale, tx_mode(sys), sys),
        (Workload::Queue, System::Mod) => mod_queue(scale),
        (Workload::Queue, _) => stm_queue(scale, tx_mode(sys), sys),
        (Workload::Vector, System::Mod) => mod_vector(scale, false),
        (Workload::Vector, _) => stm_vector(scale, tx_mode(sys), sys, false),
        (Workload::VecSwap, System::Mod) => mod_vector(scale, true),
        (Workload::VecSwap, _) => stm_vector(scale, tx_mode(sys), sys, true),
        _ => panic!("{w} is not a microbenchmark"),
    }
}

// ---------------------------------------------------------------------
// map / set
// ---------------------------------------------------------------------

/// One set-insert FASE: a duplicate insert builds no shadow and pays no
/// ordering point; returns whether the key was new.
fn set_insert_fase(heap: &mut ModHeap, set: Root<PmSet>, key: u64) -> bool {
    heap.fase(|tx| {
        let cur = tx.current(set);
        if cur.contains(tx.nv_mut(), key) {
            return false;
        }
        tx.update_with(set, |nv, s| s.insert(nv, key));
        true
    })
}

fn mod_map(scale: &ScaleConfig, as_set: bool) -> RunReport {
    mod_map_on(bench_pm(scale), scale, as_set)
}

fn mod_map_on(pm: Pmem, scale: &ScaleConfig, as_set: bool) -> RunReport {
    let (workload, label) = if as_set {
        (Workload::Set, "set-insert")
    } else {
        (Workload::Map, "map-insert")
    };
    let mut heap = ModHeap::create(pm);
    let mut rng = WorkloadRng::new(scale.seed);
    let key_space = (scale.preload * 2).max(16);
    let mut profile = OpProfile {
        op: label.to_string(),
        ..OpProfile::default()
    };
    if as_set {
        let s0 = PmSet::empty(heap.nv_mut());
        let set = heap.publish(s0);
        for _ in 0..scale.preload {
            let k = rng.below(key_space);
            set_insert_fase(&mut heap, set, k);
        }
        let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
        for _ in 0..scale.ops {
            let k = rng.below(key_space);
            let before = OpCounters::read(heap.nv().pm());
            let added = set_insert_fase(&mut heap, set, k);
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            if added {
                // Fig 10 profiles update operations; duplicate inserts
                // are no-op FASEs with no flushes or fences.
                profile.record(f, s);
            }
            let probe = rng.below(key_space);
            let _ = heap.current(set).contains(heap.nv_mut(), probe);
        }
        snap.finish(
            heap.nv().pm(),
            heap.nv().stats().cumulative_alloc_bytes,
            heap.nv().stats().live_bytes,
            workload,
            System::Mod,
            scale.ops,
            vec![profile],
        )
    } else {
        let m0 = PmMap::empty(heap.nv_mut());
        let map = heap.publish(m0);
        for _ in 0..scale.preload {
            let k = rng.below(key_space);
            heap.fase(|tx| tx.update(map, |nv, m| m.insert(nv, k, &value32(k))));
        }
        let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
        for _ in 0..scale.ops {
            let k = rng.below(key_space);
            let before = OpCounters::read(heap.nv().pm());
            heap.fase(|tx| tx.update(map, |nv, m| m.insert(nv, k, &value32(k))));
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            profile.record(f, s);
            let probe = rng.below(key_space);
            let _ = heap.current(map).get(heap.nv_mut(), probe);
        }
        snap.finish(
            heap.nv().pm(),
            heap.nv().stats().cumulative_alloc_bytes,
            heap.nv().stats().live_bytes,
            workload,
            System::Mod,
            scale.ops,
            vec![profile],
        )
    }
}

/// The map microbenchmark with the fence-epoch flush cache forced on or
/// off — the A/B behind the bench gate's `coalesce.*` keys. Same key
/// mix, op count and fence schedule either way (elision drops `clwb`s,
/// never ordering points); only the effective-writeback count moves.
/// Fully deterministic in the simulation, so the on-run's flushes/op
/// gates bit-exactly.
pub fn run_map_coalesce(scale: &ScaleConfig, coalesce: bool) -> RunReport {
    let cfg = PmemConfig {
        coalesce_flushes: coalesce,
        ..PmemConfig::benchmarking(scale.capacity)
    };
    mod_map_on(Pmem::new(cfg), scale, false)
}

/// The map microbenchmark on MOD under [`PersistPolicy::Hybrid`]
/// ("Don't Persist All"): same key mix and op count as the `Full` run in
/// [`run_micro`], but the interior index nodes live in the volatile node
/// cache and only compact spine records are persisted. Fully
/// deterministic in the simulation, so its flushes/op gates bit-exactly.
///
/// [`PersistPolicy::Hybrid`]: mod_core::PersistPolicy::Hybrid
pub fn run_map_hybrid(scale: &ScaleConfig) -> RunReport {
    use mod_core::{DurableMap, PersistPolicy};
    let mut heap = ModHeap::create(bench_pm(scale));
    let map: DurableMap<u64, Vec<u8>> = heap.root(0).policy(PersistPolicy::Hybrid).create();
    let mut rng = WorkloadRng::new(scale.seed);
    let key_space = (scale.preload * 2).max(16);
    let mut profile = OpProfile {
        op: "map-insert".to_string(),
        ..OpProfile::default()
    };
    for _ in 0..scale.preload {
        let k = rng.below(key_space);
        map.insert(&mut heap, &k, &value32(k).to_vec());
    }
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    for _ in 0..scale.ops {
        let k = rng.below(key_space);
        let before = OpCounters::read(heap.nv().pm());
        map.insert(&mut heap, &k, &value32(k).to_vec());
        let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
        profile.record(f, s);
        let probe = rng.below(key_space);
        #[allow(deprecated)]
        let _ = map.get_mut(&mut heap, &probe); // charged probe, as in the Full run
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Map,
        System::Mod,
        scale.ops,
        vec![profile],
    )
}

fn stm_map(scale: &ScaleConfig, mode: TxMode, sys: System, as_set: bool) -> RunReport {
    let (workload, label) = if as_set {
        (Workload::Set, "set-insert")
    } else {
        (Workload::Map, "map-insert")
    };
    let mut heap = TxHeap::format(bench_pm(scale), mode);
    let map = StmHashMap::create(&mut heap, scale.bucket_bits());
    let mut rng = WorkloadRng::new(scale.seed);
    let key_space = (scale.preload * 2).max(16);
    for _ in 0..scale.preload {
        let k = rng.below(key_space);
        let v = if as_set {
            Vec::new()
        } else {
            value32(k).to_vec()
        };
        map.insert(&mut heap, k, &v);
    }
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut profile = OpProfile {
        op: label.to_string(),
        ..OpProfile::default()
    };
    for _ in 0..scale.ops {
        let k = rng.below(key_space);
        let v = if as_set {
            Vec::new()
        } else {
            value32(k).to_vec()
        };
        let before = OpCounters::read(heap.nv().pm());
        map.insert(&mut heap, k, &v);
        let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
        profile.record(f, s);
        let _ = map.contains_key(&mut heap, rng.below(key_space));
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        workload,
        sys,
        scale.ops,
        vec![profile],
    )
}

// ---------------------------------------------------------------------
// stack / queue
// ---------------------------------------------------------------------

fn mod_stack(scale: &ScaleConfig) -> RunReport {
    let mut heap = ModHeap::create(bench_pm(scale));
    let s0 = PmStack::empty(heap.nv_mut());
    let stack = heap.publish(s0);
    let mut rng = WorkloadRng::new(scale.seed);
    for i in 0..scale.preload {
        heap.fase(|tx| tx.update(stack, |nv, s| s.push(nv, i)));
    }
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut push = OpProfile {
        op: "stack-push".into(),
        ..OpProfile::default()
    };
    let mut pop = OpProfile {
        op: "stack-pop".into(),
        ..OpProfile::default()
    };
    for i in 0..scale.ops {
        let empty = heap.current(stack).is_empty(heap.nv_mut());
        let before = OpCounters::read(heap.nv().pm());
        if rng.percent(55) || empty {
            heap.fase(|tx| tx.update(stack, |nv, s| s.push(nv, i)));
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            push.record(f, s);
        } else {
            heap.fase(|tx| {
                tx.update_with(stack, |nv, s| match s.pop(nv) {
                    Some((ns, e)) => (ns, Some(e)),
                    None => (s, None),
                })
            });
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            pop.record(f, s);
        }
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Stack,
        System::Mod,
        scale.ops,
        vec![push, pop],
    )
}

fn stm_stack(scale: &ScaleConfig, mode: TxMode, sys: System) -> RunReport {
    let mut heap = TxHeap::format(bench_pm(scale), mode);
    let stack = StmStack::create(&mut heap);
    let mut rng = WorkloadRng::new(scale.seed);
    for i in 0..scale.preload {
        stack.push(&mut heap, i);
    }
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut push = OpProfile {
        op: "stack-push".into(),
        ..OpProfile::default()
    };
    let mut pop = OpProfile {
        op: "stack-pop".into(),
        ..OpProfile::default()
    };
    for i in 0..scale.ops {
        let before = OpCounters::read(heap.nv().pm());
        if rng.percent(55) || stack.is_empty(&mut heap) {
            stack.push(&mut heap, i);
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            push.record(f, s);
        } else {
            stack.pop(&mut heap);
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            pop.record(f, s);
        }
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Stack,
        sys,
        scale.ops,
        vec![push, pop],
    )
}

fn mod_queue(scale: &ScaleConfig) -> RunReport {
    let mut heap = ModHeap::create(bench_pm(scale));
    let q0 = PmQueue::empty(heap.nv_mut());
    let queue = heap.publish(q0);
    let mut rng = WorkloadRng::new(scale.seed);
    for i in 0..scale.preload {
        heap.fase(|tx| tx.update(queue, |nv, q| q.enqueue(nv, i)));
    }
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut push = OpProfile {
        op: "queue-push".into(),
        ..OpProfile::default()
    };
    let mut pop = OpProfile {
        op: "queue-pop".into(),
        ..OpProfile::default()
    };
    for i in 0..scale.ops {
        let empty = heap.current(queue).is_empty(heap.nv_mut());
        let before = OpCounters::read(heap.nv().pm());
        if rng.percent(55) || empty {
            heap.fase(|tx| tx.update(queue, |nv, q| q.enqueue(nv, i)));
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            push.record(f, s);
        } else {
            heap.fase(|tx| {
                tx.update_with(queue, |nv, q| match q.dequeue(nv) {
                    Some((nq, e)) => (nq, Some(e)),
                    None => (q, None),
                })
            });
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            pop.record(f, s);
        }
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Queue,
        System::Mod,
        scale.ops,
        vec![push, pop],
    )
}

fn stm_queue(scale: &ScaleConfig, mode: TxMode, sys: System) -> RunReport {
    let mut heap = TxHeap::format(bench_pm(scale), mode);
    let queue = StmQueue::create(&mut heap);
    let mut rng = WorkloadRng::new(scale.seed);
    for i in 0..scale.preload {
        queue.enqueue(&mut heap, i);
    }
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut push = OpProfile {
        op: "queue-push".into(),
        ..OpProfile::default()
    };
    let mut pop = OpProfile {
        op: "queue-pop".into(),
        ..OpProfile::default()
    };
    for i in 0..scale.ops {
        let before = OpCounters::read(heap.nv().pm());
        if rng.percent(55) || queue.is_empty(&mut heap) {
            queue.enqueue(&mut heap, i);
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            push.record(f, s);
        } else {
            queue.dequeue(&mut heap);
            let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
            pop.record(f, s);
        }
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Queue,
        sys,
        scale.ops,
        vec![push, pop],
    )
}

// ---------------------------------------------------------------------
// vector / vec-swap
// ---------------------------------------------------------------------

fn mod_vector(scale: &ScaleConfig, swaps: bool) -> RunReport {
    mod_vector_on(bench_pm(scale), scale, swaps)
}

/// The vector microbenchmark on MOD with the fence-epoch flush cache
/// disabled — the paper's Fig 9 configuration (MOD as published elides
/// nothing). The reproduction-shape test compares this against PMDK:
/// with the cache on, MOD's redundant path-copy flushes dedup away and
/// the paper's vector-favours-PMDK ordering no longer holds at CI scale.
pub fn run_vector_mod_uncoalesced(scale: &ScaleConfig) -> RunReport {
    let cfg = PmemConfig {
        coalesce_flushes: false,
        ..PmemConfig::benchmarking(scale.capacity)
    };
    mod_vector_on(Pmem::new(cfg), scale, false)
}

fn mod_vector_on(pm: Pmem, scale: &ScaleConfig, swaps: bool) -> RunReport {
    let n = scale.preload.max(VECTOR_MIN_PRELOAD);
    let elems: Vec<u64> = (0..n).collect();
    let mut heap = ModHeap::create(pm);
    let v0 = PmVector::from_slice(heap.nv_mut(), &elems);
    let vec = heap.publish(v0);
    let mut rng = WorkloadRng::new(scale.seed);
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let (workload, label) = if swaps {
        (Workload::VecSwap, "vec-swap")
    } else {
        (Workload::Vector, "vector-write")
    };
    let mut profile = OpProfile {
        op: label.to_string(),
        ..OpProfile::default()
    };
    for _ in 0..scale.ops {
        let before = OpCounters::read(heap.nv().pm());
        if swaps {
            let i = rng.below(n);
            let j = rng.below(n);
            if i != j {
                // Fig 7b: two chained pure updates, one FASE, one fence.
                heap.fase(|tx| {
                    let cur = tx.current(vec);
                    let vi = cur.get(tx.nv_mut(), i);
                    let vj = cur.get(tx.nv_mut(), j);
                    tx.update(vec, |nv, v| v.update(nv, i, vj));
                    tx.update(vec, |nv, v| v.update(nv, j, vi));
                });
            }
        } else {
            let i = rng.below(n);
            let e = rng.next_u64();
            heap.fase(|tx| tx.update(vec, |nv, v| v.update(nv, i, e)));
        }
        let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
        profile.record(f, s);
        if !swaps {
            let probe = rng.below(n);
            let _ = heap.current(vec).get(heap.nv_mut(), probe);
        }
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        workload,
        System::Mod,
        scale.ops,
        vec![profile],
    )
}

fn stm_vector(scale: &ScaleConfig, mode: TxMode, sys: System, swaps: bool) -> RunReport {
    let n = scale.preload.max(VECTOR_MIN_PRELOAD);
    let elems: Vec<u64> = (0..n).collect();
    let mut heap = TxHeap::format(bench_pm(scale), mode);
    let vec = StmVector::create_from(&mut heap, &elems);
    let mut rng = WorkloadRng::new(scale.seed);
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let (workload, label) = if swaps {
        (Workload::VecSwap, "vec-swap")
    } else {
        (Workload::Vector, "vector-write")
    };
    let mut profile = OpProfile {
        op: label.to_string(),
        ..OpProfile::default()
    };
    for _ in 0..scale.ops {
        let before = OpCounters::read(heap.nv().pm());
        if swaps {
            let i = rng.below(n);
            let j = rng.below(n);
            vec.swap(&mut heap, i, j);
        } else {
            vec.update(&mut heap, rng.below(n), rng.next_u64());
        }
        let (f, s) = OpCounters::read(heap.nv().pm()).since(&before);
        profile.record(f, s);
        if !swaps {
            let _ = vec.get(&mut heap, rng.below(n));
        }
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        workload,
        sys,
        scale.ops,
        vec![profile],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ScaleConfig {
        ScaleConfig::testing()
    }

    #[test]
    fn mod_map_reports_one_fence_per_insert() {
        let r = run_micro(Workload::Map, System::Mod, &scale());
        let p = &r.profiles[0];
        assert_eq!(p.op, "map-insert");
        assert!((p.fences_per_op() - 1.0).abs() < 1e-9, "Fig 10: MOD = 1");
        assert!(p.flushes_per_op() > 1.0);
    }

    #[test]
    fn pmdk_map_fences_in_band() {
        let r = run_micro(Workload::Map, System::Pmdk15, &scale());
        let f = r.profiles[0].fences_per_op();
        assert!((5.0..=11.0).contains(&f), "v1.5 got {f}");
        let r14 = run_micro(Workload::Map, System::Pmdk14, &scale());
        assert!(
            r14.profiles[0].fences_per_op() > f,
            "v1.4 must use more fences than v1.5"
        );
    }

    #[test]
    fn mod_beats_pmdk_on_map_time() {
        let m = run_micro(Workload::Map, System::Mod, &scale());
        let p = run_micro(Workload::Map, System::Pmdk15, &scale());
        assert!(
            m.total_ns() < p.total_ns(),
            "Fig 9 shape: MOD {:.0}ns vs PMDK {:.0}ns",
            m.ns_per_op(),
            p.ns_per_op()
        );
    }

    #[test]
    fn pmdk_beats_mod_on_vector_time() {
        // The paper's Fig 9 shape holds for MOD as published — no flush
        // cache. (With coalescing on, the default everywhere else, the
        // path copies' redundant flushes dedup away and MOD edges ahead
        // of PMDK on this workload at CI scale — asserted below.)
        let m = run_vector_mod_uncoalesced(&scale());
        let p = run_micro(Workload::Vector, System::Pmdk15, &scale());
        assert!(
            p.total_ns() < m.total_ns(),
            "Fig 9 shape: vector favours PMDK ({:.0} vs {:.0} ns/op)",
            p.ns_per_op(),
            m.ns_per_op()
        );
        let coalesced = run_micro(Workload::Vector, System::Mod, &scale());
        assert!(
            coalesced.total_ns() < m.total_ns(),
            "the flush cache must narrow MOD's vector gap ({:.0} vs {:.0} ns/op)",
            coalesced.ns_per_op(),
            m.ns_per_op()
        );
    }

    #[test]
    fn queue_and_stack_run_all_systems() {
        for w in [Workload::Queue, Workload::Stack] {
            for sys in System::all() {
                let r = run_micro(w, sys, &scale());
                assert_eq!(r.ops, scale().ops);
                assert!(r.fences > 0);
                assert_eq!(r.profiles.len(), 2);
            }
        }
    }

    #[test]
    fn vec_swap_runs_all_systems() {
        for sys in System::all() {
            let r = run_micro(Workload::VecSwap, sys, &scale());
            assert!(r.total_ns() > 0.0);
        }
    }

    #[test]
    fn mod_flushes_more_on_vector_than_pmdk() {
        // Fig 10: MOD vector writes flush many more lines.
        let m = run_micro(Workload::Vector, System::Mod, &scale());
        let p = run_micro(Workload::Vector, System::Pmdk15, &scale());
        assert!(m.profiles[0].flushes_per_op() > p.profiles[0].flushes_per_op());
    }
}
