//! Synthetic scale-free graph and the recoverable-BFS workload.
//!
//! The paper runs breadth-first search over the Flickr crawl (0.82 M
//! nodes, 9.84 M edges) using a *recoverable queue* for the frontier,
//! reconstructing the (volatile) graph itself each run. We have no
//! Flickr dataset, so a deterministic preferential-attachment generator
//! produces a graph of the same shape (power-law degrees, ~12 edges per
//! node); BFS behaviour depends only on push/pop volume and order, which
//! the substitution preserves (see DESIGN.md §2).

use crate::report::{OpProfile, RunReport, Snapshot};
use crate::spec::{ScaleConfig, System, Workload, WorkloadRng};
use mod_core::{DurableQueue, ModHeap};
use mod_pmem::{Pmem, PmemConfig};
use mod_stm::{StmQueue, TxHeap, TxMode};

/// An in-memory (volatile) undirected graph in adjacency-list form.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Adjacency lists; `adj[u]` holds the neighbours of `u`.
    pub adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of (directed) edge entries.
    pub fn edge_entries(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum()
    }
}

/// Generates a scale-free graph by preferential attachment: node `v`
/// attaches `edges_per_node` edges to targets sampled from the endpoint
/// list (rich get richer), yielding the power-law degree shape of social
/// graphs like Flickr. Deterministic in `seed`.
pub fn generate_scale_free(n: usize, edges_per_node: usize, seed: u64) -> Graph {
    assert!(n >= 2, "graph needs at least two nodes");
    let mut rng = WorkloadRng::new(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Endpoint pool: each edge contributes both endpoints, so sampling
    // uniformly from it is degree-proportional sampling.
    let mut pool: Vec<u32> = vec![0, 1];
    adj[0].push(1);
    adj[1].push(0);
    for v in 2..n as u32 {
        for _ in 0..edges_per_node.max(1) {
            let t = pool[rng.below(pool.len() as u64) as usize];
            if t == v || adj[v as usize].contains(&t) {
                continue;
            }
            adj[v as usize].push(t);
            adj[t as usize].push(v);
            pool.push(v);
            pool.push(t);
        }
    }
    Graph { adj }
}

/// BFS from `src` using a volatile queue — the oracle for correctness
/// tests. Returns levels (`u32::MAX` = unreachable).
pub fn bfs_volatile(g: &Graph, src: u32) -> Vec<u32> {
    let mut level = vec![u32::MAX; g.nodes()];
    let mut q = std::collections::VecDeque::new();
    level[src as usize] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for &v in &g.adj[u as usize] {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    level
}

fn graph_for(scale: &ScaleConfig) -> Graph {
    let n = (scale.ops as usize / 2).max(512);
    // Flickr has ~12 edge entries per node (9.84M/0.82M); attach 6
    // undirected edges per node for the same density.
    generate_scale_free(n, 6, scale.seed)
}

/// Runs the recoverable-BFS workload: frontier node ids flow through a
/// durable queue (one FASE per push/pop), the graph and level array stay
/// volatile (the paper does not store the graph durably either).
pub fn run_bfs(sys: System, scale: &ScaleConfig) -> RunReport {
    let g = graph_for(scale);
    match sys {
        System::Mod => bfs_mod(&g, scale),
        System::Pmdk14 => bfs_stm(&g, scale, TxMode::Undo, sys),
        System::Pmdk15 => bfs_stm(&g, scale, TxMode::Hybrid, sys),
    }
}

fn bfs_mod(g: &Graph, scale: &ScaleConfig) -> RunReport {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(scale.capacity)));
    let queue: DurableQueue<u64> = DurableQueue::create(&mut heap);
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut profile = OpProfile {
        op: "bfs-queue-op".into(),
        ..OpProfile::default()
    };
    let mut level = vec![u32::MAX; g.nodes()];
    level[0] = 0;
    queue.enqueue(&mut heap, &0);
    profile.count += 1;
    let mut ops = 1u64;
    while let Some(u) = {
        ops += 1;
        queue.dequeue(&mut heap)
    } {
        let u = u as usize;
        for &v in &g.adj[u] {
            // Volatile graph/level accesses: modelled as cheap DRAM work.
            heap.nv_mut().pm_mut().charge_ns(1.0);
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u] + 1;
                queue.enqueue(&mut heap, &(v as u64));
                ops += 1;
            }
        }
    }
    profile.count = ops;
    profile.flushes = heap.nv().pm().stats().effective_flushes;
    profile.fences = heap.nv().pm().stats().fences;
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Bfs,
        System::Mod,
        ops,
        vec![profile],
    )
}

fn bfs_stm(g: &Graph, scale: &ScaleConfig, mode: TxMode, sys: System) -> RunReport {
    let mut heap = TxHeap::format(Pmem::new(PmemConfig::benchmarking(scale.capacity)), mode);
    let queue = StmQueue::create(&mut heap);
    let snap = Snapshot::take(heap.nv().pm(), heap.nv().stats().cumulative_alloc_bytes);
    let mut level = vec![u32::MAX; g.nodes()];
    level[0] = 0;
    queue.enqueue(&mut heap, 0);
    let mut ops = 1u64;
    while let Some(u) = {
        ops += 1;
        queue.dequeue(&mut heap)
    } {
        let u = u as usize;
        for &v in &g.adj[u] {
            heap.nv_mut().pm_mut().charge_ns(1.0);
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u] + 1;
                queue.enqueue(&mut heap, v as u64);
                ops += 1;
            }
        }
    }
    snap.finish(
        heap.nv().pm(),
        heap.nv().stats().cumulative_alloc_bytes,
        heap.nv().stats().live_bytes,
        Workload::Bfs,
        sys,
        ops,
        Vec::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_connected_and_deterministic() {
        let g1 = generate_scale_free(500, 6, 7);
        let g2 = generate_scale_free(500, 6, 7);
        assert_eq!(g1.adj, g2.adj);
        let levels = bfs_volatile(&g1, 0);
        // Preferential attachment always links new nodes into the giant
        // component: everything is reachable.
        assert!(levels.iter().all(|&l| l != u32::MAX));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = generate_scale_free(2000, 6, 11);
        let mut degrees: Vec<usize> = g.adj.iter().map(|a| a.len()).collect();
        degrees.sort_unstable();
        let max = *degrees.last().unwrap();
        let median = degrees[degrees.len() / 2];
        assert!(
            max > 8 * median,
            "scale-free hub expected: max {max}, median {median}"
        );
    }

    #[test]
    fn edges_per_node_matches_flickr_ratio() {
        let g = generate_scale_free(2000, 6, 3);
        let ratio = g.edge_entries() as f64 / g.nodes() as f64;
        assert!(
            (8.0..=13.0).contains(&ratio),
            "Flickr-like density expected, got {ratio:.1}"
        );
    }

    #[test]
    fn recoverable_bfs_visits_everything() {
        let scale = ScaleConfig::testing();
        for sys in System::all() {
            let r = run_bfs(sys, &scale);
            let g = graph_for(&scale);
            // Every node pushed + popped once, plus the final empty pop.
            assert!(
                r.ops >= 2 * g.nodes() as u64,
                "{sys}: {} ops for {} nodes",
                r.ops,
                g.nodes()
            );
            assert!(r.fences > 0);
        }
    }

    #[test]
    fn mod_bfs_faster_than_pmdk() {
        let scale = ScaleConfig::testing();
        let m = run_bfs(System::Mod, &scale);
        let p = run_bfs(System::Pmdk15, &scale);
        assert!(
            m.total_ns() < p.total_ns(),
            "Fig 9: bfs favours MOD ({:.0} vs {:.0})",
            m.total_ns(),
            p.total_ns()
        );
    }
}
