//! Persistent-session driver: write → die → reopen → verify.
//!
//! The first workload in this repo whose durable state outlives the
//! process. A *session* is a file-backed pool (see
//! [`mod_pmem::FileBackend`]) holding three structures updated together,
//! one FASE per operation:
//!
//! * `count` (vector, root 2) — `count[0] = k + 1` after op `k`;
//! * `map` (root 0) — op `k` overwrites slot `k % SLOTS` with a value
//!   derived from `(seed, k)`;
//! * `queue` (root 1) — op `k` enqueues `k` and, once `WINDOW` deep,
//!   dequeues `k - WINDOW`.
//!
//! Because all three commit in the *same* FASE, the entire durable state
//! is a pure function of the committed op count `n` — the shadow model.
//! [`verify_session`] recomputes that model from `n = count[0]` and
//! checks every map slot and the queue's shape against it: any torn FASE
//! (one structure updated without the others), lost update, or
//! resurrected partial batch fails verification. This is what the
//! kill-test asserts after `SIGKILL`ing a writer at a random point: all
//! committed FASEs present, all-or-nothing, torn journal tail discarded.

use mod_core::{DurableMap, DurableQueue, DurableVector, ModHeap, PersistPolicy};
use mod_pmem::{Durability, PmemConfig};
use std::io;
use std::path::Path;

/// Map slots (op `k` writes slot `k % SLOTS`, so the map stays bounded
/// however long the session runs).
pub const SLOTS: u64 = 512;
/// Sliding-window depth of the queue.
pub const WINDOW: u64 = 64;

/// The session's three typed roots.
#[derive(Clone, Copy)]
pub struct SessionRoots {
    /// Root 0: the slot map.
    pub map: DurableMap<u64, u64>,
    /// Root 1: the sliding-window queue.
    pub queue: DurableQueue<u64>,
    /// Root 2: the committed-op counter.
    pub count: DurableVector<u64>,
}

/// An open session: the recovered heap, its roots, and how many ops were
/// already committed by previous process lifetimes.
pub struct Session {
    /// The (file-backed) heap.
    pub heap: ModHeap,
    /// The typed roots.
    pub roots: SessionRoots,
    /// Committed ops recovered from the pool.
    pub committed: u64,
    /// The value seed this session writes with.
    pub seed: u64,
}

/// The value op `k` writes under seed `seed` (SplitMix64).
pub fn value_of(seed: u64, k: u64) -> u64 {
    let mut z = (seed ^ k).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The op that last wrote map slot `j`, given `n` committed ops.
fn last_writer(n: u64, j: u64) -> Option<u64> {
    if j >= n.min(SLOTS) {
        return None;
    }
    Some(j + SLOTS * ((n - 1 - j) / SLOTS))
}

/// Session pool configuration. The CI kill battery reruns the whole
/// write → SIGKILL → verify cycle in pool-set / power-loss-grade shapes
/// through two env knobs (a binary re-invoking itself as a child cannot
/// take structured arguments):
///
/// * `MOD_SESSION_SHARDS=<n>` — create new pools as an `n`-shard pool
///   set (parallel replay at recovery). Reopens keep the on-disk shape.
/// * `MOD_SESSION_FSYNC=1` — append with [`Durability::Fsync`]: every
///   fence record hits the medium before the op is counted committed.
/// * `MOD_SESSION_POLICY=hybrid` — create (and reopen) the three roots
///   under [`PersistPolicy::Hybrid`]: interior index nodes stay
///   volatile, only compact op records are journaled, and recovery
///   rebuilds the index by replay. The verifier checks the identical
///   shadow model either way.
fn pool_config() -> PmemConfig {
    let journal_shards = std::env::var("MOD_SESSION_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let durability = if std::env::var("MOD_SESSION_FSYNC").is_ok_and(|v| v == "1") {
        Durability::Fsync
    } else {
        Durability::Buffered
    };
    PmemConfig {
        capacity: 1 << 26,
        crash_sim: false,
        trace: false,
        journal_shards,
        durability,
        ..PmemConfig::default()
    }
}

/// The persistence policy the session's roots are created and reopened
/// under (`MOD_SESSION_POLICY=hybrid` selects hybrid; anything else —
/// including unset — selects full persistence).
pub fn session_policy() -> PersistPolicy {
    if std::env::var("MOD_SESSION_POLICY").is_ok_and(|v| v == "hybrid") {
        PersistPolicy::Hybrid
    } else {
        PersistPolicy::Full
    }
}

/// Opens the session at `path`, creating and initializing a fresh pool
/// if none exists; an existing pool is recovered (journal replay + typed
/// recovery) and verified against the shadow model before the session
/// is handed back.
///
/// Initialization is atomic against kills: the fresh pool is built and
/// checkpointed under a temporary name and renamed into place, so a
/// verifier only ever sees "no session yet" or a fully initialized one.
pub fn open_session(path: &Path, seed: u64) -> io::Result<Session> {
    if !path.exists() {
        let cfg = pool_config();
        let init = path.with_extension("init");
        let _ = std::fs::remove_file(&init); // stale half-init from a kill
        for s in 0..cfg.journal_shards {
            let mut sp = init.as_os_str().to_os_string();
            sp.push(format!(".s{s}"));
            let _ = std::fs::remove_file(sp);
        }
        let mut heap = ModHeap::create_file(&init, cfg.clone())?;
        let policy = session_policy();
        let _map: DurableMap<u64, u64> = heap.root(0).policy(policy).create();
        let _queue: DurableQueue<u64> = heap.root(1).policy(policy).create();
        let count: DurableVector<u64> = heap.root(2).policy(policy).create();
        count.push_back(&mut heap, &0);
        drop(heap.close()?);
        // Shard journals move first, the base last: a verifier keys off
        // the base file, so a kill mid-rename still reads "no session
        // yet" until the base lands.
        for s in 0..cfg.journal_shards {
            let mut from = init.as_os_str().to_os_string();
            from.push(format!(".s{s}"));
            let mut to = path.as_os_str().to_os_string();
            to.push(format!(".s{s}"));
            if Path::new(&from).exists() {
                std::fs::rename(&from, &to)?;
            }
        }
        std::fs::rename(&init, path)?;
    }
    let (mut heap, _report) = ModHeap::open_file(path, pool_config())?;
    let (roots, committed) = check_session(&mut heap, seed).map_err(io::Error::other)?;
    Ok(Session {
        heap,
        roots,
        committed,
        seed,
    })
}

/// Applies committed ops `[session.committed, target)`, one FASE each.
/// Every op updates all three roots atomically; interleaved dequeues are
/// checked against the model as they come out.
pub fn run_ops(session: &mut Session, target: u64) {
    let SessionRoots { map, queue, count } = session.roots;
    while session.committed < target {
        let k = session.committed;
        let v = value_of(session.seed, k);
        session.heap.fase(|tx| {
            count.update_in(tx, 0, &(k + 1));
            map.insert_in(tx, &(k % SLOTS), &v);
            queue.enqueue_in(tx, &k);
            if k >= WINDOW {
                let out = queue.dequeue_in(tx);
                assert_eq!(out, Some(k - WINDOW), "window slid out of order");
            }
        });
        session.committed = k + 1;
    }
}

/// Verifies the pool at `path` against the shadow model and returns the
/// committed op count. The pool is opened read-only-and-discarded (a
/// fresh recovery, exactly what a restarted process would see). A
/// missing pool file is the legal "killed before initialization
/// finished" outcome (the init rename never ran) and verifies as 0
/// committed ops.
///
/// # Errors
///
/// Returns a description of the first invariant violation: a missing or
/// wrong map slot, a queue that disagrees with the counter, or a count
/// the other structures contradict — all the ways a torn FASE could
/// manifest.
pub fn verify_session(path: &Path, seed: u64) -> io::Result<u64> {
    if !path.exists() {
        return Ok(0);
    }
    let (mut heap, _report) = ModHeap::open_file(path, pool_config())?;
    let (_roots, n) = check_session(&mut heap, seed).map_err(io::Error::other)?;
    Ok(n)
}

fn check_session(heap: &mut ModHeap, seed: u64) -> Result<(SessionRoots, u64), String> {
    let policy = session_policy();
    let roots = SessionRoots {
        map: heap
            .root(0)
            .policy(policy)
            .open()
            .map_err(|e| format!("map root: {e:?}"))?,
        queue: heap
            .root(1)
            .policy(policy)
            .open()
            .map_err(|e| format!("queue root: {e:?}"))?,
        count: heap
            .root(2)
            .policy(policy)
            .open()
            .map_err(|e| format!("count root: {e:?}"))?,
    };
    if roots.count.len(heap) != 1 {
        return Err("count vector must hold exactly one element".into());
    }
    let n = roots.count.get(heap, 0);
    // Map: every slot the model says exists, with the exact value the
    // last writer committed; no extras.
    let live = n.min(SLOTS);
    if roots.map.len(heap) != live {
        return Err(format!(
            "count says {n} ops but map holds {} slots (want {live})",
            roots.map.len(heap)
        ));
    }
    for j in 0..live {
        let k = last_writer(n, j).expect("j < live");
        match roots.map.get(heap, &j) {
            Some(v) if v == value_of(seed, k) => {}
            got => {
                return Err(format!(
                    "map slot {j}: want value of op {k}, got {got:?} (n = {n})"
                ))
            }
        }
    }
    // Queue: the window the model predicts for n.
    let want_len = n.min(WINDOW);
    let qlen = roots.queue.len(heap);
    let want_front = n.saturating_sub(WINDOW);
    if qlen != want_len || (n > 0 && roots.queue.peek(heap) != Some(want_front)) {
        return Err(format!(
            "queue shape (len {qlen}, front {:?}) contradicts count {n}",
            roots.queue.peek(heap)
        ));
    }
    Ok((roots, n))
}
