//! Measurement collection shared by every workload runner.

use crate::spec::{System, Workload};
use mod_pmem::{CacheStats, Pmem, TimeBreakdown};

/// Per-operation-kind counters, the data behind Fig 10's scatter plot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpProfile {
    /// Label, e.g. `map-insert`.
    pub op: String,
    /// Operations of this kind executed.
    pub count: u64,
    /// Effective `clwb`s (real writebacks scheduled) across them.
    pub flushes: u64,
    /// `sfence`s across them.
    pub fences: u64,
}

impl OpProfile {
    /// Mean flushes per operation.
    pub fn flushes_per_op(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.flushes as f64 / self.count as f64
        }
    }

    /// Mean fences per operation.
    pub fn fences_per_op(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.fences as f64 / self.count as f64
        }
    }

    /// Adds one operation's deltas.
    pub fn record(&mut self, flushes: u64, fences: u64) {
        self.count += 1;
        self.flushes += flushes;
        self.fences += fences;
    }
}

/// The full measurement of one workload run on one system.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Which workload.
    pub workload: Workload,
    /// Which system.
    pub system: System,
    /// Measured operations (excludes preload).
    pub ops: u64,
    /// Simulated time breakdown over the measured phase.
    pub time: TimeBreakdown,
    /// Effective flushes (writebacks actually scheduled) in the
    /// measured phase.
    pub flushes: u64,
    /// Flush requests elided by the fence-epoch flush cache in the
    /// measured phase.
    pub flushes_deduped: u64,
    /// Fences in the measured phase.
    pub fences: u64,
    /// WPQ drain work hidden under compute in the measured phase (ns).
    pub overlap_ns: f64,
    /// Residual drain stall actually paid at fences (ns).
    pub residual_stall_ns: f64,
    /// L1D counters over the measured phase.
    pub cache: CacheStats,
    /// Live heap bytes at the end.
    pub live_bytes: u64,
    /// Allocation traffic during the measured phase.
    pub alloc_traffic_bytes: u64,
    /// Per-operation-kind profiles (Fig 10).
    pub profiles: Vec<OpProfile>,
}

impl RunReport {
    /// Total simulated nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.time.total_ns()
    }

    /// Simulated nanoseconds per measured operation.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total_ns() / self.ops as f64
        }
    }

    /// Fraction of the WPQ drain workload that overlapped with compute
    /// instead of stalling a fence (see
    /// [`mod_pmem::PmStats::overlap_ratio`]).
    pub fn overlap_ratio(&self) -> f64 {
        let total = self.overlap_ns + self.residual_stall_ns;
        if total == 0.0 {
            0.0
        } else {
            self.overlap_ns / total
        }
    }
}

/// Counter snapshot used to bracket the measured phase.
#[derive(Clone, Debug)]
pub struct Snapshot {
    time: TimeBreakdown,
    flushes: u64,
    flushes_deduped: u64,
    fences: u64,
    overlap_ns: f64,
    residual_stall_ns: f64,
    cache: CacheStats,
    alloc_cum: u64,
}

impl Snapshot {
    /// Captures the current counters of a pool (+ allocator traffic).
    pub fn take(pm: &Pmem, alloc_cum: u64) -> Snapshot {
        Snapshot {
            time: pm.clock().breakdown(),
            flushes: pm.stats().effective_flushes,
            flushes_deduped: pm.stats().flushes_deduped,
            fences: pm.stats().fences,
            overlap_ns: pm.stats().overlap_ns,
            residual_stall_ns: pm.stats().residual_stall_ns,
            cache: pm.cache_stats(),
            alloc_cum,
        }
    }

    /// Builds a report for the span since this snapshot.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &self,
        pm: &Pmem,
        alloc_cum: u64,
        live_bytes: u64,
        workload: Workload,
        system: System,
        ops: u64,
        profiles: Vec<OpProfile>,
    ) -> RunReport {
        RunReport {
            workload,
            system,
            ops,
            time: pm.clock().breakdown().since(&self.time),
            flushes: pm.stats().effective_flushes - self.flushes,
            flushes_deduped: pm.stats().flushes_deduped - self.flushes_deduped,
            fences: pm.stats().fences - self.fences,
            overlap_ns: pm.stats().overlap_ns - self.overlap_ns,
            residual_stall_ns: pm.stats().residual_stall_ns - self.residual_stall_ns,
            cache: pm.cache_stats().since(&self.cache),
            live_bytes,
            alloc_traffic_bytes: alloc_cum - self.alloc_cum,
            profiles,
        }
    }
}

/// Lightweight flush/fence counter pair for per-op profiling.
#[derive(Copy, Clone, Debug)]
pub struct OpCounters {
    flushes: u64,
    fences: u64,
}

impl OpCounters {
    /// Reads the pool's counters.
    pub fn read(pm: &Pmem) -> OpCounters {
        OpCounters {
            flushes: pm.stats().effective_flushes,
            fences: pm.stats().fences,
        }
    }

    /// Delta since `earlier` as `(flushes, fences)`.
    pub fn since(&self, earlier: &OpCounters) -> (u64, u64) {
        (self.flushes - earlier.flushes, self.fences - earlier.fences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::PmemConfig;

    #[test]
    fn profile_means() {
        let mut p = OpProfile {
            op: "x".into(),
            ..OpProfile::default()
        };
        p.record(10, 1);
        p.record(6, 1);
        assert_eq!(p.flushes_per_op(), 8.0);
        assert_eq!(p.fences_per_op(), 1.0);
        assert_eq!(OpProfile::default().flushes_per_op(), 0.0);
    }

    #[test]
    fn snapshot_brackets_activity() {
        let mut pm = Pmem::new(PmemConfig::testing());
        pm.write_u64(0x100, 1);
        pm.clwb(0x100);
        pm.sfence();
        let snap = Snapshot::take(&pm, 0);
        pm.write_u64(0x140, 2);
        pm.clwb(0x140);
        pm.sfence();
        let report = snap.finish(&pm, 0, 0, Workload::Map, System::Mod, 1, Vec::new());
        assert_eq!(report.flushes, 1);
        assert_eq!(report.fences, 1);
        assert!(report.total_ns() > 0.0);
    }
}
