//! Table 3: memory consumed by each datastructure at 2N elements
//! relative to N elements, MOD vs PMDK.
//!
//! Two metrics are reported (see DESIGN.md §5): the **footprint** ratio
//! (live bytes after growth / live bytes before) and the **traffic**
//! ratio (bytes allocated while growing / live bytes before). For the
//! refcount-reclaimed structures the footprint ratio is the paper's
//! number; the paper's 131x for MOD vector is only consistent with an
//! allocation-traffic-style measurement (every push path-copies ~depth
//! nodes), so the traffic column is the one to compare there.

use mod_bench::{banner, TextTable};
use mod_core::ModHeap;
use mod_core::{DurableMap, DurableQueue, DurableSet, DurableStack, DurableVector};
use mod_pmem::{Pmem, PmemConfig};
use mod_stm::{StmHashMap, StmQueue, StmStack, StmVector, TxHeap, TxMode};
use mod_workloads::micro::value32;

fn n_elems() -> u64 {
    std::env::var("MOD_TABLE3_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

struct Growth {
    footprint_ratio: f64,
    traffic_ratio: f64,
}

fn measure<F: FnMut(u64)>(live: impl Fn() -> (u64, u64), mut grow: F, n: u64) -> Growth {
    for i in 0..n {
        grow(i);
    }
    let (l1, c1) = live();
    for i in n..2 * n {
        grow(i);
    }
    let (l2, c2_all) = live();
    Growth {
        footprint_ratio: l2 as f64 / l1 as f64,
        traffic_ratio: (c2_all - c1) as f64 / l1 as f64,
    }
}

fn pool(n: u64) -> Pmem {
    Pmem::new(PmemConfig::benchmarking((n * 4096).max(1 << 30)))
}

fn mod_growth(ds: &str, n: u64) -> Growth {
    let mut heap = ModHeap::create(pool(n));
    match ds {
        "map" => {
            let m: DurableMap<u64, [u8; 32]> = DurableMap::create(&mut heap);
            let heap_cell = std::cell::RefCell::new(heap);
            measure(
                || {
                    let h = heap_cell.borrow();
                    (
                        h.nv().stats().live_bytes,
                        h.nv().stats().cumulative_alloc_bytes,
                    )
                },
                |i| {
                    let mut h = heap_cell.borrow_mut();
                    m.insert(&mut h, &i, &value32(i));
                    if i % 64 == 0 {
                        h.quiesce();
                    }
                },
                n,
            )
        }
        "set" => {
            let s: DurableSet<u64> = DurableSet::create(&mut heap);
            let heap_cell = std::cell::RefCell::new(heap);
            measure(
                || {
                    let h = heap_cell.borrow();
                    (
                        h.nv().stats().live_bytes,
                        h.nv().stats().cumulative_alloc_bytes,
                    )
                },
                |i| {
                    let mut h = heap_cell.borrow_mut();
                    s.insert(&mut h, &i);
                    if i % 64 == 0 {
                        h.quiesce();
                    }
                },
                n,
            )
        }
        "stack" => {
            let s: DurableStack<u64> = DurableStack::create(&mut heap);
            let heap_cell = std::cell::RefCell::new(heap);
            measure(
                || {
                    let h = heap_cell.borrow();
                    (
                        h.nv().stats().live_bytes,
                        h.nv().stats().cumulative_alloc_bytes,
                    )
                },
                |i| {
                    let mut h = heap_cell.borrow_mut();
                    s.push(&mut h, &i);
                    if i % 64 == 0 {
                        h.quiesce();
                    }
                },
                n,
            )
        }
        "queue" => {
            let q: DurableQueue<u64> = DurableQueue::create(&mut heap);
            let heap_cell = std::cell::RefCell::new(heap);
            measure(
                || {
                    let h = heap_cell.borrow();
                    (
                        h.nv().stats().live_bytes,
                        h.nv().stats().cumulative_alloc_bytes,
                    )
                },
                |i| {
                    let mut h = heap_cell.borrow_mut();
                    q.enqueue(&mut h, &i);
                    if i % 64 == 0 {
                        h.quiesce();
                    }
                },
                n,
            )
        }
        "vector" => {
            let v: DurableVector<u64> = DurableVector::create(&mut heap);
            let heap_cell = std::cell::RefCell::new(heap);
            measure(
                || {
                    let h = heap_cell.borrow();
                    (
                        h.nv().stats().live_bytes,
                        h.nv().stats().cumulative_alloc_bytes,
                    )
                },
                |i| {
                    let mut h = heap_cell.borrow_mut();
                    v.push_back(&mut h, &i);
                    if i % 64 == 0 {
                        h.quiesce();
                    }
                },
                n,
            )
        }
        _ => unreachable!(),
    }
}

fn stm_growth(ds: &str, n: u64) -> Growth {
    let mut heap = TxHeap::format(pool(n), TxMode::Hybrid);
    match ds {
        "map" | "set" => {
            // Bucket table sized for N (as the WHISPER hashmap would be),
            // so doubling the elements doubles chain memory only.
            let bits = 63 - n.next_power_of_two().leading_zeros();
            let m = StmHashMap::create(&mut heap, bits.min(20));
            let set = ds == "set";
            let heap_cell = std::cell::RefCell::new(heap);
            measure(
                || {
                    let h = heap_cell.borrow();
                    (
                        h.nv().stats().live_bytes,
                        h.nv().stats().cumulative_alloc_bytes,
                    )
                },
                |i| {
                    let mut h = heap_cell.borrow_mut();
                    let v = if set { Vec::new() } else { value32(i).to_vec() };
                    m.insert(&mut h, i, &v);
                },
                n,
            )
        }
        "stack" => {
            let s = StmStack::create(&mut heap);
            let heap_cell = std::cell::RefCell::new(heap);
            measure(
                || {
                    let h = heap_cell.borrow();
                    (
                        h.nv().stats().live_bytes,
                        h.nv().stats().cumulative_alloc_bytes,
                    )
                },
                |i| {
                    let mut h = heap_cell.borrow_mut();
                    s.push(&mut h, i);
                },
                n,
            )
        }
        "queue" => {
            let q = StmQueue::create(&mut heap);
            let heap_cell = std::cell::RefCell::new(heap);
            measure(
                || {
                    let h = heap_cell.borrow();
                    (
                        h.nv().stats().live_bytes,
                        h.nv().stats().cumulative_alloc_bytes,
                    )
                },
                |i| {
                    let mut h = heap_cell.borrow_mut();
                    q.enqueue(&mut h, i);
                },
                n,
            )
        }
        "vector" => {
            let v = StmVector::create(&mut heap, 16);
            let heap_cell = std::cell::RefCell::new(heap);
            measure(
                || {
                    let h = heap_cell.borrow();
                    (
                        h.nv().stats().live_bytes,
                        h.nv().stats().cumulative_alloc_bytes,
                    )
                },
                |i| {
                    let mut h = heap_cell.borrow_mut();
                    v.push_back_growing(&mut h, i);
                },
                n,
            )
        }
        _ => unreachable!(),
    }
}

fn main() {
    banner("Table 3: memory at 2N elements relative to N elements");
    let n = n_elems();
    println!("N = {n} (MOD_TABLE3_N to change; paper uses 1M)\n");
    let paper: &[(&str, &str, &str)] = &[
        ("map", "1.87x", "1.78x"),
        ("set", "2.08x", "1.75x"),
        ("stack", "2.25x", "1.50x"),
        ("queue", "1.67x", "1.50x"),
        ("vector", "131x", "2x"),
    ];
    let mut t = TextTable::new(vec![
        "ds",
        "MOD footprint",
        "MOD traffic",
        "PMDK footprint",
        "paper MOD",
        "paper PMDK",
    ]);
    for &(ds, paper_mod, paper_pmdk) in paper {
        eprintln!("  growing {ds} ...");
        let m = mod_growth(ds, n);
        let p = stm_growth(ds, n);
        t.row(vec![
            ds.to_string(),
            format!("{:.2}x", m.footprint_ratio),
            format!("{:.0}x", m.traffic_ratio),
            format!("{:.2}x", p.footprint_ratio),
            paper_mod.to_string(),
            paper_pmdk.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("MOD footprint ratios ~2x: structural sharing + reclamation keep");
    println!("the shadow overhead negligible. The vector's paper-reported 131x");
    println!("matches the allocation-traffic metric (path copies per push),");
    println!("not live growth — see DESIGN.md / EXPERIMENTS.md.");
}
