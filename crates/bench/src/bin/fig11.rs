//! Figure 11: L1D cache miss ratios of the PM workloads, PMDK v1.5 vs
//! MOD (the pointer-chasing cost of functional structures).

use mod_bench::{banner, percent, TextTable};
use mod_workloads::{run_workload, ScaleConfig, System, Workload};

fn main() {
    banner("Figure 11: L1D miss ratios");
    let scale = ScaleConfig::from_env();
    println!(
        "scale: {} ops, {} preload (MOD_OPS / MOD_PRELOAD to change)\n",
        scale.ops, scale.preload
    );
    let mut t = TextTable::new(vec!["workload", "PMDK-1.5", "MOD", "MOD/PMDK"]);
    for w in Workload::all() {
        eprintln!("  running {w} ...");
        let p = run_workload(w, System::Pmdk15, &scale);
        let m = run_workload(w, System::Mod, &scale);
        let pr = p.cache.miss_ratio();
        let mr = m.cache.miss_ratio();
        t.row(vec![
            w.name().to_string(),
            percent(pr),
            percent(mr),
            format!("{:.1}x", if pr > 0.0 { mr / pr } else { 0.0 }),
        ]);
    }
    println!("{}", t.render());
    println!("Paper: map/set/vector show 2.8-4.6x higher misses under MOD;");
    println!("stack/queue/bfs are comparable (pointer-based in both).");
}
