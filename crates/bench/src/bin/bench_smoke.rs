//! `bench_smoke` — the deterministic CI perf-regression gate.
//!
//! Runs a fixed, CI-sized slice of the evaluation — the four
//! applications/microbenchmarks the PR pipeline tracks (map, memcached,
//! vacation, bfs on MOD) plus the 1→8-thread pipelined `SharedModHeap`
//! curve — and emits a flat JSON metric map (fences/FASE, sim-ns/op,
//! overlap ratio, 8-thread speedup). Every metric is *simulated* time or
//! a counter, so the output is bit-for-bit deterministic across
//! machines; any drift is a real model/code change.
//!
//! ```text
//! bench_smoke [--check] [--out FILE] [--baseline FILE] [--tolerance PCT]
//! ```
//!
//! * `--out` (default `BENCH_PR3.json`): where to write this run's
//!   metrics (uploaded as a CI artifact).
//! * `--check`: compare against `--baseline` (default
//!   `bench/baseline.json`) and exit non-zero if any metric regresses by
//!   more than `--tolerance` percent (default 10). Direction-aware:
//!   ns/op and fences/op gate upward, overlap/speedup gate downward.
//!
//! To refresh the baseline after an intentional perf change:
//! `cargo run --release -p mod-bench --bin bench_smoke -- --out bench/baseline.json`
//! and commit the diff with a justification.

use mod_bench::gate::{from_json, gate, to_json, Metrics};
use mod_workloads::{
    run_pipelined, run_workload, ConcurrencyConfig, ScaleConfig, System, Workload,
};
use std::process::ExitCode;

fn collect_metrics() -> Metrics {
    let mut m = Metrics::new();
    let scale = ScaleConfig::testing();
    for w in [
        Workload::Map,
        Workload::Memcached,
        Workload::Vacation,
        Workload::Bfs,
    ] {
        eprintln!("  bench_smoke: {w} on MOD ...");
        let r = run_workload(w, System::Mod, &scale);
        let key = w.name().replace('-', "_");
        m.insert(format!("{key}.sim_ns_per_op"), r.ns_per_op());
        m.insert(
            format!("{key}.fences_per_op"),
            r.fences as f64 / r.ops as f64,
        );
        m.insert(
            format!("{key}.flushes_per_op"),
            r.flushes as f64 / r.ops as f64,
        );
        m.insert(format!("{key}.overlap_ratio"), r.overlap_ratio());
    }
    eprintln!("  bench_smoke: pipelined SharedModHeap 1..8 threads ...");
    let solo = run_pipelined(&ConcurrencyConfig::testing(1));
    let eight = run_pipelined(&ConcurrencyConfig::testing(8));
    m.insert(
        "pipeline1.sim_ns_per_op".to_string(),
        solo.sim_ns_per_fase(),
    );
    m.insert(
        "pipeline1.fences_per_op".to_string(),
        solo.fences_per_fase(),
    );
    m.insert("pipeline1.overlap_ratio".to_string(), solo.overlap_ratio());
    m.insert(
        "pipeline8.sim_ns_per_op".to_string(),
        eight.sim_ns_per_fase(),
    );
    m.insert(
        "pipeline8.fences_per_op".to_string(),
        eight.fences_per_fase(),
    );
    m.insert("pipeline8.overlap_ratio".to_string(), eight.overlap_ratio());
    m.insert(
        "pipeline8.fases_speedup".to_string(),
        eight.fases_per_sim_ms() / solo.fases_per_sim_ms(),
    );
    m
}

fn main() -> ExitCode {
    let mut check = false;
    let mut out = String::from("BENCH_PR3.json");
    let mut baseline = String::from("bench/baseline.json");
    let mut tolerance = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--baseline" => baseline = args.next().expect("--baseline needs a path"),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a percentage")
                    .parse()
                    .expect("--tolerance must be a number")
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_smoke [--check] [--out FILE] [--baseline FILE] [--tolerance PCT]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let metrics = collect_metrics();
    let json = to_json(&metrics);
    std::fs::write(&out, format!("{json}\n")).expect("write metrics file");
    println!("wrote {} metrics to {out}", metrics.len());

    if !check {
        return ExitCode::SUCCESS;
    }
    let base_raw = match std::fs::read_to_string(&baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {baseline}: {e}");
            eprintln!("(generate one with `bench_smoke --out {baseline}` and commit it)");
            return ExitCode::FAILURE;
        }
    };
    let base = match from_json(&base_raw) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("baseline {baseline}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let findings = gate(&base, &metrics, tolerance / 100.0);
    if findings.is_empty() {
        println!(
            "perf gate OK: {} metrics within {tolerance}% of {baseline}",
            base.len()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "perf gate FAILED: {} metric(s) regressed more than {tolerance}% vs {baseline}:",
        findings.len()
    );
    for f in &findings {
        eprintln!(
            "  {:<28} baseline {:>12.4}  current {:>12.4}  ({:+.1}% in the bad direction)",
            f.key,
            f.baseline,
            f.current,
            f.regression * 100.0
        );
    }
    eprintln!("(if intentional, refresh bench/baseline.json — see README \"Latency model\")");
    ExitCode::FAILURE
}
