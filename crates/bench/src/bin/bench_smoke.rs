//! `bench_smoke` — the CI perf-regression gate.
//!
//! Runs a fixed, CI-sized slice of the evaluation — the four
//! applications/microbenchmarks the PR pipeline tracks (map, memcached,
//! vacation, bfs on MOD) plus the 1→8-thread pipelined `SharedModHeap`
//! curve — and emits a flat JSON metric map (fences/FASE, sim-ns/op,
//! overlap ratio, 8-thread speedup, batch occupancy). Every simulated
//! metric is bit-for-bit deterministic across machines; any drift is a
//! real model/code change.
//!
//! On machines with ≥ 4 cores it additionally measures the **host-time**
//! (wall-clock) scaling of the lock-free staging path: a free-running
//! group-commit run at 1 and `MOD_TEST_THREADS` (default 8) threads over
//! sharded per-worker structures. The gated key
//! `host_pipelineN.fases_speedup` is capped at 2.5 so a fast dev box
//! cannot commit a baseline that flakes slower CI runners; the committed
//! baseline of 2.5 therefore enforces ≥ 2.25x (the ≥ 2x acceptance bar
//! plus gate tolerance) wherever cores exist. Raw host timings are
//! recorded under gate-exempt `info.` keys, and on < 4 cores the host
//! section is skipped entirely (`host_` baseline keys do not gate when
//! the current run omits them).
//!
//! The read-heavy section runs the 95/5 snapshot-read workload twice:
//! a deterministic turnstile pass whose `read95.*` keys gate bit-exactly
//! (including `snapshot_epochs_lagged`, the count of reader turns served
//! from a stale pinned view), and — on ≥ 4 cores — a free-running pass
//! at 1 and 8 reader threads whose `host_read95.reader_speedup_1to8`
//! gate (capped like the pipeline speedup) asserts that wait-free
//! snapshot readers actually scale. `host_read95.ns_per_op` is floored
//! (see [`READ95_NS_FLOOR`]) so it only fires on a genuine read-path
//! slowdown, not runner noise.
//!
//! The flush-coalescing section runs the map micro with the fence-epoch
//! flush cache on and off: the on-run's effective flushes/op gates
//! bit-exactly (`coalesce.flushes_per_op`), the dedup rate and the
//! uncoalesced count land under ungated `info.coalesce.*` keys, and the
//! file-backend session's journal bytes per FASE additionally gate as
//! `coalesce.journal_bytes_per_fase` — the compact journal codec is a
//! product surface, and its traffic is bit-deterministic.
//!
//! The file-backend section runs a persistent session against a real
//! pool file and records ungated `info.file_backend.*` keys: journal
//! bytes appended per FASE, compactions, and the host time to replay the
//! pool on reopen. A second pass runs group-committed FASEs against a
//! power-loss-grade **pool set** (4 shard journals, fsync per fence) and
//! records the fsync amortization (`fsync_rounds_per_fase` ≤ 1/N for
//! batch size N), per-shard journal traffic, and the parallel-replay
//! width the reopen used (`replay_parallelism`).
//!
//! The server section starts the `mod-server` network front end on a
//! file-backed pool (in-process listener, real sockets) and drives the
//! open-loop load generator at 1, 4 and 8 connections with a bounded
//! in-flight window, recording ungated `info.server.*` keys: host req/s
//! and p50/p99 reply latency (reply-after-fence — latency includes the
//! batch fence wait) per connection count. Host-time only; connection
//! counts above the core count oversubscribe and are reported as-is.
//!
//! ```text
//! bench_smoke [--check] [--out FILE] [--baseline FILE] [--tolerance PCT]
//! ```
//!
//! * `--out` (default `BENCH_PR10.json`; CI passes `--out "$BENCH_OUT"`):
//!   where to write this run's metrics (uploaded as a CI artifact).
//! * `--check`: compare against `--baseline` (default
//!   `bench/baseline.json`) and exit non-zero if any metric regresses by
//!   more than `--tolerance` percent (default 10). Direction-aware:
//!   ns/op and fences/op gate upward, overlap/speedup gate downward.
//!
//! To refresh the baseline after an intentional perf change:
//! `cargo run --release -p mod-bench --bin bench_smoke -- --out bench/baseline.json`
//! and commit the diff with a justification. Refresh on a ≥ 4-core
//! machine (or re-add the `host_*` keys by hand) so the host-throughput
//! gate stays armed.

use mod_bench::gate::{from_json, gate, to_json, Metrics};
use mod_workloads::{
    run_host, run_host_readers, run_pipelined, run_read_heavy, run_workload, ConcurrencyConfig,
    ReadHeavyConfig, ScaleConfig, System, Workload,
};
use std::process::ExitCode;

/// Cap on the gated host-speedup metrics (see module docs).
const HOST_SPEEDUP_CAP: f64 = 2.5;

/// Floor on the gated `host_read95.ns_per_op` key: per-read wall time is
/// reported as `measured.max(floor)`, so a fast dev box cannot commit a
/// sub-floor baseline that flakes slower CI runners, and the gate only
/// fires when snapshot reads genuinely blow past the floor (e.g. a lock
/// or fence sneaking back onto the read path).
const READ95_NS_FLOOR: f64 = 2_000.0;

fn collect_metrics() -> Metrics {
    let mut m = Metrics::new();
    let scale = ScaleConfig::testing();
    for w in [
        Workload::Map,
        Workload::Memcached,
        Workload::Vacation,
        Workload::Bfs,
    ] {
        eprintln!("  bench_smoke: {w} on MOD ...");
        let r = run_workload(w, System::Mod, &scale);
        let key = w.name().replace('-', "_");
        m.insert(format!("{key}.sim_ns_per_op"), r.ns_per_op());
        m.insert(
            format!("{key}.fences_per_op"),
            r.fences as f64 / r.ops as f64,
        );
        m.insert(
            format!("{key}.flushes_per_op"),
            r.flushes as f64 / r.ops as f64,
        );
        m.insert(format!("{key}.overlap_ratio"), r.overlap_ratio());
    }
    eprintln!("  bench_smoke: pipelined SharedModHeap 1..8 threads ...");
    let solo = run_pipelined(&ConcurrencyConfig::testing(1));
    let eight = run_pipelined(&ConcurrencyConfig::testing(8));
    m.insert(
        "pipeline1.sim_ns_per_op".to_string(),
        solo.sim_ns_per_fase(),
    );
    m.insert(
        "pipeline1.fences_per_op".to_string(),
        solo.fences_per_fase(),
    );
    m.insert("pipeline1.overlap_ratio".to_string(), solo.overlap_ratio());
    m.insert(
        "pipeline8.sim_ns_per_op".to_string(),
        eight.sim_ns_per_fase(),
    );
    m.insert(
        "pipeline8.fences_per_op".to_string(),
        eight.fences_per_fase(),
    );
    m.insert("pipeline8.overlap_ratio".to_string(), eight.overlap_ratio());
    m.insert(
        "pipeline8.fases_speedup".to_string(),
        eight.fases_per_sim_ms() / solo.fases_per_sim_ms(),
    );
    // Batch occupancy of the deterministic 8-thread pipeline: how full
    // the group commits ran (1.0 = every batch carried all 8 workers).
    m.insert(
        "pipeline8.batch_occupancy_ratio".to_string(),
        eight.mean_batch() / eight.threads as f64,
    );

    eprintln!("  bench_smoke: hybrid-policy ablation (map micro, file-backed memcached mix) ...");
    {
        use mod_core::{DurableMap, ModHeap, PersistPolicy};
        use mod_workloads::WorkloadRng;
        // Deterministic sim half — gated: the hybrid map run's flushes/op
        // must stay low (the point of "Don't Persist All"), and any drift
        // in the volatile-node accounting shows up here bit-exactly.
        let hyb = mod_workloads::run_map_hybrid(&scale);
        m.insert(
            "hybrid.flushes_per_op".to_string(),
            hyb.flushes as f64 / hyb.ops as f64,
        );
        m.insert("info.hybrid.sim_ns_per_op".to_string(), hyb.ns_per_op());

        // File-backed half — ungated info keys: the memcached mix
        // (16-byte keys, 512-byte values, 95 % sets) against a real pool,
        // recording flush and journal traffic per op plus the host time
        // the reopen spent rebuilding the volatile index from the spine.
        const HYBRID_OPS: u64 = 1_000;
        let mut path = std::env::temp_dir();
        path.push(format!("mod_bench_hybrid_{}.pool", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = mod_pmem::PmemConfig {
            capacity: 1 << 26,
            crash_sim: false,
            ..mod_pmem::PmemConfig::default()
        };
        let mut heap = ModHeap::create_file(&path, cfg.clone()).expect("hybrid pool");
        let map: DurableMap<[u8; 16], Vec<u8>> =
            heap.root(0).policy(PersistPolicy::Hybrid).create();
        let mut rng = WorkloadRng::new(0xD0_4A11);
        for op in 0..HYBRID_OPS {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&rng.below(256).to_le_bytes());
            if rng.percent(95) {
                let mut v = vec![0u8; 512];
                v[..8].copy_from_slice(&op.to_le_bytes());
                map.insert(&mut heap, &key, &v);
            } else {
                let _ = map.get(&heap, &key);
            }
        }
        heap.quiesce();
        let stats = heap.nv().pm().stats().clone();
        let backend = heap.nv().pm().backend_stats();
        m.insert(
            "info.hybrid.flushes_per_op".to_string(),
            stats.effective_flushes as f64 / HYBRID_OPS as f64,
        );
        m.insert(
            "info.hybrid.flushes_avoided_per_op".to_string(),
            stats.flushes_avoided as f64 / HYBRID_OPS as f64,
        );
        m.insert(
            "info.hybrid.journal_bytes_per_op".to_string(),
            backend.journal_bytes as f64 / HYBRID_OPS as f64,
        );
        // Drop without a checkpoint (as a kill would): the reopen replays
        // the journal and rebuilds the volatile index from the spine.
        drop(heap);
        let (h2, _report) = ModHeap::open_file(&path, cfg).expect("hybrid reopen");
        m.insert("info.hybrid.rebuild_ns".to_string(), h2.rebuild_ns() as f64);
        drop(h2);
        let _ = std::fs::remove_file(&path);
    }

    eprintln!("  bench_smoke: flush-coalescing ablation (map micro, on vs off) ...");
    {
        // Gated: the map micro with the fence-epoch flush cache on (the
        // default shape every other section already runs in). Bit-exact;
        // drift means the elision coverage itself changed. The off-run
        // pins the cache's contribution as ungated info keys.
        let on = mod_workloads::run_map_coalesce(&scale, true);
        let off = mod_workloads::run_map_coalesce(&scale, false);
        assert_eq!(
            on.fences, off.fences,
            "flush coalescing must never change the fence schedule"
        );
        m.insert(
            "coalesce.flushes_per_op".to_string(),
            on.flushes as f64 / on.ops as f64,
        );
        m.insert(
            "info.coalesce.flushes_deduped_per_op".to_string(),
            on.flushes_deduped as f64 / on.ops as f64,
        );
        m.insert(
            "info.coalesce.flushes_per_op_uncoalesced".to_string(),
            off.flushes as f64 / off.ops as f64,
        );
    }

    eprintln!("  bench_smoke: read-heavy 95/5 snapshot reads (deterministic) ...");
    {
        let r95 = run_read_heavy(&ReadHeavyConfig::testing());
        m.insert("read95.sim_ns_per_op".to_string(), r95.sim_ns_per_op());
        // Exact and deterministic: how many reader turns were served from
        // a view that lagged the published epoch. Drift means the
        // publication or pinning discipline changed.
        m.insert(
            "read95.snapshot_epochs_lagged".to_string(),
            r95.epochs_lagged as f64,
        );
        m.insert("info.read95.reads".to_string(), r95.reads as f64);
        m.insert(
            "info.read95.final_epoch".to_string(),
            r95.final_epoch as f64,
        );
    }

    eprintln!("  bench_smoke: file-backed session (journal traffic, replay) ...");
    {
        const SESSION_SEED: u64 = 0xBE5E_ED05;
        const SESSION_OPS: u64 = 2_000;
        let mut path = std::env::temp_dir();
        path.push(format!("mod_bench_smoke_{}.pool", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut session =
            mod_workloads::session::open_session(&path, SESSION_SEED).expect("session pool");
        mod_workloads::session::run_ops(&mut session, SESSION_OPS);
        let backend = session.heap.nv().pm().backend_stats();
        // Drop without a checkpoint (as a kill would): the reopen below
        // then measures a real journal replay, not just a snapshot load.
        drop(session);
        // Journal traffic is bit-deterministic (sim time and line
        // contents both are), so the codec's compactness gates: a
        // regression in the v3 varint/delta encoding fails CI here. The
        // `info.` twin stays for artifact continuity.
        m.insert(
            "coalesce.journal_bytes_per_fase".to_string(),
            backend.journal_bytes as f64 / SESSION_OPS as f64,
        );
        m.insert(
            "info.file_backend.journal_bytes_per_fase".to_string(),
            backend.journal_bytes as f64 / SESSION_OPS as f64,
        );
        m.insert(
            "info.file_backend.compactions".to_string(),
            backend.compactions as f64,
        );
        let reopened = mod_pmem::Pmem::open_file(&path, mod_pmem::PmemConfig::default())
            .expect("session reopen");
        let replay = reopened.replay_stats().expect("replay stats").clone();
        m.insert(
            "info.file_backend.replay_ns".to_string(),
            replay.host_ns as f64,
        );
        m.insert(
            "info.file_backend.replayed_batches".to_string(),
            replay.batches as f64,
        );
        let _ = std::fs::remove_file(&path);
    }

    eprintln!("  bench_smoke: pool set, 4 shards, fsync-per-fence group commit ...");
    {
        use mod_core::{CommitMode, DurableVector, ModHeap, SharedModHeap};
        use mod_pmem::{Durability, PmemConfig};
        const WORKERS: usize = 4;
        const FASES: u64 = 400;
        let mut path = std::env::temp_dir();
        path.push(format!("mod_bench_poolset_{}.pool", std::process::id()));
        let _ = std::fs::remove_file(&path);
        for s in 0..WORKERS {
            let _ = std::fs::remove_file(format!("{}.s{s}", path.display()));
        }
        let cfg = PmemConfig {
            journal_shards: WORKERS as u16,
            durability: Durability::Fsync,
            ..PmemConfig::default()
        };
        let mut heap = ModHeap::create_file(&path, cfg.clone()).expect("pool set");
        let vecs: Vec<DurableVector<u64>> = (0..WORKERS)
            .map(|_| DurableVector::create_from(&mut heap, &[0u64]))
            .collect();
        let sh = SharedModHeap::from_heap_with(
            heap,
            WORKERS,
            CommitMode::Group {
                max_batch: WORKERS,
                timeout: std::time::Duration::from_millis(2),
            },
        );
        // Round-robin staging keeps every batch full, so the per-fence
        // fsync round is amortized over max_batch FASEs.
        for k in 0..FASES {
            let w = (k as usize) % WORKERS;
            sh.try_fase(w, |tx| vecs[w].update_in(tx, 0, &k))
                .expect("staged FASE");
        }
        sh.flush();
        let heap = sh.into_heap();
        let backend = heap.nv().pm().backend_stats();
        m.insert(
            "info.file_backend.fsync_rounds_per_fase".to_string(),
            backend.fsync_rounds as f64 / FASES as f64,
        );
        m.insert(
            "info.file_backend.fsyncs_per_fase".to_string(),
            backend.fsyncs as f64 / FASES as f64,
        );
        for (s, bytes) in backend.journal_bytes_by_shard.iter().enumerate() {
            m.insert(
                format!("info.file_backend.shard{s}.journal_bytes_per_fase"),
                *bytes as f64 / FASES as f64,
            );
        }
        // Drop without a checkpoint so the reopen replays the set's
        // journals — one scan thread per shard.
        drop(heap);
        let reopened = mod_pmem::Pmem::open_file(&path, cfg).expect("pool-set reopen");
        let replay = reopened.replay_stats().expect("replay stats");
        m.insert(
            "info.file_backend.replay_parallelism".to_string(),
            replay.replay_parallelism as f64,
        );
        let _ = std::fs::remove_file(&path);
        for s in 0..WORKERS {
            let _ = std::fs::remove_file(format!("{}.s{s}", path.display()));
        }
    }

    eprintln!("  bench_smoke: mod-server loadgen, 1/4/8 connections ...");
    {
        use mod_server::{pool, serve_with, LoadgenConfig, ServerConfig};
        const WINDOW: usize = 16;
        let mut path = std::env::temp_dir();
        path.push(format!("mod_bench_server_{}.pool", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let (heap, roots) = pool::open_or_create(
            &path,
            4,
            mod_core::CommitMode::Group {
                max_batch: 8,
                timeout: std::time::Duration::from_millis(2),
            },
        )
        .expect("server pool");
        let handle = serve_with(heap, roots, "127.0.0.1:0", ServerConfig { window: WINDOW })
            .expect("bind server");
        m.insert("info.server.inflight_window".to_string(), WINDOW as f64);
        for conns in [1usize, 4, 8] {
            let report = mod_server::run_loadgen(
                handle.addr(),
                &LoadgenConfig {
                    conns,
                    window: WINDOW,
                    ops_per_conn: 300,
                    ..LoadgenConfig::default()
                },
            )
            .expect("loadgen run");
            m.insert(
                format!("info.server.conns{conns}.req_per_s"),
                report.req_per_s(),
            );
            m.insert(
                format!("info.server.conns{conns}.p50_ns"),
                report.p50_ns() as f64,
            );
            m.insert(
                format!("info.server.conns{conns}.p99_ns"),
                report.p99_ns() as f64,
            );
            m.insert(
                format!("info.server.conns{conns}.errors"),
                report.errors as f64,
            );
            // The headline keys track the single-connection run: it is
            // the least scheduler-sensitive configuration on small CI
            // runners, and reply-after-fence cost shows up undiluted.
            if conns == 1 {
                m.insert("info.server.req_per_s".to_string(), report.req_per_s());
                m.insert("info.server.p99_ns".to_string(), report.p99_ns() as f64);
            }
        }
        handle.stop();
        let _ = std::fs::remove_file(&path);
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let host_threads: usize = std::env::var("MOD_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8);
    if cores >= 4 {
        eprintln!(
            "  bench_smoke: host-time throughput, 1 vs {host_threads} free-running threads ..."
        );
        let host_cfg = |threads| ConcurrencyConfig {
            ops_per_thread: 400,
            ..ConcurrencyConfig::testing(threads)
        };
        // Wall-clock is noisy on shared runners: take the best of three
        // (fastest ns/op per thread count — the least-disturbed sample)
        // before gating, with the first pair doubling as warmup.
        let best = |threads| {
            (0..3)
                .map(|_| run_host(&host_cfg(threads)))
                .min_by(|a, b| a.host_ns_per_op().total_cmp(&b.host_ns_per_op()))
                .unwrap()
        };
        let solo_host = best(1);
        let multi_host = best(host_threads);
        let speedup = solo_host.host_ns_per_op() / multi_host.host_ns_per_op();
        m.insert(
            format!("host_pipeline{host_threads}.fases_speedup"),
            speedup.min(HOST_SPEEDUP_CAP),
        );
        m.insert(
            format!("host_pipeline{host_threads}.fences_per_op"),
            multi_host.fences_per_fase(),
        );
        m.insert(
            format!("info.host_pipeline{host_threads}.ns_per_op"),
            multi_host.host_ns_per_op(),
        );
        m.insert(
            "info.host_pipeline1.ns_per_op".to_string(),
            solo_host.host_ns_per_op(),
        );
        m.insert(
            format!("info.host_pipeline{host_threads}.mean_batch"),
            multi_host.mean_batch(),
        );
        m.insert(
            format!("info.host_pipeline{host_threads}.raw_speedup"),
            speedup,
        );

        eprintln!("  bench_smoke: host-time snapshot-read scaling, 1 vs 8 readers ...");
        let read_cfg = ReadHeavyConfig {
            reader_reads: 40_000,
            keys: 4_000,
            ..ReadHeavyConfig::testing()
        };
        let best_readers = |readers| {
            (0..3)
                .map(|_| run_host_readers(&read_cfg, readers))
                .min_by(|a, b| a.ns_per_read().total_cmp(&b.ns_per_read()))
                .unwrap()
        };
        let solo_read = best_readers(1);
        let eight_read = best_readers(8);
        let read_speedup = eight_read.reads_per_host_ms() / solo_read.reads_per_host_ms();
        m.insert(
            "host_read95.reader_speedup_1to8".to_string(),
            read_speedup.min(HOST_SPEEDUP_CAP),
        );
        m.insert(
            "host_read95.ns_per_op".to_string(),
            eight_read.ns_per_read().max(READ95_NS_FLOOR),
        );
        m.insert("info.host_read95.raw_speedup".to_string(), read_speedup);
        m.insert(
            "info.host_read95.raw_ns_per_read_8r".to_string(),
            eight_read.ns_per_read(),
        );
        m.insert(
            "info.host_read95.raw_ns_per_read_1r".to_string(),
            solo_read.ns_per_read(),
        );
    } else {
        eprintln!(
            "  bench_smoke: {cores} core(s) — skipping host-time throughput \
             (host_* baseline keys will not gate)"
        );
        m.insert("info.host_metrics_skipped_cores".to_string(), cores as f64);
    }
    m
}

fn main() -> ExitCode {
    let mut check = false;
    let mut out = String::from("BENCH_PR10.json");
    let mut baseline = String::from("bench/baseline.json");
    let mut tolerance = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--baseline" => baseline = args.next().expect("--baseline needs a path"),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a percentage")
                    .parse()
                    .expect("--tolerance must be a number")
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_smoke [--check] [--out FILE] [--baseline FILE] [--tolerance PCT]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let metrics = collect_metrics();
    let json = to_json(&metrics);
    std::fs::write(&out, format!("{json}\n")).expect("write metrics file");
    println!("wrote {} metrics to {out}", metrics.len());

    if !check {
        return ExitCode::SUCCESS;
    }
    let base_raw = match std::fs::read_to_string(&baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {baseline}: {e}");
            eprintln!("(generate one with `bench_smoke --out {baseline}` and commit it)");
            return ExitCode::FAILURE;
        }
    };
    let base = match from_json(&base_raw) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("baseline {baseline}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let findings = gate(&base, &metrics, tolerance / 100.0);
    if findings.is_empty() {
        println!(
            "perf gate OK: {} metrics within {tolerance}% of {baseline}",
            base.len()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "perf gate FAILED: {} metric(s) regressed more than {tolerance}% vs {baseline}:",
        findings.len()
    );
    for f in &findings {
        eprintln!(
            "  {:<28} baseline {:>12.4}  current {:>12.4}  ({:+.1}% in the bad direction)",
            f.key,
            f.baseline,
            f.current,
            f.regression * 100.0
        );
    }
    eprintln!("(if intentional, refresh bench/baseline.json — see README \"Latency model\")");
    ExitCode::FAILURE
}
