//! Ablation: which of MOD's ingredients buys the speedup?
//!
//! The paper's thesis is that *ordering*, not write volume, is the
//! bottleneck (§8: "Rather than focusing on minimizing the amount of
//! data written, MOD datastructures minimize the ordering points").
//! This ablation isolates that claim on the map workload:
//!
//! 1. **no-overlap hardware** — rerun both systems on a machine whose
//!    flushes do not overlap (Amdahl f = 0): MOD's advantage should
//!    shrink dramatically, because its one-fence design exists precisely
//!    to exploit flush overlap;
//! 2. **write volume** — compare flushed-lines per op (MOD writes *more*
//!    data yet wins on normal hardware — the paper's §8 point).

use mod_bench::{banner, ratio, TextTable};
use mod_core::{DurableMap, ModHeap};
use mod_pmem::{LatencyModel, Pmem, PmemConfig};
use mod_stm::{StmHashMap, TxHeap, TxMode};
use mod_workloads::micro::value32;
use mod_workloads::{ScaleConfig, WorkloadRng};

struct Outcome {
    ns_per_op: f64,
    flushes_per_op: f64,
    fences_per_op: f64,
}

fn run_mod(scale: &ScaleConfig, latency: LatencyModel) -> Outcome {
    let pm = Pmem::new(PmemConfig {
        capacity: scale.capacity,
        latency,
        ..PmemConfig::benchmarking(scale.capacity)
    });
    let mut heap = ModHeap::create(pm);
    let map: DurableMap<u64, [u8; 32]> = DurableMap::create(&mut heap);
    let mut rng = WorkloadRng::new(scale.seed);
    let key_space = scale.preload * 2;
    for _ in 0..scale.preload {
        let k = rng.below(key_space);
        map.insert(&mut heap, &k, &value32(k));
    }
    let t0 = heap.nv().pm().clock().now_ns();
    let f0 = heap.nv().pm().stats().effective_flushes;
    let s0 = heap.nv().pm().stats().fences;
    for _ in 0..scale.ops {
        let k = rng.below(key_space);
        map.insert(&mut heap, &k, &value32(k));
    }
    Outcome {
        ns_per_op: (heap.nv().pm().clock().now_ns() - t0) / scale.ops as f64,
        flushes_per_op: (heap.nv().pm().stats().effective_flushes - f0) as f64 / scale.ops as f64,
        fences_per_op: (heap.nv().pm().stats().fences - s0) as f64 / scale.ops as f64,
    }
}

fn run_pmdk(scale: &ScaleConfig, latency: LatencyModel) -> Outcome {
    let pm = Pmem::new(PmemConfig {
        capacity: scale.capacity,
        latency,
        ..PmemConfig::benchmarking(scale.capacity)
    });
    let mut heap = TxHeap::format(pm, TxMode::Hybrid);
    let map = StmHashMap::create(&mut heap, scale.bucket_bits());
    let mut rng = WorkloadRng::new(scale.seed);
    let key_space = scale.preload * 2;
    for _ in 0..scale.preload {
        let k = rng.below(key_space);
        map.insert(&mut heap, k, &value32(k));
    }
    let t0 = heap.nv().pm().clock().now_ns();
    let f0 = heap.nv().pm().stats().effective_flushes;
    let s0 = heap.nv().pm().stats().fences;
    for _ in 0..scale.ops {
        let k = rng.below(key_space);
        map.insert(&mut heap, k, &value32(k));
    }
    Outcome {
        ns_per_op: (heap.nv().pm().clock().now_ns() - t0) / scale.ops as f64,
        flushes_per_op: (heap.nv().pm().stats().effective_flushes - f0) as f64 / scale.ops as f64,
        fences_per_op: (heap.nv().pm().stats().fences - s0) as f64 / scale.ops as f64,
    }
}

fn main() {
    banner("Ablation: ordering, not write volume, is the bottleneck");
    let scale = ScaleConfig::from_env();
    println!(
        "map workload, {} ops / {} preload\n",
        scale.ops, scale.preload
    );

    let optane = LatencyModel::optane();
    // A hypothetical device whose flushes serialize completely: fencing
    // n flushes costs n full flush latencies (f = 0 ⇒ no overlap win).
    // Re-derives the WPQ launch/drain split so the background-drain
    // calendar serializes too, not just the analytical curve.
    let no_overlap = LatencyModel::with_parallel_fraction(0.0);

    let mut t = TextTable::new(vec![
        "hardware",
        "system",
        "ns/op",
        "flushes/op",
        "fences/op",
    ]);
    let mut speedups = Vec::new();
    for (hw_name, hw) in [
        ("optane (f=0.82)", optane),
        ("no-overlap (f=0)", no_overlap),
    ] {
        let m = run_mod(&scale, hw.clone());
        let p = run_pmdk(&scale, hw.clone());
        t.row(vec![
            hw_name.to_string(),
            "MOD".to_string(),
            format!("{:.0}", m.ns_per_op),
            format!("{:.1}", m.flushes_per_op),
            format!("{:.1}", m.fences_per_op),
        ]);
        t.row(vec![
            hw_name.to_string(),
            "PMDK-1.5".to_string(),
            format!("{:.0}", p.ns_per_op),
            format!("{:.1}", p.flushes_per_op),
            format!("{:.1}", p.fences_per_op),
        ]);
        speedups.push((hw_name, p.ns_per_op / m.ns_per_op, m, p));
    }
    println!("{}", t.render());
    for (hw, s, m, p) in &speedups {
        println!(
            "{hw}: MOD is {} vs PMDK, while flushing {} as many lines",
            ratio(*s),
            ratio(m.flushes_per_op / p.flushes_per_op)
        );
    }
    let (_, with_overlap, ..) = speedups[0];
    let (_, without_overlap, ..) = speedups[1];
    println!();
    println!(
        "Take away the hardware's flush overlap and MOD's advantage drops \
         from {} to {} — the design wins by *ordering less*, not by \
         writing less (it writes more).",
        ratio(with_overlap),
        ratio(without_overlap)
    );
}
