//! Figure 10: flush and fence frequency per update operation — the
//! scatter of flushes/op against fences/op for MOD vs PMDK v1.5.

use mod_bench::{banner, TextTable};
use mod_workloads::{run_workload, ScaleConfig, System, Workload};

fn main() {
    banner("Figure 10: flushes/op vs fences/op (update operations)");
    let scale = ScaleConfig::from_env();
    println!(
        "scale: {} ops, {} preload (MOD_OPS / MOD_PRELOAD to change)\n",
        scale.ops, scale.preload
    );
    let mut t = TextTable::new(vec!["operation", "system", "fences/op", "flushes/op"]);
    let micro = [
        Workload::Map,
        Workload::Set,
        Workload::Queue,
        Workload::Stack,
        Workload::Vector,
        Workload::VecSwap,
    ];
    for sys in [System::Mod, System::Pmdk15] {
        for w in micro {
            eprintln!("  running {w} on {sys} ...");
            let r = run_workload(w, sys, &scale);
            for p in &r.profiles {
                t.row(vec![
                    p.op.clone(),
                    sys.name().to_string(),
                    format!("{:.1}", p.fences_per_op()),
                    format!("{:.1}", p.flushes_per_op()),
                ]);
            }
        }
    }
    println!("{}", t.render());
    println!("Paper: MOD always 1 fence/op; PMDK 5-11 fences/op;");
    println!("MOD vector/vec-swap flush many more lines than PMDK's flat array.");
}
