//! Figure 9: execution time of all Table 2 workloads under PMDK v1.4,
//! PMDK v1.5 and MOD, normalized to PMDK v1.4, with the
//! {other, flush, log} breakdown, plus the paper's §6.3 summary numbers.

use mod_bench::{banner, find, geomean, ratio, run_everything, TextTable};
use mod_workloads::{ScaleConfig, System, Workload};

fn main() {
    banner("Figure 9: execution time normalized to PMDK v1.4");
    let scale = ScaleConfig::from_env();
    println!(
        "scale: {} ops, {} preload (MOD_OPS / MOD_PRELOAD to change)\n",
        scale.ops, scale.preload
    );
    let reports = run_everything(&scale);
    let mut t = TextTable::new(vec![
        "workload",
        "system",
        "norm time",
        "other",
        "flush",
        "log",
        "ns/op",
    ]);
    for w in Workload::all() {
        let base = find(&reports, w, System::Pmdk14).total_ns();
        for sys in System::all() {
            let r = find(&reports, w, sys);
            let total = r.total_ns();
            t.row(vec![
                w.name().to_string(),
                sys.name().to_string(),
                format!("{:.2}", total / base),
                format!("{:.2}", r.time.other_ns / base),
                format!("{:.2}", r.time.flush_ns / base),
                format!("{:.2}", r.time.log_ns / base),
                format!("{:.0}", r.ns_per_op()),
            ]);
        }
    }
    println!("{}", t.render());

    // §6.3 summary lines.
    let pointer_micro = [
        Workload::Map,
        Workload::Set,
        Workload::Queue,
        Workload::Stack,
    ];
    let apps = [Workload::Bfs, Workload::Vacation, Workload::Memcached];
    let all = Workload::all();

    let v15_vs_v14: Vec<f64> = all
        .iter()
        .map(|&w| {
            find(&reports, w, System::Pmdk15).total_ns()
                / find(&reports, w, System::Pmdk14).total_ns()
        })
        .collect();
    println!(
        "PMDK v1.5 vs v1.4 (geomean all workloads): {:.0}% faster (paper: ~23%)",
        (1.0 - geomean(&v15_vs_v14)) * 100.0
    );

    let mod_vs_v15_micro: Vec<f64> = pointer_micro
        .iter()
        .map(|&w| {
            find(&reports, w, System::Mod).total_ns() / find(&reports, w, System::Pmdk15).total_ns()
        })
        .collect();
    println!(
        "MOD vs v1.5 on map/set/queue/stack (geomean): {:.0}% faster (paper: ~43%)",
        (1.0 - geomean(&mod_vs_v15_micro)) * 100.0
    );

    for w in [Workload::Vector, Workload::VecSwap] {
        let slow = find(&reports, w, System::Mod).total_ns()
            / find(&reports, w, System::Pmdk15).total_ns();
        println!(
            "MOD vs v1.5 on {}: {} (paper: slower, 1.2-2.2x)",
            w.name(),
            ratio(slow)
        );
    }

    let mod_vs_v15_apps: Vec<f64> = apps
        .iter()
        .map(|&w| {
            find(&reports, w, System::Mod).total_ns() / find(&reports, w, System::Pmdk15).total_ns()
        })
        .collect();
    println!(
        "MOD vs v1.5 on bfs/vacation/memcached (geomean): {:.0}% faster (paper: ~36%)",
        (1.0 - geomean(&mod_vs_v15_apps)) * 100.0
    );
}
