//! Figure 2: fraction of execution time spent logging and flushing in PM
//! workloads under the PMDK-style v1.5 STM.

use mod_bench::{banner, percent, TextTable};
use mod_workloads::{run_workload, ScaleConfig, System, Workload};

fn main() {
    banner("Figure 2: PMDK v1.5 execution-time breakdown");
    let scale = ScaleConfig::from_env();
    println!(
        "scale: {} ops, {} preload (MOD_OPS / MOD_PRELOAD to change)\n",
        scale.ops, scale.preload
    );
    let mut t = TextTable::new(vec!["workload", "other", "flush", "log"]);
    let mut flush_sum = 0.0;
    let mut log_sum = 0.0;
    let mut n = 0.0;
    for w in Workload::all() {
        eprintln!("  running {w} ...");
        let r = run_workload(w, System::Pmdk15, &scale);
        let total = r.time.total_ns();
        t.row(vec![
            w.name().to_string(),
            percent(r.time.other_ns / total),
            percent(r.time.flush_ns / total),
            percent(r.time.log_ns / total),
        ]);
        flush_sum += r.time.flush_ns / total;
        log_sum += r.time.log_ns / total;
        n += 1.0;
    }
    println!("{}", t.render());
    println!(
        "mean flush fraction: {} (paper: ~64%)   mean log fraction: {} (paper: ~9%)",
        percent(flush_sum / n),
        percent(log_sum / n)
    );
}
