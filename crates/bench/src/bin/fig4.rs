//! Figure 4: average PM cacheline flush latency vs flush concurrency,
//! observed (WPQ event model) against the Amdahl fit and against the
//! *measured* behaviour of the simulated pool itself (background drains
//! plus residual fence stalls), with the Karp–Flatt-estimated parallel
//! fraction, as in the paper's §3.

use mod_bench::{banner, TextTable};
use mod_pmem::{fit_parallel_fraction, LatencyModel, Pmem, PmemConfig, WpqModel};

/// Replays the paper's §3 microbenchmark against the real simulated
/// pool: `total` lines flushed with an `sfence` every `per_fence`
/// flushes. With `prewrite` the lines are dirtied (and the time
/// rebased) before measuring, so the flush phase is pure back-to-back
/// `clwb`s — the saturated limit. Without it the stores interleave with
/// the flushes and their cache-miss time hides drain work in the
/// background, which is the overlap the model now captures.
/// Returns the average flush-timeline nanoseconds per flush.
fn measured_avg_flush_ns(per_fence: usize, total: usize, prewrite: bool) -> f64 {
    let mut pm = Pmem::new(PmemConfig::benchmarking(1 << 24));
    let addr_of = |line: u64| 0x1000 + line * 64;
    if prewrite {
        for line in 0..total as u64 {
            pm.write_u64(addr_of(line), line);
        }
        pm.reset_metrics();
    }
    let mut line = 0u64;
    let t0 = pm.clock().breakdown().flush_ns;
    let mut flushed = 0usize;
    while flushed < total {
        let batch = per_fence.min(total - flushed);
        for _ in 0..batch {
            if !prewrite {
                pm.write_u64(addr_of(line), line);
            }
            pm.clwb(addr_of(line));
            line += 1;
        }
        pm.sfence();
        flushed += batch;
    }
    (pm.clock().breakdown().flush_ns - t0) / total as f64
}

fn main() {
    banner("Figure 4: flush latency vs flushes overlapped per fence");
    let model = LatencyModel::optane();
    let wpq = WpqModel::from_latency(&model);
    let levels: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 20, 24, 28, 32];
    let observed = wpq.observed_curve(&levels);
    let amdahl = model.amdahl_curve(&levels);
    let saturated: Vec<(usize, f64)> = levels
        .iter()
        .map(|&n| (n, measured_avg_flush_ns(n, 320, true)))
        .collect();
    let overlapped: Vec<(usize, f64)> = levels
        .iter()
        .map(|&n| (n, measured_avg_flush_ns(n, 320, false)))
        .collect();
    let mut t = TextTable::new(vec![
        "flushes/fence",
        "observed (ns)",
        "amdahl f=0.82 (ns)",
        "pmem saturated (ns)",
        "pmem stores+flush (ns)",
    ]);
    for (((o, a), s), v) in observed
        .iter()
        .zip(&amdahl)
        .zip(&saturated)
        .zip(&overlapped)
    {
        t.row(vec![
            o.0.to_string(),
            format!("{:.1}", o.1),
            format!("{:.1}", a.1),
            format!("{:.1}", s.1),
            format!("{:.1}", v.1),
        ]);
    }
    println!("{}", t.render());
    let fit = fit_parallel_fraction(&observed);
    println!("Karp-Flatt fit of observed curve: parallel fraction f = {fit:.3}");
    let fit_sat = fit_parallel_fraction(&saturated);
    println!("Karp-Flatt fit of pmem saturated curve: f = {fit_sat:.3}");
    println!("Paper: f = 0.82 (82% parallel / 18% serial)");
    let l1 = observed[0].1;
    let l16 = observed.iter().find(|&&(n, _)| n == 16).unwrap().1;
    println!(
        "16-way overlap cuts average flush latency by {:.0}% (paper: 75%)",
        (1.0 - l16 / l1) * 100.0
    );
    println!(
        "(saturated = pure clwb trains: the background-drain calendar has \
         nothing to hide under and lands on the Amdahl stall; stores+flush = \
         the stores' own cache-miss time hides drain work, the overlap the \
         residual-stall model newly captures)"
    );
}
