//! Figure 4: average PM cacheline flush latency vs flush concurrency,
//! observed (WPQ event model) against the Amdahl fit, plus the
//! Karp–Flatt-estimated parallel fraction, as in the paper's §3.

use mod_bench::{banner, TextTable};
use mod_pmem::{fit_parallel_fraction, LatencyModel, WpqModel};

fn main() {
    banner("Figure 4: flush latency vs flushes overlapped per fence");
    let model = LatencyModel::optane();
    let wpq = WpqModel::from_latency(&model);
    let levels: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 20, 24, 28, 32];
    let observed = wpq.observed_curve(&levels);
    let amdahl = model.amdahl_curve(&levels);
    let mut t = TextTable::new(vec!["flushes/fence", "observed (ns)", "amdahl f=0.82 (ns)"]);
    for (o, a) in observed.iter().zip(&amdahl) {
        t.row(vec![
            o.0.to_string(),
            format!("{:.1}", o.1),
            format!("{:.1}", a.1),
        ]);
    }
    println!("{}", t.render());
    let fit = fit_parallel_fraction(&observed);
    println!("Karp-Flatt fit of observed curve: parallel fraction f = {fit:.3}");
    println!("Paper: f = 0.82 (82% parallel / 18% serial)");
    let l1 = observed[0].1;
    let l16 = observed.iter().find(|&&(n, _)| n == 16).unwrap().1;
    println!(
        "16-way overlap cuts average flush latency by {:.0}% (paper: 75%)",
        (1.0 - l16 / l1) * 100.0
    );
}
