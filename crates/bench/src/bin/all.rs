//! Runs every figure/table binary's logic in sequence — the one-shot
//! regeneration of the paper's whole evaluation section.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in [
        "fig4", "fig2", "fig9", "fig10", "fig11", "table3", "ablation",
    ] {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
    }
}
