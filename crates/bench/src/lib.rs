//! # mod-bench — figure/table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig2` | Fraction of PMDK execution time in flush/log (Fig 2) |
//! | `fig4` | Flush latency vs concurrency + Karp–Flatt fit (Fig 4) |
//! | `fig9` | Execution time normalized to PMDK v1.4 (Fig 9) |
//! | `fig10` | Flushes/op vs fences/op scatter (Fig 10) |
//! | `fig11` | L1D miss ratios (Fig 11) |
//! | `table3` | Memory growth 1M → 2M elements (Table 3) |
//! | `all` | Everything above in sequence |
//!
//! Scale defaults are CI-friendly; set `MOD_OPS=1000000` (and optionally
//! `MOD_PRELOAD`) to run at paper scale.

#![warn(missing_docs)]

use mod_workloads::{RunReport, ScaleConfig, System, Workload};

pub mod gate;
pub mod harness;

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints a figure banner.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
    println!();
}

/// Runs every Table 2 workload on every system at `scale`.
pub fn run_everything(scale: &ScaleConfig) -> Vec<RunReport> {
    let mut out = Vec::new();
    for w in Workload::all() {
        for sys in System::all() {
            eprintln!("  running {w} on {sys} ...");
            out.push(mod_workloads::run_workload(w, sys, scale));
        }
    }
    out
}

/// Finds the report for `(w, sys)` in a result set.
///
/// # Panics
///
/// Panics if the pair is missing.
pub fn find(reports: &[RunReport], w: Workload, sys: System) -> &RunReport {
    reports
        .iter()
        .find(|r| r.workload == w && r.system == sys)
        .unwrap_or_else(|| panic!("missing report for {w}/{sys}"))
}

/// Formats a ratio like `0.57x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage like `64.1%`.
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on empty input.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["x", "1.00"]);
        t.row(vec!["longer-name", "2"]);
        let s = t.render();
        assert!(s.contains("longer-name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
