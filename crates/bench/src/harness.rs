//! A dependency-free micro-benchmark harness (`std::time` only).
//!
//! The container builds offline, so the benches cannot pull in criterion;
//! this provides the small subset they need: warmup, timed batches, and a
//! `name ... ns/iter` report line per benchmark. Under `cargo test`
//! (which builds bench targets in test mode) the iteration counts drop to
//! a smoke-test level so the suite stays fast.

use std::time::Instant;

/// Iterations per timed batch.
fn batch_iters() -> u64 {
    if cfg!(test) {
        10
    } else {
        std::env::var("MOD_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_000)
    }
}

/// Number of timed batches (the median is reported).
const BATCHES: usize = 5;

/// Runs `f` in warmup + timed batches and prints the median ns/iter.
pub fn bench(name: &str, mut f: impl FnMut()) {
    let iters = batch_iters();
    for _ in 0..iters / 2 {
        f();
    }
    let mut per_iter: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    println!("{name:<32} {:>12.0} ns/iter", per_iter[BATCHES / 2]);
}

/// Wraps a bench suite: prints a header, runs the suite, prints a footer.
pub fn bench_main(suite: impl FnOnce()) {
    println!("running host-side benches (MOD_BENCH_ITERS to rescale)");
    suite();
    println!("done");
}
