//! The CI perf-regression gate behind `bench_smoke`.
//!
//! The gate works on a *flat* metric map — `"workload.metric" → f64` —
//! serialized as a tiny, sorted, dependency-free JSON object. All gated
//! metrics come from the deterministic simulation (fences/FASE,
//! sim-ns/op, overlap ratio), never from host wall-clock time, so a run
//! is bit-for-bit reproducible on any machine and a >10 % delta against
//! the committed `bench/baseline.json` is a real model/code change, not
//! noise.
//!
//! Direction matters: for most metrics lower is better (latency,
//! fences), but for a few — overlap ratio, speedup — higher is better.
//! [`higher_is_better`] encodes the rule by key suffix.

use std::collections::BTreeMap;
use std::fmt;

/// A flat metric map, ordered by key for stable serialization.
pub type Metrics = BTreeMap<String, f64>;

/// Whether a larger value of `key` is an improvement (keys ending in
/// `_ratio`, `_speedup` or `_per_ms`) rather than a regression.
pub fn higher_is_better(key: &str) -> bool {
    key.ends_with("_ratio") || key.ends_with("_speedup") || key.ends_with("_per_ms")
}

/// Serializes metrics as a pretty-printed flat JSON object with stable
/// key order and full float precision.
///
/// # Panics
///
/// Panics on a non-finite value: `NaN`/`inf` are not JSON, and a metric
/// that degenerated to one (e.g. a division by zero ops) must fail the
/// run loudly rather than poison the artifact.
pub fn to_json(metrics: &Metrics) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        assert!(v.is_finite(), "metric `{k}` is not a finite number: {v}");
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        // Shortest roundtrip-exact float formatting.
        out.push_str(&format!("  \"{k}\": {v}{sep}\n"));
    }
    out.push('}');
    out
}

/// Parse error for the flat JSON metric format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid metrics JSON: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses the flat JSON object emitted by [`to_json`] (also tolerant of
/// arbitrary whitespace). Only the flat `{"key": number, ...}` shape is
/// supported — nested objects are a format error.
pub fn from_json(s: &str) -> Result<Metrics, ParseError> {
    let body = s.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| ParseError("expected one top-level object".into()))?;
    let mut out = Metrics::new();
    for entry in split_top_level(body) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (k, v) = entry
            .split_once(':')
            .ok_or_else(|| ParseError(format!("missing ':' in `{entry}`")))?;
        let k = k.trim();
        let k = k
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| ParseError(format!("unquoted key `{k}`")))?;
        let v: f64 = v
            .trim()
            .parse()
            .map_err(|_| ParseError(format!("non-numeric value for `{k}`: `{}`", v.trim())))?;
        if out.insert(k.to_string(), v).is_some() {
            return Err(ParseError(format!("duplicate key `{k}`")));
        }
    }
    Ok(out)
}

/// Splits on commas (the format has no nested structure or quoted
/// commas: keys are dotted identifiers, values plain numbers).
fn split_top_level(body: &str) -> impl Iterator<Item = &str> {
    body.split(',')
}

/// One metric's gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Metric key.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in the *bad* direction (0 if improved).
    pub regression: f64,
}

/// Compares `current` against `baseline` with relative tolerance `tol`
/// (0.10 = fail on >10 % regression). Returns the failing findings,
/// worst first. A key present in the baseline but missing from the
/// current run is a failure (a metric silently disappeared); new keys in
/// `current` are allowed (they gate once the baseline is refreshed).
///
/// Two key-prefix escapes:
///
/// * `info.` — informational metrics (raw host timings, environment
///   facts): recorded in the artifact, never gated, so a baseline
///   refresh cannot accidentally start gating machine-dependent noise.
/// * `host_` — host wall-clock metrics, gated *only when the current run
///   reports them*: `bench_smoke` omits them on machines without enough
///   cores for the concurrency curve to mean anything, and that omission
///   must not read as "the metric regressed to nothing".
pub fn gate(baseline: &Metrics, current: &Metrics, tol: f64) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (key, &base) in baseline {
        if key.starts_with("info.") {
            continue;
        }
        let Some(&cur) = current.get(key) else {
            if key.starts_with("host_") {
                continue; // machine opted out of host metrics
            }
            findings.push(Finding {
                key: key.clone(),
                baseline: base,
                current: f64::NAN,
                regression: f64::INFINITY,
            });
            continue;
        };
        let regression = regression_of(key, base, cur);
        if regression > tol {
            findings.push(Finding {
                key: key.clone(),
                baseline: base,
                current: cur,
                regression,
            });
        }
    }
    findings.sort_by(|a, b| b.regression.total_cmp(&a.regression));
    findings
}

/// Relative change of `cur` vs `base` in the bad direction for `key`
/// (0 when equal or improved). A zero baseline gates only appearances
/// of bad non-zero values; a non-finite current value (a metric that
/// degenerated to NaN/inf) is an unconditional failure — NaN must never
/// slip through a `>` comparison as "within tolerance".
fn regression_of(key: &str, base: f64, cur: f64) -> f64 {
    if !cur.is_finite() {
        return f64::INFINITY;
    }
    let worse = if higher_is_better(key) {
        base - cur
    } else {
        cur - base
    };
    if worse <= 0.0 {
        return 0.0;
    }
    if base.abs() < f64::EPSILON {
        return f64::INFINITY;
    }
    worse / base.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(&str, f64)]) -> Metrics {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let metrics = m(&[
            ("map.sim_ns_per_op", 1234.5678901234567),
            ("map.fences_per_op", 1.0),
            ("pipeline8.overlap_ratio", 0.34256789),
        ]);
        let parsed = from_json(&to_json(&metrics)).unwrap();
        assert_eq!(parsed, metrics);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"a\": }").is_err());
        assert!(from_json("{\"a\": \"str\"}").is_err());
        assert!(from_json("{a: 1}").is_err());
        assert!(from_json("{\"a\": 1, \"a\": 2}").is_err());
        assert_eq!(from_json("{}").unwrap(), Metrics::new());
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = m(&[("x.sim_ns_per_op", 100.0)]);
        let cur = m(&[("x.sim_ns_per_op", 109.0)]);
        assert!(gate(&base, &cur, 0.10).is_empty());
    }

    #[test]
    fn gate_fails_lower_is_better_regression() {
        let base = m(&[("x.sim_ns_per_op", 100.0)]);
        let cur = m(&[("x.sim_ns_per_op", 112.0)]);
        let f = gate(&base, &cur, 0.10);
        assert_eq!(f.len(), 1);
        assert!((f[0].regression - 0.12).abs() < 1e-12);
    }

    #[test]
    fn gate_fails_higher_is_better_drop() {
        let base = m(&[("p.overlap_ratio", 0.40), ("p.fases_speedup", 2.5)]);
        let cur = m(&[("p.overlap_ratio", 0.30), ("p.fases_speedup", 2.6)]);
        let f = gate(&base, &cur, 0.10);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].key, "p.overlap_ratio");
    }

    #[test]
    fn improvements_never_fail() {
        let base = m(&[("x.sim_ns_per_op", 100.0), ("p.overlap_ratio", 0.3)]);
        let cur = m(&[("x.sim_ns_per_op", 50.0), ("p.overlap_ratio", 0.9)]);
        assert!(gate(&base, &cur, 0.10).is_empty());
    }

    #[test]
    fn missing_metric_fails_hard() {
        let base = m(&[("x.sim_ns_per_op", 100.0)]);
        let f = gate(&base, &Metrics::new(), 0.10);
        assert_eq!(f.len(), 1);
        assert!(f[0].regression.is_infinite());
    }

    #[test]
    fn new_metrics_are_allowed() {
        let base = Metrics::new();
        let cur = m(&[("fresh.sim_ns_per_op", 5.0)]);
        assert!(gate(&base, &cur, 0.10).is_empty());
    }

    #[test]
    fn info_keys_never_gate() {
        let base = m(&[("info.host_pipeline8.ns_per_op", 100.0)]);
        let cur = m(&[("info.host_pipeline8.ns_per_op", 500.0)]);
        assert!(gate(&base, &cur, 0.10).is_empty(), "worse info is fine");
        assert!(
            gate(&base, &Metrics::new(), 0.10).is_empty(),
            "absent info is fine"
        );
    }

    #[test]
    fn host_keys_gate_only_when_reported() {
        let base = m(&[("host_pipeline8.fases_speedup", 2.5)]);
        // A small machine omits host metrics entirely: no finding.
        assert!(gate(&base, &Metrics::new(), 0.10).is_empty());
        // A capable machine reporting a regression still fails.
        let cur = m(&[("host_pipeline8.fases_speedup", 1.8)]);
        let f = gate(&base, &cur, 0.10);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].key, "host_pipeline8.fases_speedup");
    }

    #[test]
    fn nan_current_fails_unconditionally() {
        let base = m(&[("x.sim_ns_per_op", 100.0), ("p.overlap_ratio", 0.5)]);
        let cur = m(&[("x.sim_ns_per_op", f64::NAN), ("p.overlap_ratio", 0.5)]);
        let f = gate(&base, &cur, 0.10);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].key, "x.sim_ns_per_op");
        assert!(f[0].regression.is_infinite());
    }

    #[test]
    #[should_panic(expected = "not a finite number")]
    fn to_json_rejects_nan() {
        to_json(&m(&[("x.sim_ns_per_op", f64::NAN)]));
    }

    #[test]
    fn worst_regression_sorts_first() {
        let base = m(&[("a.sim_ns_per_op", 100.0), ("b.sim_ns_per_op", 100.0)]);
        let cur = m(&[("a.sim_ns_per_op", 120.0), ("b.sim_ns_per_op", 150.0)]);
        let f = gate(&base, &cur, 0.10);
        assert_eq!(f[0].key, "b.sim_ns_per_op");
    }
}
