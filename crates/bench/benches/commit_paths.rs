//! Criterion bench of the three commit protocols (Fig 8): single,
//! siblings, unrelated — the ablation behind MOD's one-fence claim.

use criterion::{criterion_group, criterion_main, Criterion};
use mod_core::{DurableDs, ModHeap};
use mod_funcds::PmMap;
use mod_pmem::{Pmem, PmemConfig};
use std::hint::black_box;

fn bench_commit_single(c: &mut Criterion) {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
    let mut cur = PmMap::empty(heap.nv_mut());
    heap.publish_root(0, cur);
    let mut i = 0u64;
    c.bench_function("commit_single", |b| {
        b.iter(|| {
            i += 1;
            let next = cur.insert(heap.nv_mut(), black_box(i % 10_000), b"v");
            heap.commit_single(0, cur, &[], next);
            cur = next;
        })
    });
}

fn bench_commit_siblings(c: &mut Criterion) {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
    let stable = PmMap::empty(heap.nv_mut());
    let mut cur = PmMap::empty(heap.nv_mut());
    heap.commit_siblings(
        0,
        mod_pmem::PmPtr::NULL,
        &[stable.erase(), cur.erase()],
        &[stable.erase(), cur.erase()],
    );
    let mut i = 0u64;
    c.bench_function("commit_siblings", |b| {
        b.iter(|| {
            i += 1;
            let old_parent = heap.read_root(0);
            let next = cur.insert(heap.nv_mut(), black_box(i % 10_000), b"v");
            heap.commit_siblings(0, old_parent, &[stable.erase(), next.erase()], &[next.erase()]);
            cur = next;
        })
    });
}

fn bench_commit_unrelated(c: &mut Criterion) {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
    let mut a = PmMap::empty(heap.nv_mut());
    let mut b_map = PmMap::empty(heap.nv_mut());
    heap.publish_root(0, a);
    heap.publish_root(1, b_map);
    let mut i = 0u64;
    c.bench_function("commit_unrelated", |b| {
        b.iter(|| {
            i += 1;
            let na = a.insert(heap.nv_mut(), black_box(i % 10_000), b"v");
            let nb = b_map.insert(heap.nv_mut(), black_box(i % 10_000), b"w");
            heap.commit_unrelated(&[(0, a.erase(), na.erase()), (1, b_map.erase(), nb.erase())]);
            a = na;
            b_map = nb;
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_commit_single, bench_commit_siblings, bench_commit_unrelated
);
criterion_main!(benches);
