//! Host-side bench of the FASE commit paths (Fig 8): a single-root FASE,
//! a multi-root FASE (siblings via the root directory), and the
//! deprecated three-fence unrelated commit — the ablation behind MOD's
//! one-fence claim.

use mod_bench::harness::{bench, bench_main};
use mod_core::ModHeap;
use mod_funcds::PmMap;
use mod_pmem::{Pmem, PmemConfig};
use std::hint::black_box;

fn main() {
    bench_main(|| {
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
        let m0 = PmMap::empty(heap.nv_mut());
        let map = heap.publish(m0);
        let mut i = 0u64;
        bench("fase_single_root", || {
            i += 1;
            let k = black_box(i % 10_000);
            heap.fase(|tx| tx.update(map, |nv, m| m.insert(nv, k, b"v")));
        });

        let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
        let a0 = PmMap::empty(heap.nv_mut());
        let b0 = PmMap::empty(heap.nv_mut());
        let a = heap.publish(a0);
        let b = heap.publish(b0);
        let mut i = 0u64;
        bench("fase_two_roots", || {
            i += 1;
            let k = black_box(i % 10_000);
            heap.fase(|tx| {
                tx.update(a, |nv, m| m.insert(nv, k, b"v"));
                tx.update(b, |nv, m| m.insert(nv, k, b"w"));
            });
        });

        #[allow(deprecated)]
        {
            use mod_core::DurableDs;
            let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
            let mut a = PmMap::empty(heap.nv_mut());
            let mut b = PmMap::empty(heap.nv_mut());
            heap.publish_root(0, a);
            heap.publish_root(1, b);
            let mut i = 0u64;
            bench("commit_unrelated_legacy", || {
                i += 1;
                let k = black_box(i % 10_000);
                let na = a.insert(heap.nv_mut(), k, b"v");
                let nb = b.insert(heap.nv_mut(), k, b"w");
                heap.commit_unrelated(&[(0, a.erase(), na.erase()), (1, b.erase(), nb.erase())]);
                a = na;
                b = nb;
            });
        }
    });
}
