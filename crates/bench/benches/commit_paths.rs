//! Host-side bench of the FASE commit paths (Fig 8): a single-root FASE
//! and a multi-root FASE (siblings via the root directory) — the paths
//! behind MOD's one-fence claim. (The deprecated three-fence
//! `commit_unrelated` ablation left with the raw-slot shims in 0.3; the
//! root directory commits any root combination with one fence.)
//!
//! Besides host ns/iter, each path reports its *simulated* commit
//! profile: fences per FASE, simulated ns per FASE, and the share of WPQ
//! drain work the overlapped latency model hid under the FASE's own
//! staging compute.

use mod_bench::harness::{bench, bench_main};
use mod_bench::TextTable;
use mod_core::ModHeap;
use mod_funcds::PmMap;
use mod_pmem::{Pmem, PmemConfig};
use std::hint::black_box;

/// Simulated per-FASE profile of `iters` runs of `f`.
fn sim_profile(
    heap: &mut ModHeap,
    iters: u64,
    mut f: impl FnMut(&mut ModHeap, u64),
) -> (f64, f64, f64) {
    heap.nv_mut().pm_mut().reset_metrics();
    for i in 0..iters {
        f(heap, i);
    }
    let stats = heap.nv().pm().stats().clone();
    let ns = heap.nv().pm().clock().now_ns();
    (
        stats.fences as f64 / iters as f64,
        ns / iters as f64,
        stats.overlap_ratio(),
    )
}

fn main() {
    bench_main(|| {
        let mut sim = TextTable::new(vec!["path", "fences/fase", "sim ns/fase", "overlap"]);

        let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
        let m0 = PmMap::empty(heap.nv_mut());
        let map = heap.publish(m0);
        let mut i = 0u64;
        bench("fase_single_root", || {
            i += 1;
            let k = black_box(i % 10_000);
            heap.fase(|tx| tx.update(map, |nv, m| m.insert(nv, k, b"v")));
        });
        let (fpf, nspf, ov) = sim_profile(&mut heap, 2_000, |h, i| {
            h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, i % 10_000, b"v")));
        });
        sim.row(vec![
            "single-root".to_string(),
            format!("{fpf:.3}"),
            format!("{nspf:.0}"),
            format!("{:.1}%", ov * 100.0),
        ]);

        let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
        let a0 = PmMap::empty(heap.nv_mut());
        let b0 = PmMap::empty(heap.nv_mut());
        let a = heap.publish(a0);
        let b = heap.publish(b0);
        let mut i = 0u64;
        bench("fase_two_roots", || {
            i += 1;
            let k = black_box(i % 10_000);
            heap.fase(|tx| {
                tx.update(a, |nv, m| m.insert(nv, k, b"v"));
                tx.update(b, |nv, m| m.insert(nv, k, b"w"));
            });
        });
        let (fpf, nspf, ov) = sim_profile(&mut heap, 2_000, |h, i| {
            let k = i % 10_000;
            h.fase(|tx| {
                tx.update(a, |nv, m| m.insert(nv, k, b"v"));
                tx.update(b, |nv, m| m.insert(nv, k, b"w"));
            });
        });
        sim.row(vec![
            "two-roots".to_string(),
            format!("{fpf:.3}"),
            format!("{nspf:.0}"),
            format!("{:.1}%", ov * 100.0),
        ]);

        println!();
        println!("simulated commit profile (2000 FASEs each, shadow staging overlaps WPQ drain):");
        println!("{}", sim.render());
    });
}
