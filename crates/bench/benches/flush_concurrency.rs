//! Criterion bench over the Fig 4 machinery: the WPQ event model and the
//! analytical Amdahl curve at each concurrency level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mod_pmem::{LatencyModel, WpqModel};
use std::hint::black_box;

fn bench_wpq(c: &mut Criterion) {
    let wpq = WpqModel::default();
    let mut g = c.benchmark_group("wpq_microbenchmark");
    for n in [1usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(wpq.avg_flush_latency_ns(n, 320)))
        });
    }
    g.finish();
}

fn bench_fence_model(c: &mut Criterion) {
    let m = LatencyModel::optane();
    c.bench_function("fence_stall_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in 1..=32 {
                acc += m.fence_stall_ns(black_box(n));
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_wpq, bench_fence_model
);
criterion_main!(benches);
