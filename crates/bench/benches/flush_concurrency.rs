//! Flush-concurrency benches: the Fig 4 machinery (WPQ event model and
//! the analytical Amdahl curve) plus two *structure-level* scaling
//! curves over the sharded `SharedModHeap` at 1/2/4/8 worker threads:
//!
//! * **simulated time** — the deterministic turnstile run (shared
//!   structures, pipelined commits): FASE throughput per simulated ms,
//!   batch fill, drain overlap;
//! * **host time** — free-running OS threads in blocking group-commit
//!   mode over per-worker structures: wall-clock FASE throughput, the
//!   number that shows the lock-free staging path scales on real cores
//!   (needs real cores — the table is skipped below 4).
//!
//! `MOD_OPS` rescales the per-thread op count.

use mod_bench::harness::{bench, bench_main};
use mod_bench::TextTable;
use mod_pmem::{LatencyModel, WpqModel};
use mod_workloads::{run_host, run_pipelined, ConcurrencyConfig};
use std::hint::black_box;

fn structure_scaling() {
    let ops: u64 = std::env::var("MOD_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(test) { 100 } else { 1_000 });
    let mut table = TextTable::new(vec![
        "threads",
        "fases",
        "batches",
        "mean batch",
        "fences/fase",
        "sim ns/fase",
        "overlap",
        "fases/sim ms",
        "speedup",
    ]);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = ConcurrencyConfig {
            ops_per_thread: ops,
            ..ConcurrencyConfig::testing(threads)
        };
        let r = run_pipelined(&cfg);
        let tput = r.fases_per_sim_ms();
        let base_tput = *base.get_or_insert(tput);
        table.row(vec![
            format!("{threads}"),
            format!("{}", r.fases),
            format!("{}", r.batches),
            format!("{:.2}", r.mean_batch()),
            format!("{:.3}", r.fences_per_fase()),
            format!("{:.0}", r.sim_ns_per_fase()),
            format!("{:.1}%", r.overlap_ratio() * 100.0),
            format!("{tput:.0}"),
            format!("{:.2}x", tput / base_tput),
        ]);
    }
    println!();
    println!("pipelined FASE commits over SharedModHeap (producer/consumer, map+queue):");
    println!("{}", table.render());
    println!(
        "overlap = share of WPQ drain work hidden under staging compute \
         instead of stalled on at the batch fence"
    );
}

fn host_scaling() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        println!();
        println!(
            "host-time scaling skipped: {cores} core(s) available \
             (free-running threads cannot scale without cores)"
        );
        return;
    }
    let ops: u64 = std::env::var("MOD_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(test) { 100 } else { 1_000 });
    let mut table = TextTable::new(vec![
        "threads",
        "fases",
        "batches",
        "mean batch",
        "fences/fase",
        "host ns/op",
        "fases/host ms",
        "speedup",
    ]);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = ConcurrencyConfig {
            ops_per_thread: ops,
            ..ConcurrencyConfig::testing(threads)
        };
        let r = run_host(&cfg);
        let tput = r.fases_per_host_ms();
        let base_tput = *base.get_or_insert(tput);
        table.row(vec![
            format!("{threads}"),
            format!("{}", r.fases),
            format!("{}", r.batches),
            format!("{:.2}", r.mean_batch()),
            format!("{:.3}", r.fences_per_fase()),
            format!("{:.0}", r.host_ns_per_op()),
            format!("{tput:.0}"),
            format!("{:.2}x", tput / base_tput),
        ]);
    }
    println!();
    println!(
        "lock-free staging, host wall-clock (free-running threads, \
         group commit, per-worker structures):"
    );
    println!("{}", table.render());
}

fn main() {
    bench_main(|| {
        let wpq = WpqModel::default();
        for n in [1usize, 8, 32] {
            bench(&format!("wpq_microbenchmark/{n}"), || {
                black_box(wpq.avg_flush_latency_ns(black_box(n), 320));
            });
        }

        let m = LatencyModel::optane();
        bench("fence_stall_model", || {
            let mut acc = 0.0;
            for n in 1..=32 {
                acc += m.fence_stall_ns(black_box(n));
            }
            black_box(acc);
        });

        structure_scaling();
        host_scaling();
    });
}
