//! Host-side bench over the Fig 4 machinery: the WPQ event model and the
//! analytical Amdahl curve at each concurrency level.

use mod_bench::harness::{bench, bench_main};
use mod_pmem::{LatencyModel, WpqModel};
use std::hint::black_box;

fn main() {
    bench_main(|| {
        let wpq = WpqModel::default();
        for n in [1usize, 8, 32] {
            bench(&format!("wpq_microbenchmark/{n}"), || {
                black_box(wpq.avg_flush_latency_ns(black_box(n), 320));
            });
        }

        let m = LatencyModel::optane();
        bench("fence_stall_model", || {
            let mut acc = 0.0;
            for n in 1..=32 {
                acc += m.fence_stall_ns(black_box(n));
            }
            black_box(acc);
        });
    });
}
