//! Criterion microbenchmarks: host-side cost of one failure-atomic update
//! per datastructure per system. (The *simulated* PM time is what the
//! fig9 binary reports; these benches track the simulator's own speed so
//! regressions in the reproduction harness are caught.)

use criterion::{criterion_group, criterion_main, Criterion};
use mod_core::basic::{DurableMap, DurableQueue, DurableStack, DurableVector};
use mod_core::ModHeap;
use mod_pmem::{Pmem, PmemConfig};
use mod_stm::{StmHashMap, TxHeap, TxMode};
use std::hint::black_box;

fn bench_mod_map_insert(c: &mut Criterion) {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
    let mut map = DurableMap::create(&mut heap, 0);
    let mut key = 0u64;
    c.bench_function("mod_map_insert", |b| {
        b.iter(|| {
            key = key.wrapping_add(1) % 100_000;
            map.insert(&mut heap, black_box(key), b"value-32-bytes-of-payload-data!!");
        })
    });
}

fn bench_pmdk_map_insert(c: &mut Criterion) {
    let mut heap = TxHeap::format(Pmem::new(PmemConfig::benchmarking(1 << 30)), TxMode::Hybrid);
    let map = StmHashMap::create(&mut heap, 14);
    let mut key = 0u64;
    c.bench_function("pmdk15_map_insert", |b| {
        b.iter(|| {
            key = key.wrapping_add(1) % 100_000;
            map.insert(&mut heap, black_box(key), b"value-32-bytes-of-payload-data!!");
        })
    });
}

fn bench_mod_queue_ops(c: &mut Criterion) {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
    let mut q = DurableQueue::create(&mut heap, 0);
    let mut i = 0u64;
    c.bench_function("mod_queue_enq_deq", |b| {
        b.iter(|| {
            i += 1;
            q.enqueue(&mut heap, black_box(i));
            q.dequeue(&mut heap);
        })
    });
}

fn bench_mod_stack_ops(c: &mut Criterion) {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
    let mut s = DurableStack::create(&mut heap, 0);
    let mut i = 0u64;
    c.bench_function("mod_stack_push_pop", |b| {
        b.iter(|| {
            i += 1;
            s.push(&mut heap, black_box(i));
            s.pop(&mut heap);
        })
    });
}

fn bench_mod_vector_update(c: &mut Criterion) {
    let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
    let elems: Vec<u64> = (0..65_536).collect();
    let mut v = DurableVector::create_from(&mut heap, 0, &elems);
    let mut i = 0u64;
    c.bench_function("mod_vector_update", |b| {
        b.iter(|| {
            i = (i + 12_345) % 65_536;
            v.update(&mut heap, black_box(i), i);
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mod_map_insert,
        bench_pmdk_map_insert,
        bench_mod_queue_ops,
        bench_mod_stack_ops,
        bench_mod_vector_update
);
criterion_main!(benches);
