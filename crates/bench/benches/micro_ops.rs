//! Host-side microbenchmarks: wall-clock cost of one failure-atomic
//! update per datastructure per system. (The *simulated* PM time is what
//! the fig9 binary reports; these track the simulator's own speed so
//! regressions in the reproduction harness are caught.)
//!
//! Dependency-free harness: `cargo bench --bench micro_ops` runs each
//! closure in timed batches and prints ns/iter.

use mod_bench::harness::{bench, bench_main};
use mod_core::{DurableMap, DurableQueue, DurableStack, DurableVector, ModHeap};
use mod_pmem::{Pmem, PmemConfig};
use mod_stm::{StmHashMap, TxHeap, TxMode};
use std::hint::black_box;

fn main() {
    bench_main(|| {
        let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
        let map: DurableMap<u64, [u8; 32]> = DurableMap::create(&mut heap);
        let mut key = 0u64;
        bench("mod_map_insert", || {
            key = key.wrapping_add(1) % 100_000;
            map.insert(
                &mut heap,
                black_box(&key),
                b"value-32-bytes-of-payload-data!!",
            );
        });

        let mut heap = TxHeap::format(Pmem::new(PmemConfig::benchmarking(1 << 30)), TxMode::Hybrid);
        let map = StmHashMap::create(&mut heap, 14);
        let mut key = 0u64;
        bench("pmdk15_map_insert", || {
            key = key.wrapping_add(1) % 100_000;
            map.insert(
                &mut heap,
                black_box(key),
                b"value-32-bytes-of-payload-data!!",
            );
        });

        let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
        let q: DurableQueue<u64> = DurableQueue::create(&mut heap);
        let mut i = 0u64;
        bench("mod_queue_enq_deq", || {
            i += 1;
            q.enqueue(&mut heap, black_box(&i));
            q.dequeue(&mut heap);
        });

        let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
        let s: DurableStack<u64> = DurableStack::create(&mut heap);
        let mut i = 0u64;
        bench("mod_stack_push_pop", || {
            i += 1;
            s.push(&mut heap, black_box(&i));
            s.pop(&mut heap);
        });

        let mut heap = ModHeap::create(Pmem::new(PmemConfig::benchmarking(1 << 30)));
        let elems: Vec<u64> = (0..65_536).collect();
        let v = DurableVector::create_from(&mut heap, &elems);
        let mut i = 0u64;
        bench("mod_vector_update", || {
            i = (i + 12_345) % 65_536;
            v.update(&mut heap, black_box(i), &i);
        });
    });
}
